"""The Curie petaflopic supercomputer, as characterised by the paper.

All constants are taken verbatim from the paper:

* Figure 4 — maximum node power per state (IPMI measurements over
  Linpack / STREAM / IMB / GROMACS runs on Curie-model nodes).
* Figure 2 / Section VI-A — enclosure hierarchy and power bonuses.
* Section VI-A — 280 chassis housing 5040 B510 nodes, 2 x 8-core
  Sandy Bridge per node, 80640 cores total.
"""

from __future__ import annotations

from repro.cluster.frequency import FrequencyTable
from repro.cluster.machine import Machine
from repro.cluster.topology import Topology

#: DownWatts — switched-off node, BMC powered (Figure 4).
CURIE_NODE_DOWN_WATTS = 14.0
#: IdleWatts (Figure 4).
CURIE_NODE_IDLE_WATTS = 117.0

#: CpuFreqXWatts for every DVFS step (Figure 4).
CURIE_FREQ_WATTS: dict[float, float] = {
    1.2: 193.0,
    1.4: 213.0,
    1.6: 234.0,
    1.8: 248.0,
    2.0: 269.0,
    2.2: 289.0,
    2.4: 317.0,
    2.7: 358.0,
}

CURIE_FREQUENCY_TABLE = FrequencyTable(
    CURIE_FREQ_WATTS.items(),
    idle_watts=CURIE_NODE_IDLE_WATTS,
    down_watts=CURIE_NODE_DOWN_WATTS,
)

CURIE_TOPOLOGY = Topology(
    nodes_per_chassis=18,
    chassis_per_rack=5,
    racks=56,
    chassis_watts=248.0,
    rack_watts=900.0,
    node_down_watts=CURIE_NODE_DOWN_WATTS,
)

#: Performance degradation between 2.7 GHz and 1.2 GHz used for the
#: replays (Section VII-B), backed by [Etinski et al.] and the paper's
#: own measurements.
CURIE_DEGMIN_FULL_RANGE = 1.63
#: Degradation between 2.7 GHz and 2.0 GHz for the MIX policy.
CURIE_DEGMIN_MIX_RANGE = 1.29
#: MIX restricts DVFS to the energy-efficient high range (Section VI-B).
CURIE_MIX_MIN_GHZ = 2.0

#: degmin measured/collected per benchmark (Figure 5).
CURIE_BENCHMARK_DEGMIN: dict[str, float] = {
    "linpack": 2.14,
    "IMB": 2.13,
    "SPEC Float": 1.89,
    "SPEC Integer": 1.74,
    "Common value": 1.63,
    "NAS suite": 1.5,
    "STREAM": 1.26,
    "GROMACS": 1.16,
}


def curie_machine(scale: float = 1.0) -> Machine:
    """Curie, optionally scaled down by whole racks.

    ``scale=1.0`` gives the full 5040-node machine; benchmarks use a
    fraction so the whole evaluation grid replays in minutes.  All
    reported quantities are normalised, making the figures
    scale-invariant.
    """
    topo = CURIE_TOPOLOGY if scale == 1.0 else CURIE_TOPOLOGY.scaled(scale)
    return Machine(
        name="curie" if scale == 1.0 else f"curie-x{scale:g}",
        topology=topo,
        freq_table=CURIE_FREQUENCY_TABLE,
        cores_per_node=16,
    )
