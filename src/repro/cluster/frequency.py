"""DVFS frequency steps and their power characteristics.

Section V of the paper introduces per-state watt parameters on each
node: ``IdleWatts``, ``MaxWatts``, ``DownWatts`` and one
``CpuFreqXWatts`` per available CPU frequency X.  A
:class:`FrequencyTable` bundles those values and provides the lookups
the online scheduling algorithm needs (highest/lowest frequency,
next-slower step, watts at a step, restriction to a sub-range for the
MIX policy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np


@dataclass(frozen=True, order=True)
class FrequencyStep:
    """A single DVFS operating point.

    Ordering is by frequency so ``max(table)`` is the fastest step.
    """

    ghz: float
    watts: float

    def __post_init__(self) -> None:
        if self.ghz <= 0:
            raise ValueError(f"frequency must be positive, got {self.ghz}")
        if self.watts < 0:
            raise ValueError(f"watts must be non-negative, got {self.watts}")


class FrequencyTable:
    """Ordered set of DVFS steps plus idle/down power for one node type.

    Parameters
    ----------
    steps:
        Iterable of :class:`FrequencyStep` (or ``(ghz, watts)`` tuples).
        Power must be non-decreasing in frequency; at least one step is
        required.
    idle_watts:
        Power drawn by a powered-on node with no job (``IdleWatts``).
    down_watts:
        Power drawn by a switched-off node whose BMC is still powered
        (``DownWatts``; 14 W on Curie).
    """

    def __init__(
        self,
        steps: Iterable[FrequencyStep | tuple[float, float]],
        *,
        idle_watts: float,
        down_watts: float,
    ) -> None:
        normalized = [
            s if isinstance(s, FrequencyStep) else FrequencyStep(*s) for s in steps
        ]
        if not normalized:
            raise ValueError("a frequency table needs at least one step")
        normalized.sort()
        ghz = [s.ghz for s in normalized]
        if len(set(ghz)) != len(ghz):
            raise ValueError(f"duplicate frequency steps: {ghz}")
        watts = [s.watts for s in normalized]
        if any(b < a for a, b in zip(watts, watts[1:])):
            raise ValueError("power must be non-decreasing with frequency")
        if idle_watts < 0 or down_watts < 0:
            raise ValueError("idle/down watts must be non-negative")
        if down_watts > idle_watts:
            raise ValueError("a switched-off node cannot draw more than an idle one")
        self._steps: tuple[FrequencyStep, ...] = tuple(normalized)
        self.idle_watts = float(idle_watts)
        self.down_watts = float(down_watts)
        # Vectorised views used by the power accountant.
        self.ghz_array = np.array(ghz, dtype=np.float64)
        self.watts_array = np.array(watts, dtype=np.float64)
        self._index_by_ghz = {s.ghz: i for i, s in enumerate(self._steps)}

    # -- basic container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._steps)

    def __iter__(self) -> Iterator[FrequencyStep]:
        return iter(self._steps)

    def __getitem__(self, index: int) -> FrequencyStep:
        return self._steps[index]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        pts = ", ".join(f"{s.ghz}GHz={s.watts}W" for s in self._steps)
        return (
            f"FrequencyTable([{pts}], idle={self.idle_watts}W, "
            f"down={self.down_watts}W)"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FrequencyTable):
            return NotImplemented
        return (
            self._steps == other._steps
            and self.idle_watts == other.idle_watts
            and self.down_watts == other.down_watts
        )

    def __hash__(self) -> int:
        return hash((self._steps, self.idle_watts, self.down_watts))

    # -- lookups ------------------------------------------------------------------

    @property
    def steps(self) -> tuple[FrequencyStep, ...]:
        return self._steps

    @property
    def frequencies(self) -> tuple[float, ...]:
        """All frequencies, ascending."""
        return tuple(s.ghz for s in self._steps)

    @property
    def min(self) -> FrequencyStep:
        """Slowest step (``Pmin`` in the paper's model)."""
        return self._steps[0]

    @property
    def max(self) -> FrequencyStep:
        """Fastest step (``Pmax`` in the paper's model)."""
        return self._steps[-1]

    @property
    def max_index(self) -> int:
        return len(self._steps) - 1

    def index_of(self, ghz: float) -> int:
        """Index of the step running at exactly ``ghz``.

        Raises ``KeyError`` for a frequency not in the table: the
        online algorithm only ever iterates over configured steps.
        """
        try:
            return self._index_by_ghz[ghz]
        except KeyError:
            raise KeyError(
                f"{ghz} GHz is not a configured DVFS step; choices: "
                f"{self.frequencies}"
            ) from None

    def watts(self, ghz: float) -> float:
        """``CpuFreqXWatts`` for step X = ``ghz``."""
        return self._steps[self.index_of(ghz)].watts

    def watts_at_index(self, index: int) -> float:
        return self._steps[index].watts

    def step_below(self, ghz: float) -> FrequencyStep | None:
        """Next slower step, or ``None`` when ``ghz`` is the slowest.

        This is the "a slower value of job.DVFS" operation of
        Algorithm 2 in the paper.
        """
        i = self.index_of(ghz)
        return self._steps[i - 1] if i > 0 else None

    def restrict(self, min_ghz: float, max_ghz: float) -> "FrequencyTable":
        """Sub-table limited to ``[min_ghz, max_ghz]`` (inclusive).

        Used by the MIX policy, which only permits the
        energy-efficient high range (2.0-2.7 GHz on Curie).
        """
        kept = [s for s in self._steps if min_ghz <= s.ghz <= max_ghz]
        if not kept:
            raise ValueError(
                f"no DVFS step inside [{min_ghz}, {max_ghz}] GHz; "
                f"available: {self.frequencies}"
            )
        return FrequencyTable(
            kept, idle_watts=self.idle_watts, down_watts=self.down_watts
        )

    # -- derived quantities used by the Section III model ---------------------------

    def dynamic_range(self) -> float:
        """``Pmax - Pmin``: watts shaved by DVFS at full depth."""
        return self.max.watts - self.min.watts

    def normalized_cap_floor(self) -> float:
        """``Pmin / Pmax``: the lowest normalised cap DVFS alone reaches.

        Below this value of lambda the paper's model (Section III-A,
        case 4) forces the use of switch-off together with DVFS.
        """
        return self.min.watts / self.max.watts

    def interpolate_watts(self, ghz: float) -> float:
        """Linear interpolation of power between configured steps.

        Only used by application models (Figure 3 reproduction); the
        scheduler itself never runs between steps.
        """
        lo, hi = self.min.ghz, self.max.ghz
        if not (lo <= ghz <= hi):
            raise ValueError(f"{ghz} GHz outside table range [{lo}, {hi}]")
        return float(np.interp(ghz, self.ghz_array, self.watts_array))


def degradation_factor(
    ghz: float,
    table: FrequencyTable | Sequence[float],
    degmin: float,
    *,
    max_ghz: float | None = None,
    min_ghz: float | None = None,
) -> float:
    """Runtime stretch factor for a job executed at ``ghz``.

    The paper (Sections V, VII-B) models the completion-time
    degradation as ``degmin`` at the minimum frequency, 1.0 at the
    maximum frequency, and **linear interpolation** for intermediate
    steps.  ``degmin`` is 1.63 for the full 1.2-2.7 GHz range and 1.29
    for the MIX 2.0-2.7 GHz range.

    Parameters
    ----------
    ghz:
        Frequency the job runs at.
    table:
        Frequency table (or an ascending frequency sequence) defining
        the default min/max of the interpolation span.
    degmin:
        Degradation at the minimum frequency.
    max_ghz, min_ghz:
        Optional overrides for the interpolation span endpoints.
    """
    if degmin < 1.0:
        raise ValueError(f"degmin must be >= 1 (got {degmin})")
    if isinstance(table, FrequencyTable):
        lo = table.min.ghz if min_ghz is None else min_ghz
        hi = table.max.ghz if max_ghz is None else max_ghz
    else:
        freqs = sorted(table)
        lo = freqs[0] if min_ghz is None else min_ghz
        hi = freqs[-1] if max_ghz is None else max_ghz
    if hi <= lo:
        return 1.0
    if not (lo - 1e-9 <= ghz <= hi + 1e-9):
        raise ValueError(f"{ghz} GHz outside degradation span [{lo}, {hi}]")
    frac = (hi - ghz) / (hi - lo)
    return 1.0 + (degmin - 1.0) * frac
