"""Machine description: topology + node type bundled together."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cluster.frequency import FrequencyTable
from repro.cluster.power import PowerAccountant
from repro.cluster.topology import Topology


@dataclass(frozen=True)
class Machine:
    """Everything static the RJMS needs to know about the hardware.

    Attributes
    ----------
    name:
        Human-readable machine name.
    topology:
        Enclosure hierarchy (node/chassis/rack shape, infra watts).
    freq_table:
        DVFS operating points and idle/down watts of one node.
    cores_per_node:
        Cores offered per node (16 on Curie).  Jobs are allocated
        whole nodes — like the paper's power accounting, which "does
        not make any difference whether nodes are fully or partially
        used".
    """

    name: str
    topology: Topology
    freq_table: FrequencyTable
    cores_per_node: int = 16

    def __post_init__(self) -> None:
        if self.cores_per_node <= 0:
            raise ValueError("cores_per_node must be positive")
        if self.topology.node_down_watts != self.freq_table.down_watts:
            raise ValueError(
                "topology.node_down_watts must match freq_table.down_watts "
                f"({self.topology.node_down_watts} != {self.freq_table.down_watts})"
            )

    @property
    def n_nodes(self) -> int:
        return self.topology.n_nodes

    @property
    def total_cores(self) -> int:
        return self.n_nodes * self.cores_per_node

    def max_power(self) -> float:
        """All nodes at top frequency plus powered infrastructure."""
        return (
            self.n_nodes * self.freq_table.max.watts
            + self.topology.infrastructure_watts()
        )

    def idle_power(self) -> float:
        """All nodes idle plus powered infrastructure."""
        return (
            self.n_nodes * self.freq_table.idle_watts
            + self.topology.infrastructure_watts()
        )

    def nodes_for_cores(self, cores: int) -> int:
        """Whole nodes needed for a ``cores``-wide job."""
        if cores <= 0:
            raise ValueError(f"job core count must be positive, got {cores}")
        return -(-cores // self.cores_per_node)

    def new_accountant(self) -> PowerAccountant:
        """Fresh power accountant with every node IDLE."""
        return PowerAccountant(self.topology, self.freq_table)

    def scaled(self, factor: float) -> "Machine":
        """Proportionally smaller/larger machine (same node type)."""
        return replace(self, topology=self.topology.scaled(factor))
