"""Whole-cluster power accounting.

The paper's controller computes cluster power by summing statically
configured per-state node watts (Section IV-A), plus — in our explicit
model — the shared chassis/rack infrastructure whose disappearance when
a complete enclosure powers down is the "power bonus" of Section III-B.

The accountant keeps everything incrementally: every node state change
costs O(k) in the number of touched nodes, and reading the total power
is O(1).  The simulator changes states millions of times during a
replay, so this is the hot path (per the profiling-first guidance, the
state vectors are NumPy arrays and all bulk transitions are
vectorised).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.frequency import FrequencyTable
from repro.cluster.states import NodeState
from repro.cluster.topology import Topology


@dataclass
class PowerBreakdown:
    """Instantaneous power decomposed by consumer category (watts)."""

    busy_by_freq: dict[float, float] = field(default_factory=dict)
    idle: float = 0.0
    down: float = 0.0
    transitions: float = 0.0
    infrastructure: float = 0.0

    @property
    def total(self) -> float:
        return (
            sum(self.busy_by_freq.values())
            + self.idle
            + self.down
            + self.transitions
            + self.infrastructure
        )


class PowerAccountant:
    """Tracks node states and derives cluster power incrementally.

    Parameters
    ----------
    topology:
        Enclosure hierarchy (gives infra watts and bonus grouping).
    freq_table:
        Node DVFS table (gives per-state node watts).
    boot_watts, shutdown_watts:
        Power drawn during boot / shutdown transitions.  Defaults to
        idle watts (a booting node has fans and both sockets powered).
    """

    def __init__(
        self,
        topology: Topology,
        freq_table: FrequencyTable,
        *,
        boot_watts: float | None = None,
        shutdown_watts: float | None = None,
    ) -> None:
        self.topology = topology
        self.freq_table = freq_table
        self.boot_watts = freq_table.idle_watts if boot_watts is None else boot_watts
        self.shutdown_watts = (
            freq_table.idle_watts if shutdown_watts is None else shutdown_watts
        )

        n = topology.n_nodes
        #: bumped on every state mutation; readers may key caches
        #: derived from the state vector (e.g. the controller's idle
        #: free list) on it
        self.version = 0
        #: per-node state (NodeState values)
        self.state = np.full(n, NodeState.IDLE, dtype=np.int8)
        #: per-node DVFS index; only meaningful while BUSY
        self.freq_index = np.full(n, freq_table.max_index, dtype=np.int16)
        #: per-node watts under the "BMC always on when OFF" convention
        self._node_watts = np.full(n, freq_table.idle_watts, dtype=np.float64)
        self._node_watts_sum = float(n * freq_table.idle_watts)

        #: number of OFF nodes per chassis, to detect complete enclosures
        self._off_per_chassis = np.zeros(topology.n_chassis, dtype=np.int32)
        self._dark_per_rack = np.zeros(topology.racks, dtype=np.int32)
        self._n_dark_chassis = 0
        self._n_dark_racks = 0

        #: busy node count per DVFS step (for utilisation-by-frequency series)
        self.busy_count_by_freq = np.zeros(len(freq_table), dtype=np.int64)
        self.count_by_state = np.zeros(len(NodeState), dtype=np.int64)
        self.count_by_state[NodeState.IDLE] = n

    # -- static reference points ------------------------------------------------------

    def max_power(self) -> float:
        """All nodes busy at the highest frequency, full infrastructure.

        This is the reference the paper normalises power caps against
        (``P = lambda * N * Pmax`` plus, in our explicit model, the
        always-on infrastructure).
        """
        t = self.topology
        return t.n_nodes * self.freq_table.max.watts + t.infrastructure_watts()

    def idle_floor(self) -> float:
        """All nodes idle, full infrastructure (Figure 6's light-grey band)."""
        t = self.topology
        return t.n_nodes * self.freq_table.idle_watts + t.infrastructure_watts()

    def min_power(self) -> float:
        """Everything (nodes and enclosures) switched off."""
        return 0.0

    # -- state transitions --------------------------------------------------------------

    def _watts_for(self, state: int, freq_index: np.ndarray | int) -> np.ndarray | float:
        """Node watts (BMC-on convention) for a state/frequency."""
        ft = self.freq_table
        if state == NodeState.BUSY:
            return ft.watts_array[freq_index]
        return {
            NodeState.OFF: ft.down_watts,
            NodeState.IDLE: ft.idle_watts,
            NodeState.BOOTING: self.boot_watts,
            NodeState.SHUTTING_DOWN: self.shutdown_watts,
        }[NodeState(state)]

    def set_state(
        self,
        node_ids: np.ndarray,
        state: NodeState,
        *,
        freq_index: int | None = None,
    ) -> None:
        """Move ``node_ids`` to ``state`` (all to the same state).

        ``freq_index`` is required for BUSY and ignored otherwise.
        """
        ids = np.asarray(node_ids, dtype=np.int64)
        if ids.size == 0:
            return
        if state == NodeState.BUSY and freq_index is None:
            raise ValueError("freq_index is required when setting nodes BUSY")
        self.version += 1

        old_states = self.state[ids]
        old_watts = self._node_watts[ids]

        # Book-keeping for busy-by-frequency counts.
        busy_mask = old_states == NodeState.BUSY
        if busy_mask.any():
            np.subtract.at(
                self.busy_count_by_freq, self.freq_index[ids[busy_mask]], 1
            )
        np.subtract.at(self.count_by_state, old_states, 1)

        # Enclosure darkness tracking: nodes leaving/entering OFF.
        was_off = old_states == NodeState.OFF
        becomes_off = state == NodeState.OFF
        if was_off.any() and not becomes_off:
            self._update_darkness(ids[was_off], delta=-1)
        if becomes_off and (~was_off).any():
            self._update_darkness(ids[~was_off], delta=+1)

        # Apply the new state.
        self.state[ids] = state
        if state == NodeState.BUSY:
            assert freq_index is not None
            self.freq_index[ids] = freq_index
            new_watts = self.freq_table.watts_array[freq_index]
            self.busy_count_by_freq[freq_index] += ids.size
        else:
            new_watts = self._watts_for(state, 0)
        self.count_by_state[state] += ids.size

        self._node_watts[ids] = new_watts
        self._node_watts_sum += float(np.sum(new_watts - old_watts))

    def _update_darkness(self, node_ids: np.ndarray, *, delta: int) -> None:
        """Maintain chassis/rack full-off counters when OFF membership changes."""
        t = self.topology
        chassis = t.chassis_of_node[node_ids]
        before_full = self._off_per_chassis[chassis] == t.nodes_per_chassis
        np.add.at(self._off_per_chassis, chassis, delta)
        after_full = self._off_per_chassis[chassis] == t.nodes_per_chassis
        # A chassis may appear several times in `chassis`; recompute the
        # unique set whose fullness flipped.
        flipped = np.unique(chassis[before_full != after_full])
        if flipped.size == 0:
            return
        now_dark = self._off_per_chassis[flipped] == t.nodes_per_chassis
        dark_delta = np.where(now_dark, 1, -1)
        self._n_dark_chassis += int(dark_delta.sum())
        racks = t.rack_of_chassis[flipped]
        rack_before = self._dark_per_rack[racks] == t.chassis_per_rack
        np.add.at(self._dark_per_rack, racks, dark_delta)
        rack_after = self._dark_per_rack[racks] == t.chassis_per_rack
        rack_flipped = np.unique(racks[rack_before != rack_after])
        if rack_flipped.size:
            rack_dark = self._dark_per_rack[rack_flipped] == t.chassis_per_rack
            self._n_dark_racks += int(np.where(rack_dark, 1, -1).sum())

    # -- readings ------------------------------------------------------------------------

    @property
    def n_dark_chassis(self) -> int:
        """Chassis whose 18 nodes are all OFF (infra + BMCs unpowered)."""
        return self._n_dark_chassis

    @property
    def n_dark_racks(self) -> int:
        """Racks whose 5 chassis are all dark."""
        return self._n_dark_racks

    def bonus_watts(self) -> float:
        """Infrastructure + BMC watts currently saved by dark enclosures.

        This is the "power bonus" rectangle plotted in Figures 6/7.
        """
        t = self.topology
        return (
            self._n_dark_chassis * t.chassis_bonus_watts()
            + self._n_dark_racks * t.rack_watts
        )

    def total_power(self) -> float:
        """Instantaneous cluster power, O(1)."""
        t = self.topology
        infra = (
            (t.n_chassis - self._n_dark_chassis) * t.chassis_watts
            + (t.racks - self._n_dark_racks) * t.rack_watts
        )
        bmc_saved = (
            self._n_dark_chassis * t.nodes_per_chassis * self.freq_table.down_watts
        )
        return self._node_watts_sum - bmc_saved + infra

    def breakdown(self) -> PowerBreakdown:
        """Decomposition of :meth:`total_power` by consumer category."""
        ft = self.freq_table
        t = self.topology
        busy = {
            ft.steps[i].ghz: float(self.busy_count_by_freq[i] * ft.watts_array[i])
            for i in range(len(ft))
            if self.busy_count_by_freq[i]
        }
        down_nodes = int(self.count_by_state[NodeState.OFF])
        dark_nodes = self._n_dark_chassis * t.nodes_per_chassis
        bd = PowerBreakdown(
            busy_by_freq=busy,
            idle=float(self.count_by_state[NodeState.IDLE] * ft.idle_watts),
            down=float((down_nodes - dark_nodes) * ft.down_watts),
            transitions=float(
                self.count_by_state[NodeState.BOOTING] * self.boot_watts
                + self.count_by_state[NodeState.SHUTTING_DOWN] * self.shutdown_watts
            ),
            infrastructure=(
                (t.n_chassis - self._n_dark_chassis) * t.chassis_watts
                + (t.racks - self._n_dark_racks) * t.rack_watts
            ),
        )
        return bd

    # -- projections used by the online algorithm ------------------------------------------

    def busy_delta_watts(self, n_nodes: int, freq_index: int) -> float:
        """Power increase from turning ``n_nodes`` IDLE nodes BUSY at a step.

        Idle->busy transitions never change enclosure darkness, so the
        delta is purely nodal.  This is the
        ``N_{job.DVFS} * job.requiredNodes`` term of Algorithm 2.
        """
        ft = self.freq_table
        return n_nodes * (ft.watts_array[freq_index] - ft.idle_watts)

    def idle_delta_watts(self, n_nodes: int, freq_index: int) -> float:
        """Power decrease from a job at ``freq_index`` releasing its nodes."""
        return -self.busy_delta_watts(n_nodes, freq_index)

    def verify(self) -> None:
        """Recompute everything from scratch and assert consistency.

        Test/debug helper: O(n).  Raises ``AssertionError`` on drift.
        """
        ft = self.freq_table
        t = self.topology
        watts = np.empty(t.n_nodes, dtype=np.float64)
        for s in NodeState:
            mask = self.state == s
            if s == NodeState.BUSY:
                watts[mask] = ft.watts_array[self.freq_index[mask]]
            else:
                watts[mask] = self._watts_for(s, 0)
        assert abs(float(watts.sum()) - self._node_watts_sum) < 1e-6 * max(
            1.0, self._node_watts_sum
        ), "node watts drift"
        off = self.state == NodeState.OFF
        off_per_chassis = np.bincount(
            t.chassis_of_node[off], minlength=t.n_chassis
        )
        assert np.array_equal(off_per_chassis, self._off_per_chassis)
        dark = off_per_chassis == t.nodes_per_chassis
        assert int(dark.sum()) == self._n_dark_chassis
        dark_per_rack = np.bincount(
            t.rack_of_chassis[np.nonzero(dark)[0]], minlength=t.racks
        )
        assert int((dark_per_rack == t.chassis_per_rack).sum()) == self._n_dark_racks
        counts = np.bincount(self.state, minlength=len(NodeState))
        assert np.array_equal(counts, self.count_by_state)
        busy_freqs = np.bincount(
            self.freq_index[self.state == NodeState.BUSY], minlength=len(ft)
        )
        assert np.array_equal(busy_freqs, self.busy_count_by_freq)
