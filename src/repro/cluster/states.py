"""Node power/availability states.

The paper (Section IV-A) treats power as a characteristic of each
resource state: a node that is switched off, idle, or busy at a given
CPU frequency consumes a different, statically configured amount of
power.  The controller deduces whole-cluster power by summing the
per-state values.
"""

from __future__ import annotations

import enum


class NodeState(enum.IntEnum):
    """Availability state of a compute node.

    The integer values are stable and used as indices into vectorised
    state arrays, so they must not be reordered.
    """

    #: Node is powered off.  Only the BMC remains powered (14 W on
    #: Curie) unless the enclosing chassis is powered off as well.
    OFF = 0

    #: Node is powered on and available, no job is running.
    IDLE = 1

    #: Node is allocated to a running job.  The consumed power depends
    #: on the CPU frequency the job was started at.
    BUSY = 2

    #: Node is transitioning from OFF to IDLE (boot in progress).
    BOOTING = 3

    #: Node is transitioning to OFF (shutdown in progress).
    SHUTTING_DOWN = 4

    @property
    def is_transitional(self) -> bool:
        """True for boot/shutdown transition states."""
        return self in (NodeState.BOOTING, NodeState.SHUTTING_DOWN)

    @property
    def is_available_for_jobs(self) -> bool:
        """True if a job could be dispatched on the node right now."""
        return self == NodeState.IDLE


#: Number of distinct :class:`NodeState` values (for array sizing).
N_NODE_STATES = len(NodeState)
