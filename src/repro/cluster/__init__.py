"""Cluster hardware substrate.

Models the physical machine the RJMS manages: nodes with DVFS power
states, the hierarchical enclosure topology (node -> chassis -> rack ->
cluster) with its "power bonus" levels, vectorised whole-cluster power
accounting, and the description of the Curie petaflopic supercomputer
used throughout the paper's evaluation.
"""

from repro.cluster.states import NodeState
from repro.cluster.frequency import FrequencyTable, FrequencyStep
from repro.cluster.topology import Topology, LevelSpec
from repro.cluster.power import PowerAccountant, PowerBreakdown
from repro.cluster.machine import Machine
from repro.cluster.curie import (
    curie_machine,
    CURIE_FREQUENCY_TABLE,
    CURIE_TOPOLOGY,
    CURIE_NODE_DOWN_WATTS,
    CURIE_NODE_IDLE_WATTS,
)

__all__ = [
    "NodeState",
    "FrequencyTable",
    "FrequencyStep",
    "Topology",
    "LevelSpec",
    "PowerAccountant",
    "PowerBreakdown",
    "Machine",
    "curie_machine",
    "CURIE_FREQUENCY_TABLE",
    "CURIE_TOPOLOGY",
    "CURIE_NODE_DOWN_WATTS",
    "CURIE_NODE_IDLE_WATTS",
]
