"""Hierarchical enclosure topology and the "power bonus" model.

Section III-B of the paper defines power *levels*: groups of hardware
components that can be switched off together.  On Curie (Section VI-A,
Figure 2):

* **node** — 2 sockets x 8 cores.  When off, the BMC stays powered
  (14 W) so the node can be woken through the network.
* **chassis** — 18 nodes plus cooling fans, Ethernet/InfiniBand
  switches, optical cables and ports drawing 248 W.  Powering off a
  *complete* chassis also cuts the 18 BMCs, for a bonus of
  ``248 + 18*14 = 500 W``.
* **rack** — 5 chassis plus fans and the cold door of the liquid
  cooling, 900 W; bonus ``900 + 5*500 = 3400 W``.
* **cluster** — 56 racks (no bonus modelled above rack level).

The topology maps node ids to their chassis and rack, tracks which
enclosures are fully powered off, and computes the bonus watts the
offline scheduling phase can harvest by *grouping* shutdowns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LevelSpec:
    """Static description of one enclosure level.

    ``component_watts`` is the power drawn by the level's shared
    infrastructure (fans, switches, cold door) while *any* of its
    children is powered.
    """

    name: str
    children_per_parent: int
    component_watts: float

    def __post_init__(self) -> None:
        if self.children_per_parent <= 0:
            raise ValueError("children_per_parent must be positive")
        if self.component_watts < 0:
            raise ValueError("component_watts must be non-negative")


class Topology:
    """node -> chassis -> rack hierarchy with power-bonus accounting.

    Parameters
    ----------
    nodes_per_chassis, chassis_per_rack, racks:
        Shape of the hierarchy.  Curie: 18, 5, 56.
    chassis_watts, rack_watts:
        Shared-infrastructure power per chassis / rack.
    node_down_watts:
        BMC power of an individual switched-off node; cut when the
        whole chassis powers down (this is what makes the chassis
        bonus exceed its own component power).
    """

    def __init__(
        self,
        *,
        nodes_per_chassis: int = 18,
        chassis_per_rack: int = 5,
        racks: int = 56,
        chassis_watts: float = 248.0,
        rack_watts: float = 900.0,
        node_down_watts: float = 14.0,
    ) -> None:
        if min(nodes_per_chassis, chassis_per_rack, racks) <= 0:
            raise ValueError("topology dimensions must be positive")
        self.nodes_per_chassis = int(nodes_per_chassis)
        self.chassis_per_rack = int(chassis_per_rack)
        self.racks = int(racks)
        self.chassis_watts = float(chassis_watts)
        self.rack_watts = float(rack_watts)
        self.node_down_watts = float(node_down_watts)

        self.n_chassis = self.racks * self.chassis_per_rack
        self.n_nodes = self.n_chassis * self.nodes_per_chassis
        self.nodes_per_rack = self.nodes_per_chassis * self.chassis_per_rack

        node_ids = np.arange(self.n_nodes)
        #: chassis id of each node (shape ``(n_nodes,)``)
        self.chassis_of_node = node_ids // self.nodes_per_chassis
        #: rack id of each node (shape ``(n_nodes,)``)
        self.rack_of_node = node_ids // self.nodes_per_rack
        #: rack id of each chassis (shape ``(n_chassis,)``)
        self.rack_of_chassis = np.arange(self.n_chassis) // self.chassis_per_rack

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Topology({self.racks} racks x {self.chassis_per_rack} chassis "
            f"x {self.nodes_per_chassis} nodes = {self.n_nodes} nodes)"
        )

    # -- membership helpers ---------------------------------------------------------

    def nodes_of_chassis(self, chassis: int) -> np.ndarray:
        """Node ids housed in ``chassis`` (ascending)."""
        if not 0 <= chassis < self.n_chassis:
            raise IndexError(f"chassis {chassis} out of range")
        start = chassis * self.nodes_per_chassis
        return np.arange(start, start + self.nodes_per_chassis)

    def nodes_of_rack(self, rack: int) -> np.ndarray:
        """Node ids housed in ``rack`` (ascending)."""
        if not 0 <= rack < self.racks:
            raise IndexError(f"rack {rack} out of range")
        start = rack * self.nodes_per_rack
        return np.arange(start, start + self.nodes_per_rack)

    def chassis_of_rack(self, rack: int) -> np.ndarray:
        """Chassis ids housed in ``rack`` (ascending)."""
        if not 0 <= rack < self.racks:
            raise IndexError(f"rack {rack} out of range")
        start = rack * self.chassis_per_rack
        return np.arange(start, start + self.chassis_per_rack)

    # -- power bonus model (Figure 2) ------------------------------------------------

    def chassis_bonus_watts(self) -> float:
        """Extra watts released by powering off one *complete* chassis.

        ``component_watts + nodes_per_chassis * node_down_watts``
        (the BMCs go dark together with the enclosure): 500 W on Curie.
        """
        return self.chassis_watts + self.nodes_per_chassis * self.node_down_watts

    def rack_bonus_watts(self) -> float:
        """Extra watts released by powering off one *complete* rack.

        ``rack_watts + chassis_per_rack * chassis_bonus``: 3400 W on
        Curie.
        """
        return self.rack_watts + self.chassis_per_rack * self.chassis_bonus_watts()

    def accumulated_node_watts(self, node_max_watts: float) -> float:
        """Watts saved by switching off one node alone (BMC stays on).

        ``MaxWatts - DownWatts``: 344 W on Curie (Figure 2, node row).
        """
        return node_max_watts - self.node_down_watts

    def accumulated_chassis_watts(self, node_max_watts: float) -> float:
        """Total watts saved by one complete chassis off (Figure 2).

        ``18 * 344 + 500 = 6692 W`` on Curie.
        """
        per_node = self.accumulated_node_watts(node_max_watts)
        return per_node * self.nodes_per_chassis + self.chassis_bonus_watts()

    def accumulated_rack_watts(self, node_max_watts: float) -> float:
        """Total watts saved by one complete rack off (Figure 2).

        ``5 * 6692 + 900 = 34360 W`` on Curie.  Note the rack row only
        adds its own 900 W of components: the chassis bonuses are
        already contained in the per-chassis total.
        """
        return (
            self.accumulated_chassis_watts(node_max_watts) * self.chassis_per_rack
            + self.rack_watts
        )

    def infrastructure_watts(self) -> float:
        """Power of all chassis+rack components when fully powered."""
        return self.n_chassis * self.chassis_watts + self.racks * self.rack_watts

    def bonus_figure_rows(self, node_max_watts: float) -> list[dict[str, float | str]]:
        """The rows of the paper's Figure 2 table, computed.

        Returns one mapping per level with the level name, component
        power, bonus and accumulated saved power.
        """
        return [
            {
                "level": "node",
                "component_watts": self.node_down_watts,
                "bonus_watts": 0.0,
                "accumulated_watts": self.accumulated_node_watts(node_max_watts),
            },
            {
                "level": "chassis",
                "component_watts": self.chassis_watts,
                "bonus_watts": self.chassis_bonus_watts(),
                "accumulated_watts": self.accumulated_chassis_watts(node_max_watts),
            },
            {
                "level": "rack",
                "component_watts": self.rack_watts,
                "bonus_watts": self.rack_bonus_watts(),
                "accumulated_watts": self.accumulated_rack_watts(node_max_watts),
            },
        ]

    def scaled(self, factor: float) -> "Topology":
        """Smaller/larger topology with the same per-level shape.

        Scales the number of racks (minimum 1), keeping chassis and
        node counts per enclosure — all normalised results are
        invariant under this scaling (tested).
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return Topology(
            nodes_per_chassis=self.nodes_per_chassis,
            chassis_per_rack=self.chassis_per_rack,
            racks=max(1, round(self.racks * factor)),
            chassis_watts=self.chassis_watts,
            rack_watts=self.rack_watts,
            node_down_watts=self.node_down_watts,
        )
