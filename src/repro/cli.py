"""Command-line interface: ``repro-powercap``.

Subcommands:

* ``replay``  — replay one interval under a policy and cap, print the
  summary and an ASCII figure;
* ``grid``    — run the Figure 8 policy grid and print the bars;
* ``tables``  — print the static paper tables (Figures 2, 4, 5);
* ``model``   — evaluate the Section III model for a given cap;
* ``exp``     — the experiment harness (:mod:`repro.exp`):

  * ``exp list``     — the built-in scenario library;
  * ``exp platforms``/``exp policies`` — the platform and policy
    registries;
  * ``exp run``      — run named scenarios and/or a parameter grid
    through a pluggable execution backend (``--backend
    serial|pool|batch``,
    ``--shard k/n`` for one deterministic slice of a split sweep) and
    result store (``--store memory|dir:PATH|shared:PATH``);
  * ``exp compare``  — metric-by-metric diff of two scenarios;
  * ``exp store prune`` — evict result-store entries over a
    count/age budget (``--max-entries/--max-age/--lru``);
  * ``exp checkpoints list/prune`` — inspect and evict the persistent
    warm-start checkpoints behind ``exp run --checkpoints``.
"""

from __future__ import annotations

import argparse
import sys

HOUR = 3600.0


def _add_machine_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--scale",
        type=float,
        default=0.125,
        help="machine scale factor (1.0 = the platform's full rack "
             "count, 5040 nodes on Curie; default 0.125)",
    )
    p.add_argument(
        "--platform",
        default="curie",
        metavar="NAME",
        help="platform registry entry to simulate (see `exp platforms`; "
             "default curie)",
    )


def _resolve_platform(name: str):
    """Registry lookup with a CLI-friendly error listing the entries."""
    from repro.platform import get_platform

    try:
        return get_platform(name)
    except KeyError as exc:
        raise SystemExit(f"error: {exc.args[0]}")


def _resolve_policy(name: str):
    """Policy-registry lookup with a CLI-friendly error listing the
    entries (same UX as an unknown ``--platform``)."""
    from repro.policy import get_policy

    try:
        return get_policy(name)
    except KeyError as exc:
        raise SystemExit(f"error: {exc.args[0]}")


def cmd_replay(args: argparse.Namespace) -> int:
    from repro.analysis.figures import figure_series, render_series_ascii
    from repro.workload.intervals import PAPER_INTERVALS, generate_interval

    platform = _resolve_platform(args.platform)
    policy_spec = _resolve_policy(args.policy)
    machine = platform.build_machine(scale=args.scale)
    spec = PAPER_INTERVALS[args.interval]
    jobs = generate_interval(
        machine,
        args.interval,
        seed=args.seed,
        classes=platform.interval_classes(args.interval),
        reference_cores=platform.workload_reference_cores,
    )
    series = figure_series(
        machine,
        jobs,
        args.policy,
        duration=spec.duration,
        cap_fraction=(
            None
            if not policy_spec.enforces_caps or args.cap >= 1.0
            else args.cap
        ),
        grid_dt=spec.duration / 200,
        platform=platform,
    )
    result = series["result"]
    print(render_series_ascii(series, width=args.width))
    print()
    for key, value in result.summary().items():
        print(f"{key:>20}: {value:,.4g}")
    return 0


def cmd_grid(args: argparse.Namespace) -> int:
    from repro.analysis.report import render_grid, run_policy_grid
    from repro.workload.intervals import generate_interval

    platform = _resolve_platform(args.platform)
    machine = platform.build_machine(scale=args.scale)
    names = args.workloads.split(",")
    workloads = {
        n: generate_interval(
            machine,
            n,
            classes=platform.interval_classes(n),
            reference_cores=platform.workload_reference_cores,
        )
        for n in names
    }
    cells = run_policy_grid(machine, workloads, platform=platform)
    print(render_grid(cells))
    return 0


def cmd_tables(args: argparse.Namespace) -> int:
    from repro.core.powermodel import rho

    platform = _resolve_platform(args.platform)
    table = platform.frequency_table()
    topo = platform.topology()
    print(f"[{platform.name}] Figure 2 — enclosure power bonus")
    for row in topo.bonus_figure_rows(table.max.watts):
        print(
            f"  {row['level']:<8} components={row['component_watts']:>5.0f} W  "
            f"bonus={row['bonus_watts']:>5.0f} W  "
            f"accumulated={row['accumulated_watts']:>6.0f} W"
        )
    print(f"\n[{platform.name}] Figure 4 — node power per state")
    print(f"  {'Switch-off':<14}{table.down_watts:>6.0f} W")
    print(f"  {'Idle':<14}{table.idle_watts:>6.0f} W")
    for step in table:
        print(f"  DVFS {step.ghz:<4} GHz{step.watts:>8.0f} W")
    if platform.benchmark_degmin:
        print(f"\n[{platform.name}] Figure 5 — degmin / rho per benchmark")
        for name, degmin in platform.benchmark_degmin:
            r = rho(degmin, table.max.watts, table.min.watts, table.down_watts)
            best = "Switch-off" if r <= 0 else "DVFS"
            print(f"  {name:<14} degmin={degmin:<5} rho={r:+.3f}  -> {best}")
    else:
        print(f"\n[{platform.name}] no per-benchmark degradation table")
    return 0


def cmd_model(args: argparse.Namespace) -> int:
    from repro.core.offline import OfflinePlanner
    from repro.rjms.reservations import PowercapReservation

    platform = _resolve_platform(args.platform)
    _resolve_policy(args.policy)
    machine = platform.build_machine(scale=args.scale)
    planner = OfflinePlanner(machine, platform.make_policy(args.policy, machine.freq_table))
    cap_watts = args.cap * machine.max_power()
    cap = PowercapReservation(0.0, HOUR, watts=cap_watts)
    plan = planner.plan(cap)
    mp = planner.model_plan(cap_watts)
    print(f"machine      : {machine.n_nodes} nodes, max {machine.max_power()/1e3:.0f} kW")
    print(f"cap          : {args.cap:.0%} = {cap_watts/1e3:.0f} kW")
    print(f"model case   : {mp.case.value} (rho={mp.rho:+.3f})")
    print(f"model Noff   : {mp.n_off:.1f}   model Ndvfs: {mp.n_dvfs:.1f}")
    if plan.any_shutdown:
        print(
            f"offline plan : {plan.n_off_selected} nodes off "
            f"({plan.n_full_racks} racks + {plan.n_full_chassis} chassis), "
            f"bonus {plan.bonus_watts/1e3:.2f} kW"
        )
        print(f"worst case   : {plan.worst_case_alive_watts/1e3:.0f} kW alive <= cap")
    else:
        print("offline plan : no switch-off (policy or cap does not require it)")
    return 0


def _parse_grid_spec(tokens: list[str]) -> dict[str, list]:
    """Parse ``key=v1,v2`` tokens into :func:`expand_grid` axes.

    Example: ``interval=bigjob,smalljob policy=SHUT,DVFS cap=0.8,0.4
    platform=curie,manythin``.
    """
    convert = {
        "cap": float,
        "seed": int,
        "interval": str,
        "policy": str,
        "platform": str,
    }
    axes: dict[str, list] = {}
    for token in tokens:
        key, _, values = token.partition("=")
        if not values:
            raise SystemExit(f"bad grid token {token!r}: expected key=v1,v2,...")
        if key not in convert:
            raise SystemExit(
                f"unknown grid axis {key!r}; allowed: {', '.join(convert)}"
            )
        if key in axes:
            raise SystemExit(
                f"duplicate grid axis {key!r}: merge the values into one token"
            )
        axes[key] = [convert[key](v) for v in values.split(",") if v]
        if not axes[key]:
            raise SystemExit(f"empty value list in grid token {token!r}")
    return axes


def _add_runner_args(p: argparse.ArgumentParser) -> None:
    """Execution-backend and result-store options of ``exp run/compare``."""
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes (1 = serial)")
    p.add_argument("--backend", default=None,
                   choices=["serial", "pool", "batch", "batch-pool"],
                   help="execution backend (default: pool when --workers > 1, "
                        "serial otherwise; batch replays same-platform "
                        "scenarios in lockstep; batch-pool dispatches whole "
                        "lockstep groups to --workers pool workers, ordered "
                        "by the calibrated cost model)")
    p.add_argument("--shard", default=None, metavar="K/N",
                   help="run only the deterministic shard K of N of the "
                        "scenario set (1-based, e.g. 2/3); independent jobs "
                        "running the other shards against one shared store "
                        "reassemble the full sweep")
    p.add_argument("--store", default=None, metavar="SPEC",
                   help="result store: memory, dir:PATH (local cache "
                        "directory) or shared:PATH (safe for concurrent "
                        "writers, e.g. on a network filesystem)")
    p.add_argument("--cache-dir", default=None,
                   help="per-scenario result cache directory "
                        "(shorthand for --store dir:PATH)")
    p.add_argument("--checkpoints", default=None, metavar="SPEC",
                   help="persistent warm-start checkpoint store: a "
                        "directory path, dir:PATH, or shared:PATH; cap-"
                        "sweep prefixes computed once are restored by "
                        "every later run pointing at the same store, "
                        "across backends and machines")
    p.add_argument("--max-retries", type=int, default=0, metavar="N",
                   help="retry a failed scenario up to N times with "
                        "exponential backoff before giving up (default 0: "
                        "fail on the first error)")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="per-scenario wall-clock budget; a scenario past it "
                        "is presumed hung (the pool backend kills and "
                        "respawns its workers)")
    p.add_argument("--on-error", default="raise",
                   choices=["raise", "skip", "quarantine"],
                   help="disposition of scenarios that exhaust their "
                        "attempts: raise (abort the sweep, default), skip "
                        "(drop them; known failures are not re-attempted), "
                        "or quarantine (drop them, keep a persisted failure "
                        "record, retry on later sweeps)")
    p.add_argument("--inject-faults", default=None, metavar="SPEC",
                   help="arm a deterministic fault plan over the scenario "
                        "set: seed:N[:RATE[:TIMES]] (TIMES '*' = every "
                        "attempt) or @plan.json; for chaos-testing the "
                        "sweep machinery")


def _build_runner(args: argparse.Namespace):
    """A :class:`GridRunner` from the ``--backend/--shard/--store``
    (and legacy ``--workers/--cache-dir``) arguments."""
    from repro.exp import GridRunner, RetryPolicy, make_backend, make_store

    kwargs: dict = {}
    try:
        if args.backend is not None or getattr(args, "shard", None) is not None:
            kwargs["backend"] = make_backend(
                args.backend,
                workers=args.workers,
                shard=getattr(args, "shard", None),
            )
        else:
            kwargs["workers"] = args.workers
        if args.store is not None:
            if args.cache_dir is not None:
                raise ValueError("pass --store or --cache-dir, not both")
            kwargs["store"] = make_store(args.store)
        else:
            kwargs["cache_dir"] = args.cache_dir
        max_retries = getattr(args, "max_retries", 0)
        if max_retries < 0:
            raise ValueError("--max-retries cannot be negative")
        if max_retries:
            kwargs["retry"] = RetryPolicy(max_attempts=max_retries + 1)
        kwargs["timeout"] = getattr(args, "timeout", None)
        kwargs["on_error"] = getattr(args, "on_error", "raise")
        if getattr(args, "checkpoints", None) is not None:
            from repro.exp import make_checkpoint_store

            kwargs["checkpoints"] = make_checkpoint_store(args.checkpoints)
        if getattr(args, "profile", None) is not None:
            kwargs["profile_dir"] = args.profile
        return GridRunner(**kwargs)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")


def _gather_scenarios(args: argparse.Namespace) -> list:
    from repro.exp import expand_grid, get_scenario, scenario_names

    platform = getattr(args, "platform", None)
    if platform is not None:
        _resolve_platform(platform)
    names = list(args.scenario or ())
    if getattr(args, "library", False):
        names.extend(n for n in scenario_names() if n not in names)
    scenarios = []
    try:
        for name in names:
            sc = get_scenario(name)
            if platform is not None:
                sc = sc.with_(platform=platform)
            if args.scale is not None:
                sc = sc.with_(scale=args.scale)
            if args.duration is not None:
                # Revalidated by Scenario: a window beyond the new
                # duration is rejected rather than silently kept.
                sc = sc.with_(duration=args.duration * HOUR)
            scenarios.append(sc)
        if args.grid:
            axes = _parse_grid_spec(args.grid)
            if platform is not None and "platform" not in axes:
                axes["platform"] = [platform]
            kwargs = {}
            if args.scale is not None:
                kwargs["scale"] = args.scale
            if args.duration is not None:
                kwargs["duration"] = args.duration * HOUR
            scenarios.extend(expand_grid(axes, **kwargs))
    except (ValueError, KeyError) as exc:
        # Scenario validation errors are user input errors at the CLI.
        raise SystemExit(f"error: {exc.args[0] if exc.args else exc}")
    if not scenarios:
        raise SystemExit("nothing to run: pass --scenario, --library and/or --grid")
    return scenarios


def cmd_exp_list(args: argparse.Namespace) -> int:
    from repro.exp import SCENARIO_LIBRARY

    wanted = getattr(args, "platform", None)
    if wanted is not None:
        _resolve_platform(wanted)
    if args.names:
        for sc in SCENARIO_LIBRARY:
            if wanted is None or sc.platform == wanted:
                print(sc.name)
        return 0
    header = (
        f"{'name':<28} {'hash':<16} {'platform':<10} {'interval':>9} "
        f"{'policy':>6} {'dur(h)':>6} {'caps':<24}"
    )
    print(header)
    print("-" * len(header))
    for sc in SCENARIO_LIBRARY:
        if wanted is not None and sc.platform != wanted:
            continue
        caps = " ".join(
            f"{c.fraction:.0%}@[{c.start / HOUR:g},{c.end / HOUR:g}h)" for c in sc.caps
        ) or "-"
        print(
            f"{sc.name:<28} {sc.scenario_hash():<16} {sc.platform:<10.10} "
            f"{sc.interval:>9} {sc.policy_name:>6} "
            f"{sc.effective_duration / HOUR:>6g} {caps:<24}"
        )
    return 0


def cmd_exp_platforms(args: argparse.Namespace) -> int:
    from repro.platform import platform_specs

    header = (
        f"{'name':<10} {'hash':<16} {'nodes':>6} {'cores/n':>7} "
        f"{'DVFS (GHz)':<14} {'steps':>5} {'max kW':>7} description"
    )
    print(header)
    print("-" * len(header))
    for pf in platform_specs():
        table = pf.frequency_table()
        machine = pf.build_machine()
        ghz_range = f"{table.min.ghz:g}-{table.max.ghz:g}"
        print(
            f"{pf.name:<10.10} {pf.content_hash():<16} {machine.n_nodes:>6d} "
            f"{pf.cores_per_node:>7d} {ghz_range:<14} {len(table):>5d} "
            f"{machine.max_power() / 1e3:>7.0f} {pf.description}"
        )
    return 0


def cmd_exp_policies(args: argparse.Namespace) -> int:
    from repro.policy import policy_specs

    if args.names:
        for spec in policy_specs():
            print(spec.name)
        return 0
    header = (
        f"{'name':<10} {'hash':<16} {'shutdown':<9} {'frequency':<9} "
        f"{'range':<5} {'caps':<4} {'gain':>5} description"
    )
    print(header)
    print("-" * len(header))
    for spec in policy_specs():
        gain = f"{spec.track_gain:g}" if spec.frequency == "track" else "-"
        print(
            f"{spec.name:<10.10} {spec.content_hash():<16} {spec.shutdown:<9} "
            f"{spec.frequency:<9} {spec.freq_range:<5} "
            f"{'yes' if spec.enforces_caps else 'no':<4} {gain:>5} "
            f"{spec.description}"
        )
    return 0


def _prune_budget(args: argparse.Namespace) -> tuple[int | None, float | None]:
    """Validate and convert the shared ``--max-entries/--max-age`` pair."""
    if args.max_entries is None and args.max_age is None:
        raise SystemExit("error: pass --max-entries and/or --max-age")
    max_age = args.max_age * HOUR if args.max_age is not None else None
    return args.max_entries, max_age


def _describe_budget(args: argparse.Namespace) -> str:
    parts = []
    if args.max_entries is not None:
        parts.append(f"cap {args.max_entries}")
    if args.max_age is not None:
        parts.append(f"max age {args.max_age:g}h")
    if getattr(args, "lru", False):
        parts.append("lru")
    return ", ".join(parts)


def cmd_exp_store_prune(args: argparse.Namespace) -> int:
    from repro.exp import make_store

    if (args.store is None) == (args.cache_dir is None):
        raise SystemExit("error: pass exactly one of --store or --cache-dir")
    spec = args.store if args.store is not None else f"dir:{args.cache_dir}"
    max_entries, max_age = _prune_budget(args)
    try:
        store = make_store(spec)
        removed = store.prune(max_entries, max_age=max_age, lru=args.lru)
    except (NotImplementedError, ValueError) as exc:
        raise SystemExit(f"error: {exc}")
    kept = len(store.keys())
    print(
        f"pruned {len(removed)} entr{'y' if len(removed) == 1 else 'ies'} "
        f"from {spec} ({kept} kept, {_describe_budget(args)})"
    )
    if args.verbose:
        for key in removed:
            print(f"  evicted {key}")
    return 0


def cmd_exp_checkpoints_list(args: argparse.Namespace) -> int:
    from repro.exp import make_checkpoint_store

    try:
        store = make_checkpoint_store(args.checkpoints)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    if not hasattr(store, "_peek_horizon"):
        raise SystemExit("error: a memory checkpoint store has nothing to list")
    keys = store.keys()
    if not keys:
        print(f"no checkpoints in {args.checkpoints}")
        return 0
    import time as _time

    now = _time.time()
    print(f"{'key':<42} {'horizon':>10} {'size':>9} {'age':>8}")
    print("-" * 73)
    total = 0
    for key in keys:
        horizon = store._peek_horizon(key)
        hz = f"{horizon:.0f}s" if horizon is not None else "?"
        size = 0
        age = "?"
        for path in (store._json_path(key), store._npz_path(key)):
            try:
                st = path.stat()
            except OSError:
                continue
            size += st.st_size
            age = f"{(now - st.st_mtime) / HOUR:.1f}h"
        total += size
        print(f"{key:<42} {hz:>10} {size:>9d} {age:>8}")
    print(
        f"{len(keys)} checkpoint(s), {total / 1e6:.2f} MB in {args.checkpoints}"
    )
    return 0


def cmd_exp_checkpoints_prune(args: argparse.Namespace) -> int:
    from repro.exp import make_checkpoint_store

    max_entries, max_age = _prune_budget(args)
    try:
        store = make_checkpoint_store(args.checkpoints)
        removed = store.prune(max_entries, max_age=max_age, lru=args.lru)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    kept = len(store.keys())
    print(
        f"pruned {len(removed)} checkpoint(s) from {args.checkpoints} "
        f"({kept} kept, {_describe_budget(args)})"
    )
    if args.verbose:
        for key in removed:
            print(f"  evicted {key}")
    return 0


def cmd_exp_failures(args: argparse.Namespace) -> int:
    from repro.exp import make_store

    if (args.store is None) == (args.cache_dir is None):
        raise SystemExit("error: pass exactly one of --store or --cache-dir")
    spec = args.store if args.store is not None else f"dir:{args.cache_dir}"
    try:
        store = make_store(spec)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    if not store.persists_failures:
        raise SystemExit(f"error: store {spec} does not persist failure records")
    records = store.failures()
    if not records:
        print(f"no failure records in {spec}")
        return 0
    if args.clear:
        for record in records:
            store.pop_failure(record.key)
        print(f"cleared {len(records)} failure record(s) from {spec}")
        return 0
    header = (
        f"{'scenario':<28} {'hash':<16} {'kind':<8} {'state':<12} "
        f"{'att':>3} {'backend':<14} error"
    )
    print(header)
    print("-" * len(header))
    for record in sorted(records, key=lambda r: r.scenario_name):
        state = (
            "quarantined"
            if record.quarantined
            else "skipped" if record.skipped else "failed"
        )
        print(
            f"{record.scenario_name:<28.28} {record.scenario_hash:<16} "
            f"{record.kind:<8} {state:<12} {record.attempts:>3d} "
            f"{record.backend:<14.14} {record.error_type}: {record.message}"
        )
    print(f"{len(records)} failure record(s); a successful re-run heals them")
    return 1


def _print_profile_summary(profile_dir: str, top: int = 15) -> None:
    """Aggregate the sweep's ``.pstats`` dumps into one hot-path table."""
    import io
    import pstats
    from pathlib import Path

    paths = sorted(Path(profile_dir).glob("*.pstats"))
    if not paths:
        print(f"no profile stats written under {profile_dir}")
        return
    stream = io.StringIO()
    stats = pstats.Stats(*map(str, paths), stream=stream)
    stats.sort_stats("cumulative").print_stats(top)
    print()
    print(
        f"hot paths ({len(paths)} profile(s) under {profile_dir}, "
        f"top {top} by cumulative time):"
    )
    print(stream.getvalue().rstrip())


def _print_sweep_plan(args: argparse.Namespace, scenarios: list) -> int:
    """``exp run --plan``: the batch-pool schedule, nothing executed.

    Mirrors the sweep's own pre-flight exactly — dedupe by content
    hash, drop foreign shards, group by cap-free content — then prints
    the cost model's LPT placement for ``--workers`` workers.
    """
    from repro.exp import make_store
    from repro.exp.backends import BatchBackend
    from repro.exp.costmodel import CostModel, assign_workers, plan_table
    from repro.exp.spec import parse_shard, shard_index

    try:
        shard = getattr(args, "shard", None)
        index, total = (None, None) if shard is None else parse_shard(shard)
        store = None
        if args.store is not None:
            if args.cache_dir is not None:
                raise ValueError("pass --store or --cache-dir, not both")
            store = make_store(args.store)
        elif args.cache_dir is not None:
            store = make_store(f"dir:{args.cache_dir}")
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")

    seen: set[str] = set()
    deduped = []
    for sc in scenarios:
        h = sc.scenario_hash()
        if h in seen:
            continue
        seen.add(h)
        if total is not None and shard_index(h, total) != index:
            continue
        deduped.append(sc)

    model = CostModel.from_store(store) if store is not None else CostModel()
    groups: dict = {}
    for i, sc in enumerate(deduped):
        groups.setdefault(BatchBackend.group_key(sc), []).append(i)
    multi = [idxs for idxs in groups.values() if len(idxs) > 1]
    singles = sum(1 for idxs in groups.values() if len(idxs) == 1)
    workers = max(1, args.workers)
    placed = assign_workers(
        [model.estimate_group(deduped, idxs) for idxs in multi], workers
    )
    print(plan_table(placed, workers))
    if singles:
        print(f"(+ {singles} singleton cell(s) on the solo task path)")
    from repro.exp import shm

    for line in shm.envelope_report(deduped, multi):
        print(line)
    return 0


def cmd_exp_run(args: argparse.Namespace) -> int:
    import contextlib

    from repro.exp import (
        injected,
        parse_fault_plan,
        render_results_grid,
        results_table,
    )

    scenarios = _gather_scenarios(args)
    if getattr(args, "plan", False):
        return _print_sweep_plan(args, scenarios)
    chaos = contextlib.nullcontext()
    if args.inject_faults is not None:
        try:
            plan = parse_fault_plan(
                args.inject_faults, (sc.scenario_hash() for sc in scenarios)
            )
        except (ValueError, OSError) as exc:
            raise SystemExit(f"error: {exc}")
        kinds = ", ".join(
            f"{k}x{n}" for k, n in sorted(plan.kinds_planned().items())
        ) or "none"
        print(f"fault plan armed: {len(plan.specs)} fault(s) ({kinds})")
        chaos = injected(plan)
    with _build_runner(args) as runner, chaos:
        total = sum(
            1 for sc in scenarios if runner.backend.owns(sc.scenario_hash())
        )
        where = f"backend {runner.backend.name}"
        if args.workers > 1:
            where += f", {args.workers} workers"
        if args.store:
            where += f", store {args.store}"
        elif args.cache_dir:
            where += f", cache {args.cache_dir}"
        if total != len(scenarios):
            print(
                f"running {total} of {len(scenarios)} scenario(s) "
                f"({where}; the rest belong to other shards)"
            )
        else:
            print(f"running {total} scenario(s) ({where})")
        done = 0

        def progress(result) -> None:
            nonlocal done
            done += 1
            src = "cache" if result.cached else f"{result.wall_seconds:.1f}s"
            print(f"  [{done}/{total}] {result.scenario.name} ({src})")

        report = runner.sweep(scenarios, progress=progress)
    print()
    print(results_table(report.results))
    if args.bars:
        print()
        print(render_results_grid(report.results))
    print()
    print(f"sweep: {report.summary()}")
    for record in report.failures:
        state = "quarantined" if record.quarantined else "FAILED"
        print(
            f"  {state}: {record.scenario_name} ({record.scenario_hash}) "
            f"[{record.kind}/{record.error_type}] after "
            f"{record.attempts} attempt(s): {record.message}"
        )
    for record in report.skipped:
        print(
            f"  skipped (known failure): {record.scenario_name} "
            f"({record.scenario_hash}) [{record.kind}]"
        )
    if getattr(args, "profile", None) is not None:
        _print_profile_summary(args.profile)
    # Quarantined/skipped scenarios are an accounted-for, deliberate
    # outcome; anything else lost makes the run fail.
    return 1 if report.unquarantined_losses else 0


def cmd_exp_compare(args: argparse.Namespace) -> int:
    from repro.exp import compare_results, get_scenario

    try:
        a, b = get_scenario(args.a), get_scenario(args.b)
        if args.platform is not None:
            a, b = a.with_(platform=args.platform), b.with_(platform=args.platform)
        if args.scale is not None:
            a, b = a.with_(scale=args.scale), b.with_(scale=args.scale)
    except (ValueError, KeyError) as exc:
        raise SystemExit(f"error: {exc.args[0] if exc.args else exc}")
    with _build_runner(args) as runner:
        results = runner.run([a, b])
    if len(results) != 2:
        # A sharded backend only executes its own slice; a comparison
        # needs both sides, so run the shards into a shared store
        # first and compare against that store without --shard.
        raise SystemExit(
            "error: the backend produced only "
            f"{len(results)} of the 2 scenarios (sharded run?); "
            "compare without --shard, pointing --store at the shards' "
            "shared store"
        )
    print(compare_results(*results))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-powercap",
        description="Power-capped RJMS scheduling (IPDPSW'15 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("replay", help="replay one interval under a policy")
    _add_machine_args(p)
    p.add_argument("--interval", default="medianjob",
                   choices=["medianjob", "smalljob", "bigjob", "24h"])
    p.add_argument("--policy", default="MIX", metavar="NAME",
                   help="policy registry entry (see `exp policies`; "
                        "default MIX)")
    p.add_argument("--cap", type=float, default=0.6,
                   help="cap fraction of max power (1.0 disables)")
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--width", type=int, default=96)
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser("grid", help="run the Figure 8 policy grid")
    _add_machine_args(p)
    p.add_argument("--workloads", default="bigjob,medianjob,smalljob")
    p.set_defaults(func=cmd_grid)

    p = sub.add_parser("tables", help="print the static paper tables")
    p.add_argument("--platform", default="curie", metavar="NAME",
                   help="platform whose tables to print (default curie)")
    p.set_defaults(func=cmd_tables)

    p = sub.add_parser("model", help="evaluate the Section III model")
    _add_machine_args(p)
    p.add_argument("--policy", default="SHUT", metavar="NAME",
                   help="policy registry entry (see `exp policies`; "
                        "default SHUT)")
    p.add_argument("--cap", type=float, required=True)
    p.set_defaults(func=cmd_model)

    p = sub.add_parser("exp", help="experiment harness (scenario sweeps)")
    exp_sub = p.add_subparsers(dest="exp_command", required=True)

    p = exp_sub.add_parser("list", help="list the built-in scenario library")
    p.add_argument("--platform", default=None, metavar="NAME",
                   help="only list scenarios of this platform")
    p.add_argument("--names", action="store_true",
                   help="print bare scenario names only (one per line, "
                        "for scripting)")
    p.set_defaults(func=cmd_exp_list)

    p = exp_sub.add_parser(
        "platforms", help="list the platform registry entries"
    )
    p.set_defaults(func=cmd_exp_platforms)

    p = exp_sub.add_parser(
        "policies", help="list the policy registry entries"
    )
    p.add_argument("--names", action="store_true",
                   help="print bare policy names only (one per line, "
                        "for scripting)")
    p.set_defaults(func=cmd_exp_policies)

    p = exp_sub.add_parser(
        "store", help="result-store maintenance"
    )
    store_sub = p.add_subparsers(dest="store_command", required=True)
    def _add_prune_budget_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--max-entries", type=int, default=None,
                       help="keep at most this many entries (oldest "
                            "evicted first)")
        p.add_argument("--max-age", type=float, default=None, metavar="HOURS",
                       help="evict entries older than this many hours")
        p.add_argument("--lru", action="store_true",
                       help="order and age entries by last access instead "
                            "of last write (hits bump the access time)")
        p.add_argument("--verbose", action="store_true",
                       help="print each evicted key")

    p = store_sub.add_parser(
        "prune",
        help="evict store entries beyond a size and/or age budget",
    )
    p.add_argument("--store", default=None, metavar="SPEC",
                   help="result store to prune: dir:PATH or shared:PATH")
    p.add_argument("--cache-dir", default=None,
                   help="shorthand for --store dir:PATH")
    _add_prune_budget_args(p)
    p.set_defaults(func=cmd_exp_store_prune)

    p = exp_sub.add_parser(
        "checkpoints", help="warm-start checkpoint-store maintenance"
    )
    ckpt_sub = p.add_subparsers(dest="checkpoints_command", required=True)
    p = ckpt_sub.add_parser(
        "list", help="list stored warm-start checkpoints"
    )
    p.add_argument("--checkpoints", required=True, metavar="SPEC",
                   help="checkpoint store: a directory path, dir:PATH, or "
                        "shared:PATH")
    p.set_defaults(func=cmd_exp_checkpoints_list)
    p = ckpt_sub.add_parser(
        "prune",
        help="evict checkpoints beyond a size and/or age budget",
    )
    p.add_argument("--checkpoints", required=True, metavar="SPEC",
                   help="checkpoint store: a directory path, dir:PATH, or "
                        "shared:PATH")
    _add_prune_budget_args(p)
    p.set_defaults(func=cmd_exp_checkpoints_prune)

    p = exp_sub.add_parser(
        "failures",
        help="list (or clear) persisted per-scenario failure records",
    )
    p.add_argument("--store", default=None, metavar="SPEC",
                   help="result store to inspect: dir:PATH or shared:PATH")
    p.add_argument("--cache-dir", default=None,
                   help="shorthand for --store dir:PATH")
    p.add_argument("--clear", action="store_true",
                   help="delete every failure record instead of listing")
    p.set_defaults(func=cmd_exp_failures)

    p = exp_sub.add_parser("run", help="run scenarios / a parameter grid")
    p.add_argument(
        "--scenario",
        action="append",
        metavar="NAME",
        help="library scenario to run (repeatable)",
    )
    p.add_argument(
        "--library",
        action="store_true",
        help="run every library scenario (combines with --scenario/--grid; "
             "overrides like --scale/--platform apply to them too)",
    )
    p.add_argument(
        "--grid",
        nargs="+",
        metavar="AXIS=V1,V2",
        help="parameter grid, e.g. interval=bigjob,smalljob policy=SHUT,MIX "
             "cap=0.8,0.4 platform=curie,manythin",
    )
    p.add_argument("--scale", type=float, default=None,
                   help="override the machine scale of every scenario")
    p.add_argument("--platform", default=None, metavar="NAME",
                   help="override the platform of every named scenario and "
                        "default the grid's platform axis (see `exp platforms`)")
    p.add_argument("--duration", type=float, default=None,
                   help="replay length in hours (overrides the scenario/interval "
                        "default; cap windows keep their absolute placement, and "
                        "shrinking below a window is rejected)")
    _add_runner_args(p)
    p.add_argument("--bars", action="store_true",
                   help="also print the Figure 8 bar rendering")
    p.add_argument("--profile", default=None, metavar="DIR",
                   help="dump per-scenario cProfile stats into DIR "
                        "(<scenario_hash>.pstats) and print an aggregated "
                        "top-N hot-path summary after the sweep")
    p.add_argument("--plan", action="store_true",
                   help="print the scheduled lockstep-group plan (grouping, "
                        "cost estimates, LPT worker placement) without "
                        "executing anything; estimates come from the result "
                        "store's calibration metadata when --store/--cache-dir "
                        "points at one")
    p.set_defaults(func=cmd_exp_run)

    p = exp_sub.add_parser("compare", help="compare two library scenarios")
    p.add_argument("a", help="first scenario name")
    p.add_argument("b", help="second scenario name")
    p.add_argument("--scale", type=float, default=None)
    p.add_argument("--platform", default=None, metavar="NAME",
                   help="override the platform of both scenarios")
    _add_runner_args(p)
    p.set_defaults(func=cmd_exp_compare)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
