"""Command-line interface: ``repro-powercap``.

Subcommands:

* ``replay``  — replay one interval under a policy and cap, print the
  summary and an ASCII figure;
* ``grid``    — run the Figure 8 policy grid and print the bars;
* ``tables``  — print the static paper tables (Figures 2, 4, 5);
* ``model``   — evaluate the Section III model for a given cap.
"""

from __future__ import annotations

import argparse
import sys

HOUR = 3600.0


def _add_machine_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--scale",
        type=float,
        default=0.125,
        help="Curie scale factor (1.0 = 5040 nodes; default 0.125)",
    )


def cmd_replay(args: argparse.Namespace) -> int:
    from repro.analysis.figures import figure_series, render_series_ascii
    from repro.cluster.curie import curie_machine
    from repro.workload.intervals import PAPER_INTERVALS, generate_interval

    machine = curie_machine(scale=args.scale)
    spec = PAPER_INTERVALS[args.interval]
    jobs = generate_interval(machine, args.interval, seed=args.seed)
    series = figure_series(
        machine,
        jobs,
        args.policy,
        duration=spec.duration,
        cap_fraction=None if args.policy == "NONE" or args.cap >= 1.0 else args.cap,
        grid_dt=spec.duration / 200,
    )
    result = series["result"]
    print(render_series_ascii(series, width=args.width))
    print()
    for key, value in result.summary().items():
        print(f"{key:>20}: {value:,.4g}")
    return 0


def cmd_grid(args: argparse.Namespace) -> int:
    from repro.analysis.report import render_grid, run_policy_grid
    from repro.cluster.curie import curie_machine
    from repro.workload.intervals import generate_interval

    machine = curie_machine(scale=args.scale)
    names = args.workloads.split(",")
    workloads = {n: generate_interval(machine, n) for n in names}
    cells = run_policy_grid(machine, workloads)
    print(render_grid(cells))
    return 0


def cmd_tables(args: argparse.Namespace) -> int:
    from repro.cluster.curie import (
        CURIE_BENCHMARK_DEGMIN,
        CURIE_FREQUENCY_TABLE,
        CURIE_TOPOLOGY,
    )
    from repro.core.powermodel import rho

    print("Figure 2 — enclosure power bonus")
    for row in CURIE_TOPOLOGY.bonus_figure_rows(CURIE_FREQUENCY_TABLE.max.watts):
        print(
            f"  {row['level']:<8} components={row['component_watts']:>5.0f} W  "
            f"bonus={row['bonus_watts']:>5.0f} W  "
            f"accumulated={row['accumulated_watts']:>6.0f} W"
        )
    print("\nFigure 4 — node power per state")
    print(f"  {'Switch-off':<14}{CURIE_FREQUENCY_TABLE.down_watts:>6.0f} W")
    print(f"  {'Idle':<14}{CURIE_FREQUENCY_TABLE.idle_watts:>6.0f} W")
    for step in CURIE_FREQUENCY_TABLE:
        print(f"  DVFS {step.ghz:<4} GHz{step.watts:>8.0f} W")
    print("\nFigure 5 — degmin / rho per benchmark")
    ft = CURIE_FREQUENCY_TABLE
    for name, degmin in CURIE_BENCHMARK_DEGMIN.items():
        r = rho(degmin, ft.max.watts, ft.min.watts, ft.down_watts)
        best = "Switch-off" if r <= 0 else "DVFS"
        print(f"  {name:<14} degmin={degmin:<5} rho={r:+.3f}  -> {best}")
    return 0


def cmd_model(args: argparse.Namespace) -> int:
    from repro.cluster.curie import curie_machine
    from repro.core.offline import OfflinePlanner
    from repro.core.policies import make_policy
    from repro.rjms.reservations import PowercapReservation

    machine = curie_machine(scale=args.scale)
    planner = OfflinePlanner(machine, make_policy(args.policy, machine.freq_table))
    cap_watts = args.cap * machine.max_power()
    cap = PowercapReservation(0.0, HOUR, watts=cap_watts)
    plan = planner.plan(cap)
    mp = planner.model_plan(cap_watts)
    print(f"machine      : {machine.n_nodes} nodes, max {machine.max_power()/1e3:.0f} kW")
    print(f"cap          : {args.cap:.0%} = {cap_watts/1e3:.0f} kW")
    print(f"model case   : {mp.case.value} (rho={mp.rho:+.3f})")
    print(f"model Noff   : {mp.n_off:.1f}   model Ndvfs: {mp.n_dvfs:.1f}")
    if plan.any_shutdown:
        print(
            f"offline plan : {plan.n_off_selected} nodes off "
            f"({plan.n_full_racks} racks + {plan.n_full_chassis} chassis), "
            f"bonus {plan.bonus_watts/1e3:.2f} kW"
        )
        print(f"worst case   : {plan.worst_case_alive_watts/1e3:.0f} kW alive <= cap")
    else:
        print("offline plan : no switch-off (policy or cap does not require it)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-powercap",
        description="Power-capped RJMS scheduling (IPDPSW'15 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("replay", help="replay one interval under a policy")
    _add_machine_args(p)
    p.add_argument("--interval", default="medianjob",
                   choices=["medianjob", "smalljob", "bigjob", "24h"])
    p.add_argument("--policy", default="MIX",
                   choices=["NONE", "IDLE", "SHUT", "DVFS", "MIX"])
    p.add_argument("--cap", type=float, default=0.6,
                   help="cap fraction of max power (1.0 disables)")
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--width", type=int, default=96)
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser("grid", help="run the Figure 8 policy grid")
    _add_machine_args(p)
    p.add_argument("--workloads", default="bigjob,medianjob,smalljob")
    p.set_defaults(func=cmd_grid)

    p = sub.add_parser("tables", help="print the static paper tables")
    p.set_defaults(func=cmd_tables)

    p = sub.add_parser("model", help="evaluate the Section III model")
    _add_machine_args(p)
    p.add_argument("--policy", default="SHUT", choices=["SHUT", "MIX", "DVFS", "IDLE"])
    p.add_argument("--cap", type=float, required=True)
    p.set_defaults(func=cmd_model)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
