"""Time-series figures (Figures 6 and 7): utilisation and power.

The paper plots, for one replay, the stacked cores-by-frequency over
time (top) and the power-by-category over time (bottom), with the
powercap reservation hatched and the switched-off cores
cross-hatched.  :func:`figure_series` produces the same series on a
regular grid; :func:`render_series_ascii` draws a terminal version.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.cluster.machine import Machine
from repro.rjms.config import SchedulerConfig
from repro.sim.replay import ReplayResult, powercap_reservation, run_replay
from repro.workload.spec import JobSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.platform.spec import PlatformSpec

HOUR = 3600.0


def middle_window(duration: float, hours: float = 1.0) -> tuple[float, float]:
    """A ``hours``-long window centred in the interval."""
    if duration <= hours * HOUR:
        raise ValueError("interval shorter than the window")
    start = (duration - hours * HOUR) / 2.0
    return start, start + hours * HOUR


def figure_series(
    machine: Machine,
    jobs: Sequence[JobSpec],
    policy: str,
    *,
    duration: float,
    cap_fraction: float | None,
    window: tuple[float, float] | None = None,
    grid_dt: float = 300.0,
    config: SchedulerConfig | None = None,
    platform: "PlatformSpec | None" = None,
) -> dict[str, object]:
    """Replay and export the Figure 6/7 series.

    Returns a dict with the ``grid`` (time series arrays), the
    ``result`` (full :class:`ReplayResult`), and the window and cap
    levels needed to draw the hatched areas.  ``platform`` resolves a
    string policy against that platform's degradation model.
    """
    caps = []
    if cap_fraction is not None:
        if window is None:
            window = middle_window(duration)
        caps = [powercap_reservation(machine, cap_fraction, window[0], window[1])]
    result = run_replay(
        machine,
        jobs,
        policy,
        duration=duration,
        powercaps=caps,
        config=config,
        platform=platform,
    )
    grid = result.recorder.to_grid(0.0, duration, grid_dt)
    return {
        "grid": grid,
        "result": result,
        "window": window,
        "cap_watts": caps[0].watts if caps else math.inf,
        "max_power": machine.max_power(),
        "total_cores": machine.total_cores,
        "frequencies": machine.freq_table.frequencies,
    }


_SHADES = " .:-=+*#%@"


def render_series_ascii(
    series: Mapping[str, object],
    *,
    width: int = 72,
    height: int = 12,
) -> str:
    """Terminal rendering of one replay's utilisation and power rows.

    Top block: core utilisation (darker = higher frequency mix);
    ``x`` row marks switched-off cores; bottom block: power relative
    to the machine maximum with the cap level drawn as ``-``.
    """
    grid: Mapping[str, np.ndarray] = series["grid"]  # type: ignore[assignment]
    freqs: Sequence[float] = series["frequencies"]  # type: ignore[assignment]
    total_cores: float = series["total_cores"]  # type: ignore[assignment]
    time = grid["time"]
    n = len(time)
    cols = np.linspace(0, n - 1, num=min(width, n)).astype(int)

    busy = sum(grid[f"cores@{g:g}"] for g in freqs)
    # Frequency-weighted shade: fraction of busy cores at the top step.
    top = grid[f"cores@{freqs[-1]:g}"]
    util = busy / total_cores
    off = grid["off_cores"] / total_cores
    power = grid["power"] / series["max_power"]  # type: ignore[index]
    cap_frac = (
        series["cap_watts"] / series["max_power"]  # type: ignore[operator]
        if math.isfinite(series["cap_watts"])  # type: ignore[arg-type]
        else None
    )

    lines = ["cores (darker = more 2.7 GHz; x = switched off)"]
    for row in range(height, 0, -1):
        level = row / height
        chars = []
        for c in cols:
            if util[c] >= level:
                mix = top[c] / busy[c] if busy[c] else 0.0
                chars.append(_SHADES[min(int(2 + mix * 7), 9)])
            elif util[c] + off[c] >= level:
                chars.append("x")
            else:
                chars.append(" ")
        lines.append("".join(chars))
    lines.append("power (| = cap window, - = cap level)")
    window = series["window"]
    for row in range(height, 0, -1):
        level = row / height
        chars = []
        for c in cols:
            t = time[c]
            in_window = window is not None and window[0] <= t < window[1]
            if power[c] >= level:
                chars.append("#")
            elif cap_frac is not None and in_window and abs(level - cap_frac) < 0.5 / height:
                chars.append("-")
            elif in_window and level > cap_frac if cap_frac else False:
                chars.append("|")
            else:
                chars.append(" ")
        lines.append("".join(chars))
    return "\n".join(lines)
