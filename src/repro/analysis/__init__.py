"""Result post-treatment: the paper's tables, figures and claims."""

from repro.analysis.report import (
    GridCell,
    run_cell,
    run_policy_grid,
    render_grid,
    PAPER_GRID_POLICIES,
)
from repro.analysis.figures import (
    figure_series,
    middle_window,
    render_series_ascii,
)

__all__ = [
    "GridCell",
    "run_cell",
    "run_policy_grid",
    "render_grid",
    "PAPER_GRID_POLICIES",
    "figure_series",
    "middle_window",
    "render_series_ascii",
]
