"""The Figure 8 evaluation grid.

Replays {bigjob, medianjob, smalljob} x {100 %/None, 80 %, 60 %,
40 %} x {SHUT, DVFS, MIX} — a one-hour powercap reservation in the
middle of each five-hour interval — and reports normalised energy,
launched jobs and work per cell, like the paper's bar grid.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from repro.cluster.machine import Machine
from repro.rjms.config import SchedulerConfig
from repro.sim.replay import ReplayResult, powercap_reservation, run_replay
from repro.workload.spec import JobSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.platform.spec import PlatformSpec

HOUR = 3600.0

#: cap fraction -> policies evaluated at that cap (the paper's rows;
#: MIX is not run at 80 % in Figure 8).
PAPER_GRID_POLICIES: dict[float, tuple[str, ...]] = {
    1.0: ("NONE",),
    0.8: ("DVFS", "SHUT"),
    0.6: ("MIX", "DVFS", "SHUT"),
    0.4: ("MIX", "DVFS", "SHUT"),
}


@dataclass(frozen=True)
class GridCell:
    """One bar triplet of Figure 8."""

    workload: str
    cap_fraction: float
    policy: str
    energy_norm: float
    job_energy_norm: float
    jobs_norm: float
    work_norm: float
    effective_work_norm: float
    launched_jobs: int
    energy_joules: float
    #: same quantities restricted to the cap window (NaN when uncapped)
    window_energy_norm: float = float("nan")
    window_work_norm: float = float("nan")
    window_effective_work_norm: float = float("nan")
    #: platform registry entry the cell ran on (see repro.platform)
    platform: str = "curie"

    @property
    def label(self) -> str:
        pct = int(round(self.cap_fraction * 100))
        return f"{pct}%/{self.policy if self.policy != 'NONE' else 'None'}"

    @property
    def group_label(self) -> str:
        """Grid group heading; Curie keeps its historical bare name."""
        if self.platform == "curie":
            return self.workload
        return f"{self.platform}:{self.workload}"


def middle_cap_window(duration: float, cap_hours: float = 1.0) -> tuple[float, float]:
    """A ``cap_hours``-long window centred in the interval."""
    if duration <= cap_hours * HOUR:
        raise ValueError("interval shorter than the cap window")
    start = (duration - cap_hours * HOUR) / 2.0
    return start, start + cap_hours * HOUR


def window_norms(
    result: ReplayResult, t0: float, t1: float
) -> tuple[float, float, float]:
    """Normalised (energy, work, effective work) over ``[t0, t1)``.

    The cap-window triple behind Figure 8's trade-off reading — the
    single definition shared by :func:`run_cell` and the experiment
    harness, so the two paths can never diverge.  ``t1`` is clamped
    to the replay end; an empty window yields NaNs.
    """
    machine = result.machine
    t1 = min(t1, result.duration)
    span = t1 - t0
    if span <= 0:
        nan = float("nan")
        return nan, nan, nan
    rec = result.recorder
    return (
        rec.energy_joules(t0, t1) / (machine.max_power() * span),
        rec.work_core_seconds(t0, t1) / (machine.total_cores * span),
        rec.effective_work_core_seconds(t0, t1, machine.cores_per_node)
        / (machine.total_cores * span),
    )


def run_cell(
    machine: Machine,
    jobs: Sequence[JobSpec],
    workload_name: str,
    policy: str,
    cap_fraction: float,
    *,
    duration: float = 5 * HOUR,
    config: SchedulerConfig | None = None,
    platform: "PlatformSpec | None" = None,
) -> GridCell:
    """Replay one grid cell and normalise its metrics.

    ``platform`` resolves the string policy against that platform's
    degradation model and labels the cell; without one the paper's
    Curie constants apply.
    """
    caps = []
    window = None
    if policy != "NONE" and cap_fraction < 1.0:
        window = middle_cap_window(duration)
        caps = [powercap_reservation(machine, cap_fraction, window[0], window[1])]
    result = run_replay(
        machine,
        jobs,
        policy,
        duration=duration,
        powercaps=caps,
        config=config,
        platform=platform,
    )
    return _to_cell(
        result,
        workload_name,
        cap_fraction,
        policy,
        window,
        platform_name=platform.name if platform is not None else "curie",
    )


def _to_cell(
    result: ReplayResult,
    workload: str,
    cap_fraction: float,
    policy: str,
    window: tuple[float, float] | None = None,
    *,
    platform_name: str = "curie",
) -> GridCell:
    machine = result.machine
    max_job_energy = machine.max_power() * result.duration
    nan = float("nan")
    w_energy = w_work = w_eff = nan
    if window is not None:
        w_energy, w_work, w_eff = window_norms(result, window[0], window[1])
    return GridCell(
        workload=workload,
        cap_fraction=cap_fraction,
        policy=policy,
        energy_norm=result.energy_normalized(),
        job_energy_norm=result.job_energy_joules() / max_job_energy,
        jobs_norm=result.launched_jobs_normalized(),
        work_norm=result.work_normalized(),
        effective_work_norm=result.effective_work_normalized(),
        launched_jobs=result.launched_jobs(),
        energy_joules=result.energy_joules(),
        window_energy_norm=w_energy,
        window_work_norm=w_work,
        window_effective_work_norm=w_eff,
        platform=platform_name,
    )


def run_policy_grid(
    machine: Machine,
    workloads: Mapping[str, Sequence[JobSpec]],
    *,
    duration: float = 5 * HOUR,
    grid: Mapping[float, Sequence[str]] | None = None,
    config: SchedulerConfig | None = None,
    platform: "PlatformSpec | None" = None,
) -> list[GridCell]:
    """Replay the full Figure 8 grid.

    ``workloads`` maps interval names to job lists (all replayed for
    ``duration`` seconds).  Cells are returned in the paper's row
    order: per workload, caps descending, policies as configured.
    """
    grid = dict(grid) if grid is not None else PAPER_GRID_POLICIES
    cells: list[GridCell] = []
    for wname, jobs in workloads.items():
        for fraction in sorted(grid, reverse=True):
            for policy in grid[fraction]:
                cells.append(
                    run_cell(
                        machine,
                        jobs,
                        wname,
                        policy,
                        fraction,
                        duration=duration,
                        config=config,
                        platform=platform,
                    )
                )
    return cells


#: canonical policy order within one cap row (the paper's reading
#: order, then the registry's adaptive policies)
_POLICY_ORDER = {
    "NONE": 0,
    "MIX": 1,
    "DVFS": 2,
    "SHUT": 3,
    "IDLE": 4,
    "ADAPTIVE": 5,
    "TRACK": 6,
}


def cell_sort_key(cell: GridCell) -> tuple:
    """Canonical table position of a cell: platform, workload, caps
    descending, policies in the paper's order."""
    return (
        cell.platform,
        cell.workload,
        -cell.cap_fraction,
        _POLICY_ORDER.get(cell.policy, len(_POLICY_ORDER)),
    )


def _same_cell(a: GridCell, b: GridCell) -> bool:
    """Field-wise equality, NaN-aware.

    Uncapped cells carry NaN window metrics, and ``nan != nan`` would
    make two bit-identical cells built by independent runs (shard vs
    full sweep) look conflicting under plain dataclass equality.
    """
    for f in fields(a):
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if va == vb:
            continue
        if (
            isinstance(va, float)
            and isinstance(vb, float)
            and math.isnan(va)
            and math.isnan(vb)
        ):
            continue
        return False
    return True


def merge_cells(groups: Iterable[Sequence[GridCell]]) -> list[GridCell]:
    """Merge partial cell lists (e.g. per-shard results) into one table.

    Cells agreeing on identity ``(platform, workload, cap, policy)``
    must agree on every metric — replays are deterministic, so two
    shards (or a shard and a full run) can only disagree if something
    is broken, and that is raised, not papered over.  The merged list
    is returned in canonical order (:func:`cell_sort_key`), so any
    partition of a sweep merges to the identical table.
    """
    merged: dict[tuple, GridCell] = {}
    for group in groups:
        for cell in group:
            ident = (cell.platform, cell.workload, cell.cap_fraction, cell.policy)
            seen = merged.setdefault(ident, cell)
            if not _same_cell(seen, cell):
                raise ValueError(
                    f"conflicting results for grid cell {ident}: "
                    "deterministic replays cannot disagree — one side is "
                    "stale or corrupt"
                )
    return sorted(merged.values(), key=cell_sort_key)


def render_grid(cells: Sequence[GridCell]) -> str:
    """Text rendering of the grid, one row per cell with unit bars."""

    def bar(x: float, width: int = 24) -> str:
        filled = int(round(max(0.0, min(1.0, x)) * width))
        return "#" * filled + "." * (width - filled)

    lines: list[str] = []
    current = None
    header = (
        f"{'cap/policy':>12}  {'energy':^31}  {'jobs':^31}  {'work':^31}"
    )
    for c in cells:
        if c.group_label != current:
            current = c.group_label
            lines.append("")
            lines.append(f"== {current} ==")
            lines.append(header)
        lines.append(
            f"{c.label:>12}  {bar(c.energy_norm)} {c.energy_norm:5.2f}  "
            f"{bar(c.jobs_norm)} {c.jobs_norm:5.2f}  "
            f"{bar(c.work_norm)} {c.work_norm:5.2f}"
        )
    return "\n".join(lines[1:]) if lines else ""
