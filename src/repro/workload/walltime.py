"""User walltime-estimate model.

Section VII-B: on the replayed Curie traces "users estimate runtimes
badly: in average they request about 12670 times more walltime than
needed (median: 12000)", which cripples backfilling.  The dominant
cause is users keeping the partition's default/maximum limit (86400 s
on Curie) for jobs that run seconds.

The model assigns a requested walltime to a job given its actual
runtime:

* with probability ``p_default`` the user keeps the default limit
  (24 h on Curie);
* with probability ``p_round`` the user rounds the runtime up to a
  "human" grain (next hour, minimum 15 min);
* otherwise the user picks from the site's *menu* of queue limits
  (30 min ... 12 h), biased toward the longer entries — still wildly
  pessimistic for the seconds-long jobs that dominate the trace, but
  short enough that jobs can legally run ahead of an advance
  reservation.  Without this population, SLURM's reservation
  semantics would starve every reserved node for the whole replay.

Requests are never below the runtime (replayed jobs always finish).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Curie's default/maximum walltime (24 h).
CURIE_DEFAULT_WALLTIME = 86400.0

#: Site queue-limit menu and selection weights (sums to 1).
CURIE_WALLTIME_MENU: tuple[tuple[float, float], ...] = (
    (1800.0, 0.06),
    (3600.0, 0.12),
    (7200.0, 0.14),
    (14400.0, 0.18),
    (28800.0, 0.20),
    (43200.0, 0.30),
)


@dataclass(frozen=True)
class WalltimeEstimateModel:
    """Stochastic requested-walltime generator."""

    default_walltime: float = CURIE_DEFAULT_WALLTIME
    p_default: float = 0.55
    p_round: float = 0.08
    menu: tuple[tuple[float, float], ...] = CURIE_WALLTIME_MENU

    def __post_init__(self) -> None:
        if not 0 <= self.p_default <= 1 or not 0 <= self.p_round <= 1:
            raise ValueError("probabilities must be in [0, 1]")
        if self.p_default + self.p_round > 1:
            raise ValueError("p_default + p_round must not exceed 1")
        if self.default_walltime <= 0:
            raise ValueError("default_walltime must be positive")
        if not self.menu:
            raise ValueError("menu cannot be empty")
        if any(w <= 0 or lim <= 0 for lim, w in self.menu):
            raise ValueError("menu limits and weights must be positive")

    def _menu_limits(self) -> np.ndarray:
        return np.array([lim for lim, _ in self.menu])

    def _menu_probs(self) -> np.ndarray:
        w = np.array([w for _, w in self.menu])
        return w / w.sum()

    def sample(self, runtime: float, rng: np.random.Generator) -> float:
        """Requested walltime for a job of actual ``runtime`` seconds."""
        if runtime <= 0:
            raise ValueError("runtime must be positive")
        u = rng.random()
        if u < self.p_default:
            request = self.default_walltime
        elif u < self.p_default + self.p_round:
            grain = 3600.0 if runtime > 900 else 900.0
            request = float(np.ceil(runtime / grain) * grain)
        else:
            limits = self._menu_limits()
            pick = float(limits[rng.choice(len(limits), p=self._menu_probs())])
            if pick < runtime:
                # The user knows the job runs long: smallest limit
                # that fits, falling back to the site default.
                fitting = limits[limits >= runtime]
                pick = float(fitting.min()) if fitting.size else self.default_walltime
            request = pick
        return float(max(request, runtime))

    def sample_many(
        self, runtimes: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """:meth:`sample` over an array of runtimes."""
        runtimes = np.asarray(runtimes, dtype=np.float64)
        if (runtimes <= 0).any():
            raise ValueError("runtimes must be positive")
        return np.array([self.sample(r, rng) for r in runtimes])
