"""Standard Workload Format (SWF) reader/writer.

The Curie trace the paper replays is distributed by the Parallel
Workloads Archive in SWF: one line per job, 18 whitespace-separated
fields, ``;`` comment/header lines.  Field semantics follow the
archive's definition (Chapin et al.):

 1. job number             2. submit time (s)      3. wait time (s)
 4. run time (s)           5. allocated processors 6. average CPU time
 7. used memory            8. requested processors 9. requested time
10. requested memory      11. status              12. user id
13. group id              14. executable id       15. queue id
16. partition id          17. preceding job       18. think time

Missing values are ``-1``.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterable, Iterator, Sequence

from repro.workload.spec import JobSpec

#: SWF status codes (field 11).
STATUS_FAILED = 0
STATUS_COMPLETED = 1
STATUS_PARTIAL_TO_BE_CONTINUED = 2
STATUS_PARTIAL_LAST = 3
STATUS_CANCELLED = 5


@dataclass(frozen=True)
class SWFJob:
    """One SWF record, fields verbatim (``-1`` = unknown)."""

    job_number: int
    submit_time: float
    wait_time: float
    run_time: float
    allocated_procs: int
    average_cpu_time: float = -1.0
    used_memory: float = -1.0
    requested_procs: int = -1
    requested_time: float = -1.0
    requested_memory: float = -1.0
    status: int = -1
    user_id: int = -1
    group_id: int = -1
    executable_id: int = -1
    queue_id: int = -1
    partition_id: int = -1
    preceding_job: int = -1
    think_time: float = -1.0

    def to_line(self) -> str:
        """Serialise back to one SWF line."""
        fields = (
            self.job_number,
            _fmt(self.submit_time),
            _fmt(self.wait_time),
            _fmt(self.run_time),
            self.allocated_procs,
            _fmt(self.average_cpu_time),
            _fmt(self.used_memory),
            self.requested_procs,
            _fmt(self.requested_time),
            _fmt(self.requested_memory),
            self.status,
            self.user_id,
            self.group_id,
            self.executable_id,
            self.queue_id,
            self.partition_id,
            self.preceding_job,
            _fmt(self.think_time),
        )
        return " ".join(str(f) for f in fields)


def _fmt(x: float) -> str:
    """Render integral floats without a trailing ``.0`` (SWF style)."""
    return str(int(x)) if float(x).is_integer() else str(x)


@dataclass
class SWFTrace:
    """A parsed SWF file: header directives plus job records."""

    jobs: list[SWFJob] = field(default_factory=list)
    header: dict[str, str] = field(default_factory=dict)
    comments: list[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[SWFJob]:
        return iter(self.jobs)

    @property
    def max_procs(self) -> int | None:
        """``MaxProcs`` header directive, if present."""
        raw = self.header.get("MaxProcs")
        return int(raw) if raw is not None else None


_N_FIELDS = 18
_INT_FIELDS = {0, 4, 7, 10, 11, 12, 13, 14, 15, 16}


def parse_swf_line(line: str) -> SWFJob:
    """Parse one SWF job record line.

    Tolerates short lines (missing trailing fields become ``-1``) —
    several archive logs omit the last columns.
    """
    parts = line.split()
    if not parts:
        raise ValueError("empty SWF record")
    if len(parts) > _N_FIELDS:
        raise ValueError(f"SWF record has {len(parts)} fields (max {_N_FIELDS})")
    values: list[float | int] = []
    for i in range(_N_FIELDS):
        raw = parts[i] if i < len(parts) else "-1"
        try:
            values.append(int(raw) if i in _INT_FIELDS else float(raw))
        except ValueError as exc:
            raise ValueError(f"bad SWF field {i + 1}: {raw!r}") from exc
    return SWFJob(*values)  # type: ignore[arg-type]


def _parse_stream(stream: IO[str]) -> SWFTrace:
    trace = SWFTrace()
    for lineno, line in enumerate(stream, start=1):
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith(";"):
            body = stripped.lstrip(";").strip()
            if ":" in body:
                key, _, value = body.partition(":")
                key = key.strip()
                if key and " " not in key:
                    trace.header[key] = value.strip()
                    continue
            trace.comments.append(body)
            continue
        try:
            trace.jobs.append(parse_swf_line(stripped))
        except ValueError as exc:
            raise ValueError(f"line {lineno}: {exc}") from exc
    return trace


def read_swf(source: str | Path | IO[str]) -> SWFTrace:
    """Read an SWF file (path or open text stream)."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as fh:
            return _parse_stream(fh)
    return _parse_stream(source)


def loads_swf(text: str) -> SWFTrace:
    """Parse SWF content from a string."""
    return _parse_stream(io.StringIO(text))


def write_swf(
    trace: SWFTrace | Iterable[SWFJob],
    target: str | Path | IO[str],
) -> None:
    """Write jobs (and header, for a full trace) in SWF format."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as fh:
            write_swf(trace, fh)
            return
    if isinstance(trace, SWFTrace):
        for key, value in trace.header.items():
            target.write(f"; {key}: {value}\n")
        jobs: Iterable[SWFJob] = trace.jobs
    else:
        jobs = trace
    for job in jobs:
        target.write(job.to_line() + "\n")


def swf_to_jobspecs(
    trace: SWFTrace | Sequence[SWFJob],
    *,
    min_runtime: float = 1.0,
    include_failed: bool = False,
) -> list[JobSpec]:
    """Convert SWF records to simulator job specs.

    Jobs with unknown width or non-positive runtime are dropped (they
    never ran).  ``walltime`` falls back to the runtime when the user
    requested no limit, and is floored at the runtime so replayed jobs
    are never killed by their own estimate — matching the paper's
    replay where jobs are ``sleep`` commands that always complete.
    """
    jobs = trace.jobs if isinstance(trace, SWFTrace) else list(trace)
    specs: list[JobSpec] = []
    for j in jobs:
        if j.status == STATUS_FAILED and not include_failed:
            continue
        cores = j.allocated_procs if j.allocated_procs > 0 else j.requested_procs
        if cores <= 0:
            continue
        runtime = max(float(j.run_time), min_runtime)
        if j.run_time <= 0:
            continue
        walltime = float(j.requested_time) if j.requested_time > 0 else runtime
        specs.append(
            JobSpec(
                job_id=j.job_number,
                submit_time=float(max(j.submit_time, 0.0)),
                cores=int(cores),
                runtime=runtime,
                walltime=max(walltime, runtime),
                user=max(j.user_id, 0),
            )
        )
    specs.sort(key=lambda s: (s.submit_time, s.job_id))
    return specs
