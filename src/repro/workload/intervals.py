"""The paper's four replay intervals, and interval extraction.

Section VII-B selects "three intervals of 5 hours and one interval of
24 hours with high utilization, big number of jobs in the queue and
short inter-arrival time":

* ``medianjob`` — representative job mix;
* ``smalljob``  — more small jobs than medianjob;
* ``bigjob``    — more big jobs than medianjob;
* ``24h``       — representative mix, day-long.

With a real SWF trace, :func:`extract_interval` cuts a window out and
rebuilds its initial backlog.  Without one, :func:`generate_interval`
produces the calibrated synthetic equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.cluster.machine import Machine
from repro.workload.spec import JobSpec
from repro.workload.synthetic import (
    BIGJOB_CLASSES,
    CURIE_JOB_CLASSES,
    CURIE_TOTAL_CORES,
    SMALLJOB_CLASSES,
    JobClass,
    WorkloadModel,
)

HOUR = 3600.0


@dataclass(frozen=True)
class IntervalSpec:
    """Recipe for one replay interval."""

    name: str
    duration: float
    classes: tuple[JobClass, ...] = CURIE_JOB_CLASSES
    seed: int = 42

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")


#: The paper's four intervals (Section VII-B).
PAPER_INTERVALS: dict[str, IntervalSpec] = {
    "medianjob": IntervalSpec("medianjob", 5 * HOUR, CURIE_JOB_CLASSES, seed=101),
    "smalljob": IntervalSpec("smalljob", 5 * HOUR, SMALLJOB_CLASSES, seed=102),
    "bigjob": IntervalSpec("bigjob", 5 * HOUR, BIGJOB_CLASSES, seed=103),
    "24h": IntervalSpec("24h", 24 * HOUR, CURIE_JOB_CLASSES, seed=104),
}


def generate_interval(
    machine: Machine,
    interval: str | IntervalSpec,
    *,
    seed: int | None = None,
    overload: float = 1.6,
    classes: Sequence[JobClass] | None = None,
    reference_cores: int = CURIE_TOTAL_CORES,
) -> list[JobSpec]:
    """Synthesize the workload of one paper interval for ``machine``.

    ``seed`` overrides the interval's default so sensitivity to the
    random draw can be probed (the paper replays deterministically;
    so do we, per (machine, interval, seed)).  ``classes`` and
    ``reference_cores`` override the interval's job-class mix and the
    width basis — the hook platform registry entries use to ship
    their own app mixes (:mod:`repro.platform`).
    """
    spec = PAPER_INTERVALS[interval] if isinstance(interval, str) else interval
    model = WorkloadModel(
        machine,
        seed=spec.seed if seed is None else seed,
        classes=spec.classes if classes is None else tuple(classes),
        overload=overload,
        reference_cores=reference_cores,
    )
    return model.generate(spec.duration)


def extract_interval(
    jobs: Sequence[JobSpec],
    start: float,
    duration: float,
    *,
    backlog_window: float = 12 * HOUR,
) -> list[JobSpec]:
    """Cut ``[start, start + duration)`` out of a full trace.

    Jobs submitted inside the window are shifted so the window starts
    at time 0.  Jobs submitted up to ``backlog_window`` seconds before
    the window model the pending queue at the start of the replay (the
    paper restores "queued and running jobs" as the interval's initial
    state); they are requeued at time 0.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    if backlog_window < 0:
        raise ValueError("backlog_window must be >= 0")
    out: list[JobSpec] = []
    for j in jobs:
        if start - backlog_window <= j.submit_time < start + duration:
            out.append(j.shifted(-start))
    out.sort(key=lambda j: (j.submit_time, j.job_id))
    return out


def find_interval_start(
    jobs: Sequence[JobSpec],
    duration: float,
    *,
    kind: str = "medianjob",
    step: float = HOUR,
) -> float:
    """Locate a window of a real trace matching a paper interval kind.

    Scores each candidate window by its submission pressure and the
    share of small jobs (cores < 512 and runtime < 2 min):

    * ``smalljob``  — maximise the small-job share;
    * ``bigjob``    — minimise it;
    * ``medianjob`` / ``24h`` — closest to the whole-trace share;

    among the top-quartile windows by number of submissions (the
    paper wants high pressure in every interval).
    """
    if not jobs:
        raise ValueError("empty trace")
    if kind not in PAPER_INTERVALS:
        raise ValueError(f"unknown interval kind {kind!r}")
    t_end = max(j.submit_time for j in jobs)
    starts = [s * step for s in range(int(max(t_end - duration, 0) / step) + 1)]
    if not starts:
        return 0.0

    def window_stats(s: float) -> tuple[int, float]:
        inside = [j for j in jobs if s <= j.submit_time < s + duration]
        if not inside:
            return 0, 0.0
        small = sum(j.cores < 512 and j.runtime < 120 for j in inside)
        return len(inside), small / len(inside)

    stats = {s: window_stats(s) for s in starts}
    counts = sorted(n for n, _ in stats.values())
    pressure_floor = counts[int(0.75 * (len(counts) - 1))]
    busy = [s for s in starts if stats[s][0] >= max(pressure_floor, 1)]
    if not busy:
        busy = starts

    overall_small = sum(
        j.cores < 512 and j.runtime < 120 for j in jobs
    ) / len(jobs)
    if kind == "smalljob":
        return max(busy, key=lambda s: stats[s][1])
    if kind == "bigjob":
        return min(busy, key=lambda s: stats[s][1])
    return min(busy, key=lambda s: abs(stats[s][1] - overall_small))
