"""Workload substrate.

The paper replays intervals of the 2012 production trace of Curie
(published later in the Parallel Workloads Archive).  This package
provides:

* :mod:`repro.workload.spec` — the job description consumed by the
  RJMS simulator;
* :mod:`repro.workload.swf` — a complete Standard Workload Format
  reader/writer, so the real ``CEA-Curie`` log can be dropped in;
* :mod:`repro.workload.synthetic` — a calibrated synthetic generator
  reproducing the trace statistics the paper reports (job-size and
  runtime mix, walltime over-estimation, permanent overload);
* :mod:`repro.workload.intervals` — extraction of the paper's four
  replay intervals (``medianjob``, ``smalljob``, ``bigjob``, ``24h``).
"""

from repro.workload.spec import JobSpec, WorkloadStats, workload_stats
from repro.workload.swf import SWFJob, SWFTrace, read_swf, write_swf, swf_to_jobspecs
from repro.workload.synthetic import (
    CurieWorkloadModel,
    WorkloadModel,
    JobClass,
    CURIE_JOB_CLASSES,
    SMALLJOB_CLASSES,
    BIGJOB_CLASSES,
)
from repro.workload.walltime import WalltimeEstimateModel
from repro.workload.intervals import (
    IntervalSpec,
    PAPER_INTERVALS,
    extract_interval,
    generate_interval,
)

__all__ = [
    "JobSpec",
    "WorkloadStats",
    "workload_stats",
    "SWFJob",
    "SWFTrace",
    "read_swf",
    "write_swf",
    "swf_to_jobspecs",
    "CurieWorkloadModel",
    "WorkloadModel",
    "JobClass",
    "CURIE_JOB_CLASSES",
    "SMALLJOB_CLASSES",
    "BIGJOB_CLASSES",
    "WalltimeEstimateModel",
    "IntervalSpec",
    "PAPER_INTERVALS",
    "extract_interval",
    "generate_interval",
]
