"""Job descriptions handed to the RJMS.

A :class:`JobSpec` is what a user submission looks like to the
controller: arrival time, width, a *requested* walltime (the user's
estimate, wildly pessimistic on Curie) and the actual runtime the job
would take at the highest CPU frequency (hidden from the scheduler,
used by the simulator to emit the completion event).
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence


@dataclass(frozen=True)
class JobSpec:
    """One job submission.

    Attributes
    ----------
    job_id:
        Unique id within a workload.
    submit_time:
        Seconds from the start of the replayed interval (may be 0 for
        the initial backlog).
    cores:
        Cores requested; allocated as whole nodes by the simulator.
    runtime:
        Actual execution time in seconds **at the maximum CPU
        frequency**.  DVFS stretches it by the degradation factor.
    walltime:
        User-requested limit in seconds (>= runtime in our replays, as
        the paper replaces executions by ``sleep`` jobs that never hit
        their limit).
    user:
        Submitting user id, used by the fair-share priority factor.
    """

    job_id: int
    submit_time: float
    cores: int
    runtime: float
    walltime: float
    user: int = 0

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError(f"job {self.job_id}: cores must be positive")
        if self.runtime <= 0:
            raise ValueError(f"job {self.job_id}: runtime must be positive")
        if self.walltime < self.runtime:
            raise ValueError(
                f"job {self.job_id}: walltime {self.walltime} below "
                f"runtime {self.runtime}"
            )
        if self.submit_time < 0:
            raise ValueError(f"job {self.job_id}: negative submit time")

    @property
    def core_seconds(self) -> float:
        """Work content of the job at full speed."""
        return self.cores * self.runtime

    @property
    def walltime_ratio(self) -> float:
        """Requested over actual runtime (the paper reports ~12000 median)."""
        return self.walltime / self.runtime

    def shifted(self, delta: float) -> "JobSpec":
        """Copy with the submit time translated by ``delta`` (clamped at 0)."""
        return replace(self, submit_time=max(0.0, self.submit_time + delta))


@dataclass(frozen=True)
class WorkloadStats:
    """Summary statistics of a workload (used for calibration tests)."""

    n_jobs: int
    total_core_seconds: float
    #: fraction of jobs needing < 512 cores AND running < 2 minutes
    small_fraction: float
    #: fraction of jobs bigger than one cluster-hour of work
    huge_fraction: float
    median_walltime_ratio: float
    mean_walltime_ratio: float
    median_cores: float
    median_runtime: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.n_jobs} jobs, {self.total_core_seconds / 3600:.0f} core-hours, "
            f"{self.small_fraction:.0%} small, {self.huge_fraction:.2%} huge, "
            f"median walltime ratio {self.median_walltime_ratio:.0f}"
        )


def workload_stats(
    jobs: Sequence[JobSpec], *, cluster_cores: int = 80640
) -> WorkloadStats:
    """Compute the calibration statistics the paper quotes (§VII-B).

    ``cluster_cores`` defines the "huge job" threshold: more work than
    the whole cluster performs in one hour.
    """
    if not jobs:
        raise ValueError("empty workload")
    ratios = [j.walltime_ratio for j in jobs]
    huge_threshold = cluster_cores * 3600.0
    return WorkloadStats(
        n_jobs=len(jobs),
        total_core_seconds=sum(j.core_seconds for j in jobs),
        small_fraction=sum(j.cores < 512 and j.runtime < 120 for j in jobs)
        / len(jobs),
        huge_fraction=sum(j.core_seconds > huge_threshold for j in jobs) / len(jobs),
        median_walltime_ratio=statistics.median(ratios),
        mean_walltime_ratio=sum(ratios) / len(ratios),
        median_cores=statistics.median(j.cores for j in jobs),
        median_runtime=statistics.median(j.runtime for j in jobs),
    )


def validate_workload(jobs: Iterable[JobSpec]) -> None:
    """Raise ``ValueError`` on duplicate ids or unsorted gross anomalies."""
    seen: set[int] = set()
    for j in jobs:
        if j.job_id in seen:
            raise ValueError(f"duplicate job id {j.job_id}")
        seen.add(j.job_id)
        if not math.isfinite(j.submit_time + j.runtime + j.walltime):
            raise ValueError(f"job {j.job_id}: non-finite field")
