"""Calibrated synthetic Curie workload generator.

The paper's replay inputs are intervals of Curie's 2012 production
trace.  The trace itself is not redistributable with this repository,
so this module generates workloads that are calibrated to every
statistic of it the paper reports (Section VII-B):

* 69 % of jobs need fewer than 512 cores and run under 2 minutes;
* 0.1 % of jobs are *huge* — more work than the whole cluster
  delivers in one hour (> 80 640 core-hours);
* requested walltimes exceed runtimes by a factor of ~12 000 (median),
  breaking backfilling;
* the machine is overloaded: the queue always holds at least another
  cluster's worth of cores, and arrivals keep it that way.

Job widths are expressed as fractions of the full Curie (80 640
cores), so generating against a scaled-down machine preserves the
workload/machine ratio and the shape of every result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.cluster.machine import Machine
from repro.workload.spec import JobSpec
from repro.workload.walltime import WalltimeEstimateModel

#: Core count of the full Curie; job-class widths are relative to it.
CURIE_TOTAL_CORES = 80640


@dataclass(frozen=True)
class JobClass:
    """One job population with log-uniform width and runtime.

    ``min_cores``/``max_cores`` are expressed on the full Curie and
    rescaled to the target machine at generation time.
    """

    name: str
    weight: float
    min_cores: int
    max_cores: int
    min_runtime: float
    max_runtime: float

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError(f"{self.name}: negative weight")
        if not 1 <= self.min_cores <= self.max_cores:
            raise ValueError(f"{self.name}: bad core range")
        if not 0 < self.min_runtime <= self.max_runtime:
            raise ValueError(f"{self.name}: bad runtime range")

    def sample_cores(
        self, rng: np.random.Generator, core_scale: float, node_cores: int = 16
    ) -> int:
        """Log-uniform width, snapped to whole nodes above one node
        (``node_cores`` is the target machine's node size; 16 on
        Curie)."""
        lo = max(1.0, self.min_cores * core_scale)
        hi = max(lo, self.max_cores * core_scale)
        raw = math.exp(rng.uniform(math.log(lo), math.log(hi)))
        if raw <= node_cores:
            return max(1, int(round(raw)))
        return int(round(raw / node_cores)) * node_cores

    def sample_runtime(self, rng: np.random.Generator) -> float:
        """Log-uniform runtime in seconds."""
        return float(
            math.exp(
                rng.uniform(math.log(self.min_runtime), math.log(self.max_runtime))
            )
        )


#: Default class mix reproducing the medianjob-interval statistics.
#: Weights are tuned so that, at the default submission pressure, the
#: offered work lands near ``overload`` times the machine capacity.
CURIE_JOB_CLASSES: tuple[JobClass, ...] = (
    # The dominant population: tiny, seconds-long jobs (69 % per the paper).
    JobClass("tiny", 0.690, 1, 511, 1.0, 60.0),
    # Narrow but long-running jobs.
    JobClass("narrow-long", 0.215, 1, 511, 600.0, 4 * 3600.0),
    # Mid-size production runs.
    JobClass("medium", 0.080, 512, 4096, 300.0, 4 * 3600.0),
    # Wide campaigns.
    JobClass("wide", 0.015, 4096, 32768, 600.0, 6 * 3600.0),
)

#: Class mixes for the paper's interval flavours (Section VII-B).
SMALLJOB_CLASSES: tuple[JobClass, ...] = (
    replace(CURIE_JOB_CLASSES[0], weight=0.800),
    replace(CURIE_JOB_CLASSES[1], weight=0.140),
    replace(CURIE_JOB_CLASSES[2], weight=0.048),
    replace(CURIE_JOB_CLASSES[3], weight=0.012),
)
BIGJOB_CLASSES: tuple[JobClass, ...] = (
    replace(CURIE_JOB_CLASSES[0], weight=0.520),
    replace(CURIE_JOB_CLASSES[1], weight=0.346),
    replace(CURIE_JOB_CLASSES[2], weight=0.105),
    replace(CURIE_JOB_CLASSES[3], weight=0.029),
)


class WorkloadModel:
    """Deterministic (seeded) generator of overloaded HPC workloads.

    Calibrated on Curie (the class mixes above) but machine-generic:
    job widths are fractions of ``reference_cores`` and rescale to the
    target machine, so any platform keeps the workload/machine ratio.

    Parameters
    ----------
    machine:
        Target machine; job widths scale with its core count.
    seed:
        RNG seed; identical seeds give identical workloads (replays
        are compared against each other, as in the paper).
    classes:
        Job population mix (weights need not sum to 1).
    walltime_model:
        Requested-walltime generator.
    overload:
        Offered work during the interval, as a multiple of the
        machine's capacity (core-seconds).  > 1 keeps the queue full.
    backlog_cluster_fraction:
        Width of the initial pending backlog, as a fraction of the
        machine's cores ("enough jobs to fill a second cluster").
    huge_per_hour:
        Poisson rate of *huge* jobs (> 1 cluster-hour of work).
    jobs_per_hour:
        Minimum submission pressure during the interval ("short
        inter-arrival time"): arrivals are drawn at least at this
        rate even once the work target is met.
    backlog_min_jobs:
        Minimum number of jobs in the initial backlog ("big number of
        jobs in the queue").
    n_users:
        User population for the fair-share factor (Zipf-distributed
        activity).
    reference_cores:
        Core count of the reference machine the job-class widths are
        expressed against (the full Curie by default; platforms with
        their own class mixes pass their own basis).
    """

    def __init__(
        self,
        machine: Machine,
        *,
        seed: int = 0,
        classes: Sequence[JobClass] = CURIE_JOB_CLASSES,
        walltime_model: WalltimeEstimateModel | None = None,
        overload: float = 1.6,
        backlog_cluster_fraction: float = 1.0,
        huge_per_hour: float = 0.10,
        jobs_per_hour: float = 400.0,
        backlog_min_jobs: int = 400,
        n_users: int = 200,
        reference_cores: int = CURIE_TOTAL_CORES,
    ) -> None:
        if overload <= 0:
            raise ValueError("overload must be positive")
        if backlog_cluster_fraction < 0:
            raise ValueError("backlog_cluster_fraction must be >= 0")
        if huge_per_hour < 0:
            raise ValueError("huge_per_hour must be >= 0")
        if jobs_per_hour < 0 or backlog_min_jobs < 0:
            raise ValueError("submission pressure must be >= 0")
        if n_users <= 0:
            raise ValueError("n_users must be positive")
        if reference_cores <= 0:
            raise ValueError("reference_cores must be positive")
        if not classes:
            raise ValueError("need at least one job class")
        total_weight = sum(c.weight for c in classes)
        if total_weight <= 0:
            raise ValueError("class weights must sum to a positive value")
        self.machine = machine
        self.seed = seed
        self.classes = tuple(classes)
        self._class_probs = np.array(
            [c.weight / total_weight for c in classes], dtype=np.float64
        )
        self.walltime_model = walltime_model or WalltimeEstimateModel()
        self.overload = overload
        self.backlog_cluster_fraction = backlog_cluster_fraction
        self.huge_per_hour = huge_per_hour
        self.jobs_per_hour = jobs_per_hour
        self.backlog_min_jobs = backlog_min_jobs
        self.n_users = n_users
        # Zipf-like user activity so fair-share has something to bite on.
        ranks = np.arange(1, n_users + 1, dtype=np.float64)
        self._user_probs = (1.0 / ranks**1.1) / np.sum(1.0 / ranks**1.1)
        self._core_scale = machine.total_cores / reference_cores

    # -- draws -------------------------------------------------------------------------

    def _draw_regular(self, rng: np.random.Generator) -> tuple[int, float]:
        cls = self.classes[int(rng.choice(len(self.classes), p=self._class_probs))]
        cores = min(
            cls.sample_cores(
                rng, self._core_scale, self.machine.cores_per_node
            ),
            self.machine.total_cores,
        )
        return cores, cls.sample_runtime(rng)

    def _draw_huge(self, rng: np.random.Generator) -> tuple[int, float]:
        """A job with more work than one cluster-hour (paper's 0.1 %)."""
        total = self.machine.total_cores
        node = self.machine.cores_per_node
        frac = math.exp(rng.uniform(math.log(0.25), math.log(1.0)))
        cores = max(node, int(round(total * frac / node)) * node)
        cores = min(cores, total)
        min_runtime = total * 3600.0 / cores * 1.05
        runtime = max(min_runtime, float(rng.uniform(3600.0, 6 * 3600.0)))
        return cores, runtime

    def _make_spec(
        self,
        job_id: int,
        submit: float,
        cores: int,
        runtime: float,
        rng: np.random.Generator,
    ) -> JobSpec:
        walltime = self.walltime_model.sample(runtime, rng)
        user = int(rng.choice(self.n_users, p=self._user_probs))
        return JobSpec(
            job_id=job_id,
            submit_time=submit,
            cores=cores,
            runtime=runtime,
            walltime=walltime,
            user=user,
        )

    # -- generation --------------------------------------------------------------------

    def generate(self, duration: float) -> list[JobSpec]:
        """Workload for an interval of ``duration`` seconds.

        Returns jobs sorted by submit time: the time-0 backlog first,
        then arrivals keeping the offered load at ``overload`` times
        the machine capacity.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        rng = np.random.default_rng(self.seed)
        machine = self.machine
        jobs: list[JobSpec] = []
        job_id = 0

        # 1. Initial backlog: a second cluster's worth of queued cores,
        #    and no fewer than `backlog_min_jobs` entries.
        backlog_cores_target = self.backlog_cluster_fraction * machine.total_cores
        backlog_cores = 0.0
        while backlog_cores < backlog_cores_target or job_id < self.backlog_min_jobs:
            cores, runtime = self._draw_regular(rng)
            jobs.append(self._make_spec(job_id, 0.0, cores, runtime, rng))
            backlog_cores += cores
            job_id += 1

        # 2. Huge jobs, a Poisson sprinkle across the interval.
        n_huge = int(rng.poisson(self.huge_per_hour * duration / 3600.0))
        huge_work = 0.0
        for _ in range(n_huge):
            cores, runtime = self._draw_huge(rng)
            submit = float(rng.uniform(0.0, duration))
            jobs.append(self._make_spec(job_id, submit, cores, runtime, rng))
            huge_work += cores * runtime
            job_id += 1

        # 3. Regular arrivals: sustain both the submission pressure and
        #    the offered-work target.
        work_target = self.overload * machine.total_cores * duration
        count_target = int(self.jobs_per_hour * duration / 3600.0)
        work = huge_work
        arrivals: list[tuple[int, float]] = []
        while work < work_target or len(arrivals) < count_target:
            cores, runtime = self._draw_regular(rng)
            arrivals.append((cores, runtime))
            work += cores * runtime
        submit_times = np.sort(rng.uniform(0.0, duration, size=len(arrivals)))
        for (cores, runtime), submit in zip(arrivals, submit_times):
            jobs.append(self._make_spec(job_id, float(submit), cores, runtime, rng))
            job_id += 1

        jobs.sort(key=lambda j: (j.submit_time, j.job_id))
        return jobs


#: Backwards-compatible alias (the generator predates the platform
#: registry and was named for its calibration source).
CurieWorkloadModel = WorkloadModel
