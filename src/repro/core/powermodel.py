"""Section III analytical model: switch-off vs DVFS under a power cap.

The model maximises the computational capacity

    W = T * ((N - Noff - Ndvfs) / 1 + Ndvfs / degmin)            (C1)

subject to

    Ndvfs + Noff <= N                                            (C2)
    Noff*Poff + Ndvfs*Pmin + (N - Noff - Ndvfs)*Pmax <= P        (C3)

where ``degmin`` is the slowdown at the lowest frequency, ``Poff`` the
power of a switched-off node, ``Pmin``/``Pmax`` the node power at the
lowest/highest frequency and ``P`` the cap.  The sign of

    rho = 1 - 1/degmin - (Pmax - Pdvfs) / (Pmax - Poff)

decides the winner: ``rho > 0`` means DVFS yields more capacity,
``rho <= 0`` means switching nodes off does (Curie: always switch-off,
Figure 5).  When ``P < N*Pmin`` (normalised cap below ``Pmin/Pmax``)
DVFS alone cannot reach the cap and both mechanisms must be combined
(case 4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ModelCase(enum.Enum):
    """Which of the four Section III-A regimes applies."""

    SHUTDOWN_ONLY = "shutdown-only"
    DVFS_ONLY = "dvfs-only"
    TIE = "tie"
    COMBINED = "combined"


def _check_powers(pmax: float, pmin: float, poff: float) -> None:
    if not (0 <= poff < pmin <= pmax):
        raise ValueError(
            f"need 0 <= Poff < Pmin <= Pmax, got Poff={poff}, "
            f"Pmin={pmin}, Pmax={pmax}"
        )


def rho(degmin: float, pmax: float, pmin: float, poff: float) -> float:
    """The paper's mechanism-selection indicator, Figure 5 convention.

    ``rho > 0``: DVFS is selected; ``rho <= 0``: switch-off is.

    The formula printed in Section III-A reads
    ``1 - 1/degmin - (Pmax - Pdvfs)/(Pmax - Poff)``; substituting the
    obvious ``Pdvfs = Pmin`` does **not** reproduce the published
    Figure 5 values (it gives -0.093 instead of -0.174 for the common
    degradation 1.63).  The table is reproduced to within rounding,
    including its 2.27 break-even row, when ``Pdvfs`` denotes the
    power *reduction* DVFS achieves (``Pmax - Pmin``), making the
    ratio ``Pmin / (Pmax - Poff)``.  We implement the table's
    convention, since it is what the deployed system's decisions
    (switch-off everywhere on Curie) are consistent with; the exact
    capacity comparison is available as
    :func:`dvfs_beats_shutdown_exact`.
    """
    if degmin < 1:
        raise ValueError(f"degmin must be >= 1, got {degmin}")
    if pmax <= poff:
        raise ValueError("Pmax must exceed Poff")
    return 1.0 - 1.0 / degmin - pmin / (pmax - poff)


def dvfs_beats_shutdown_exact(
    degmin: float, pmax: float, pmin: float, poff: float
) -> bool:
    """Exact capacity criterion: is ``Wdvfs > Woff`` under C1/C3?

    From the closed forms, DVFS preserves more capacity per shaved
    watt iff ``1 - 1/degmin < (Pmax - Pmin)/(Pmax - Poff)``.  This is
    the criterion behind the paper's Section VI-B remark that with
    switch-off replaced by *idling* nodes (``Poff = IdleWatts``), DVFS
    becomes the best policy for every benchmark.
    """
    if degmin < 1:
        raise ValueError(f"degmin must be >= 1, got {degmin}")
    _check_powers(pmax, pmin, poff)
    return (1.0 - 1.0 / degmin) < (pmax - pmin) / (pmax - poff)


def capacity(n: float, noff: float, ndvfs: float, degmin: float) -> float:
    """Computational capacity W of constraint C1 (T = 1)."""
    if degmin < 1:
        raise ValueError(f"degmin must be >= 1, got {degmin}")
    if noff < 0 or ndvfs < 0 or noff + ndvfs > n + 1e-9:
        raise ValueError("need Noff, Ndvfs >= 0 and Noff + Ndvfs <= N (C2)")
    return (n - noff - ndvfs) + ndvfs / degmin


def shutdown_only_nodes(n: float, p: float, pmax: float, poff: float) -> float:
    """``Noff`` when only switch-off is used: (P - N*Pmax)/(Poff - Pmax).

    Clamped to [0, N]: a cap above the cluster maximum needs nothing
    switched off; a cap below ``N*Poff`` is unreachable (the paper
    notes it "can not happen practically") and saturates at N.
    """
    if pmax <= poff:
        raise ValueError("Pmax must exceed Poff")
    noff = (p - n * pmax) / (poff - pmax)
    return min(max(noff, 0.0), n)


def dvfs_only_nodes(n: float, p: float, pmax: float, pmin: float) -> float:
    """``Ndvfs`` when only DVFS is used: (P - N*Pmax)/(Pmin - Pmax).

    Clamped to [0, N]; N means even all nodes at the lowest frequency
    exceed the cap (the case-4 trigger).
    """
    if pmax <= pmin:
        raise ValueError("Pmax must exceed Pmin")
    ndvfs = (p - n * pmax) / (pmin - pmax)
    return min(max(ndvfs, 0.0), n)


@dataclass(frozen=True)
class PowerPlan:
    """Outcome of the Section III optimisation."""

    case: ModelCase
    n_off: float
    n_dvfs: float
    capacity: float
    rho: float

    @property
    def uses_shutdown(self) -> bool:
        return self.n_off > 0

    @property
    def uses_dvfs(self) -> bool:
        return self.n_dvfs > 0


def plan_nodes(
    n: int,
    p: float,
    *,
    pmax: float,
    pmin: float,
    poff: float,
    degmin: float,
) -> PowerPlan:
    """Solve the Section III model for a cluster of ``n`` nodes.

    Returns the capacity-maximising (``Noff``, ``Ndvfs``) pair as
    *continuous* values (integerisation is the offline planner's
    concern, which also folds in the power bonuses the model ignores).

    Parameters mirror the paper: ``p`` is the cap in watts over the
    node population only (no enclosure infrastructure).
    """
    if n <= 0:
        raise ValueError("n must be positive")
    _check_powers(pmax, pmin, poff)
    if degmin < 1:
        raise ValueError(f"degmin must be >= 1, got {degmin}")
    if p < n * poff:
        raise ValueError(
            f"cap {p} W below the all-off floor {n * poff} W: infeasible"
        )

    r = rho(degmin, pmax, pmin, poff)

    if p >= n * pmax:
        # No throttling needed at all.
        return PowerPlan(ModelCase.DVFS_ONLY if r > 0 else ModelCase.SHUTDOWN_ONLY,
                         0.0, 0.0, float(n), r)

    if p < n * pmin:
        # Case 4: cap below what full-cluster lowest-frequency DVFS
        # reaches; mix both mechanisms (intersection with C2).
        ndvfs = (p - n * poff) / (pmin - poff)
        noff = n - ndvfs
        return PowerPlan(
            ModelCase.COMBINED, noff, ndvfs, capacity(n, noff, ndvfs, degmin), r
        )

    noff = shutdown_only_nodes(n, p, pmax, poff)
    ndvfs = dvfs_only_nodes(n, p, pmax, pmin)
    w_off = capacity(n, noff, 0.0, degmin)
    w_dvfs = capacity(n, 0.0, ndvfs, degmin)
    # Algorithm 1 decides by the sign of rho (Figure 5 convention).
    if abs(r) < 1e-12:
        # Case 3: both mechanisms equivalent; the paper picks either.
        return PowerPlan(ModelCase.TIE, noff, 0.0, w_off, r)
    if r <= 0:
        return PowerPlan(ModelCase.SHUTDOWN_ONLY, noff, 0.0, w_off, r)
    return PowerPlan(ModelCase.DVFS_ONLY, 0.0, ndvfs, w_dvfs, r)


def plan_nodes_exact(
    n: int,
    p: float,
    *,
    pmax: float,
    pmin: float,
    poff: float,
    degmin: float,
) -> PowerPlan:
    """Like :func:`plan_nodes` but deciding the single-mechanism
    regime by the exact capacity comparison instead of the paper's
    rho sign (ablation: quantifies what the rho convention costs)."""
    base = plan_nodes(n, p, pmax=pmax, pmin=pmin, poff=poff, degmin=degmin)
    if base.case == ModelCase.COMBINED or (base.n_off == 0 and base.n_dvfs == 0):
        return base
    noff = shutdown_only_nodes(n, p, pmax, poff)
    ndvfs = dvfs_only_nodes(n, p, pmax, pmin)
    w_off = capacity(n, noff, 0.0, degmin)
    w_dvfs = capacity(n, 0.0, ndvfs, degmin)
    if abs(w_off - w_dvfs) < 1e-12:
        return PowerPlan(ModelCase.TIE, noff, 0.0, w_off, base.rho)
    if w_off > w_dvfs:
        return PowerPlan(ModelCase.SHUTDOWN_ONLY, noff, 0.0, w_off, base.rho)
    return PowerPlan(ModelCase.DVFS_ONLY, 0.0, ndvfs, w_dvfs, base.rho)


def normalized_cap_floor_dvfs(pmin: float, pmax: float) -> float:
    """``lambda`` threshold ``Pmin/Pmax`` below which case 4 triggers."""
    if not 0 < pmin <= pmax:
        raise ValueError(f"need 0 < Pmin <= Pmax, got {pmin}, {pmax}")
    return pmin / pmax
