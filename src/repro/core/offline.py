"""Algorithm 1 — the offline phase: planned, grouped node switch-off.

When a powercap reservation is registered, the offline phase decides
*in advance* (Section IV-B) whether nodes must be switched off during
the window, how many, and — crucially — **which**: grouping the
switch-off by whole racks and chassis harvests the "power bonus" of
Section III-B, keeping more nodes alive for the same cap (the paper's
worked example: an 18-node chassis beats 20 scattered nodes).

The planner works against the *worst-case* alive power: every alive
node busy at the policy's reference frequency (the top step for SHUT,
the lowest allowed step for MIX — the model's ``Pmin``), plus the
enclosure infrastructure of alive groups.  Selection proceeds from
the highest node ids downward so the selector's low-id packing stays
out of its way.

Whether a window gets a switch-off plan at all, and which reference
frequency it is planned against, is the policy's **shutdown-planning
strategy** (:mod:`repro.policy.strategies`): the paper's SHUT/MIX use
the unconditional grouped strategy, while ADAPTIVE consults the
Section III solution per window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.machine import Machine
from repro.core.policies import Policy
from repro.core.powermodel import ModelCase, PowerPlan, plan_nodes
from repro.rjms.reservations import (
    PowercapReservation,
    ShutdownReservation,
    shutdown_savings_from_idle,
)


@dataclass(frozen=True)
class ShutdownPlan:
    """Outcome of the offline phase for one powercap reservation."""

    reservation: ShutdownReservation | None
    model_plan: PowerPlan | None
    n_off_selected: int
    n_full_racks: int
    n_full_chassis: int
    bonus_watts: float
    worst_case_alive_watts: float

    @property
    def any_shutdown(self) -> bool:
        return self.n_off_selected > 0


class OfflinePlanner:
    """Plans shutdown reservations for powercap windows."""

    def __init__(self, machine: Machine, policy: Policy) -> None:
        self.machine = machine
        self.policy = policy
        self.strategy = policy.shutdown_strategy

    # -- model interface ------------------------------------------------------------------

    def reference_watts(self, model_plan: PowerPlan | None = None) -> float:
        """Per-node worst-case watts for alive nodes under this policy.

        Delegated to the shutdown strategy: SHUT/IDLE/NONE run jobs at
        the top step; MIX plans for all alive nodes at its lowest
        allowed step (``Pmin`` = 2.0 GHz on Curie), since the online
        phase may always fall back there; ADAPTIVE picks per window
        based on the model case.
        """
        return self.strategy.reference_watts(self.policy, model_plan)

    def model_plan(self, cap_watts: float) -> PowerPlan:
        """The Section III continuous solution for this cap.

        Uses node-level powers only, like the paper's model; the cap
        is first stripped of the full-infrastructure share so the
        comparison is node-to-node.
        """
        ft = self.policy.freq_table
        infra = self.machine.topology.infrastructure_watts()
        node_budget = cap_watts - infra
        n = self.machine.n_nodes
        node_budget = max(node_budget, n * ft.down_watts)
        return plan_nodes(
            n,
            node_budget,
            pmax=ft.max.watts,
            pmin=self.policy.allowed.min.watts
            if self.policy.uses_dvfs
            else ft.min.watts,
            poff=ft.down_watts,
            degmin=max(self.policy.degmin, 1.0 + 1e-9),
        )

    # -- greedy grouped selection -----------------------------------------------------------

    def plan(self, cap: PowercapReservation) -> ShutdownPlan:
        """Plan the switch-off set for one cap window.

        Policies without shutdown rights return an empty plan, as do
        windows whose strategy declines switch-off (ADAPTIVE under a
        DVFS-regime cap).  Otherwise groups are selected greedily —
        whole racks while the deficit warrants them, then whole
        chassis, then single nodes — so that the worst-case alive
        power fits under the cap.
        """
        machine = self.machine
        topo = machine.topology
        ft = machine.freq_table
        if not self.policy.uses_shutdown:
            p_ref = self.strategy.reference_watts(self.policy)
            return ShutdownPlan(
                None, None, 0, 0, 0, 0.0,
                self._worst_case_alive(np.array([], int), p_ref),
            )

        model_plan = self.model_plan(cap.watts)
        p_ref = self.strategy.reference_watts(self.policy, model_plan)
        if not self.strategy.wants_shutdown(model_plan):
            return ShutdownPlan(
                None, model_plan, 0, 0, 0, 0.0,
                self._worst_case_alive(np.array([], int), p_ref),
            )
        node_savings = p_ref - ft.down_watts
        chassis_savings = (
            topo.nodes_per_chassis * (p_ref - 0.0) + topo.chassis_watts
        )  # BMCs dark in a complete chassis
        rack_savings = (
            chassis_savings * topo.chassis_per_rack + topo.rack_watts
        )

        deficit = self._worst_case_alive(np.array([], int), p_ref) - cap.watts
        selected: list[np.ndarray] = []
        n_racks_taken = 0
        n_chassis_taken = 0
        n_singles = 0
        next_rack = topo.racks - 1
        # Chassis are consumed from the high end of the still-unselected
        # racks; single nodes from the high end of the next chassis.
        while deficit > 1e-9:
            nodes_equiv = int(np.ceil(deficit / node_savings))
            if (
                nodes_equiv >= topo.nodes_per_rack
                and next_rack >= 0
                and n_racks_taken < topo.racks
            ):
                selected.append(topo.nodes_of_rack(next_rack))
                deficit -= rack_savings
                next_rack -= 1
                n_racks_taken += 1
            elif nodes_equiv >= topo.nodes_per_chassis and next_rack >= 0:
                chassis = topo.chassis_of_rack(next_rack)[-(n_chassis_taken + 1)]
                selected.append(topo.nodes_of_chassis(chassis))
                deficit -= chassis_savings
                n_chassis_taken += 1
                if n_chassis_taken == topo.chassis_per_rack:
                    # The whole rack got consumed chassis by chassis;
                    # its rack-level bonus applies too.
                    deficit -= topo.rack_watts
                    next_rack -= 1
                    n_racks_taken += 1
                    n_chassis_taken = 0
            elif next_rack >= 0:
                n_singles = min(
                    nodes_equiv,
                    topo.nodes_per_chassis * (topo.chassis_per_rack - n_chassis_taken),
                )
                chassis = topo.chassis_of_rack(next_rack)[
                    topo.chassis_per_rack - n_chassis_taken - 1
                ]
                nodes = topo.nodes_of_chassis(chassis)[-n_singles:]
                selected.append(nodes)
                deficit -= n_singles * node_savings
                break
            else:
                break  # everything is off; cap unreachable even so

        if not selected:
            return ShutdownPlan(
                None,
                model_plan,
                0,
                0,
                0,
                0.0,
                self._worst_case_alive(np.array([], int), p_ref),
            )

        nodes = np.unique(np.concatenate(selected))
        savings = shutdown_savings_from_idle(nodes, topo, ft.idle_watts)
        reservation = ShutdownReservation(
            start=cap.start,
            end=cap.end,
            nodes=nodes,
            savings_from_idle_watts=savings,
        )
        n_full_chassis = self._count_full(nodes, level="chassis")
        n_full_racks = self._count_full(nodes, level="rack")
        bonus = (
            n_full_chassis * topo.chassis_bonus_watts() + n_full_racks * topo.rack_watts
        )
        return ShutdownPlan(
            reservation=reservation,
            model_plan=model_plan,
            n_off_selected=int(nodes.size),
            n_full_racks=n_full_racks,
            n_full_chassis=n_full_chassis,
            bonus_watts=bonus,
            worst_case_alive_watts=self._worst_case_alive(nodes, p_ref),
        )

    # -- helpers -----------------------------------------------------------------------------

    def _count_full(self, nodes: np.ndarray, *, level: str) -> int:
        topo = self.machine.topology
        per_chassis = np.bincount(
            topo.chassis_of_node[nodes], minlength=topo.n_chassis
        )
        full_chassis = per_chassis == topo.nodes_per_chassis
        if level == "chassis":
            return int(full_chassis.sum())
        per_rack = np.bincount(
            topo.rack_of_chassis[np.nonzero(full_chassis)[0]], minlength=topo.racks
        )
        return int((per_rack == topo.chassis_per_rack).sum())

    def _worst_case_alive(
        self, off_nodes: np.ndarray, p_ref: float | None = None
    ) -> float:
        """Cluster power if every alive node ran at ``p_ref`` (the
        strategy's window-independent reference when omitted).

        Includes alive enclosure infrastructure and the BMCs of
        scattered off nodes — the quantity the cap must bound.
        """
        machine = self.machine
        topo = machine.topology
        ft = machine.freq_table
        if p_ref is None:
            p_ref = self.strategy.reference_watts(self.policy)
        n_off = int(off_nodes.size)
        n_full_chassis = self._count_full(off_nodes, level="chassis") if n_off else 0
        n_full_racks = self._count_full(off_nodes, level="rack") if n_off else 0
        dark_nodes = n_full_chassis * topo.nodes_per_chassis
        alive = machine.n_nodes - n_off
        return (
            alive * p_ref
            + (n_off - dark_nodes) * ft.down_watts
            + (topo.n_chassis - n_full_chassis) * topo.chassis_watts
            + (topo.racks - n_full_racks) * topo.rack_watts
        )
