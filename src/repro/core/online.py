"""Algorithm 2 — the online phase: per-job CPU-frequency selection.

At allocation time the controller "temporarily alters the states of
the candidate nodes, computes the resultant consumption and compares
it to the defined and planned powercap" (Section V).  Two kinds of
constraint exist:

* an **active** cap (now inside a window): the projected *current*
  cluster power must stay under it, or the job stays pending — the
  strict gate of Algorithm 2;
* a **planned** cap (the job's expected execution interval overlaps a
  future window): the job's frequency is chosen so the *projected*
  window power fits.  If even the lowest allowed step does not fit,
  the job is started anyway at that lowest step — the system
  "prepares itself" by shifting new jobs to low frequencies while the
  window approaches (Figure 6), and relies on the strict gate once
  the window opens (the paper's default of "no extreme actions": the
  scheduler waits for running jobs to drain below the cap).  The
  strict pre-window gate is available as an option for ablation.

The projected power of a future window assumes: running jobs whose
(stretched-walltime) end passes the window start keep their nodes
busy at their assigned frequency; planned switch-off reservations
deliver their full savings; every other node idles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cluster.power import PowerAccountant
from repro.core.policies import Policy
from repro.rjms.reservations import ReservationRegistry

#: Relative tolerance of power comparisons (floating accumulation).
_EPS = 1e-6


@dataclass(frozen=True)
class FrequencyDecision:
    """Outcome of the online algorithm for one candidate job."""

    ok: bool
    freq_index: int
    freq_ghz: float
    degradation: float
    #: True when the job only fit via the pre-window soft fallback.
    soft: bool = False
    #: Why the job cannot start (when ``ok`` is False).
    reason: str = ""


@dataclass
class _WindowConstraint:
    """A future cap window with its projected base power."""

    start: float
    end: float
    watts: float
    base: float  # projected cluster power during the window so far


class PowercapView:
    """Per-scheduling-pass snapshot of all power constraints.

    Build one per pass; it pre-computes each future window's projected
    base power in O(running jobs + windows), after which every
    candidate evaluation is O(allowed frequencies).  Call
    :meth:`note_start` for every job started during the pass so later
    candidates see the committed power.
    """

    def __init__(
        self,
        registry: ReservationRegistry,
        accountant: PowerAccountant,
        now: float,
        running_jobs,
    ) -> None:
        self.accountant = accountant
        self.now = now
        self.active_cap = registry.cap_at(now)
        self.windows: list[_WindowConstraint] = []
        future = registry.future_caps(now)
        if not future:
            return
        ft = accountant.freq_table
        idle_floor = accountant.idle_floor()
        for cap in future:
            base = idle_floor
            for sd in registry.shutdowns_overlapping(cap.start, cap.end):
                base -= sd.savings_from_idle_watts
            self.windows.append(
                _WindowConstraint(cap.start, cap.end, cap.watts, base)
            )
        for job in running_jobs:
            end = job.expected_end
            delta = accountant.busy_delta_watts(job.n_nodes, job.freq_index)
            for w in self.windows:
                if end > w.start:
                    w.base += delta

    @property
    def cap_is_active(self) -> bool:
        return math.isfinite(self.active_cap)

    def has_constraints(self) -> bool:
        return self.cap_is_active or bool(self.windows)

    def current_power(self) -> float:
        return self.accountant.total_power()

    def note_start(self, n_nodes: int, freq_index: int, expected_end: float) -> None:
        """Commit a started job to every window it overlaps."""
        delta = self.accountant.busy_delta_watts(n_nodes, freq_index)
        for w in self.windows:
            if expected_end > w.start:
                w.base += delta

    def headroom_active(self) -> float:
        """Watts left under the active cap right now (inf if none)."""
        if not self.cap_is_active:
            return math.inf
        return self.active_cap - self.current_power()

    def window_headroom(self, start_before: float) -> float:
        """Smallest projected headroom among windows starting before
        ``start_before`` (inf when none overlap)."""
        room = math.inf
        for w in self.windows:
            if w.start < start_before:
                room = min(room, w.watts - w.base)
        return room


class FrequencySelector:
    """Chooses each job's DVFS step against the current constraints."""

    def __init__(
        self,
        policy: Policy,
        *,
        strict_future: bool = False,
        cluster_rule: bool = False,
    ) -> None:
        self.policy = policy
        #: gate starts on future windows too (ablation; default soft)
        self.strict_future = strict_future
        #: use the "all idle nodes could run at f" rule of Section IV-B
        #: instead of the per-job Algorithm 2 walk (ablation)
        self.cluster_rule = cluster_rule
        self._indices_desc = policy.frequency_indices_desc()
        # The ladder walk runs ~backfill_depth times per scheduling
        # pass; everything per-step that does not depend on the
        # candidate job is precomputed once (same expressions, so the
        # decisions stay bit-identical to recomputing them inline).
        ft = policy.freq_table
        self._deg_desc = [
            policy.degradation(ft.steps[idx].ghz) for idx in self._indices_desc
        ]
        self._delta_per_node_desc = [
            ft.watts_array[idx] - ft.idle_watts for idx in self._indices_desc
        ]
        self._step_info = {
            idx: (ft.steps[idx].ghz, self._deg_desc[pos])
            for pos, idx in enumerate(self._indices_desc)
        }

    #: whether this selector ever re-scales running jobs mid-window;
    #: False lets the controller keep its drained-pass fast path
    tracks_observed: bool = False

    def pass_rescale_watts(self, active_cap_watts: float) -> float | None:
        """Power target running jobs should be re-scaled down to at
        the start of a scheduling pass, or ``None`` to leave them
        alone (the default: Algorithm 2 only decides at allocation
        time).  Feedback selectors (:mod:`repro.policy.strategies`)
        override this to track the active cap each pass.
        """
        return None

    def decide(
        self,
        n_nodes: int,
        walltime: float,
        view: PowercapView,
    ) -> FrequencyDecision:
        """Run Algorithm 2 for a candidate allocation of ``n_nodes``.

        ``walltime`` is the user's requested limit at full speed; the
        overlap horizon stretches with each candidate frequency.
        """
        if not self.policy.enforces_caps or not view.has_constraints():
            top = self._indices_desc[0]
            return self._mk(True, top, soft=False)
        if self.cluster_rule:
            return self._decide_cluster_rule(n_nodes, walltime, view)

        active = view.cap_is_active
        active_room = view.headroom_active()
        tol = _EPS * max(1.0, abs(view.active_cap)) if active else _EPS
        windows = view.windows
        now = view.now
        deltas = self._delta_per_node_desc
        for pos, idx in enumerate(self._indices_desc):
            delta = n_nodes * deltas[pos]
            if active and delta > active_room + tol:
                continue
            if windows:
                future_room = view.window_headroom(
                    now + walltime * self._deg_desc[pos]
                )
                if delta > future_room + tol:
                    continue
            return self._mk(True, idx, soft=False)

        # Nothing fits.  The strict gate applies for the active cap;
        # future-only violations fall back to the lowest allowed step.
        lowest = self._indices_desc[-1]
        delta = n_nodes * deltas[-1]
        if active and delta > active_room + _EPS * max(1.0, view.active_cap):
            return self._mk(False, lowest, reason="active powercap")
        if self.strict_future:
            return self._mk(False, lowest, reason="planned powercap")
        return self._mk(True, lowest, soft=True)

    def _decide_cluster_rule(
        self, n_nodes: int, walltime: float, view: PowercapView
    ) -> FrequencyDecision:
        """Section IV-B variant: the optimal frequency is the highest
        one *all idle nodes* could run at within the cap."""
        acct = view.accountant
        from repro.cluster.states import NodeState

        n_idle = int(acct.count_by_state[NodeState.IDLE])
        chosen = None
        for idx in self._indices_desc:
            ghz = acct.freq_table.steps[idx].ghz
            deg = self.policy.degradation(ghz)
            cluster_delta = acct.busy_delta_watts(n_idle, idx)
            room = min(
                view.headroom_active(),
                view.window_headroom(view.now + walltime * deg),
            )
            if cluster_delta <= room + _EPS * max(1.0, abs(room)):
                chosen = idx
                break
        if chosen is None:
            chosen = self._indices_desc[-1]
        # The job itself must still fit.
        delta = acct.busy_delta_watts(n_nodes, chosen)
        ghz = acct.freq_table.steps[chosen].ghz
        deg = self.policy.degradation(ghz)
        active_ok = (not view.cap_is_active) or delta <= view.headroom_active() + _EPS * max(
            1.0, view.active_cap
        )
        future_ok = delta <= view.window_headroom(view.now + walltime * deg) + _EPS
        if active_ok and future_ok:
            return self._mk(True, chosen, soft=False)
        if not active_ok:
            return self._mk(False, chosen, reason="active powercap")
        if self.strict_future:
            return self._mk(False, chosen, reason="planned powercap")
        return self._mk(True, self._indices_desc[-1], soft=True)

    def _mk(
        self, ok: bool, idx: int, *, soft: bool = False, reason: str = ""
    ) -> FrequencyDecision:
        ghz, deg = self._step_info[idx]
        return FrequencyDecision(
            ok=ok,
            freq_index=idx,
            freq_ghz=ghz,
            degradation=deg,
            soft=soft,
            reason=reason,
        )
