"""The paper's contribution: power-adaptive scheduling under a cap.

* :mod:`repro.core.powermodel` — Section III analytical model (the
  DVFS / switch-off trade-off, ``rho``, the four cases);
* :mod:`repro.core.policies` — NONE / IDLE / SHUT / DVFS / MIX;
* :mod:`repro.core.offline` — Algorithm 1: planned, grouped node
  switch-off reservations harvesting power bonuses;
* :mod:`repro.core.online` — Algorithm 2: per-job CPU-frequency
  selection against active and planned power caps.
"""

from repro.core.powermodel import (
    PowerPlan,
    ModelCase,
    rho,
    dvfs_beats_shutdown_exact,
    capacity,
    plan_nodes,
    plan_nodes_exact,
    dvfs_only_nodes,
    shutdown_only_nodes,
)
from repro.core.policies import (
    Policy,
    PolicyKind,
    make_policy,
    policy_set,
    CURIE_POLICIES,
)
from repro.core.offline import OfflinePlanner, ShutdownPlan
from repro.core.online import FrequencySelector, PowercapView, FrequencyDecision

__all__ = [
    "PowerPlan",
    "ModelCase",
    "rho",
    "dvfs_beats_shutdown_exact",
    "capacity",
    "plan_nodes",
    "plan_nodes_exact",
    "dvfs_only_nodes",
    "shutdown_only_nodes",
    "Policy",
    "PolicyKind",
    "make_policy",
    "policy_set",
    "CURIE_POLICIES",
    "OfflinePlanner",
    "ShutdownPlan",
    "FrequencySelector",
    "PowercapView",
    "FrequencyDecision",
]
