"""Powercap scheduling policies — thin shims over :mod:`repro.policy`.

Section IV-B defines the three administrator-selectable modes the
SLURM implementation exposes (``SchedulerParameters``) — ``SHUT``,
``DVFS`` and ``MIX`` — plus the two evaluation references ``NONE`` and
``IDLE``.  They used to live here as a closed enum; they are now the
first five entries of the declarative policy registry
(:mod:`repro.policy.builtin`), decomposed into shutdown-planning and
frequency-selection strategies, with their constants verbatim.

This module keeps the historical import surface working:

* :class:`Policy` / :class:`PolicyKind` re-export the bound policy and
  the legacy enum;
* :func:`make_policy` resolves *any registered policy name* (not just
  the five) against a machine's DVFS table;
* :func:`policy_set` builds the five paper policies for one machine
  (the factory behind :meth:`repro.platform.PlatformSpec.policies`).
"""

from __future__ import annotations

from repro.cluster.frequency import FrequencyTable
from repro.policy.spec import (
    DEFAULT_DEGMIN_FULL_RANGE,
    DEFAULT_DEGMIN_MIX_RANGE,
    DEFAULT_MIX_MIN_GHZ,
    Policy,
    PolicyKind,
    PolicySpec,
)
from repro.policy.registry import resolve_policy
from repro.policy.builtin import PAPER_POLICY_NAMES

__all__ = [
    "DEFAULT_DEGMIN_FULL_RANGE",
    "DEFAULT_DEGMIN_MIX_RANGE",
    "DEFAULT_MIX_MIN_GHZ",
    "PAPER_POLICY_NAMES",
    "Policy",
    "PolicyKind",
    "PolicySpec",
    "CURIE_POLICIES",
    "make_policy",
    "policy_set",
]


def make_policy(
    kind: PolicyKind | PolicySpec | str,
    freq_table: FrequencyTable,
    *,
    degmin: float | None = None,
    mix_min_ghz: float = DEFAULT_MIX_MIN_GHZ,
) -> Policy:
    """Build a policy for a machine.

    ``kind`` may be a registered policy name (``repro exp policies``
    lists them), a :class:`PolicyKind` member, or an inline
    :class:`PolicySpec`; unknown names raise ``ValueError`` listing
    the registry.  ``degmin`` defaults to the paper's replay
    constants: 1.63 for the full range, 1.29 for the MIX high range,
    1.0 when DVFS is unused.  Platform-aware callers pass their own
    constants (or use :meth:`repro.platform.PlatformSpec.make_policy`).
    """
    spec = resolve_policy(kind)
    return spec.build(
        freq_table,
        degmin_full=DEFAULT_DEGMIN_FULL_RANGE if degmin is None else degmin,
        degmin_mix=DEFAULT_DEGMIN_MIX_RANGE if degmin is None else degmin,
        mix_min_ghz=mix_min_ghz,
    )


def policy_set(
    freq_table: FrequencyTable,
    *,
    degmin_full: float = DEFAULT_DEGMIN_FULL_RANGE,
    degmin_mix: float = DEFAULT_DEGMIN_MIX_RANGE,
    mix_min_ghz: float = DEFAULT_MIX_MIN_GHZ,
) -> dict[str, Policy]:
    """The five paper policies for one machine's table and degradation
    model (the platform-parameterised factory behind
    :meth:`repro.platform.PlatformSpec.policies`)."""
    return {
        name: resolve_policy(name).build(
            freq_table,
            degmin_full=degmin_full,
            degmin_mix=degmin_mix,
            mix_min_ghz=mix_min_ghz,
        )
        for name in PAPER_POLICY_NAMES
    }


def CURIE_POLICIES(freq_table: FrequencyTable) -> dict[str, Policy]:
    """All five policies at the paper's constants (legacy name)."""
    return policy_set(freq_table)
