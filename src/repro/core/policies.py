"""Powercap scheduling policies: NONE, IDLE, SHUT, DVFS, MIX.

Section IV-B defines the three administrator-selectable modes the
SLURM implementation exposes (``SchedulerParameters``):

* ``SHUT`` — grouped node switch-off (offline phase), jobs always run
  at the maximum frequency;
* ``DVFS`` — no switch-off, jobs may be forced to any configured
  frequency (1.2-2.7 GHz on Curie);
* ``MIX``  — switch-off *plus* DVFS restricted to the
  energy-efficient high range (2.0-2.7 GHz on Curie, Section VI-B),
  with its own degradation constant (1.29).

The evaluation also uses two reference modes: ``NONE`` (powercap
ignored — the 100 % baseline) and ``IDLE`` (both mechanisms disabled:
the scheduler can only leave nodes idle, the paper's "worst work"
variant).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.cluster.frequency import FrequencyTable, degradation_factor

#: The paper's replay degradation constants (Section VII-B), measured
#: on Curie and used as the defaults of the bare string-policy path.
#: They are machine data, so every platform registry entry
#: (:mod:`repro.platform`) carries its own values; the Curie entry
#: repeats these verbatim (asserted by the platform tests).
DEFAULT_DEGMIN_FULL_RANGE = 1.63
DEFAULT_DEGMIN_MIX_RANGE = 1.29
DEFAULT_MIX_MIN_GHZ = 2.0


class PolicyKind(enum.Enum):
    NONE = "NONE"
    IDLE = "IDLE"
    SHUT = "SHUT"
    DVFS = "DVFS"
    MIX = "MIX"


@dataclass(frozen=True)
class Policy:
    """A powercap scheduling mode bound to a machine's DVFS table.

    Attributes
    ----------
    kind:
        Which of the five modes this is.
    freq_table:
        Full machine DVFS table.
    allowed:
        Sub-table of frequencies the online algorithm may assign
        (single-entry table at the max step for NONE/IDLE/SHUT).
    degmin:
        Completion-time degradation at the slowest *allowed* step
        (1.0 when DVFS is not used).
    """

    kind: PolicyKind
    freq_table: FrequencyTable
    allowed: FrequencyTable
    degmin: float

    @property
    def name(self) -> str:
        return self.kind.value

    @property
    def uses_shutdown(self) -> bool:
        """Whether the offline phase may plan switch-off reservations."""
        return self.kind in (PolicyKind.SHUT, PolicyKind.MIX)

    @property
    def uses_dvfs(self) -> bool:
        """Whether the online phase may lower job frequencies."""
        return len(self.allowed) > 1

    @property
    def enforces_caps(self) -> bool:
        """NONE ignores power caps entirely."""
        return self.kind != PolicyKind.NONE

    def degradation(self, ghz: float) -> float:
        """Runtime stretch for a job at ``ghz``.

        Linear between the policy's extreme allowed frequencies
        (Sections V, VII-B): 1.0 at the top step, ``degmin`` at the
        lowest allowed step.
        """
        return degradation_factor(ghz, self.allowed, self.degmin)

    def frequency_indices_desc(self) -> list[int]:
        """Indices (into the *full* table) of allowed steps, fastest first.

        This is the iteration order of Algorithm 2.
        """
        return [
            self.freq_table.index_of(step.ghz) for step in reversed(self.allowed.steps)
        ]


def make_policy(
    kind: PolicyKind | str,
    freq_table: FrequencyTable,
    *,
    degmin: float | None = None,
    mix_min_ghz: float = DEFAULT_MIX_MIN_GHZ,
) -> Policy:
    """Build a policy for a machine.

    ``degmin`` defaults to the paper's replay constants: 1.63 for the
    full range (DVFS), 1.29 for the MIX high range, 1.0 otherwise.
    Platform-aware callers pass their own constants (or use
    :meth:`repro.platform.PlatformSpec.make_policy`).
    """
    kind = PolicyKind(kind) if isinstance(kind, str) else kind
    top_only = freq_table.restrict(freq_table.max.ghz, freq_table.max.ghz)
    if kind in (PolicyKind.NONE, PolicyKind.IDLE, PolicyKind.SHUT):
        return Policy(kind, freq_table, top_only, 1.0)
    if kind == PolicyKind.DVFS:
        return Policy(
            kind,
            freq_table,
            freq_table,
            DEFAULT_DEGMIN_FULL_RANGE if degmin is None else degmin,
        )
    if kind == PolicyKind.MIX:
        allowed = freq_table.restrict(mix_min_ghz, freq_table.max.ghz)
        return Policy(
            kind,
            freq_table,
            allowed,
            DEFAULT_DEGMIN_MIX_RANGE if degmin is None else degmin,
        )
    raise ValueError(f"unknown policy kind {kind!r}")  # pragma: no cover


def policy_set(
    freq_table: FrequencyTable,
    *,
    degmin_full: float = DEFAULT_DEGMIN_FULL_RANGE,
    degmin_mix: float = DEFAULT_DEGMIN_MIX_RANGE,
    mix_min_ghz: float = DEFAULT_MIX_MIN_GHZ,
) -> dict[str, Policy]:
    """All five policies for one machine's table and degradation model.

    The platform-parameterised factory behind
    :meth:`repro.platform.PlatformSpec.policies`.
    """
    degmin = {PolicyKind.DVFS: degmin_full, PolicyKind.MIX: degmin_mix}
    return {
        k.value: make_policy(
            k, freq_table, degmin=degmin.get(k), mix_min_ghz=mix_min_ghz
        )
        for k in PolicyKind
    }


def CURIE_POLICIES(freq_table: FrequencyTable) -> dict[str, Policy]:
    """All five policies at the paper's constants (legacy name)."""
    return policy_set(freq_table)
