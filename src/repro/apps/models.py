"""Per-application DVFS trade-off models.

Section VI-B characterises Curie nodes by running Linpack (compute
bound), STREAM (memory bound), IMB (network bound) and GROMACS
(molecular dynamics) at every CPU frequency, measuring through IPMI:

* Figure 3 — maximum node power vs *normalised execution time* for
  each application across 1.2-2.7 GHz;
* Figure 4 — the per-state power envelope (the max across
  applications at each step);
* Figure 5 — ``degmin``, the completion-time degradation at the
  lowest frequency.

We model each application by its published ``degmin`` and a power
scale relative to the Figure 4 envelope (Linpack defines the
envelope; memory/network-bound codes draw less).  Execution time
interpolates linearly in frequency between 1.0 at 2.7 GHz and
``degmin`` at 1.2 GHz, the same interpolation the paper applies to
walltimes (Section V).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.curie import CURIE_FREQUENCY_TABLE
from repro.cluster.frequency import FrequencyTable, degradation_factor


@dataclass(frozen=True)
class AppModel:
    """DVFS behaviour of one application on one node type.

    Attributes
    ----------
    name:
        Application name.
    degmin:
        Completion-time degradation at the lowest frequency
        (Figure 5).
    power_scale:
        Fraction of the machine's per-state power envelope this
        application reaches (1.0 = defines the envelope).
    time_exponent:
        Convexity of the slowdown curve: execution time grows as
        ``1 + (degmin-1) * x**time_exponent`` with
        ``x = (fmax-f)/(fmax-fmin)``.  1.0 is the paper's *walltime*
        convention (linear, Section V); the measured applications
        behave convexly (> 1), which is what makes the
        energy/performance trade-off non-monotonic with optima in the
        2.0-2.7 GHz range (Section VI-B) — the rationale behind MIX.
    freq_table:
        The node's DVFS table (power envelope per step).
    """

    name: str
    degmin: float
    power_scale: float
    time_exponent: float = 1.0
    freq_table: FrequencyTable = CURIE_FREQUENCY_TABLE

    def __post_init__(self) -> None:
        if self.degmin < 1.0:
            raise ValueError(f"{self.name}: degmin must be >= 1")
        if not 0 < self.power_scale <= 1.0:
            raise ValueError(f"{self.name}: power_scale must be in (0, 1]")
        if self.time_exponent < 1.0:
            raise ValueError(f"{self.name}: time_exponent must be >= 1")

    def normalized_time(self, ghz: float) -> float:
        """Execution time at ``ghz`` relative to the top frequency."""
        if self.time_exponent == 1.0:
            return degradation_factor(ghz, self.freq_table, self.degmin)
        ft = self.freq_table
        lo, hi = ft.min.ghz, ft.max.ghz
        if not (lo - 1e-9 <= ghz <= hi + 1e-9):
            raise ValueError(f"{ghz} GHz outside [{lo}, {hi}]")
        x = (hi - ghz) / (hi - lo)
        return 1.0 + (self.degmin - 1.0) * x**self.time_exponent

    def power_watts(self, ghz: float) -> float:
        """Maximum node power while running this application at ``ghz``.

        Never below idle: a running node keeps its baseline draw.
        """
        idle = self.freq_table.idle_watts
        envelope = self.freq_table.watts(ghz)
        return max(idle, idle + self.power_scale * (envelope - idle))

    def energy_per_unit_work(self, ghz: float) -> float:
        """Relative node energy to complete a fixed computation at
        ``ghz`` (power x stretched time, normalised at the top step
        being ``power(max)``)."""
        return self.power_watts(ghz) * self.normalized_time(ghz)

    def tradeoff_curve(self) -> list[tuple[float, float, float]]:
        """``(ghz, normalized_time, power_watts)`` per DVFS step —
        one Figure 3 line."""
        return [
            (s.ghz, self.normalized_time(s.ghz), self.power_watts(s.ghz))
            for s in self.freq_table
        ]

    def best_energy_frequency(self) -> float:
        """Frequency minimising :meth:`energy_per_unit_work`."""
        return min(
            self.freq_table.frequencies, key=lambda g: self.energy_per_unit_work(g)
        )


def linpack_model() -> AppModel:
    """Compute-bound: defines the power envelope, strong degradation."""
    return AppModel("linpack", degmin=2.14, power_scale=1.0, time_exponent=2.0)


def imb_model() -> AppModel:
    """Network-bound (MPI benchmarks): strong degradation, lower power."""
    return AppModel("IMB", degmin=2.13, power_scale=0.72, time_exponent=2.0)


def stream_model() -> AppModel:
    """Memory-bound: mild degradation, mid power."""
    return AppModel("STREAM", degmin=1.26, power_scale=0.86, time_exponent=2.0)


def gromacs_model() -> AppModel:
    """Molecular dynamics: the mildest degradation of Figure 5."""
    return AppModel("GROMACS", degmin=1.16, power_scale=0.80, time_exponent=2.0)


def CURIE_APP_MODELS() -> dict[str, AppModel]:
    """The four applications the paper measured on Curie."""
    models = [linpack_model(), stream_model(), imb_model(), gromacs_model()]
    return {m.name: m for m in models}
