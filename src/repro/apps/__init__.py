"""Application power/performance models under DVFS (Figures 3 and 5)."""

from repro.apps.models import (
    AppModel,
    CURIE_APP_MODELS,
    linpack_model,
    stream_model,
    imb_model,
    gromacs_model,
)

__all__ = [
    "AppModel",
    "CURIE_APP_MODELS",
    "linpack_model",
    "stream_model",
    "imb_model",
    "gromacs_model",
]
