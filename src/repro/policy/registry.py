"""Name -> :class:`PolicySpec` registry.

The single lookup point behind the ``policy`` axis of the experiment
harness: scenarios, the controller's string-policy path, the CLI and
the platform policy factories all resolve policy names here.  Built-in
entries (:mod:`repro.policy.builtin`) are registered on import;
downstream code registers additional policies with
:func:`register_policy` — no simulator-stack change required, exactly
like :func:`repro.platform.register_platform`.
"""

from __future__ import annotations

from repro.policy.spec import PolicyKind, PolicySpec

_REGISTRY: dict[str, PolicySpec] = {}


def register_policy(spec: PolicySpec, *, replace: bool = False) -> PolicySpec:
    """Add ``spec`` to the registry under its name.

    Registering a different spec under an existing name raises unless
    ``replace`` is set; re-registering identical content is a no-op
    (idempotent imports).
    """
    existing = _REGISTRY.get(spec.name)
    if existing is not None:
        if existing == spec:
            return existing  # identical content: keep the original object
        if not replace:
            raise ValueError(
                f"policy {spec.name!r} is already registered with different "
                "content; pass replace=True to override"
            )
    _REGISTRY[spec.name] = spec
    return spec


def unregister_policy(name: str) -> None:
    """Remove a policy (primarily for tests)."""
    _REGISTRY.pop(name, None)


def get_policy(name: str) -> PolicySpec:
    """Look a policy up by name.

    Raises ``KeyError`` with the registry contents — the message the
    CLI surfaces for a typo'd ``--policy``.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; available: {', '.join(policy_names())}"
        ) from None


def resolve_policy(policy: "PolicySpec | PolicyKind | str") -> PolicySpec:
    """Normalise any accepted policy designator to a :class:`PolicySpec`.

    Strings and :class:`PolicyKind` members resolve through the
    registry; unknown names raise ``ValueError`` listing the
    registered entries (the ``make_policy`` contract).
    """
    if isinstance(policy, PolicySpec):
        return policy
    name = policy.value if isinstance(policy, PolicyKind) else str(policy)
    try:
        return get_policy(name)
    except KeyError as exc:
        raise ValueError(exc.args[0]) from None


def policy_names() -> list[str]:
    """Registered policy names, in registration order (paper five first)."""
    return list(_REGISTRY)


def policy_specs() -> list[PolicySpec]:
    return list(_REGISTRY.values())
