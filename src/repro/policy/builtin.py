"""Built-in policy registry entries.

The first five re-express the paper's administrator modes
(Section IV-B and the two evaluation references) on the
strategy axes, constants verbatim — the golden determinism digests
(:mod:`tests.exp.test_determinism`) pin them: every scenario of the
five must replay bit-identically through the registry path.

* ``NONE`` — powercap ignored (the 100 % baseline);
* ``IDLE`` — caps enforced but both mechanisms disabled (the paper's
  "worst work" variant: the scheduler can only leave nodes idle);
* ``SHUT`` — grouped node switch-off, jobs always at the top step;
* ``DVFS`` — no switch-off, jobs may be forced down the full ladder;
* ``MIX``  — switch-off plus DVFS restricted to the energy-efficient
  high range (2.0-2.7 GHz on Curie, Section VI-B).

Two genuinely new policies ship on the same seam:

* ``ADAPTIVE`` — at each cap window the offline phase evaluates the
  Section III model (:func:`repro.core.powermodel.plan_nodes`) against
  the platform's ladder and picks the winning mechanism: grouped
  switch-off when ``rho <= 0`` (shutdown-only/tie), pure DVFS when
  ``rho > 0``, and the combined case-4 split when the cap falls below
  the full-cluster lowest-frequency floor.  The online phase makes the
  matching per-constraint choice (top-step-only under a switch-off
  window, the full ladder otherwise).
* ``TRACK`` — a proportional feedback variant in the spirit of
  Cerf et al.'s control-theoretic runtime: no offline planning, no
  worst-case window projections; each scheduling pass re-selects
  frequencies against the *observed* cluster consumption, sliding the
  frequency setpoint linearly down the ladder as the measured power
  approaches ``track_gain * cap`` (the strict Algorithm 2 gate still
  bounds the final choice).
"""

from __future__ import annotations

from repro.policy.registry import register_policy
from repro.policy.spec import PolicySpec

#: the five paper modes, in the paper's order
PAPER_POLICY_NAMES: tuple[str, ...] = ("NONE", "IDLE", "SHUT", "DVFS", "MIX")

NONE_POLICY = PolicySpec(
    name="NONE",
    shutdown="none",
    frequency="top",
    enforces_caps=False,
    description="powercap ignored (100% reference baseline)",
)

IDLE_POLICY = PolicySpec(
    name="IDLE",
    shutdown="none",
    frequency="top",
    description="caps enforced with both mechanisms disabled (worst work)",
)

SHUT_POLICY = PolicySpec(
    name="SHUT",
    shutdown="grouped",
    frequency="top",
    description="grouped node switch-off, jobs at the top step",
)

DVFS_POLICY = PolicySpec(
    name="DVFS",
    shutdown="none",
    frequency="ladder",
    freq_range="full",
    description="no switch-off, DVFS over the full ladder",
)

MIX_POLICY = PolicySpec(
    name="MIX",
    shutdown="grouped",
    frequency="ladder",
    freq_range="mix",
    description="switch-off plus DVFS over the efficient high range",
)

ADAPTIVE_POLICY = PolicySpec(
    name="ADAPTIVE",
    shutdown="adaptive",
    frequency="adaptive",
    freq_range="full",
    description="Section III model picks SHUT, DVFS or the case-4 mix per window",
)

TRACK_POLICY = PolicySpec(
    name="TRACK",
    shutdown="none",
    frequency="track",
    freq_range="full",
    track_gain=0.9,
    description="proportional feedback against observed (not worst-case) power",
)

BUILTIN_POLICIES: tuple[PolicySpec, ...] = (
    NONE_POLICY,
    IDLE_POLICY,
    SHUT_POLICY,
    DVFS_POLICY,
    MIX_POLICY,
    ADAPTIVE_POLICY,
    TRACK_POLICY,
)

for _spec in BUILTIN_POLICIES:
    register_policy(_spec)
