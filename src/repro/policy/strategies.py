"""Strategy objects behind the policy registry.

A :class:`repro.policy.PolicySpec` names one strategy per phase; the
controller stack consumes the *objects* resolved here instead of
branching on a policy enum:

* :class:`ShutdownStrategy` — consulted by the offline phase
  (:class:`repro.core.offline.OfflinePlanner`) per cap window:
  whether switch-off is planned at all and which per-node reference
  power the greedy grouped selection must fit under the cap;
* :class:`FrequencyStrategy` — builds the online-phase selector
  (:class:`repro.core.online.FrequencySelector` or one of the
  subclasses below) the controller runs inside every scheduling pass.

Strategies are stateless singletons; :func:`shutdown_strategy` /
:func:`frequency_strategy` resolve the spec keys.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable

from repro.core.online import _EPS, FrequencySelector
from repro.core.powermodel import ModelCase, PowerPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.offline import OfflinePlanner
    from repro.core.online import FrequencyDecision, PowercapView
    from repro.policy.spec import Policy
    from repro.rjms.config import SchedulerConfig


# -- offline phase: shutdown planning ---------------------------------------------------


class ShutdownStrategy:
    """What the offline phase does with one powercap window."""

    key: str = ""

    def wants_shutdown(self, model_plan: PowerPlan) -> bool:
        """Whether switch-off reservations should be planned for a
        window whose Section III solution is ``model_plan``."""
        raise NotImplementedError

    def reference_watts(
        self, policy: "Policy", model_plan: PowerPlan | None = None
    ) -> float:
        """Per-node worst-case watts of alive nodes under ``policy``.

        The quantity the grouped selection (and the worst-case alive
        accounting) plans against: every alive node busy at the
        strategy's reference frequency.
        """
        raise NotImplementedError


class NoShutdown(ShutdownStrategy):
    """NONE/IDLE/DVFS/TRACK: the offline phase never switches off."""

    key = "none"

    def wants_shutdown(self, model_plan: PowerPlan) -> bool:
        return False

    def reference_watts(
        self, policy: "Policy", model_plan: PowerPlan | None = None
    ) -> float:
        return policy.freq_table.max.watts


class GroupedShutdown(ShutdownStrategy):
    """SHUT/MIX: the paper's greedy grouped switch-off, always.

    SHUT-like policies plan for alive nodes at the top step; policies
    that also throttle (MIX) plan for their lowest *allowed* step —
    the model's ``Pmin`` — since the online phase may always fall back
    there.
    """

    key = "grouped"

    def wants_shutdown(self, model_plan: PowerPlan) -> bool:
        return True

    def reference_watts(
        self, policy: "Policy", model_plan: PowerPlan | None = None
    ) -> float:
        if policy.uses_dvfs:
            return policy.allowed.min.watts
        return policy.freq_table.max.watts


class AdaptiveShutdown(ShutdownStrategy):
    """ADAPTIVE: per window, do what the Section III model says.

    ``rho > 0`` (DVFS wins) plans no switch-off at all; ``rho <= 0``
    plans like SHUT (alive nodes at the top step); a cap below the
    full-cluster lowest-frequency floor (case 4) plans the combined
    split like MIX (alive nodes at the lowest allowed step).
    """

    key = "adaptive"

    def wants_shutdown(self, model_plan: PowerPlan) -> bool:
        return model_plan.case is not ModelCase.DVFS_ONLY

    def reference_watts(
        self, policy: "Policy", model_plan: PowerPlan | None = None
    ) -> float:
        if model_plan is not None and model_plan.case is ModelCase.COMBINED:
            return policy.allowed.min.watts
        return policy.freq_table.max.watts


# -- online phase: frequency selection --------------------------------------------------


class FrequencyStrategy:
    """Builds the per-replay frequency selector for a bound policy."""

    key: str = ""

    def build_selector(
        self,
        policy: "Policy",
        *,
        config: "SchedulerConfig",
        planner: "OfflinePlanner",
    ) -> FrequencySelector:
        return FrequencySelector(
            policy,
            strict_future=config.strict_future_caps,
            cluster_rule=config.cluster_frequency_rule,
        )


class TopFrequency(FrequencyStrategy):
    """NONE/IDLE/SHUT: the selector walks a single-step ladder."""

    key = "top"


class LadderFrequency(FrequencyStrategy):
    """DVFS/MIX: Algorithm 2 over the policy's allowed range."""

    key = "ladder"


class AdaptiveFrequency(FrequencyStrategy):
    """ADAPTIVE: model-selected mechanism per power constraint."""

    key = "adaptive"

    def build_selector(
        self,
        policy: "Policy",
        *,
        config: "SchedulerConfig",
        planner: "OfflinePlanner",
    ) -> FrequencySelector:
        return AdaptiveFrequencySelector(
            policy,
            planner.model_plan,
            strict_future=config.strict_future_caps,
            cluster_rule=config.cluster_frequency_rule,
        )


class TrackFrequency(FrequencyStrategy):
    """TRACK: proportional feedback against observed consumption."""

    key = "track"

    def build_selector(
        self,
        policy: "Policy",
        *,
        config: "SchedulerConfig",
        planner: "OfflinePlanner",
    ) -> FrequencySelector:
        return TrackingFrequencySelector(
            policy,
            gain=policy.spec.track_gain,
            strict_future=config.strict_future_caps,
            cluster_rule=config.cluster_frequency_rule,
        )


class AdaptiveFrequencySelector(FrequencySelector):
    """Algorithm 2 with the mechanism chosen per constraint set.

    For the caps currently in view (the active window plus every
    planned one), the Section III model decides whether DVFS preserves
    more capacity than switch-off.  If any in-view cap is in the
    DVFS-only or combined regime, the candidate walks the full ladder;
    otherwise it behaves exactly like SHUT's top-step selector and
    relies on the offline switch-off plan plus the strict gate.

    The mechanism is a pure function of the cap wattage (via the
    planner's model), so decisions are memoised per distinct cap.
    """

    def __init__(
        self,
        policy: "Policy",
        model_plan: Callable[[float], PowerPlan],
        *,
        strict_future: bool = False,
        cluster_rule: bool = False,
    ) -> None:
        super().__init__(
            policy, strict_future=strict_future, cluster_rule=cluster_rule
        )
        self._model_plan = model_plan
        self._top = FrequencySelector(
            policy.restrict_to_top(),
            strict_future=strict_future,
            cluster_rule=cluster_rule,
        )
        self._dvfs_by_watts: dict[float, bool] = {}

    def mechanism_allows_dvfs(self, cap_watts: float) -> bool:
        """Whether the model picks a throttling mechanism for this cap."""
        hit = self._dvfs_by_watts.get(cap_watts)
        if hit is None:
            case = self._model_plan(cap_watts).case
            hit = case in (ModelCase.DVFS_ONLY, ModelCase.COMBINED)
            self._dvfs_by_watts[cap_watts] = hit
        return hit

    def decide(
        self, n_nodes: int, walltime: float, view: "PowercapView"
    ) -> "FrequencyDecision":
        if not self.policy.enforces_caps or not view.has_constraints():
            return super().decide(n_nodes, walltime, view)
        caps = [w.watts for w in view.windows]
        if view.cap_is_active:
            caps.append(view.active_cap)
        if any(self.mechanism_allows_dvfs(watts) for watts in caps):
            return super().decide(n_nodes, walltime, view)
        return self._top.decide(n_nodes, walltime, view)


class TrackingFrequencySelector(FrequencySelector):
    """Proportional feedback selection against observed power.

    The default Algorithm 2 plans against worst-case projections:
    future windows assume every running job holds its nodes busy until
    its full (stretched) walltime.  This variant drops the projections
    entirely and closes the loop on what the power accountant
    *measures*, like Cerf et al.'s control-theoretic runtime: each
    pass computes the cap utilisation ``observed / (gain * cap)`` and
    slides the frequency *setpoint* linearly down the allowed ladder —
    the top step while consumption is far below the cap, the lowest
    step once it reaches the ``gain`` margin.  The strict gate still
    applies: from the setpoint the ladder is walked further down until
    the candidate's extra draw fits under the cap, and a job that fits
    nowhere stays pending.  Outside a cap window jobs always run at
    the top step (nothing to track).
    """

    tracks_observed = True

    def __init__(
        self,
        policy: "Policy",
        *,
        gain: float = 1.0,
        strict_future: bool = False,
        cluster_rule: bool = False,
    ) -> None:
        if cluster_rule:
            # The Section IV-B cluster rule is a projection-based
            # ablation; silently ignoring the flag would let two
            # "different" ablation cells replay identically.
            raise ValueError(
                "the track strategy selects against observed consumption "
                "and does not support the cluster_frequency_rule ablation"
            )
        super().__init__(policy, strict_future=strict_future)
        if not gain > 0:
            raise ValueError(f"gain must be positive, got {gain}")
        self.gain = gain

    def setpoint(self, cap_watts: float, observed_watts: float) -> int:
        """Ladder position (0 = top step) of the proportional law."""
        indices = self._indices_desc
        frac = observed_watts / (self.gain * cap_watts)
        frac = min(max(frac, 0.0), 1.0)
        return int(round(frac * (len(indices) - 1)))

    def pass_rescale_watts(self, active_cap_watts: float) -> float | None:
        """Track the active cap: every pass, running jobs are stepped
        down the ladder (youngest first) until observed consumption
        fits under ``gain * cap`` — the actuation half of the feedback
        loop, mirroring the admission setpoint."""
        if not math.isfinite(active_cap_watts):
            return None
        return self.gain * active_cap_watts

    def decide(
        self, n_nodes: int, walltime: float, view: "PowercapView"
    ) -> "FrequencyDecision":
        if not self.policy.enforces_caps or not view.cap_is_active:
            return self._mk(True, self._indices_desc[0])
        cap = view.active_cap
        observed = view.current_power()
        tol = _EPS * max(1.0, abs(cap))
        indices = self._indices_desc
        deltas = self._delta_per_node_desc
        for pos in range(self.setpoint(cap, observed), len(indices)):
            if n_nodes * deltas[pos] <= cap - observed + tol:
                return self._mk(True, indices[pos])
        return self._mk(False, indices[-1], reason="active powercap")


# -- registries -------------------------------------------------------------------------

SHUTDOWN_STRATEGIES: dict[str, ShutdownStrategy] = {
    s.key: s for s in (NoShutdown(), GroupedShutdown(), AdaptiveShutdown())
}

FREQUENCY_STRATEGIES: dict[str, FrequencyStrategy] = {
    s.key: s
    for s in (TopFrequency(), LadderFrequency(), AdaptiveFrequency(), TrackFrequency())
}


def shutdown_strategy(key: str) -> ShutdownStrategy:
    try:
        return SHUTDOWN_STRATEGIES[key]
    except KeyError:
        raise ValueError(
            f"unknown shutdown strategy {key!r}; "
            f"available: {', '.join(SHUTDOWN_STRATEGIES)}"
        ) from None


def frequency_strategy(key: str) -> FrequencyStrategy:
    try:
        return FREQUENCY_STRATEGIES[key]
    except KeyError:
        raise ValueError(
            f"unknown frequency strategy {key!r}; "
            f"available: {', '.join(FREQUENCY_STRATEGIES)}"
        ) from None
