"""Declarative powercap policy description.

The paper's Section IV-B exposes its powercap modes as a closed
administrator enum (NONE/IDLE/SHUT/DVFS/MIX).  A :class:`PolicySpec`
decomposes every such mode into two **orthogonal strategies** and
captures the result as plain, serialisable data:

* a **shutdown-planning strategy** — what the offline phase
  (Algorithm 1, :class:`repro.core.offline.OfflinePlanner`) does with
  a cap window: nothing (``none``), the paper's greedy grouped
  switch-off (``grouped``), or a per-window Section III model decision
  (``adaptive``);
* a **frequency-selection strategy** — what the online phase
  (Algorithm 2, :class:`repro.core.online.FrequencySelector`) may do
  with a candidate job: pin the top step (``top``), walk a DVFS ladder
  (``ladder``), pick the mechanism per constraint from the model
  (``adaptive``), or track observed consumption with a proportional
  feedback gate (``track``).

Specs are frozen, content-hashable (:meth:`PolicySpec.content_hash`)
and round-trip through JSON (:meth:`to_dict` / :meth:`from_dict`),
exactly like :class:`repro.platform.PlatformSpec`.  The registry
(:mod:`repro.policy.registry`) maps names to specs; the five paper
modes are the first entries (:mod:`repro.policy.builtin`), re-expressed
with their constants verbatim and pinned by the golden digests.

Unlike a platform's, a policy's :meth:`content_hash` excludes the
**name**: a policy *is* its strategy content, and the registry name is
a label.  Renaming a policy therefore keeps every result-cache key
valid, while editing its registered content invalidates them.

Binding a spec to a machine's DVFS table
(:meth:`PolicySpec.build`) produces the runtime :class:`Policy` the
controller consumes — the class :mod:`repro.core.policies` now
re-exports as a thin shim.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, fields, replace
from typing import TYPE_CHECKING, Any, Mapping

from repro.cluster.frequency import FrequencyTable, degradation_factor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.policy.strategies import FrequencyStrategy, ShutdownStrategy

#: serialisation schema version; bump when PolicySpec semantics change
POLICY_SCHEMA_VERSION = 1

#: The paper's replay degradation constants (Section VII-B), measured
#: on Curie and used as the defaults of the bare string-policy path.
#: They are machine data, so every platform registry entry
#: (:mod:`repro.platform`) carries its own values; the Curie entry
#: repeats these verbatim (asserted by the platform tests).
DEFAULT_DEGMIN_FULL_RANGE = 1.63
DEFAULT_DEGMIN_MIX_RANGE = 1.29
DEFAULT_MIX_MIN_GHZ = 2.0

#: shutdown-planning strategy keys (see repro.policy.strategies)
SHUTDOWN_STRATEGY_KEYS = ("none", "grouped", "adaptive")
#: frequency-selection strategy keys (see repro.policy.strategies)
FREQUENCY_STRATEGY_KEYS = ("top", "ladder", "adaptive", "track")
#: DVFS spans a ladder may walk: the full machine ladder with the
#: full-range degradation constant, or the MIX-restricted high range.
FREQ_RANGES = ("full", "mix")


class PolicyKind(enum.Enum):
    """The paper's five modes (legacy identity; see the registry for
    the open-ended policy set)."""

    NONE = "NONE"
    IDLE = "IDLE"
    SHUT = "SHUT"
    DVFS = "DVFS"
    MIX = "MIX"


@dataclass(frozen=True)
class PolicySpec:
    """One powercap policy as declarative data.

    Attributes
    ----------
    name:
        Registry key and display label (excluded from the content
        hash — renaming a policy does not change what it does).
    shutdown:
        Shutdown-planning strategy key: ``none`` (the offline phase
        never switches nodes off), ``grouped`` (the paper's greedy
        rack/chassis selection, Algorithm 1), or ``adaptive``
        (per-window Section III decision).
    frequency:
        Frequency-selection strategy key: ``top`` (jobs always run at
        the maximum step), ``ladder`` (Algorithm 2 over the allowed
        range), ``adaptive`` (model-selected mechanism per
        constraint), or ``track`` (proportional feedback against
        observed consumption).
    freq_range:
        Which DVFS span a non-``top`` strategy walks: ``full`` (the
        whole ladder, full-range degradation) or ``mix`` (the
        energy-efficient high range above the platform's
        ``mix_min_ghz``, MIX-range degradation).
    enforces_caps:
        ``False`` replicates NONE: power caps are ignored entirely.
    track_gain:
        Proportional margin of the ``track`` strategy: the frequency
        setpoint reaches the lowest allowed step once observed power
        hits ``track_gain * cap``.  Gains below 1 throttle ahead of
        the cap to absorb the feedback lag; 1.0 only reaches the
        bottom step at the cap itself.  Ignored by other strategies
        (but still part of the content hash).
    description:
        Human-readable one-liner for listings (not hashed).
    """

    name: str
    shutdown: str = "none"
    frequency: str = "top"
    freq_range: str = "full"
    enforces_caps: bool = True
    track_gain: float = 1.0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("policy name cannot be empty")
        if self.shutdown not in SHUTDOWN_STRATEGY_KEYS:
            raise ValueError(
                f"unknown shutdown strategy {self.shutdown!r}; "
                f"expected one of {', '.join(SHUTDOWN_STRATEGY_KEYS)}"
            )
        if self.frequency not in FREQUENCY_STRATEGY_KEYS:
            raise ValueError(
                f"unknown frequency strategy {self.frequency!r}; "
                f"expected one of {', '.join(FREQUENCY_STRATEGY_KEYS)}"
            )
        if self.freq_range not in FREQ_RANGES:
            raise ValueError(
                f"unknown freq_range {self.freq_range!r}; "
                f"expected one of {', '.join(FREQ_RANGES)}"
            )
        if not self.track_gain > 0:
            raise ValueError(f"track_gain must be positive, got {self.track_gain}")

    # -- derived ----------------------------------------------------------------------

    @property
    def uses_shutdown(self) -> bool:
        """Whether the offline phase may plan switch-off reservations."""
        return self.shutdown != "none"

    @property
    def uses_dvfs(self) -> bool:
        """Whether the online phase may lower job frequencies."""
        return self.frequency != "top"

    # -- identity ---------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": POLICY_SCHEMA_VERSION,
            "name": self.name,
            "description": self.description,
            "shutdown": self.shutdown,
            "frequency": self.frequency,
            "freq_range": self.freq_range,
            "enforces_caps": self.enforces_caps,
            "track_gain": self.track_gain,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "PolicySpec":
        schema = d.get("schema", POLICY_SCHEMA_VERSION)
        if schema != POLICY_SCHEMA_VERSION:
            raise ValueError(f"unsupported policy schema {schema}")
        known = {f.name for f in fields(cls)} | {"schema"}
        unknown = sorted(set(d) - known)
        if unknown:
            raise ValueError(f"unknown PolicySpec keys {unknown}")
        return cls(
            name=str(d["name"]),
            description=str(d.get("description", "")),
            shutdown=str(d.get("shutdown", "none")),
            frequency=str(d.get("frequency", "top")),
            freq_range=str(d.get("freq_range", "full")),
            enforces_caps=bool(d.get("enforces_caps", True)),
            track_gain=float(d.get("track_gain", 1.0)),
        )

    def content_hash(self) -> str:
        """Stable 16-hex-digit content hash.

        ``name`` and ``description`` are excluded — both are labels.
        A policy's identity is its strategy content, so a renamed
        policy keys the same cache entries and an edited one misses.
        """
        content = self.to_dict()
        del content["name"]
        del content["description"]
        canon = json.dumps(content, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:16]

    # -- binding ----------------------------------------------------------------------

    def build(
        self,
        freq_table: FrequencyTable,
        *,
        degmin_full: float = DEFAULT_DEGMIN_FULL_RANGE,
        degmin_mix: float = DEFAULT_DEGMIN_MIX_RANGE,
        mix_min_ghz: float = DEFAULT_MIX_MIN_GHZ,
    ) -> "Policy":
        """Bind this spec to a machine's DVFS table.

        The degradation constants default to the paper's Curie replay
        values; platform-aware callers pass their own (see
        :meth:`repro.platform.PlatformSpec.make_policy`).
        """
        top_only = freq_table.restrict(freq_table.max.ghz, freq_table.max.ghz)
        if self.frequency == "top":
            allowed, degmin = top_only, 1.0
        elif self.freq_range == "mix":
            allowed = freq_table.restrict(mix_min_ghz, freq_table.max.ghz)
            degmin = degmin_mix
        else:
            allowed, degmin = freq_table, degmin_full
        return Policy(
            spec=self, freq_table=freq_table, allowed=allowed, degmin=degmin
        )


@dataclass(frozen=True)
class Policy:
    """A powercap policy bound to a machine's DVFS table.

    The runtime object the controller stack consumes.  Behaviour
    (shutdown planning, frequency selection) is delegated to the
    spec's strategy objects; this class only carries the bound table
    data the strategies and the accounting need.

    Attributes
    ----------
    spec:
        The declarative policy this binding realises.
    freq_table:
        Full machine DVFS table.
    allowed:
        Sub-table of frequencies the online algorithm may assign
        (single-entry table at the max step for ``top`` strategies).
    degmin:
        Completion-time degradation at the slowest *allowed* step
        (1.0 when DVFS is not used).
    """

    spec: PolicySpec
    freq_table: FrequencyTable
    allowed: FrequencyTable
    degmin: float

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def kind(self) -> PolicyKind | None:
        """The legacy enum member for the five paper policies,
        ``None`` for registry-defined ones."""
        try:
            return PolicyKind(self.spec.name)
        except ValueError:
            return None

    @property
    def uses_shutdown(self) -> bool:
        """Whether the offline phase may plan switch-off reservations."""
        return self.spec.uses_shutdown

    @property
    def uses_dvfs(self) -> bool:
        """Whether the online phase may lower job frequencies."""
        return len(self.allowed) > 1

    @property
    def enforces_caps(self) -> bool:
        """NONE-like policies ignore power caps entirely."""
        return self.spec.enforces_caps

    # -- strategy objects -------------------------------------------------------------

    @property
    def shutdown_strategy(self) -> "ShutdownStrategy":
        """The offline-phase strategy object of this policy."""
        from repro.policy.strategies import shutdown_strategy

        return shutdown_strategy(self.spec.shutdown)

    @property
    def frequency_strategy(self) -> "FrequencyStrategy":
        """The online-phase strategy object of this policy."""
        from repro.policy.strategies import frequency_strategy

        return frequency_strategy(self.spec.frequency)

    # -- table helpers ----------------------------------------------------------------

    def degradation(self, ghz: float) -> float:
        """Runtime stretch for a job at ``ghz``.

        Linear between the policy's extreme allowed frequencies
        (Sections V, VII-B): 1.0 at the top step, ``degmin`` at the
        lowest allowed step.
        """
        return degradation_factor(ghz, self.allowed, self.degmin)

    def frequency_indices_desc(self) -> list[int]:
        """Indices (into the *full* table) of allowed steps, fastest first.

        This is the iteration order of Algorithm 2.
        """
        return [
            self.freq_table.index_of(step.ghz) for step in reversed(self.allowed.steps)
        ]

    def restrict_to_top(self) -> "Policy":
        """A copy whose online phase may only use the top step.

        The ``adaptive`` frequency strategy uses this as its
        SHUT-flavoured half when the model selects switch-off.
        """
        top_only = self.freq_table.restrict(
            self.freq_table.max.ghz, self.freq_table.max.ghz
        )
        return replace(self, allowed=top_only, degmin=1.0)
