"""Declarative powercap-policy registry.

The policy analogue of :mod:`repro.platform`: a
:class:`PolicySpec` decomposes every powercap mode into a
**shutdown-planning strategy** (the offline phase, Algorithm 1) and a
**frequency-selection strategy** (the online phase, Algorithm 2),
bound together as frozen, JSON-round-trippable, content-hashable data
behind a name registry.  The paper's NONE/IDLE/SHUT/DVFS/MIX are the
first five entries (constants verbatim, golden digests byte-identical);
``ADAPTIVE`` (per-window Section III mechanism selection) and
``TRACK`` (proportional feedback against observed consumption) ship on
the same seam.

Strategy *objects* live in :mod:`repro.policy.strategies` (imported
lazily by the bound :class:`Policy` to keep the core import graph
acyclic).
"""

from repro.policy.spec import (
    DEFAULT_DEGMIN_FULL_RANGE,
    DEFAULT_DEGMIN_MIX_RANGE,
    DEFAULT_MIX_MIN_GHZ,
    FREQ_RANGES,
    FREQUENCY_STRATEGY_KEYS,
    POLICY_SCHEMA_VERSION,
    SHUTDOWN_STRATEGY_KEYS,
    Policy,
    PolicyKind,
    PolicySpec,
)
from repro.policy.registry import (
    get_policy,
    policy_names,
    policy_specs,
    register_policy,
    resolve_policy,
    unregister_policy,
)
from repro.policy.builtin import (
    ADAPTIVE_POLICY,
    BUILTIN_POLICIES,
    DVFS_POLICY,
    IDLE_POLICY,
    MIX_POLICY,
    NONE_POLICY,
    PAPER_POLICY_NAMES,
    SHUT_POLICY,
    TRACK_POLICY,
)

__all__ = [
    "DEFAULT_DEGMIN_FULL_RANGE",
    "DEFAULT_DEGMIN_MIX_RANGE",
    "DEFAULT_MIX_MIN_GHZ",
    "FREQ_RANGES",
    "FREQUENCY_STRATEGY_KEYS",
    "POLICY_SCHEMA_VERSION",
    "SHUTDOWN_STRATEGY_KEYS",
    "Policy",
    "PolicyKind",
    "PolicySpec",
    "get_policy",
    "policy_names",
    "policy_specs",
    "register_policy",
    "resolve_policy",
    "unregister_policy",
    "ADAPTIVE_POLICY",
    "BUILTIN_POLICIES",
    "DVFS_POLICY",
    "IDLE_POLICY",
    "MIX_POLICY",
    "NONE_POLICY",
    "PAPER_POLICY_NAMES",
    "SHUT_POLICY",
    "TRACK_POLICY",
]
