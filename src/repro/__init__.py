"""repro — reproduction of *Adaptive Resource and Job Management for
Limited Power Consumption* (Georgiou, Glesser, Trystram; IPDPSW 2015).

A power-capped HPC scheduling library: a SLURM-like RJMS simulator, the
Curie machine model, the paper's offline/online powercap algorithms
(SHUT / DVFS / MIX), calibrated synthetic Curie workloads, and the
harnesses regenerating every table and figure of the paper.

Quickstart::

    from repro import curie_machine, generate_interval, run_replay, powercap_reservation

    machine = curie_machine(scale=0.125)
    jobs = generate_interval(machine, "medianjob")
    caps = [powercap_reservation(machine, 0.6, start=2 * 3600, end=3 * 3600)]
    result = run_replay(machine, jobs, "MIX", duration=5 * 3600, powercaps=caps)
    print(result.summary())
"""

from repro.cluster import (
    Machine,
    FrequencyTable,
    Topology,
    NodeState,
    PowerAccountant,
    curie_machine,
)
from repro.core import (
    Policy,
    PolicyKind,
    make_policy,
    plan_nodes,
    rho,
    OfflinePlanner,
    FrequencySelector,
)
from repro.rjms import (
    Controller,
    SchedulerConfig,
    PriorityWeights,
    PowercapReservation,
    ShutdownReservation,
)
from repro.sim import SimEngine, run_replay, powercap_reservation, ReplayResult
from repro.workload import (
    JobSpec,
    CurieWorkloadModel,
    generate_interval,
    read_swf,
    swf_to_jobspecs,
    workload_stats,
)
from repro.analysis import run_policy_grid, render_grid, figure_series
from repro.apps import CURIE_APP_MODELS
from repro.platform import (
    PlatformSpec,
    get_platform,
    platform_names,
    register_platform,
)
from repro.policy import (
    PolicySpec,
    get_policy,
    policy_names,
    register_policy,
)
from repro.exp import (
    CapWindow,
    GridRunner,
    RunResult,
    SCENARIO_LIBRARY,
    Scenario,
    expand_grid,
    get_scenario,
    run_scenario,
)

__version__ = "1.1.0"

__all__ = [
    "Machine",
    "FrequencyTable",
    "Topology",
    "NodeState",
    "PowerAccountant",
    "curie_machine",
    "Policy",
    "PolicyKind",
    "make_policy",
    "plan_nodes",
    "rho",
    "OfflinePlanner",
    "FrequencySelector",
    "Controller",
    "SchedulerConfig",
    "PriorityWeights",
    "PowercapReservation",
    "ShutdownReservation",
    "SimEngine",
    "run_replay",
    "powercap_reservation",
    "ReplayResult",
    "JobSpec",
    "CurieWorkloadModel",
    "generate_interval",
    "read_swf",
    "swf_to_jobspecs",
    "workload_stats",
    "run_policy_grid",
    "render_grid",
    "figure_series",
    "CURIE_APP_MODELS",
    "PlatformSpec",
    "get_platform",
    "platform_names",
    "register_platform",
    "PolicySpec",
    "get_policy",
    "policy_names",
    "register_policy",
    "CapWindow",
    "GridRunner",
    "RunResult",
    "SCENARIO_LIBRARY",
    "Scenario",
    "expand_grid",
    "get_scenario",
    "run_scenario",
    "__version__",
]
