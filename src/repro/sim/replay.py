"""Workload replay driver — the equivalent of the paper's four-phase
replay methodology (Section VII-B): set up the environment, install
the initial state, replay submissions, post-treat the results.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.cluster.machine import Machine
from repro.core.policies import Policy
from repro.rjms.config import SchedulerConfig
from repro.rjms.controller import Controller
from repro.rjms.reservations import PowercapReservation
from repro.sim.engine import EventKind, SimEngine
from repro.sim.metrics import MetricsRecorder
from repro.workload.spec import JobSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.platform.spec import PlatformSpec


def powercap_reservation(
    machine: Machine,
    fraction: float,
    start: float,
    end: float = math.inf,
) -> PowercapReservation:
    """A cap window allocating ``fraction`` of the machine's maximum
    power for computation (the paper's 80 % / 60 % / 40 % scenarios)."""
    if not 0 < fraction <= 1:
        raise ValueError(f"cap fraction must be in (0, 1], got {fraction}")
    return PowercapReservation(
        start=start, end=end, watts=fraction * machine.max_power()
    )


@dataclass
class ReplayResult:
    """Everything a finished replay exposes for post-treatment."""

    machine: Machine
    policy: Policy
    duration: float
    recorder: MetricsRecorder
    controller: Controller
    n_submitted: int

    # -- the paper's three headline metrics (Figure 8) ------------------------------

    def energy_joules(self) -> float:
        return self.recorder.energy_joules(0.0, self.duration)

    def work_core_seconds(self) -> float:
        return self.recorder.work_core_seconds(0.0, self.duration)

    def launched_jobs(self) -> int:
        return self.recorder.launched_jobs(0.0, self.duration)

    def job_energy_joules(self) -> float:
        """Energy of allocated nodes only (SLURM job-energy basis)."""
        return self.recorder.job_energy_joules(0.0, self.duration)

    def effective_work_core_seconds(self) -> float:
        """Degradation-corrected computation actually delivered."""
        return self.recorder.effective_work_core_seconds(
            0.0, self.duration, self.machine.cores_per_node
        )

    # -- normalised to the maximal possible value -------------------------------------

    def energy_normalized(self) -> float:
        """Against the machine at max power for the whole interval."""
        return self.energy_joules() / (self.machine.max_power() * self.duration)

    def work_normalized(self) -> float:
        """Against every core computing for the whole interval."""
        return self.work_core_seconds() / (
            self.machine.total_cores * self.duration
        )

    def launched_jobs_normalized(self) -> float:
        """Against every submitted job having been launched."""
        return self.launched_jobs() / self.n_submitted if self.n_submitted else 0.0

    def effective_work_normalized(self) -> float:
        return self.effective_work_core_seconds() / (
            self.machine.total_cores * self.duration
        )

    def summary(self) -> dict[str, float]:
        return {
            "energy_joules": self.energy_joules(),
            "job_energy_joules": self.job_energy_joules(),
            "work_core_seconds": self.work_core_seconds(),
            "launched_jobs": float(self.launched_jobs()),
            "energy_norm": self.energy_normalized(),
            "work_norm": self.work_normalized(),
            "effective_work_norm": self.effective_work_normalized(),
            "jobs_norm": self.launched_jobs_normalized(),
        }


def run_replay(
    machine: Machine,
    jobs: Sequence[JobSpec],
    policy: Policy | str,
    *,
    duration: float,
    powercaps: Sequence[PowercapReservation] = (),
    config: SchedulerConfig | None = None,
    platform: "PlatformSpec | None" = None,
) -> ReplayResult:
    """Replay ``jobs`` on ``machine`` under ``policy`` for ``duration``
    seconds and return the instrumented result.

    Powercap reservations are registered before the replay starts —
    "powercap reservations are made in the beginning of the workload
    replay" (Section VII-B) — so the offline phase plans its shutdown
    reservations up front.  The replay is deterministic.

    A string ``policy`` resolves against ``platform``'s degradation
    model when one is given (:mod:`repro.platform`); without one it
    keeps the paper's Curie constants.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    engine = SimEngine()
    recorder = MetricsRecorder(machine.freq_table.frequencies)
    # String policies resolve inside Controller (the single
    # platform-aware resolution point).
    controller = Controller(
        machine,
        policy,
        engine,
        config=config,
        powercaps=powercaps,
        recorder=recorder,
        platform=platform,
    )
    policy = controller.policy
    for spec in jobs:
        if spec.submit_time > duration:
            continue
        engine.at(
            spec.submit_time,
            lambda s=spec: controller.submit(s),
            kind=EventKind.JOB_SUBMIT,
        )
    engine.run(until=duration)
    recorder.finalize(duration)
    return ReplayResult(
        machine=machine,
        policy=policy,
        duration=duration,
        recorder=recorder,
        controller=controller,
        n_submitted=sum(1 for s in jobs if s.submit_time <= duration),
    )
