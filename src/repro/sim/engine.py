"""Deterministic discrete-event engine.

A minimal priority-queue scheduler of timestamped callbacks.  Ties are
broken by (priority, insertion sequence) so replays are bit-for-bit
reproducible — the property the paper leans on to compare runs against
each other ("as the replay is deterministic, we can compare the
different replays").
"""

from __future__ import annotations

import enum
import heapq
import math
from dataclasses import dataclass, field
from typing import Callable


class EventKind(enum.IntEnum):
    """Event categories, in tie-breaking order at equal timestamps.

    Completions are processed before submissions so freed nodes are
    visible to the scheduling pass triggered at the same instant;
    scheduling passes run last, after all state changes of the
    instant have been applied.
    """

    POWERCAP_BEGIN = 0
    POWERCAP_END = 1
    JOB_END = 2
    NODE_TRANSITION = 3
    JOB_SUBMIT = 4
    TIMER = 5
    SCHED_PASS = 6


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordering: (time, kind, seq)."""

    time: float
    kind: EventKind
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class SimEngine:
    """Event loop with a virtual clock."""

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = 0
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current virtual time, seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (diagnostics)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        return sum(not e.cancelled for e in self._queue)

    def at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        kind: EventKind = EventKind.TIMER,
    ) -> Event:
        """Schedule ``callback`` at absolute ``time``.

        Scheduling in the past is an error: it would silently reorder
        causality.
        """
        if not math.isfinite(time):
            raise ValueError(f"non-finite event time {time}")
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        ev = Event(time=float(time), kind=kind, seq=self._seq, callback=callback)
        self._seq += 1
        heapq.heappush(self._queue, ev)
        return ev

    def after(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        kind: EventKind = EventKind.TIMER,
    ) -> Event:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.at(self._now + delay, callback, kind=kind)

    @staticmethod
    def cancel(event: Event) -> None:
        """Cancel a pending event (no-op if it already ran)."""
        event.cancelled = True

    def run(self, until: float = math.inf) -> float:
        """Process events up to and including time ``until``.

        Returns the virtual time afterwards: ``until`` if the horizon
        was reached with events remaining, otherwise the time of the
        last processed event.
        """
        while self._queue:
            if self._queue[0].time > until:
                self._now = max(self._now, until) if math.isfinite(until) else self._now
                return self._now
            ev = heapq.heappop(self._queue)
            if ev.cancelled:
                continue
            self._now = ev.time
            self._processed += 1
            ev.callback()
        if math.isfinite(until):
            self._now = max(self._now, until)
        return self._now

    def step(self) -> bool:
        """Process exactly one event.  Returns False when drained."""
        while self._queue:
            ev = heapq.heappop(self._queue)
            if ev.cancelled:
                continue
            self._now = ev.time
            self._processed += 1
            ev.callback()
            return True
        return False
