"""Deterministic discrete-event engine.

A minimal priority-queue scheduler of timestamped callbacks.  Ties are
broken by (priority, insertion sequence) so replays are bit-for-bit
reproducible — the property the paper leans on to compare runs against
each other ("as the replay is deterministic, we can compare the
different replays").
"""

from __future__ import annotations

import enum
import heapq
import math
from dataclasses import dataclass, field
from typing import Callable


class EventKind(enum.IntEnum):
    """Event categories, in tie-breaking order at equal timestamps.

    Completions are processed before submissions so freed nodes are
    visible to the scheduling pass triggered at the same instant;
    scheduling passes run last, after all state changes of the
    instant have been applied.
    """

    POWERCAP_BEGIN = 0
    POWERCAP_END = 1
    JOB_END = 2
    NODE_TRANSITION = 3
    JOB_SUBMIT = 4
    TIMER = 5
    SCHED_PASS = 6


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordering: (time, kind, seq)."""

    time: float
    kind: EventKind
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: back-reference for cancellation accounting; cleared once the
    #: event leaves the queue so late cancels stay no-ops
    engine: "SimEngine | None" = field(default=None, compare=False, repr=False)


class SimEngine:
    """Event loop with a virtual clock.

    Cancelled events are dropped lazily on pop, but their count is
    tracked so :attr:`pending_events` is O(1) and the heap is compacted
    whenever cancelled entries outnumber live ones — long replays that
    reschedule job completions (dynamic rescaling, kills) no longer
    accumulate dead heap entries.
    """

    #: below this queue size compaction is pointless bookkeeping
    _COMPACT_MIN = 64

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = 0
        self._now = 0.0
        self._processed = 0
        self._n_cancelled = 0

    @property
    def now(self) -> float:
        """Current virtual time, seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (diagnostics)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Live (non-cancelled) events still queued.  O(1)."""
        return len(self._queue) - self._n_cancelled

    def at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        kind: EventKind = EventKind.TIMER,
    ) -> Event:
        """Schedule ``callback`` at absolute ``time``.

        Scheduling in the past is an error: it would silently reorder
        causality.
        """
        if not math.isfinite(time):
            raise ValueError(f"non-finite event time {time}")
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        ev = Event(
            time=float(time), kind=kind, seq=self._seq, callback=callback, engine=self
        )
        self._seq += 1
        heapq.heappush(self._queue, ev)
        return ev

    def after(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        kind: EventKind = EventKind.TIMER,
    ) -> Event:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.at(self._now + delay, callback, kind=kind)

    @staticmethod
    def cancel(event: Event) -> None:
        """Cancel a pending event (no-op if it already ran)."""
        if event.cancelled:
            return
        event.cancelled = True
        if event.engine is not None:
            event.engine._note_cancelled()

    def _note_cancelled(self) -> None:
        self._n_cancelled += 1
        if (
            len(self._queue) >= self._COMPACT_MIN
            and self._n_cancelled * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.

        Event ordering is total ((time, kind, seq) is unique), so
        heapify cannot reorder ties and replay determinism holds.
        """
        self._queue = [e for e in self._queue if not e.cancelled]
        heapq.heapify(self._queue)
        self._n_cancelled = 0

    def _pop(self) -> Event | None:
        """Next live event off the heap, or None when drained."""
        while self._queue:
            ev = heapq.heappop(self._queue)
            ev.engine = None
            if ev.cancelled:
                self._n_cancelled -= 1
                continue
            return ev
        return None

    @property
    def next_event_time(self) -> float | None:
        """Time of the next live event, or None when drained.

        Cancelled heap heads are discarded on the way, so repeated
        peeks stay O(1) amortised.
        """
        while self._queue:
            head = self._queue[0]
            if not head.cancelled:
                return head.time
            heapq.heappop(self._queue)
            head.engine = None
            self._n_cancelled -= 1
        return None

    def run(self, until: float = math.inf) -> float:
        """Process events up to and including time ``until``.

        Returns the virtual time afterwards: ``until`` if the horizon
        was reached with live events still pending beyond it,
        otherwise the time of the last processed event — the clock
        never advances past the final event of a drained queue,
        whatever the horizon.
        """
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                head.engine = None
                self._n_cancelled -= 1
                continue
            if head.time > until:
                self._now = max(self._now, until) if math.isfinite(until) else self._now
                return self._now
            ev = heapq.heappop(self._queue)
            ev.engine = None
            self._now = ev.time
            self._processed += 1
            ev.callback()
        return self._now

    def run_before(self, horizon: float) -> float:
        """Process events with time *strictly below* ``horizon``.

        The half-open complement of :meth:`run`: afterwards every
        pending event satisfies ``time >= horizon``, and the clock
        stays at the last processed event (it is never clamped up to
        the horizon).  This is the primitive batched replays fork on —
        a checkpoint at ``horizon`` must leave the events *at* the
        horizon unprocessed so every fork replays them itself.
        """
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                head.engine = None
                self._n_cancelled -= 1
                continue
            if head.time >= horizon:
                break
            ev = heapq.heappop(self._queue)
            ev.engine = None
            self._now = ev.time
            self._processed += 1
            ev.callback()
        return self._now

    def restore_clock(self, now: float, processed: int) -> None:
        """Adopt a checkpoint's clock after reconstructing its events.

        The fork/warm-start machinery (:mod:`repro.sim.batch`) rebuilds
        a checkpoint by scheduling the pending events against a fresh
        engine — whose clock still reads zero, so :meth:`at` accepts
        them — and then jumping the clock to the donor's.  Every
        pending event must lie at or beyond ``now``; anything earlier
        would mean the checkpoint skipped causally ordered work.
        """
        if not math.isfinite(now) or now < self._now:
            raise ValueError(f"cannot restore clock to {now} from {self._now}")
        for ev in self._queue:
            if not ev.cancelled and ev.time < now:
                raise ValueError(
                    f"pending event at {ev.time} predates restored clock {now}"
                )
        self._now = float(now)
        self._processed = int(processed)

    def step(self) -> bool:
        """Process exactly one event.  Returns False when drained."""
        ev = self._pop()
        if ev is None:
            return False
        self._now = ev.time
        self._processed += 1
        ev.callback()
        return True
