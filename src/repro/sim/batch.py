"""Batched lockstep replay: N same-platform replays in one process.

Grid cells of a powercap sweep differ only in their cap windows; the
workload, the machine, the policy and the scheduler configuration are
shared.  This module replays N such cells together:

* **Array facade** — every cell's :class:`~repro.cluster.power.
  PowerAccountant` state is re-homed into one scenario-major
  structure-of-arrays (:class:`BatchNodeArrays`), mirroring the
  columnar metrics recorder: per-scenario rows, per-node columns.
  Each accountant keeps operating on its own row *view*, so all its
  vectorised transitions work unchanged, while whole-batch readouts
  (node states, power accounting) are single NumPy reductions.

* **Shared event horizon** — the cells advance in lockstep between
  the union of their reservation-window boundaries, one
  ``engine.run(until=boundary)`` slice per cell per chunk.  Chunked
  advancement is observationally identical to one continuous run: the
  engine clock never moves past the last processed event of a drained
  queue (see :meth:`SimEngine.run`), so slicing introduces no
  spurious clock motion.

* **Checkpointed warm-starts** — before the earliest instant at which
  any cell's cap set can influence its replay, all cells are
  provably byte-identical.  One donor cell replays that shared prefix
  once (:meth:`SimEngine.run_before` keeps events *at* the fork time
  pending), then every sibling is forked from a structured checkpoint
  of the donor's engine/controller/recorder state.  Divergence onset
  is computed conservatively per cell (see :func:`_divergence_onset`);
  whenever the bound is not strictly positive, the batch falls back to
  plain lockstep from time zero — correctness never depends on the
  warm start, only the speedup does.

Bit-identity is the contract: a batched cell produces the same trace
digest as :func:`repro.sim.replay.run_replay` on the same scenario.
Event-queue tie order survives the fork because the (time, kind, seq)
ordering only consults ``seq`` *within* a kind, and kinds partition
the event sources: the fork reconstructs submissions in workload
order, job completions in donor creation order, and at most one
scheduling pass — exactly the relative orders a solo replay produces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace as _dc_replace
from typing import Sequence

import numpy as np

from repro.cluster.machine import Machine
from repro.cluster.power import PowerAccountant
from repro.core.online import FrequencySelector
from repro.core.policies import Policy, make_policy
from repro.rjms.config import SchedulerConfig
from repro.rjms.controller import Controller
from repro.rjms.job import Job
from repro.rjms.reservations import PowercapReservation
from repro.sim.engine import EventKind, SimEngine
from repro.sim.metrics import MetricsRecorder
from repro.sim.replay import ReplayResult
from repro.workload.spec import JobSpec

__all__ = ["BatchNodeArrays", "run_replay_batch"]

#: event kinds a donor may have pending at a checkpoint; anything else
#: (in-flight node transitions, foreign timers) vetoes the warm start
_FORKABLE_KINDS = frozenset(
    {
        EventKind.POWERCAP_BEGIN,
        EventKind.POWERCAP_END,
        EventKind.JOB_END,
        EventKind.JOB_SUBMIT,
        EventKind.SCHED_PASS,
    }
)


class BatchNodeArrays:
    """Scenario-major structure-of-arrays over N power accountants.

    Row ``i`` holds cell ``i``'s node-state, frequency and power
    vectors; adopting an accountant repoints its attributes at the
    row's views, so every incremental transition it performs lands in
    the shared matrices while the accountant's own code is untouched
    (row slices of a C-contiguous matrix are themselves contiguous,
    so fancy indexing and ``np.add.at`` work identically on them).

    The running-job tables and the metrics series stay per-cell — the
    pending queue and the recorder are already columnar SoA — and the
    facade unifies the remaining hot state: node state, DVFS indices,
    per-node watts, enclosure darkness counters and the busy/state
    histograms that power accounting reads.
    """

    def __init__(self, accountants: Sequence[PowerAccountant]) -> None:
        if not accountants:
            raise ValueError("need at least one accountant")
        base = accountants[0]
        n_nodes = base.topology.n_nodes
        for acct in accountants:
            if (
                acct.topology.n_nodes != n_nodes
                or acct.topology.n_chassis != base.topology.n_chassis
                or acct.topology.racks != base.topology.racks
                or len(acct.freq_table) != len(base.freq_table)
            ):
                raise ValueError("accountants must share one platform shape")
        n = len(accountants)
        self.n_cells = n
        self.n_nodes = n_nodes
        self.state = np.empty((n, n_nodes), dtype=np.int8)
        self.freq_index = np.empty((n, n_nodes), dtype=np.int16)
        self.node_watts = np.empty((n, n_nodes), dtype=np.float64)
        self.off_per_chassis = np.empty(
            (n, base.topology.n_chassis), dtype=np.int32
        )
        self.dark_per_rack = np.empty((n, base.topology.racks), dtype=np.int32)
        self.busy_count_by_freq = np.empty(
            (n, len(base.freq_table)), dtype=np.int64
        )
        self.count_by_state = np.empty(
            (n, len(base.count_by_state)), dtype=np.int64
        )
        for row, acct in enumerate(accountants):
            self._adopt(row, acct)
        self._accountants = tuple(accountants)

    def _adopt(self, row: int, acct: PowerAccountant) -> None:
        """Copy ``acct``'s vectors into row ``row`` and re-home its
        attributes onto the row views."""
        self.state[row] = acct.state
        acct.state = self.state[row]
        self.freq_index[row] = acct.freq_index
        acct.freq_index = self.freq_index[row]
        self.node_watts[row] = acct._node_watts
        acct._node_watts = self.node_watts[row]
        self.off_per_chassis[row] = acct._off_per_chassis
        acct._off_per_chassis = self.off_per_chassis[row]
        self.dark_per_rack[row] = acct._dark_per_rack
        acct._dark_per_rack = self.dark_per_rack[row]
        self.busy_count_by_freq[row] = acct.busy_count_by_freq
        acct.busy_count_by_freq = self.busy_count_by_freq[row]
        self.count_by_state[row] = acct.count_by_state
        acct.count_by_state = self.count_by_state[row]

    # -- whole-batch readouts ----------------------------------------------------------

    def total_node_watts(self) -> np.ndarray:
        """Per-cell sum of node watts (one reduction over the batch)."""
        return self.node_watts.sum(axis=1)

    def total_power(self) -> np.ndarray:
        """Per-cell instantaneous cluster power (incl. infrastructure)."""
        return np.array([a.total_power() for a in self._accountants])

    def busy_nodes(self) -> np.ndarray:
        """Per-cell count of BUSY nodes."""
        return self.busy_count_by_freq.sum(axis=1)

    def verify(self) -> None:
        """Cross-check every adopted accountant against its row."""
        for row, acct in enumerate(self._accountants):
            assert acct.state.base is self.state, "row view detached"
            acct.verify()


@dataclass
class _Cell:
    """One replay of the batch."""

    engine: SimEngine
    recorder: MetricsRecorder
    controller: Controller


def _fork_slack(policy: Policy, controller: Controller, specs: Sequence[JobSpec]) -> float:
    """Seconds before a cap window during which frequency decisions may
    already differ between cells.

    A plain single-step selector without the strict-future or
    cluster-rule ablations decides identically whether or not a future
    window is in view (the only step either fits or is taken via the
    soft fallback, and the ``soft`` flag is never consumed), so its
    slack is zero.  Any other selector is bounded conservatively by
    the longest stretched walltime in the workload: a decision at
    ``t`` can only see windows starting before ``t + walltime * deg``.
    """
    selector = controller.freq_selector
    cfg = controller.config
    if (
        type(selector) is FrequencySelector
        and len(policy.frequency_indices_desc()) == 1
        and not cfg.strict_future_caps
        and not cfg.cluster_frequency_rule
    ):
        return 0.0
    max_walltime = max((s.walltime for s in specs), default=0.0)
    max_deg = max(
        policy.degradation(policy.freq_table.steps[i].ghz)
        for i in policy.frequency_indices_desc()
    )
    return max_walltime * max_deg


def _divergence_onset(cell: _Cell, slack: float) -> float:
    """Earliest instant at which this cell's reservations can alter its
    replay relative to the cap-free baseline.

    Strictly before the returned time the cell's behaviour is provably
    independent of its cap set: active-cap effects start at each
    window's ``start``, pre-window frequency steering at ``start -
    slack``, and shutdown reservations protect their nodes from one
    drain horizon ahead of the window (``-inf`` for the default
    infinite horizon — such cells never warm-start).
    """
    ctl = cell.controller
    if not ctl.policy.enforces_caps:
        return math.inf
    onset = math.inf
    for cap in ctl.registry.powercaps:
        onset = min(onset, cap.start - slack)
    horizon = ctl.config.reservation_drain_horizon
    for sd in ctl.registry.shutdowns:
        if math.isinf(horizon):
            return -math.inf
        onset = min(onset, sd.start - horizon)
    return onset


def _checkpoint_safe(donor: _Cell) -> bool:
    """Whether the donor's post-prefix state is fork-reconstructible."""
    eng = donor.engine
    if eng._n_cancelled:
        return False
    if any(ev.kind not in _FORKABLE_KINDS for ev in eng._queue):
        return False
    if donor.controller._shutdown_wanted.any():
        return False
    return True


def _copy_job(job: Job) -> Job:
    clone = Job(spec=job.spec, n_nodes=job.n_nodes)
    clone.state = job.state
    clone.nodes = None if job.nodes is None else job.nodes.copy()
    clone.freq_index = job.freq_index
    clone.freq_ghz = job.freq_ghz
    clone.degradation = job.degradation
    clone.start_time = job.start_time
    clone.end_time = job.end_time
    return clone


def _fork_into(
    donor: _Cell, sib: _Cell, specs: Sequence[JobSpec], fork_t: float
) -> None:
    """Install the donor's checkpoint into a freshly constructed
    sibling cell.

    The sibling keeps its own construction-time reservation events
    (they all lie at or beyond ``fork_t``); the fork reconstructs the
    dynamic state on top: job tables, node/power state, metrics
    prefix, pending completions, the pending scheduling pass and the
    not-yet-replayed submissions.
    """
    dctl, sctl = donor.controller, sib.controller

    # -- job objects (shared per-fork copy map: running/jobs/queue alias) ----
    jobmap = {jid: _copy_job(j) for jid, j in dctl.jobs.items()}
    sctl.jobs = {jid: jobmap[jid] for jid in dctl.jobs}
    sctl.running = {jid: jobmap[jid] for jid in dctl.running}
    sctl.rejected = list(dctl.rejected)

    # -- pending queue: re-add in donor row order reproduces the exact
    #    swap-remove layout (and therefore every later ordering)
    dq = dctl.queue
    for row in range(dq._n):
        sctl.queue.add(jobmap[int(dq._ids[row])])

    # -- fair-share decay chain ---------------------------------------------
    np.copyto(sctl.fairshare._usage, dctl.fairshare._usage)
    sctl.fairshare._last_decay = dctl.fairshare._last_decay

    # -- power accounting (row views stay adopted; copy in place) ------------
    da, sa = dctl.accountant, sctl.accountant
    np.copyto(sa.state, da.state)
    np.copyto(sa.freq_index, da.freq_index)
    np.copyto(sa._node_watts, da._node_watts)
    np.copyto(sa._off_per_chassis, da._off_per_chassis)
    np.copyto(sa._dark_per_rack, da._dark_per_rack)
    np.copyto(sa.busy_count_by_freq, da.busy_count_by_freq)
    np.copyto(sa.count_by_state, da.count_by_state)
    sa._node_watts_sum = da._node_watts_sum
    sa._n_dark_chassis = da._n_dark_chassis
    sa._n_dark_racks = da._n_dark_racks
    sa.version = da.version

    # -- controller scalars and caches --------------------------------------
    np.copyto(sctl._cores_by_freq, dctl._cores_by_freq)
    sctl._last_pass = dctl._last_pass
    sctl._running_version = dctl._running_version
    sctl._free_version = -1
    sctl._mask_key = None
    sctl._snapshot_version = -1

    # -- metrics prefix ------------------------------------------------------
    dr, sr = donor.recorder, sib.recorder
    sr._t = dr._t.copy()
    sr._cbf = dr._cbf.copy()
    sr._scal = dr._scal.copy()
    sr._n = dr._n
    sr.jobs = {jid: _dc_replace(rec) for jid, rec in dr.jobs.items()}
    sr._launch_times = list(dr._launch_times)
    sr._launch_sorted = dr._launch_sorted
    sr._completion_times = list(dr._completion_times)
    sr._completion_sorted = dr._completion_sorted

    # -- pending events ------------------------------------------------------
    # Completions in donor creation order (seq order within JOB_END),
    # so same-instant completions replay in the donor's tie order.
    for jid, ev in sorted(dctl._end_events.items(), key=lambda kv: kv[1].seq):
        sctl._end_events[jid] = sib.engine.at(
            ev.time,
            lambda j=jobmap[jid]: sctl._on_job_end(j),
            kind=EventKind.JOB_END,
        )
    if dctl._pass_pending:
        pass_time = next(
            ev.time
            for ev in donor.engine._queue
            if ev.kind == EventKind.SCHED_PASS and not ev.cancelled
        )
        sib.engine.at(pass_time, sctl._sched_pass, kind=EventKind.SCHED_PASS)
        sctl._pass_pending = True
    # Submissions the prefix did not reach, in workload order.
    for spec in specs:
        if spec.submit_time >= fork_t:
            sib.engine.at(
                spec.submit_time,
                lambda s=spec: sctl.submit(s),
                kind=EventKind.JOB_SUBMIT,
            )

    # -- clock last: every event above lies at or beyond fork_t --------------
    sib.engine._now = donor.engine._now
    sib.engine._processed = donor.engine._processed


def _schedule_submissions(cell: _Cell, specs: Sequence[JobSpec]) -> None:
    for spec in specs:
        cell.engine.at(
            spec.submit_time,
            lambda s=spec: cell.controller.submit(s),
            kind=EventKind.JOB_SUBMIT,
        )


def run_replay_batch(
    machine: Machine,
    jobs: Sequence[JobSpec],
    policy: Policy | str,
    *,
    duration: float,
    caps_per_cell: Sequence[Sequence[PowercapReservation]],
    config: SchedulerConfig | None = None,
    platform=None,
) -> list[ReplayResult]:
    """Replay one workload under N cap sets in a single lockstep batch.

    Equivalent to N calls of :func:`repro.sim.replay.run_replay` with
    identical ``machine``/``jobs``/``policy``/``config`` and the i-th
    cap list — bit for bit, including the trace digest — but sharing
    one process, one scenario-major node-state matrix, and (when the
    divergence analysis allows) one replayed pre-window prefix.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    if not caps_per_cell:
        raise ValueError("need at least one cell")
    if isinstance(policy, str):
        policy = (
            platform.make_policy(policy, machine.freq_table)
            if platform is not None
            else make_policy(policy, machine.freq_table)
        )
    specs = [s for s in jobs if s.submit_time <= duration]

    cells: list[_Cell] = []
    for caps in caps_per_cell:
        engine = SimEngine()
        recorder = MetricsRecorder(machine.freq_table.frequencies)
        controller = Controller(
            machine,
            policy,
            engine,
            config=config,
            powercaps=list(caps),
            recorder=recorder,
            platform=platform,
        )
        cells.append(_Cell(engine, recorder, controller))

    batch = BatchNodeArrays([c.controller.accountant for c in cells])

    slack = _fork_slack(policy, cells[0].controller, specs)
    fork_t = min(
        min(_divergence_onset(c, slack) for c in cells), duration
    )

    if len(cells) > 1 and fork_t > 0:
        donor = cells[0]
        _schedule_submissions(donor, specs)
        donor.engine.run_before(fork_t)
        if _checkpoint_safe(donor):
            for sib in cells[1:]:
                _fork_into(donor, sib, specs, fork_t)
        else:  # pragma: no cover - insurance against future event kinds
            for sib in cells[1:]:
                _schedule_submissions(sib, specs)
            fork_t = 0.0
    else:
        fork_t = 0.0
        for cell in cells:
            _schedule_submissions(cell, specs)

    # Lockstep: advance every cell to each shared window boundary, then
    # to the end of the replay.  A cell already past a boundary (the
    # donor after a vetoed fork) treats the slice as a no-op.
    edges = sorted(
        {
            b
            for cell in cells
            for b in cell.controller.registry.boundaries()
            if fork_t < b < duration
        }
    )
    for horizon in edges:
        for cell in cells:
            cell.engine.run(until=horizon)
    for cell in cells:
        cell.engine.run(until=duration)

    batch.verify()

    results = []
    for cell in cells:
        cell.recorder.finalize(duration)
        results.append(
            ReplayResult(
                machine=machine,
                policy=cell.controller.policy,
                duration=duration,
                recorder=cell.recorder,
                controller=cell.controller,
                n_submitted=len(specs),
            )
        )
    return results
