"""Batched lockstep replay: N same-platform replays in one process.

Grid cells of a powercap sweep differ only in their cap windows; the
workload, the machine, the policy and the scheduler configuration are
shared.  This module replays N such cells together:

* **Array facade** — every cell's :class:`~repro.cluster.power.
  PowerAccountant` state is re-homed into one scenario-major
  structure-of-arrays (:class:`BatchNodeArrays`), mirroring the
  columnar metrics recorder: per-scenario rows, per-node columns.
  Each accountant keeps operating on its own row *view*, so all its
  vectorised transitions work unchanged, while whole-batch readouts
  (node states, power accounting) are single NumPy reductions.

* **Shared event horizon** — the cells advance in lockstep between
  the union of their reservation-window boundaries, one
  ``engine.run(until=boundary)`` slice per cell per chunk.  Chunked
  advancement is observationally identical to one continuous run: the
  engine clock never moves past the last processed event of a drained
  queue (see :meth:`SimEngine.run`), so slicing introduces no
  spurious clock motion.

* **Checkpointed warm-starts** — before the earliest instant at which
  any cell's cap set can influence its replay, all cells are
  provably byte-identical.  One donor cell replays that shared prefix
  once (:meth:`SimEngine.run_before` keeps events *at* the fork time
  pending), then every sibling is forked from a structured checkpoint
  of the donor's engine/controller/recorder state.  Divergence onset
  is computed conservatively per cell (see :func:`_divergence_onset`);
  whenever the bound is not strictly positive, the batch falls back to
  plain lockstep from time zero — correctness never depends on the
  warm start, only the speedup does.

Bit-identity is the contract: a batched cell produces the same trace
digest as :func:`repro.sim.replay.run_replay` on the same scenario.
Event-queue tie order survives the fork because the (time, kind, seq)
ordering only consults ``seq`` *within* a kind, and kinds partition
the event sources: the fork reconstructs submissions in workload
order, job completions in donor creation order, and at most one
scheduling pass — exactly the relative orders a solo replay produces.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from repro.cluster.machine import Machine
from repro.cluster.power import PowerAccountant
from repro.core.online import FrequencySelector
from repro.core.policies import Policy, make_policy
from repro.rjms.config import SchedulerConfig
from repro.rjms.controller import Controller
from repro.rjms.job import Job, JobState
from repro.rjms.reservations import PowercapReservation
from repro.sim.engine import EventKind, SimEngine
from repro.sim.metrics import JobRecord, MetricsRecorder
from repro.sim.replay import ReplayResult
from repro.workload.spec import JobSpec

__all__ = [
    "BatchNodeArrays",
    "FORK_STATE_VERSION",
    "capture_fork_state",
    "fork_state_nbytes",
    "install_fork_state",
    "run_replay_batch",
]

#: version of the fork-state layout below; bumped whenever the captured
#: field set changes, so persisted checkpoints from older layouts are
#: rejected instead of misinstalled
FORK_STATE_VERSION = 1

#: event kinds a donor may have pending at a checkpoint; anything else
#: (in-flight node transitions, foreign timers) vetoes the warm start
_FORKABLE_KINDS = frozenset(
    {
        EventKind.POWERCAP_BEGIN,
        EventKind.POWERCAP_END,
        EventKind.JOB_END,
        EventKind.JOB_SUBMIT,
        EventKind.SCHED_PASS,
    }
)


class BatchNodeArrays:
    """Scenario-major structure-of-arrays over N power accountants.

    Row ``i`` holds cell ``i``'s node-state, frequency and power
    vectors; adopting an accountant repoints its attributes at the
    row's views, so every incremental transition it performs lands in
    the shared matrices while the accountant's own code is untouched
    (row slices of a C-contiguous matrix are themselves contiguous,
    so fancy indexing and ``np.add.at`` work identically on them).

    The running-job tables and the metrics series stay per-cell — the
    pending queue and the recorder are already columnar SoA — and the
    facade unifies the remaining hot state: node state, DVFS indices,
    per-node watts, enclosure darkness counters and the busy/state
    histograms that power accounting reads.
    """

    def __init__(self, accountants: Sequence[PowerAccountant]) -> None:
        if not accountants:
            raise ValueError("need at least one accountant")
        base = accountants[0]
        n_nodes = base.topology.n_nodes
        for acct in accountants:
            if (
                acct.topology.n_nodes != n_nodes
                or acct.topology.n_chassis != base.topology.n_chassis
                or acct.topology.racks != base.topology.racks
                or len(acct.freq_table) != len(base.freq_table)
            ):
                raise ValueError("accountants must share one platform shape")
        n = len(accountants)
        self.n_cells = n
        self.n_nodes = n_nodes
        self.state = np.empty((n, n_nodes), dtype=np.int8)
        self.freq_index = np.empty((n, n_nodes), dtype=np.int16)
        self.node_watts = np.empty((n, n_nodes), dtype=np.float64)
        self.off_per_chassis = np.empty(
            (n, base.topology.n_chassis), dtype=np.int32
        )
        self.dark_per_rack = np.empty((n, base.topology.racks), dtype=np.int32)
        self.busy_count_by_freq = np.empty(
            (n, len(base.freq_table)), dtype=np.int64
        )
        self.count_by_state = np.empty(
            (n, len(base.count_by_state)), dtype=np.int64
        )
        for row, acct in enumerate(accountants):
            self._adopt(row, acct)
        self._accountants = tuple(accountants)

    def _adopt(self, row: int, acct: PowerAccountant) -> None:
        """Copy ``acct``'s vectors into row ``row`` and re-home its
        attributes onto the row views."""
        self.state[row] = acct.state
        acct.state = self.state[row]
        self.freq_index[row] = acct.freq_index
        acct.freq_index = self.freq_index[row]
        self.node_watts[row] = acct._node_watts
        acct._node_watts = self.node_watts[row]
        self.off_per_chassis[row] = acct._off_per_chassis
        acct._off_per_chassis = self.off_per_chassis[row]
        self.dark_per_rack[row] = acct._dark_per_rack
        acct._dark_per_rack = self.dark_per_rack[row]
        self.busy_count_by_freq[row] = acct.busy_count_by_freq
        acct.busy_count_by_freq = self.busy_count_by_freq[row]
        self.count_by_state[row] = acct.count_by_state
        acct.count_by_state = self.count_by_state[row]

    # -- whole-batch readouts ----------------------------------------------------------

    def total_node_watts(self) -> np.ndarray:
        """Per-cell sum of node watts (one reduction over the batch)."""
        return self.node_watts.sum(axis=1)

    def total_power(self) -> np.ndarray:
        """Per-cell instantaneous cluster power (incl. infrastructure)."""
        return np.array([a.total_power() for a in self._accountants])

    def busy_nodes(self) -> np.ndarray:
        """Per-cell count of BUSY nodes."""
        return self.busy_count_by_freq.sum(axis=1)

    def verify(self) -> None:
        """Cross-check every adopted accountant against its row."""
        for row, acct in enumerate(self._accountants):
            assert acct.state.base is self.state, "row view detached"
            acct.verify()


@dataclass
class _Cell:
    """One replay of the batch."""

    engine: SimEngine
    recorder: MetricsRecorder
    controller: Controller


def _fork_slack(policy: Policy, controller: Controller, specs: Sequence[JobSpec]) -> float:
    """Seconds before a cap window during which frequency decisions may
    already differ between cells.

    A plain single-step selector without the strict-future or
    cluster-rule ablations decides identically whether or not a future
    window is in view (the only step either fits or is taken via the
    soft fallback, and the ``soft`` flag is never consumed), so its
    slack is zero.  Any other selector is bounded conservatively by
    the longest stretched walltime in the workload: a decision at
    ``t`` can only see windows starting before ``t + walltime * deg``.
    """
    selector = controller.freq_selector
    cfg = controller.config
    if (
        type(selector) is FrequencySelector
        and len(policy.frequency_indices_desc()) == 1
        and not cfg.strict_future_caps
        and not cfg.cluster_frequency_rule
    ):
        return 0.0
    max_walltime = max((s.walltime for s in specs), default=0.0)
    max_deg = max(
        policy.degradation(policy.freq_table.steps[i].ghz)
        for i in policy.frequency_indices_desc()
    )
    return max_walltime * max_deg


def _divergence_onset(cell: _Cell, slack: float) -> float:
    """Earliest instant at which this cell's reservations can alter its
    replay relative to the cap-free baseline.

    Strictly before the returned time the cell's behaviour is provably
    independent of its cap set: active-cap effects start at each
    window's ``start``, pre-window frequency steering at ``start -
    slack``, and shutdown reservations protect their nodes from one
    drain horizon ahead of the window (``-inf`` for the default
    infinite horizon — such cells never warm-start).
    """
    ctl = cell.controller
    if not ctl.policy.enforces_caps:
        return math.inf
    onset = math.inf
    for cap in ctl.registry.powercaps:
        onset = min(onset, cap.start - slack)
    horizon = ctl.config.reservation_drain_horizon
    for sd in ctl.registry.shutdowns:
        if math.isinf(horizon):
            return -math.inf
        onset = min(onset, sd.start - horizon)
    return onset


def _checkpoint_safe(donor: _Cell) -> bool:
    """Whether the donor's post-prefix state is fork-reconstructible."""
    eng = donor.engine
    if eng._n_cancelled:
        return False
    if any(ev.kind not in _FORKABLE_KINDS for ev in eng._queue):
        return False
    if donor.controller._shutdown_wanted.any():
        return False
    return True


# -- fork-state serialisation ------------------------------------------------------
#
# The captured state is a two-part structure: ``meta`` is pure JSON
# (every float rendered through ``float.hex()`` so parsing it back is
# bit-exact, including ``inf``/``-inf``), ``arrays`` is a dict of numpy
# arrays.  The split matches the persisted artifact layout of
# :mod:`repro.exp.checkpoints` — a ``.json`` file plus an ``.npz`` —
# so the in-memory fork and a store-restored warm start install the
# exact same representation through the exact same code path.


def _hx(x: float) -> str:
    return float(x).hex()


def _hx_opt(x: float | None) -> str | None:
    return None if x is None else float(x).hex()


def _unhx(s: str) -> float:
    return float.fromhex(s)


def _unhx_opt(s: str | None) -> float | None:
    return None if s is None else float.fromhex(s)


def capture_fork_state(donor: _Cell, fork_t: float) -> dict:
    """Snapshot the donor's dynamic state at the fork horizon.

    Preconditions: the donor has replayed its prefix via
    ``run_before(fork_t)`` and :func:`_checkpoint_safe` holds.  The
    snapshot covers exactly the state :func:`install_fork_state`
    rebuilds: job tables (with allocation vectors), pending queue
    layout, fair-share usage, accountant arrays and scalars,
    controller caches, the columnar metrics prefix, and the pending
    completion/scheduling events.  All orderings that carry tie-break
    meaning (job-table insertion, queue rows, completion seq order)
    are preserved as explicit lists.
    """
    ctl = donor.controller
    eng = donor.engine
    rec = donor.recorder
    acct = ctl.accountant

    jobs_meta = []
    node_chunks = []
    for jid, job in ctl.jobs.items():
        jobs_meta.append(
            {
                "id": int(jid),
                "n_nodes": int(job.n_nodes),
                "state": job.state.value,
                "n_alloc": -1 if job.nodes is None else int(len(job.nodes)),
                "freq_index": None if job.freq_index is None else int(job.freq_index),
                "freq_ghz": _hx_opt(job.freq_ghz),
                "degradation": _hx(job.degradation),
                "start_time": _hx_opt(job.start_time),
                "end_time": _hx_opt(job.end_time),
            }
        )
        if job.nodes is not None:
            node_chunks.append(np.asarray(job.nodes, dtype=np.int64))

    rec_jobs = [
        {
            "id": int(jid),
            "cores": int(r.cores),
            "n_nodes": int(r.n_nodes),
            "submit_time": _hx(r.submit_time),
            "start_time": _hx_opt(r.start_time),
            "end_time": _hx_opt(r.end_time),
            "freq_ghz": _hx_opt(r.freq_ghz),
            "degradation": _hx(r.degradation),
            "state": r.state,
        }
        for jid, r in rec.jobs.items()
    ]

    pass_time = None
    if ctl._pass_pending:
        pass_time = _hx(
            next(
                ev.time
                for ev in eng._queue
                if ev.kind == EventKind.SCHED_PASS and not ev.cancelled
            )
        )

    dq = ctl.queue
    meta = {
        "version": FORK_STATE_VERSION,
        "horizon": _hx(fork_t),
        "now": _hx(eng._now),
        "processed": int(eng._processed),
        "jobs": jobs_meta,
        "running": [int(jid) for jid in ctl.running],
        "rejected": [int(jid) for jid in ctl.rejected],
        "queue": [int(dq._ids[row]) for row in range(dq._n)],
        "fair_last_decay": _hx(ctl.fairshare._last_decay),
        "acct": {
            "node_watts_sum": _hx(acct._node_watts_sum),
            "n_dark_chassis": int(acct._n_dark_chassis),
            "n_dark_racks": int(acct._n_dark_racks),
            "version": int(acct.version),
        },
        "last_pass": _hx(ctl._last_pass),
        "running_version": int(ctl._running_version),
        "pass_time": pass_time,
        # Completions in donor creation order (seq order within
        # JOB_END), so same-instant completions replay in tie order.
        "end_events": [
            [int(jid), _hx(ev.time)]
            for jid, ev in sorted(
                ctl._end_events.items(), key=lambda kv: kv[1].seq
            )
        ],
        "rec_n": int(rec._n),
        "rec_jobs": rec_jobs,
        "launch_sorted": bool(rec._launch_sorted),
        "completion_sorted": bool(rec._completion_sorted),
    }
    n = rec._n
    arrays = {
        "acct_state": acct.state.copy(),
        "acct_freq_index": acct.freq_index.copy(),
        "acct_node_watts": acct._node_watts.copy(),
        "acct_off_per_chassis": acct._off_per_chassis.copy(),
        "acct_dark_per_rack": acct._dark_per_rack.copy(),
        "acct_busy_count_by_freq": acct.busy_count_by_freq.copy(),
        "acct_count_by_state": acct.count_by_state.copy(),
        "cores_by_freq": ctl._cores_by_freq.copy(),
        "fair_usage": ctl.fairshare._usage.copy(),
        "rec_t": rec._t[:n].copy(),
        "rec_cbf": rec._cbf[:n].copy(),
        "rec_scal": rec._scal[:n].copy(),
        "launch_times": np.asarray(rec._launch_times, dtype=np.float64),
        "completion_times": np.asarray(rec._completion_times, dtype=np.float64),
        "job_nodes": (
            np.concatenate(node_chunks)
            if node_chunks
            else np.empty(0, dtype=np.int64)
        ),
    }
    return {"meta": meta, "arrays": arrays}


def fork_state_nbytes(state: Mapping[str, Any]) -> int:
    """Total array payload of a captured fork state, in bytes.

    The number that matters to the data plane: it is what a pool
    worker would pickle (or place in a shm segment) to move the state
    across a process boundary, and what the fork-state cache holds
    resident per entry.
    """
    return int(sum(a.nbytes for a in state.get("arrays", {}).values()))


def install_fork_state(
    cell: _Cell, state: dict, specs: Sequence[JobSpec]
) -> None:
    """Install a captured fork state into a freshly constructed cell.

    The cell keeps its own construction-time reservation events (they
    all lie at or beyond the checkpoint horizon); the install
    reconstructs the dynamic state on top: job tables, node/power
    state, metrics prefix, pending completions, the pending scheduling
    pass and the not-yet-replayed submissions.  Job objects are built
    fresh per cell — nothing is shared with the capture or with other
    installs of the same state.
    """
    meta = state["meta"]
    if meta["version"] != FORK_STATE_VERSION:
        raise ValueError(
            f"fork-state version {meta['version']} != {FORK_STATE_VERSION}"
        )
    arrays = state["arrays"]
    horizon = _unhx(meta["horizon"])
    sctl = cell.controller
    sr = cell.recorder

    # -- job objects (shared per-cell copy map: running/jobs/queue alias) ----
    spec_by_id = {s.job_id: s for s in specs}
    nodes_flat = np.asarray(arrays["job_nodes"], dtype=np.int64)
    pos = 0
    jobmap: dict[int, Job] = {}
    for jm in meta["jobs"]:
        job = Job(spec=spec_by_id[jm["id"]], n_nodes=jm["n_nodes"])
        job.state = JobState(jm["state"])
        n_alloc = jm["n_alloc"]
        if n_alloc >= 0:
            job.nodes = nodes_flat[pos : pos + n_alloc].copy()
            pos += n_alloc
        job.freq_index = jm["freq_index"]
        job.freq_ghz = _unhx_opt(jm["freq_ghz"])
        job.degradation = _unhx(jm["degradation"])
        job.start_time = _unhx_opt(jm["start_time"])
        job.end_time = _unhx_opt(jm["end_time"])
        jobmap[jm["id"]] = job
    sctl.jobs = dict(jobmap)
    sctl.running = {jid: jobmap[jid] for jid in meta["running"]}
    sctl.rejected = list(meta["rejected"])

    # -- pending queue: re-add in donor row order reproduces the exact
    #    swap-remove layout (and therefore every later ordering)
    for jid in meta["queue"]:
        sctl.queue.add(jobmap[jid])

    # -- fair-share decay chain ---------------------------------------------
    np.copyto(sctl.fairshare._usage, arrays["fair_usage"])
    sctl.fairshare._last_decay = _unhx(meta["fair_last_decay"])

    # -- power accounting (row views stay adopted; copy in place) ------------
    sa = sctl.accountant
    np.copyto(sa.state, arrays["acct_state"])
    np.copyto(sa.freq_index, arrays["acct_freq_index"])
    np.copyto(sa._node_watts, arrays["acct_node_watts"])
    np.copyto(sa._off_per_chassis, arrays["acct_off_per_chassis"])
    np.copyto(sa._dark_per_rack, arrays["acct_dark_per_rack"])
    np.copyto(sa.busy_count_by_freq, arrays["acct_busy_count_by_freq"])
    np.copyto(sa.count_by_state, arrays["acct_count_by_state"])
    am = meta["acct"]
    sa._node_watts_sum = _unhx(am["node_watts_sum"])
    sa._n_dark_chassis = am["n_dark_chassis"]
    sa._n_dark_racks = am["n_dark_racks"]
    sa.version = am["version"]

    # -- controller scalars and caches --------------------------------------
    np.copyto(sctl._cores_by_freq, arrays["cores_by_freq"])
    sctl._last_pass = _unhx(meta["last_pass"])
    sctl._running_version = meta["running_version"]
    sctl._free_version = -1
    sctl._mask_key = None
    sctl._snapshot_version = -1

    # -- metrics prefix ------------------------------------------------------
    n = meta["rec_n"]
    cap = max(len(sr._t), n)
    t = np.empty(cap, dtype=np.float64)
    t[:n] = arrays["rec_t"]
    cbf = np.empty((cap, sr._cbf.shape[1]), dtype=np.float64)
    cbf[:n] = arrays["rec_cbf"]
    scal = np.empty((cap, sr._scal.shape[1]), dtype=np.float64)
    scal[:n] = arrays["rec_scal"]
    sr._t, sr._cbf, sr._scal = t, cbf, scal
    sr._n = n
    sr.jobs = {
        rj["id"]: JobRecord(
            job_id=rj["id"],
            cores=rj["cores"],
            n_nodes=rj["n_nodes"],
            submit_time=_unhx(rj["submit_time"]),
            start_time=_unhx_opt(rj["start_time"]),
            end_time=_unhx_opt(rj["end_time"]),
            freq_ghz=_unhx_opt(rj["freq_ghz"]),
            degradation=_unhx(rj["degradation"]),
            state=rj["state"],
        )
        for rj in meta["rec_jobs"]
    }
    sr._launch_times = [float(x) for x in arrays["launch_times"]]
    sr._launch_sorted = bool(meta["launch_sorted"])
    sr._completion_times = [float(x) for x in arrays["completion_times"]]
    sr._completion_sorted = bool(meta["completion_sorted"])

    # -- pending events ------------------------------------------------------
    for jid, time_hex in meta["end_events"]:
        sctl._end_events[jid] = cell.engine.at(
            _unhx(time_hex),
            lambda j=jobmap[jid]: sctl._on_job_end(j),
            kind=EventKind.JOB_END,
        )
    if meta["pass_time"] is not None:
        cell.engine.at(
            _unhx(meta["pass_time"]), sctl._sched_pass, kind=EventKind.SCHED_PASS
        )
        sctl._pass_pending = True
    # Submissions the prefix did not reach, in workload order.
    for spec in specs:
        if spec.submit_time >= horizon:
            cell.engine.at(
                spec.submit_time,
                lambda s=spec: sctl.submit(s),
                kind=EventKind.JOB_SUBMIT,
            )

    # -- clock last: every event above lies at or beyond the horizon ---------
    cell.engine.restore_clock(_unhx(meta["now"]), meta["processed"])


def _schedule_submissions(cell: _Cell, specs: Sequence[JobSpec]) -> None:
    for spec in specs:
        cell.engine.at(
            spec.submit_time,
            lambda s=spec: cell.controller.submit(s),
            kind=EventKind.JOB_SUBMIT,
        )


def run_replay_batch(
    machine: Machine,
    jobs: Sequence[JobSpec],
    policy: Policy | str,
    *,
    duration: float,
    caps_per_cell: Sequence[Sequence[PowercapReservation]],
    config: SchedulerConfig | None = None,
    platform=None,
    warm_start=None,
    timings: dict | None = None,
) -> list[ReplayResult]:
    """Replay one workload under N cap sets in a single lockstep batch.

    Equivalent to N calls of :func:`repro.sim.replay.run_replay` with
    identical ``machine``/``jobs``/``policy``/``config`` and the i-th
    cap list — bit for bit, including the trace digest — but sharing
    one process, one scenario-major node-state matrix, and (when the
    divergence analysis allows) one replayed pre-window prefix.

    ``warm_start``, when given, is a duck-typed checkpoint adapter
    (see :class:`repro.exp.checkpoints.WarmStart`) with two methods:
    ``load(max_horizon)`` returns a previously captured fork state at
    a horizon ``<= max_horizon`` or ``None``, and ``publish(horizon,
    state)`` persists a freshly captured one.  On a hit *every* cell —
    including the would-be donor — installs the stored state instead
    of replaying the shared prefix; on a miss the donor's freshly
    computed prefix is published for future runs.  A batch of one cell
    with a warm-start adapter is exactly a solo replay that can skip
    its prefix.

    ``timings``, when given, is filled with wall-clock accounting of
    the batch: ``fork_t`` (the divergence horizon, ``0.0`` when no
    fork happened), ``warm`` (``1.0`` on a warm-start hit), and
    ``prefix_seconds``/``lockstep_seconds`` (time spent replaying or
    restoring the shared prefix versus advancing the cells).  Purely
    observational — feeds per-group sweep stats and the cost model's
    shared-prefix calibration, never the replay itself.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    if not caps_per_cell:
        raise ValueError("need at least one cell")
    if isinstance(policy, str):
        policy = (
            platform.make_policy(policy, machine.freq_table)
            if platform is not None
            else make_policy(policy, machine.freq_table)
        )
    specs = [s for s in jobs if s.submit_time <= duration]

    cells: list[_Cell] = []
    for caps in caps_per_cell:
        engine = SimEngine()
        recorder = MetricsRecorder(machine.freq_table.frequencies)
        controller = Controller(
            machine,
            policy,
            engine,
            config=config,
            powercaps=list(caps),
            recorder=recorder,
            platform=platform,
        )
        cells.append(_Cell(engine, recorder, controller))

    batch = BatchNodeArrays([c.controller.accountant for c in cells])

    slack = _fork_slack(policy, cells[0].controller, specs)
    fork_t = min(
        min(_divergence_onset(c, slack) for c in cells), duration
    )

    t_prefix = time.perf_counter()
    warm_hit = False
    state = None
    if fork_t > 0 and warm_start is not None:
        state = warm_start.load(fork_t)
    if state is not None:
        warm_hit = True
        # Store hit: nobody replays the prefix — every cell (donor
        # included) installs the persisted checkpoint.  The stored
        # horizon may be below this batch's fork_t (a sweep with
        # earlier windows published it); all reservation boundaries
        # still lie at or beyond fork_t, so lockstep is unaffected.
        for cell in cells:
            install_fork_state(cell, state, specs)
    elif fork_t > 0 and (len(cells) > 1 or warm_start is not None):
        donor = cells[0]
        _schedule_submissions(donor, specs)
        donor.engine.run_before(fork_t)
        if _checkpoint_safe(donor):
            state = capture_fork_state(donor, fork_t)
            for sib in cells[1:]:
                install_fork_state(sib, state, specs)
            if warm_start is not None:
                warm_start.publish(fork_t, state)
        else:  # pragma: no cover - insurance against future event kinds
            for sib in cells[1:]:
                _schedule_submissions(sib, specs)
            fork_t = 0.0
    else:
        fork_t = 0.0
        for cell in cells:
            _schedule_submissions(cell, specs)

    t_lockstep = time.perf_counter()

    # Lockstep: advance every cell to each shared window boundary, then
    # to the end of the replay.  A cell already past a boundary (the
    # donor after a vetoed fork) treats the slice as a no-op.
    edges = sorted(
        {
            b
            for cell in cells
            for b in cell.controller.registry.boundaries()
            if fork_t < b < duration
        }
    )
    for horizon in edges:
        for cell in cells:
            cell.engine.run(until=horizon)
    for cell in cells:
        cell.engine.run(until=duration)

    batch.verify()

    if timings is not None:
        timings["fork_t"] = fork_t
        timings["warm"] = 1.0 if warm_hit else 0.0
        timings["prefix_seconds"] = t_lockstep - t_prefix
        timings["lockstep_seconds"] = time.perf_counter() - t_lockstep

    results = []
    for cell in cells:
        cell.recorder.finalize(duration)
        results.append(
            ReplayResult(
                machine=machine,
                policy=cell.controller.policy,
                duration=duration,
                recorder=cell.recorder,
                controller=cell.controller,
                n_submitted=len(specs),
            )
        )
    return results
