"""Discrete-event simulation substrate.

Replaces the paper's `multiple-slurmd` emulation testbed: a
deterministic event engine, a metrics recorder producing the
time series behind Figures 6/7, and the replay driver that feeds a
workload into the RJMS controller.
"""

from repro.sim.engine import SimEngine, Event, EventKind
from repro.sim.metrics import MetricsRecorder, JobRecord, SeriesSample

__all__ = [
    "SimEngine",
    "Event",
    "EventKind",
    "MetricsRecorder",
    "JobRecord",
    "SeriesSample",
    "run_replay",
    "powercap_reservation",
    "ReplayResult",
]


def __getattr__(name: str):
    # Deferred: replay pulls in the controller (and with it repro.core),
    # which imports repro.sim back for the engine types.
    if name in ("run_replay", "powercap_reservation", "ReplayResult"):
        from repro.sim import replay

        return getattr(replay, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
