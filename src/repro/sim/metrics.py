"""Replay instrumentation: power/utilisation time series and job records.

The paper's post-treatment phase collects "jobs state, outputs and
characteristics" after each replay and derives three headline metrics
(Figure 8): total consumed energy, number of launched jobs, and work
(accumulated CPU time), plus the utilisation/power stacked time series
of Figures 6 and 7.

The recorder stores step functions sampled at every change, so energy
and work are *exact* integrals, not grid approximations; grids are
only used when exporting plot series.

Storage is columnar (structure-of-arrays): one preallocated float64
time column, a 2D ``cores_by_freq`` matrix, and a 2D scalar-field
matrix, all grown by amortized doubling.  Recording a sample is a few
row writes with no per-event allocation, same-timestamp updates
collapse onto the last row in place, and the integrals/grid exports
are vectorised ``searchsorted``/``diff`` expressions.  The integrals
accumulate with ``cumsum`` (strictly sequential, like the scalar
running total the original per-sample implementation used), so every
metric is bit-identical to the historical list-of-dataclasses
recorder; :class:`SeriesSample` survives as a thin row view for the
trace digest, the analysis layer, and the tests.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

#: scalar column layout of the structure-of-arrays store
_OFF, _POWER, _IDLE, _DOWN, _INFRA, _BONUS, _BUSY = range(7)
_N_SCALARS = 7

_INITIAL_CAPACITY = 1024


@dataclass(frozen=True)
class SeriesSample:
    """One step-function sample (values hold until the next sample)."""

    time: float
    cores_by_freq: tuple[float, ...]
    off_cores: float
    power_watts: float
    idle_watts: float
    down_watts: float
    infra_watts: float
    bonus_watts: float
    #: power drawn by allocated (busy) nodes only — the basis of
    #: SLURM's per-job energy accounting
    busy_watts: float = 0.0


@dataclass
class JobRecord:
    """Outcome of one job in a replay."""

    job_id: int
    cores: int
    n_nodes: int
    submit_time: float
    start_time: float | None = None
    end_time: float | None = None
    freq_ghz: float | None = None
    #: runtime stretch factor of the assigned frequency
    degradation: float = 1.0
    state: str = "pending"

    @property
    def wait_time(self) -> float | None:
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time


class MetricsRecorder:
    """Collects step-function series and per-job outcomes.

    Parameters
    ----------
    frequencies:
        Ascending DVFS frequencies; ``cores_by_freq`` samples follow
        this order.
    """

    def __init__(self, frequencies: Sequence[float]) -> None:
        self.frequencies = tuple(frequencies)
        self._nf = len(self.frequencies)
        cap = _INITIAL_CAPACITY
        self._t = np.empty(cap, dtype=np.float64)
        self._cbf = np.empty((cap, self._nf), dtype=np.float64)
        self._scal = np.empty((cap, _N_SCALARS), dtype=np.float64)
        self._n = 0
        self.jobs: dict[int, JobRecord] = {}
        self._finalized_at: float | None = None
        #: job start times in recording order (engine time is monotone,
        #: so these stay sorted; the flag guards the general case)
        self._launch_times: list[float] = []
        self._launch_sorted = True
        #: end times of jobs that finished in state "completed"
        self._completion_times: list[float] = []
        self._completion_sorted = True

    # -- recording -------------------------------------------------------------------

    def _grow(self) -> None:
        cap = len(self._t) * 2
        n = self._n
        t = np.empty(cap, dtype=np.float64)
        t[:n] = self._t[:n]
        cbf = np.empty((cap, self._nf), dtype=np.float64)
        cbf[:n] = self._cbf[:n]
        scal = np.empty((cap, _N_SCALARS), dtype=np.float64)
        scal[:n] = self._scal[:n]
        self._t, self._cbf, self._scal = t, cbf, scal

    def sample(
        self,
        time: float,
        *,
        cores_by_freq: Sequence[float],
        off_cores: float,
        power_watts: float,
        idle_watts: float,
        down_watts: float,
        infra_watts: float,
        bonus_watts: float,
        busy_watts: float = 0.0,
    ) -> None:
        """Record the cluster state at ``time`` (monotone non-decreasing).

        A sample at the same instant as the previous one overwrites it
        in place (same-timestamp collapse), so bursts of events at one
        simulated instant cost one row, not many.
        """
        n = self._n
        if len(cores_by_freq) != self._nf:
            raise ValueError("cores_by_freq length mismatch")
        if n:
            last = self._t[n - 1]
            if time < last:
                raise ValueError(f"sample at {time} before last {last}")
            if time == last:
                row = n - 1
            else:
                if n == len(self._t):
                    self._grow()
                row = n
                self._t[row] = time
                self._n = n + 1
        else:
            row = 0
            self._t[0] = time
            self._n = 1
        self._cbf[row] = cores_by_freq
        self._scal[row] = (
            off_cores,
            power_watts,
            idle_watts,
            down_watts,
            infra_watts,
            bonus_watts,
            busy_watts,
        )

    def finalize(self, time: float) -> None:
        """Close the step functions at the end of the replay window."""
        n = self._n
        if n and time > self._t[n - 1]:
            if n == len(self._t):
                self._grow()
            self._t[n] = time
            self._cbf[n] = self._cbf[n - 1]
            self._scal[n] = self._scal[n - 1]
            self._n = n + 1
        self._finalized_at = time

    # -- job bookkeeping ----------------------------------------------------------------

    def job_submitted(self, job_id: int, cores: int, n_nodes: int, time: float) -> None:
        if job_id in self.jobs:
            raise ValueError(f"job {job_id} already recorded")
        self.jobs[job_id] = JobRecord(
            job_id=job_id, cores=cores, n_nodes=n_nodes, submit_time=time
        )

    def job_started(
        self, job_id: int, time: float, freq_ghz: float, degradation: float = 1.0
    ) -> None:
        rec = self.jobs[job_id]
        rec.start_time = time
        rec.freq_ghz = freq_ghz
        rec.degradation = degradation
        rec.state = "running"
        lt = self._launch_times
        if lt and time < lt[-1]:
            self._launch_sorted = False
        lt.append(time)

    def job_finished(self, job_id: int, time: float, state: str = "completed") -> None:
        rec = self.jobs[job_id]
        rec.end_time = time
        rec.state = state
        if state == "completed":
            ct = self._completion_times
            if ct and time < ct[-1]:
                self._completion_sorted = False
            ct.append(time)

    # -- exact integrals -------------------------------------------------------------------

    def _segment_bounds(
        self, t0: float, t1: float
    ) -> tuple[int, int, int, np.ndarray] | None:
        """Step-function segmentation of [t0, t1): sample indices
        ``(i, start, j1)`` and the segment boundary array.

        ``i`` is the sample at or before t0 (clamped to the first
        sample when t0 precedes the series — the first value then
        holds from t0, with *no* segment split at ``t[0]``, exactly
        like the original running-total loop); interior boundaries are
        the sample times in ``[start, j1)``.
        """
        n = self._n
        if t1 <= t0 or n == 0:
            return None
        t = self._t[:n]
        j0 = int(np.searchsorted(t, t0, side="right"))
        j1 = int(np.searchsorted(t, t1, side="left"))
        i = j0 - 1 if j0 > 0 else 0
        start = i + 1
        m = max(j1 - start, 0)
        bounds = np.empty(m + 2, dtype=np.float64)
        bounds[0] = t0
        bounds[1:-1] = t[start:j1]
        bounds[-1] = t1
        return i, start, j1, bounds

    @staticmethod
    def _accumulate(vals: np.ndarray, bounds: np.ndarray) -> float:
        """Sum of per-segment products, accumulated sequentially
        (``cumsum``) — reproducing the scalar running total of the
        original implementation bit for bit."""
        prods = vals * np.diff(bounds)
        return float(prods.cumsum()[-1])

    def _integral(self, values: np.ndarray, t0: float, t1: float) -> float:
        """Integral of a per-sample step function (column) over [t0, t1).

        The value before the first sample holds the first value; the
        value after the last sample holds the last.
        """
        seg = self._segment_bounds(t0, t1)
        if seg is None:
            return 0.0
        i, start, j1, bounds = seg
        vals = np.empty(max(j1 - start, 0) + 1, dtype=np.float64)
        vals[0] = values[i]
        vals[1:] = values[start:j1]
        return self._accumulate(vals, bounds)

    def energy_joules(self, t0: float, t1: float) -> float:
        """Exact energy consumed over ``[t0, t1)``."""
        return self._integral(self._scal[: self._n, _POWER], t0, t1)

    def work_core_seconds(self, t0: float, t1: float) -> float:
        """Accumulated CPU time (the paper's "work") over ``[t0, t1)``."""
        if self._nf == 0:
            return 0.0
        seg = self._segment_bounds(t0, t1)
        if seg is None:
            return 0.0
        i, start, j1, bounds = seg
        # Row sums only over the covered samples.  Sequential per-row
        # accumulation (cumsum) matches Python's left-to-right sum over
        # the historical per-sample tuples.
        hi = max(j1, start)
        sums = self._cbf[i:hi].cumsum(axis=1)[:, -1]
        vals = np.empty(max(j1 - start, 0) + 1, dtype=np.float64)
        vals[0] = sums[0]
        vals[1:] = sums[start - i : j1 - i]
        return self._accumulate(vals, bounds)

    def job_energy_joules(self, t0: float, t1: float) -> float:
        """Energy drawn by allocated nodes only over ``[t0, t1)`` —
        what SLURM's per-job energy accounting would report."""
        return self._integral(self._scal[: self._n, _BUSY], t0, t1)

    def effective_work_core_seconds(
        self, t0: float, t1: float, cores_per_node: int
    ) -> float:
        """Degradation-corrected work: allocated core-seconds divided
        by each job's runtime stretch — the *computation* actually
        delivered, unlike raw accumulated CPU time which inflates for
        slowed jobs."""
        if t1 <= t0:
            return 0.0
        total = 0.0
        for r in self.jobs.values():
            if r.start_time is None:
                continue
            end = r.end_time if r.end_time is not None else t1
            lo = max(r.start_time, t0)
            hi = min(end, t1)
            if hi > lo:
                total += r.n_nodes * cores_per_node * (hi - lo) / r.degradation
        return total

    def _sorted_launches(self) -> list[float]:
        if not self._launch_sorted:
            self._launch_times.sort()
            self._launch_sorted = True
        return self._launch_times

    def _sorted_completions(self) -> list[float]:
        if not self._completion_sorted:
            self._completion_times.sort()
            self._completion_sorted = True
        return self._completion_times

    def launched_jobs(self, t0: float, t1: float) -> int:
        """Jobs whose execution started within ``[t0, t1)``."""
        starts = self._sorted_launches()
        return max(
            0, bisect.bisect_left(starts, t1) - bisect.bisect_left(starts, t0)
        )

    def completed_jobs(self, t0: float, t1: float) -> int:
        ends = self._sorted_completions()
        return max(0, bisect.bisect_left(ends, t1) - bisect.bisect_left(ends, t0))

    def mean_wait_time(self) -> float | None:
        waits = [r.wait_time for r in self.jobs.values() if r.wait_time is not None]
        return float(np.mean(waits)) if waits else None

    # -- plot series export --------------------------------------------------------------------

    def to_grid(self, t0: float, t1: float, dt: float) -> Mapping[str, np.ndarray]:
        """Resample the step functions on a regular grid.

        Returns arrays keyed ``time``, ``cores@<ghz>`` (one per DVFS
        step), ``off_cores``, ``power``, ``idle_power``, ``bonus`` —
        the data behind Figures 6 and 7.
        """
        if dt <= 0 or t1 <= t0:
            raise ValueError("need dt > 0 and t1 > t0")
        grid = np.arange(t0, t1 + dt / 2, dt)
        out: dict[str, np.ndarray] = {"time": grid}
        n = self._n
        if n == 0:
            zero = np.zeros_like(grid)
            for ghz in self.frequencies:
                out[f"cores@{ghz:g}"] = zero
            out["off_cores"] = zero
            out["power"] = zero
            out["idle_power"] = zero
            out["bonus"] = zero
            return out
        idx = np.clip(np.searchsorted(self._t[:n], grid, side="right") - 1, 0, None)
        for k, ghz in enumerate(self.frequencies):
            out[f"cores@{ghz:g}"] = self._cbf[idx, k]
        out["off_cores"] = self._scal[idx, _OFF]
        out["power"] = self._scal[idx, _POWER]
        out["idle_power"] = self._scal[idx, _IDLE]
        out["bonus"] = self._scal[idx, _BONUS]
        return out

    @property
    def n_samples(self) -> int:
        return self._n

    @property
    def times(self) -> np.ndarray:
        """Recorded sample times (read-only view, in time order)."""
        view = self._t[: self._n]
        view.flags.writeable = False
        return view

    @property
    def samples(self) -> tuple[SeriesSample, ...]:
        """The recorded step-function samples, in time order.

        A materialised row view over the columnar store, kept for the
        trace digest, the analysis layer, and the invariant tests.
        """
        t = self._t
        cbf = self._cbf
        scal = self._scal
        return tuple(
            SeriesSample(
                time=float(t[i]),
                cores_by_freq=tuple(cbf[i].tolist()),
                off_cores=scal[i, _OFF].item(),
                power_watts=scal[i, _POWER].item(),
                idle_watts=scal[i, _IDLE].item(),
                down_watts=scal[i, _DOWN].item(),
                infra_watts=scal[i, _INFRA].item(),
                bonus_watts=scal[i, _BONUS].item(),
                busy_watts=scal[i, _BUSY].item(),
            )
            for i in range(self._n)
        )
