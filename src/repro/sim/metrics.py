"""Replay instrumentation: power/utilisation time series and job records.

The paper's post-treatment phase collects "jobs state, outputs and
characteristics" after each replay and derives three headline metrics
(Figure 8): total consumed energy, number of launched jobs, and work
(accumulated CPU time), plus the utilisation/power stacked time series
of Figures 6 and 7.

The recorder stores step functions sampled at every change, so energy
and work are *exact* integrals, not grid approximations; grids are
only used when exporting plot series.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np


@dataclass(frozen=True)
class SeriesSample:
    """One step-function sample (values hold until the next sample)."""

    time: float
    cores_by_freq: tuple[float, ...]
    off_cores: float
    power_watts: float
    idle_watts: float
    down_watts: float
    infra_watts: float
    bonus_watts: float
    #: power drawn by allocated (busy) nodes only — the basis of
    #: SLURM's per-job energy accounting
    busy_watts: float = 0.0


@dataclass
class JobRecord:
    """Outcome of one job in a replay."""

    job_id: int
    cores: int
    n_nodes: int
    submit_time: float
    start_time: float | None = None
    end_time: float | None = None
    freq_ghz: float | None = None
    #: runtime stretch factor of the assigned frequency
    degradation: float = 1.0
    state: str = "pending"

    @property
    def wait_time(self) -> float | None:
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time


class MetricsRecorder:
    """Collects step-function series and per-job outcomes.

    Parameters
    ----------
    frequencies:
        Ascending DVFS frequencies; ``cores_by_freq`` samples follow
        this order.
    """

    def __init__(self, frequencies: Sequence[float]) -> None:
        self.frequencies = tuple(frequencies)
        self._times: list[float] = []
        self._samples: list[SeriesSample] = []
        self.jobs: dict[int, JobRecord] = {}
        self._finalized_at: float | None = None

    # -- recording -------------------------------------------------------------------

    def sample(
        self,
        time: float,
        *,
        cores_by_freq: Sequence[float],
        off_cores: float,
        power_watts: float,
        idle_watts: float,
        down_watts: float,
        infra_watts: float,
        bonus_watts: float,
        busy_watts: float = 0.0,
    ) -> None:
        """Record the cluster state at ``time`` (monotone non-decreasing)."""
        if self._times and time < self._times[-1]:
            raise ValueError(f"sample at {time} before last {self._times[-1]}")
        if len(cores_by_freq) != len(self.frequencies):
            raise ValueError("cores_by_freq length mismatch")
        s = SeriesSample(
            time=time,
            cores_by_freq=tuple(float(c) for c in cores_by_freq),
            off_cores=float(off_cores),
            power_watts=float(power_watts),
            idle_watts=float(idle_watts),
            down_watts=float(down_watts),
            infra_watts=float(infra_watts),
            bonus_watts=float(bonus_watts),
            busy_watts=float(busy_watts),
        )
        if self._times and time == self._times[-1]:
            # Same-instant updates collapse onto the last sample.
            self._samples[-1] = s
            return
        self._times.append(time)
        self._samples.append(s)

    def finalize(self, time: float) -> None:
        """Close the step functions at the end of the replay window."""
        if self._samples:
            last = self._samples[-1]
            if time > last.time:
                self.sample(
                    time,
                    cores_by_freq=last.cores_by_freq,
                    off_cores=last.off_cores,
                    power_watts=last.power_watts,
                    idle_watts=last.idle_watts,
                    down_watts=last.down_watts,
                    infra_watts=last.infra_watts,
                    bonus_watts=last.bonus_watts,
                    busy_watts=last.busy_watts,
                )
        self._finalized_at = time

    # -- job bookkeeping ----------------------------------------------------------------

    def job_submitted(self, job_id: int, cores: int, n_nodes: int, time: float) -> None:
        if job_id in self.jobs:
            raise ValueError(f"job {job_id} already recorded")
        self.jobs[job_id] = JobRecord(
            job_id=job_id, cores=cores, n_nodes=n_nodes, submit_time=time
        )

    def job_started(
        self, job_id: int, time: float, freq_ghz: float, degradation: float = 1.0
    ) -> None:
        rec = self.jobs[job_id]
        rec.start_time = time
        rec.freq_ghz = freq_ghz
        rec.degradation = degradation
        rec.state = "running"

    def job_finished(self, job_id: int, time: float, state: str = "completed") -> None:
        rec = self.jobs[job_id]
        rec.end_time = time
        rec.state = state

    # -- exact integrals -------------------------------------------------------------------

    def _integrate(self, value_of: "callable", t0: float, t1: float) -> float:
        """Integral of a per-sample scalar step function over [t0, t1)."""
        if t1 <= t0 or not self._samples:
            return 0.0
        times = self._times
        total = 0.0
        # First sample at or before t0.
        i = bisect.bisect_right(times, t0) - 1
        i = max(i, 0)
        t_prev = max(times[i], t0) if times[i] <= t0 else t0
        # If the first sample is after t0, the step function is
        # undefined before it; treat it as holding its first value.
        v_prev = value_of(self._samples[i]) if times[i] <= t0 else value_of(
            self._samples[0]
        )
        for j in range(i + 1, len(times)):
            t = times[j]
            if t >= t1:
                break
            if t > t_prev:
                total += v_prev * (t - t_prev)
                t_prev = t
            v_prev = value_of(self._samples[j])
        total += v_prev * (t1 - t_prev)
        return total

    def energy_joules(self, t0: float, t1: float) -> float:
        """Exact energy consumed over ``[t0, t1)``."""
        return self._integrate(lambda s: s.power_watts, t0, t1)

    def work_core_seconds(self, t0: float, t1: float) -> float:
        """Accumulated CPU time (the paper's "work") over ``[t0, t1)``."""
        return self._integrate(lambda s: sum(s.cores_by_freq), t0, t1)

    def job_energy_joules(self, t0: float, t1: float) -> float:
        """Energy drawn by allocated nodes only over ``[t0, t1)`` —
        what SLURM's per-job energy accounting would report."""
        return self._integrate(lambda s: s.busy_watts, t0, t1)

    def effective_work_core_seconds(
        self, t0: float, t1: float, cores_per_node: int
    ) -> float:
        """Degradation-corrected work: allocated core-seconds divided
        by each job's runtime stretch — the *computation* actually
        delivered, unlike raw accumulated CPU time which inflates for
        slowed jobs."""
        if t1 <= t0:
            return 0.0
        total = 0.0
        for r in self.jobs.values():
            if r.start_time is None:
                continue
            end = r.end_time if r.end_time is not None else t1
            lo = max(r.start_time, t0)
            hi = min(end, t1)
            if hi > lo:
                total += r.n_nodes * cores_per_node * (hi - lo) / r.degradation
        return total

    def launched_jobs(self, t0: float, t1: float) -> int:
        """Jobs whose execution started within ``[t0, t1)``."""
        return sum(
            1
            for r in self.jobs.values()
            if r.start_time is not None and t0 <= r.start_time < t1
        )

    def completed_jobs(self, t0: float, t1: float) -> int:
        return sum(
            1
            for r in self.jobs.values()
            if r.end_time is not None
            and t0 <= r.end_time < t1
            and r.state == "completed"
        )

    def mean_wait_time(self) -> float | None:
        waits = [r.wait_time for r in self.jobs.values() if r.wait_time is not None]
        return float(np.mean(waits)) if waits else None

    # -- plot series export --------------------------------------------------------------------

    def to_grid(self, t0: float, t1: float, dt: float) -> Mapping[str, np.ndarray]:
        """Resample the step functions on a regular grid.

        Returns arrays keyed ``time``, ``cores@<ghz>`` (one per DVFS
        step), ``off_cores``, ``power``, ``idle_power``, ``bonus`` —
        the data behind Figures 6 and 7.
        """
        if dt <= 0 or t1 <= t0:
            raise ValueError("need dt > 0 and t1 > t0")
        grid = np.arange(t0, t1 + dt / 2, dt)
        out: dict[str, np.ndarray] = {"time": grid}
        if not self._samples:
            zero = np.zeros_like(grid)
            for ghz in self.frequencies:
                out[f"cores@{ghz:g}"] = zero
            out["off_cores"] = zero
            out["power"] = zero
            out["idle_power"] = zero
            out["bonus"] = zero
            return out
        times = np.array(self._times)
        idx = np.clip(np.searchsorted(times, grid, side="right") - 1, 0, None)
        samples = self._samples
        for k, ghz in enumerate(self.frequencies):
            out[f"cores@{ghz:g}"] = np.array(
                [samples[i].cores_by_freq[k] for i in idx]
            )
        out["off_cores"] = np.array([samples[i].off_cores for i in idx])
        out["power"] = np.array([samples[i].power_watts for i in idx])
        out["idle_power"] = np.array([samples[i].idle_watts for i in idx])
        out["bonus"] = np.array([samples[i].bonus_watts for i in idx])
        return out

    @property
    def n_samples(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> tuple[SeriesSample, ...]:
        """The recorded step-function samples, in time order."""
        return tuple(self._samples)
