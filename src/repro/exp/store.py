"""Result stores: pluggable persistence behind the experiment harness.

A :class:`ResultStore` keeps condensed :class:`~repro.exp.runner.RunResult`
payloads (and optionally their Figure 6/7 ``.npz`` series) under
**content-addressed keys**: :func:`result_key` derives the key from the
scenario content hash plus the registered platform spec's content hash,
so a stored entry is valid exactly as long as *what it describes* is
unchanged — renaming a scenario hits, editing it (or replacing the
platform it runs on) misses.

Three implementations ship:

* :class:`MemoryStore` — the in-process memo (no persistence, no
  series); the default when a :class:`~repro.exp.runner.GridRunner`
  has no cache directory, so repeated ``run()`` calls on one runner
  never replay a scenario twice;
* :class:`DirectoryStore` — the local JSON/``.npz`` directory cache
  (one flat directory, atomic writes, self-healing on corrupt
  entries);
* :class:`SharedDirectoryStore` — a shared directory safe for
  **concurrent writers on a network filesystem**: two-level key
  fan-out, collision-free temp names (host + pid + counter), fsync
  before the atomic rename, and first-writer-wins semantics (replays
  are deterministic, so concurrent writers produce identical bytes
  and skipping the second write is sound).

Any unreadable entry — truncated JSON from a killed worker, a
corrupted zip — is **discarded with a warning naming the path** and
recomputed; a stale-but-wellformed mismatch (schema bump, different
series resolution, replaced platform) is silently treated as a miss.
"""

from __future__ import annotations

import copy
import errno
import json
import os
import re
import socket
import time
import warnings
from dataclasses import dataclass, field
from itertools import count
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.exp import faults as _faults

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exp.resilience import FailureRecord
    from repro.exp.runner import RunResult
    from repro.exp.spec import Scenario

#: default grid step of the ``.npz`` series payload (seconds)
DEFAULT_SERIES_DT = 300.0

#: ``errno`` values worth retrying on a shared/network filesystem: a
#: stale NFS handle heals on re-lookup, EAGAIN/EINTR are transient by
#: definition, EBUSY/ENOSPC may clear when a concurrent
#: pruner/cleaner finishes.
TRANSIENT_ERRNOS = frozenset(
    e
    for e in (
        getattr(errno, "ESTALE", None),
        errno.EAGAIN,
        errno.EINTR,
        errno.EBUSY,
        errno.ENOSPC,
        getattr(errno, "EDQUOT", None),
    )
    if e is not None
)


@dataclass
class StoreHealth:
    """Tallies of faults a store absorbed instead of propagating.

    ``discarded`` counts corrupt entries dropped (and recomputed by
    the caller — the heal path for torn writes); ``retried_writes``
    counts transient ``OSError``s absorbed by the bounded-backoff
    write retry; ``failed_writes`` counts writes abandoned after the
    retry budget (the result survives in memory; only the cache entry
    is lost).
    """

    discarded: int = 0
    retried_writes: int = 0
    failed_writes: int = 0

    def to_dict(self) -> dict[str, int]:
        return {
            "discarded": self.discarded,
            "retried_writes": self.retried_writes,
            "failed_writes": self.failed_writes,
        }

#: shape of a :func:`result_key`: ``<scenario16>-<platform8>-<policy8>``
_KEY_RE = re.compile(r"[0-9a-f]{16}-[0-9a-f]{8}-[0-9a-f]{8}")


def _prune_files(
    store,
    entries: list[tuple[str, tuple[Path, ...]]],
    *,
    max_entries: int | None,
    max_age: float | None,
    lru: bool,
) -> list[str]:
    """Shared count/age/LRU eviction over per-key file tuples.

    The first path of each tuple orders the entry (its mtime, or atime
    with ``lru``); ties break on the key so concurrent pruners agree.
    An entry is evicted when it exceeds the count budget *or* the age
    budget — the union, so both constraints hold afterwards.
    """
    if max_entries is None and max_age is None:
        raise ValueError("prune needs max_entries and/or max_age")
    if max_entries is not None and max_entries < 0:
        raise ValueError("max_entries must be >= 0")
    if max_age is not None and max_age < 0:
        raise ValueError("max_age must be >= 0")
    now = time.time()
    ordered: list[tuple[float, str, tuple[Path, ...]]] = []
    for key, paths in entries:
        try:
            st = paths[0].stat()
        except OSError:  # pragma: no cover - raced with another pruner
            continue
        ordered.append((st.st_atime if lru else st.st_mtime, key, paths))
    ordered.sort(key=lambda e: (e[0], e[1]))
    n_over = (
        0 if max_entries is None else max(0, len(ordered) - max_entries)
    )
    cutoff = None if max_age is None else now - max_age
    removed: list[str] = []
    for i, (ts, key, paths) in enumerate(ordered):
        if i >= n_over and (cutoff is None or ts >= cutoff):
            continue
        for path in paths:
            try:
                path.unlink()
            except FileNotFoundError:
                pass
        store._evicted(key)
        removed.append(key)
    return removed


def result_key(scenario: "Scenario") -> str:
    """Content-addressed store key: scenario + platform + policy content.

    The scenario hash covers only the platform *name*; appending the
    registered spec's content hash makes a store entry stale the moment
    ``register_platform(..., replace=True)`` changes what that name
    means — instead of silently serving results from the previous
    hardware.  The policy's content hash is appended the same way (it
    is also folded into the scenario hash itself, see
    :meth:`repro.exp.Scenario.scenario_hash`): editing a registered
    policy misses, renaming it hits.
    """
    from repro.platform import get_platform

    platform_hash = get_platform(scenario.platform).content_hash()
    policy_hash = scenario.policy_spec.content_hash()
    return f"{scenario.scenario_hash()}-{platform_hash[:8]}-{policy_hash[:8]}"


class ResultStore:
    """Duck-typed protocol of a harness result store.

    ``get``/``put`` move condensed results; ``get_series``/``put_series``
    move the optional ``.npz`` series payload; ``has_series`` exists so
    the runner's hit test does not need to deserialise a payload it is
    not going to use.  ``stores_series=False`` stores never receive a
    series (the runner does not even produce one for them).
    """

    #: whether this store persists series payloads at all
    stores_series: bool = False
    #: grid step (seconds) of any series payload this store accepts
    series_dt: float = DEFAULT_SERIES_DT
    #: whether failure records survive this store's lifetime
    persists_failures: bool = False

    def get(self, key: str) -> "RunResult | None":
        raise NotImplementedError

    def put(self, key: str, result: "RunResult") -> None:
        raise NotImplementedError

    def get_series(self, key: str) -> dict[str, np.ndarray] | None:
        return None

    def put_series(self, key: str, series: Mapping[str, np.ndarray]) -> None:
        raise NotImplementedError(f"{type(self).__name__} does not store series")

    def has_series(self, key: str) -> bool:
        return self.get_series(key) is not None

    def keys(self) -> list[str]:
        """Keys of every stored result (diagnostics / merge checks)."""
        raise NotImplementedError

    # -- metadata side-channel --------------------------------------------------------

    def put_meta(self, name: str, payload: Mapping) -> None:
        """Persist a small named JSON document next to the results.

        The side-channel for harness bookkeeping that is *about* the
        store's contents without being a result — e.g. the cost
        model's observed wall times (:mod:`repro.exp.costmodel`).
        Last-writer-wins; payloads must be JSON-serialisable.  Stores
        without persistence keep it in memory for their lifetime.
        """
        raise NotImplementedError

    def get_meta(self, name: str) -> dict | None:
        """A previously stored metadata document, or ``None``.

        Metadata is advisory: a corrupt document is discarded (loudly,
        like any other unreadable entry) and the caller regenerates
        it — losing metadata never loses results.
        """
        return None

    # -- failure records --------------------------------------------------------------

    def put_failure(self, key: str, record: "FailureRecord") -> None:
        """Record a terminal failure under the key its result would
        have used, so resumed sweeps can skip or retry it."""
        raise NotImplementedError

    def get_failure(self, key: str) -> "FailureRecord | None":
        return None

    def pop_failure(self, key: str) -> bool:
        """Clear a failure record (the heal path).  Returns whether a
        record existed."""
        return False

    def failures(self) -> list["FailureRecord"]:
        """Every persisted failure record (``repro exp failures``)."""
        return []

    @property
    def health(self) -> StoreHealth:
        """Counters of absorbed faults (shared instance, mutated in
        place as the store heals/discards/retries)."""
        h = getattr(self, "_health", None)
        if h is None:
            h = StoreHealth()
            setattr(self, "_health", h)
        return h

    def prune(
        self,
        max_entries: int | None = None,
        *,
        max_age: float | None = None,
        lru: bool = False,
    ) -> list[str]:
        """Evict entries by count and/or age budget.

        At most ``max_entries`` remain afterwards, and every survivor
        is younger than ``max_age`` seconds (both constraints apply
        when both are given; at least one is required).  Returns the
        evicted keys (oldest first).  Default eviction order is
        least-recently-*written*; ``lru=True`` orders and ages entries
        by last access instead (directory stores bump an entry's
        ``atime`` on every hit).  Pruned entries are simply recomputed
        on the next request, so pruning is always safe.
        """
        raise NotImplementedError

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc: object) -> None:
        pass


class MemoryStore(ResultStore):
    """In-process memo: results live for the store's lifetime only."""

    stores_series = False

    def __init__(self) -> None:
        self._results: dict[str, "RunResult"] = {}
        self._failures: dict[str, "FailureRecord"] = {}
        self._meta: dict[str, dict] = {}

    def get(self, key: str) -> "RunResult | None":
        return self._results.get(key)

    def put_meta(self, name: str, payload: Mapping) -> None:
        # Deep copies on both sides: a caller mutating its payload (or
        # the returned dict) must not reach the stored observations —
        # the directory stores' JSON round-trip isolates them for free,
        # and the cost model mutates what get_meta hands back.
        self._meta[name] = copy.deepcopy(dict(payload))

    def get_meta(self, name: str) -> dict | None:
        entry = self._meta.get(name)
        return copy.deepcopy(entry) if entry is not None else None

    def put(self, key: str, result: "RunResult") -> None:
        # Re-putting moves the key to the back of the eviction order.
        self._results.pop(key, None)
        self._results[key] = result

    def put_failure(self, key: str, record: "FailureRecord") -> None:
        self._failures[key] = record

    def get_failure(self, key: str) -> "FailureRecord | None":
        return self._failures.get(key)

    def pop_failure(self, key: str) -> bool:
        return self._failures.pop(key, None) is not None

    def failures(self) -> list["FailureRecord"]:
        return [self._failures[k] for k in sorted(self._failures)]

    def keys(self) -> list[str]:
        return sorted(self._results)

    def prune(
        self,
        max_entries: int | None = None,
        *,
        max_age: float | None = None,
        lru: bool = False,
    ) -> list[str]:
        if max_age is not None or lru:
            raise ValueError(
                "MemoryStore keeps no timestamps; age/LRU pruning needs "
                "a directory store"
            )
        if max_entries is None:
            raise ValueError("prune needs max_entries and/or max_age")
        if max_entries < 0:
            raise ValueError("max_entries must be >= 0")
        evict = max(0, len(self._results) - max_entries)
        removed = list(self._results)[:evict]  # dicts keep insertion order
        for key in removed:
            del self._results[key]
        return removed


class DirectoryStore(ResultStore):
    """Local directory cache: ``<dir>/<key>.json`` (+ ``<key>.npz``).

    The on-disk layout is exactly the pre-refactor ``GridRunner``
    cache, so existing cache directories keep hitting.  Writes are
    atomic (temp file + ``os.replace``); corrupt entries are discarded
    with a warning naming the path and recomputed by the caller.
    """

    stores_series = True
    persists_failures = True

    #: write attempts per entry (subclasses aimed at flaky filesystems
    #: raise this; ``1`` keeps the historical propagate-on-error shape)
    _write_attempts = 1
    #: base backoff between write retries, seconds (doubles per retry)
    _retry_delay = 0.05

    def __init__(
        self, root: str | Path, *, series_dt: float = DEFAULT_SERIES_DT
    ) -> None:
        self.root = Path(root)
        if series_dt <= 0:
            raise ValueError("series_dt must be positive")
        self.series_dt = float(series_dt)

    # -- paths ------------------------------------------------------------------------

    def _result_path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def _series_path(self, key: str) -> Path:
        return self.root / f"{key}.npz"

    def _failure_path(self, key: str) -> Path:
        return self._result_path(key).with_suffix(".fail.json")

    def _tmp_name(self, key: str, suffix: str) -> str:
        return f"{key}.tmp.{os.getpid()}{suffix}"

    def _discard(self, path: Path, reason: Exception) -> None:
        """Drop an unreadable entry, loudly: the caller will recompute."""
        self.health.discarded += 1
        warnings.warn(
            f"discarding corrupt result-store entry {path}: {reason!r}",
            RuntimeWarning,
            stacklevel=4,
        )
        try:
            path.unlink()
        except OSError:  # pragma: no cover - races with other healers
            pass

    def _guarded_write(self, label: str, write) -> None:
        """Run one write, retrying transient ``OSError``s with bounded
        backoff (stale NFS handles, EAGAIN, a full disk mid-cleanup).

        With the retry budget exhausted the write is **abandoned with
        a warning and a tally** rather than propagated: the caller
        still holds the result in memory, so losing the cache entry
        must not lose the sweep.  Non-transient errors (permissions, a
        missing mount) propagate on stores without a retry budget.
        """
        attempts = self._write_attempts
        for attempt in range(1, attempts + 1):
            try:
                return write()
            except OSError as exc:
                transient = exc.errno in TRANSIENT_ERRNOS
                if transient and attempt < attempts:
                    self.health.retried_writes += 1
                    time.sleep(self._retry_delay * 2 ** (attempt - 1))
                    continue
                if transient and attempts > 1:
                    self.health.failed_writes += 1
                    warnings.warn(
                        f"abandoning result-store write {label}: {exc!r} "
                        f"(after {attempts} attempts; entry will be "
                        "recomputed on demand)",
                        RuntimeWarning,
                        stacklevel=4,
                    )
                    return
                raise

    # -- results ----------------------------------------------------------------------

    def get(self, key: str) -> "RunResult | None":
        from repro.exp.runner import RunResult

        path = self._result_path(key)
        if not path.is_file():
            return None
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            self._discard(path, exc)
            return None
        try:
            result = RunResult.from_dict(data, cached=True)
        except ValueError as exc:
            if "schema" in str(exc):
                return None  # a result/scenario schema bump is expected staleness
            self._discard(path, exc)
            return None
        except (KeyError, TypeError) as exc:
            self._discard(path, exc)
            return None
        if result.scenario.scenario_hash() != key.partition("-")[0]:
            # Content addressing is the integrity check: an entry whose
            # payload does not hash to its own key was corrupted or
            # hand-edited.
            self._discard(path, ValueError("stored scenario does not match key"))
            return None
        self._touch(path)
        return result

    def _touch(self, path: Path) -> None:
        """Bump the access time (LRU pruning) without moving mtime."""
        try:
            st = path.stat()
            os.utime(path, times=(time.time(), st.st_mtime))
        except OSError:  # pragma: no cover - read-only or raced store
            pass

    def put(self, key: str, result: "RunResult") -> None:
        payload = json.dumps(result.to_dict(), allow_nan=False)
        # Torn-write injection point: an armed fault plan may truncate
        # the payload here, exactly like a writer killed mid-write.
        payload = _faults.mangle_payload(key, payload)
        self._guarded_write(
            f"{key}.json", lambda: self._write_text(key, ".json", payload)
        )

    def _write_text(self, key: str, suffix: str, payload: str) -> None:
        path = (
            self._failure_path(key)
            if suffix == ".fail.json"
            else self._result_path(key)
        )
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / self._tmp_name(key, suffix)
        try:
            tmp.write_text(payload, encoding="utf-8")
            self._replace(tmp, path)
        except OSError:
            tmp.unlink(missing_ok=True)
            raise

    def _replace(self, tmp: Path, path: Path) -> None:
        os.replace(tmp, path)  # atomic: concurrent writers race benignly

    # -- series -----------------------------------------------------------------------

    def get_series(self, key: str) -> dict[str, np.ndarray] | None:
        """The cached series, or ``None`` when absent/stale/corrupt.

        A payload recorded at a different grid step than this store's
        ``series_dt`` is treated as absent (stale resolution, not an
        error); an unreadable payload is discarded with a warning.
        """
        path = self._series_path(key)
        if not path.is_file():
            return None
        try:
            with np.load(path) as z:
                if "_series_dt" in z.files and float(z["_series_dt"]) != self.series_dt:
                    return None
                return {k: z[k] for k in z.files if k != "_series_dt"}
        except Exception as exc:
            self._discard(path, exc)
            return None

    def has_series(self, key: str) -> bool:
        """Cheap hit test: reads only the stored grid step.

        A payload without a recorded grid step (written by an external
        tool) is a silent miss — its resolution cannot be verified, but
        it stays on disk and :meth:`get_series` will still serve it.
        """
        path = self._series_path(key)
        if not path.is_file():
            return False
        try:
            with np.load(path) as z:
                if "_series_dt" not in z.files:
                    return False
                return float(z["_series_dt"]) == self.series_dt
        except Exception as exc:
            self._discard(path, exc)
            return False

    def put_series(self, key: str, series: Mapping[str, np.ndarray]) -> None:
        def write() -> None:
            path = self._series_path(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            # np.savez appends .npz to suffix-less names, so the temp
            # name must already carry it for the rename to find it.
            tmp = path.parent / self._tmp_name(key, ".npz")
            try:
                np.savez_compressed(
                    tmp, _series_dt=np.float64(self.series_dt), **series
                )
                # Torn-write injection point for the binary payload.
                _faults.maybe_truncate(key, tmp)
                self._replace(tmp, path)
            except OSError:
                tmp.unlink(missing_ok=True)
                raise

        self._guarded_write(f"{key}.npz", write)

    # -- failure records --------------------------------------------------------------

    def put_failure(self, key: str, record: "FailureRecord") -> None:
        payload = json.dumps(record.to_dict(), allow_nan=False)
        self._guarded_write(
            f"{key}.fail.json",
            lambda: self._write_text(key, ".fail.json", payload),
        )

    def get_failure(self, key: str) -> "FailureRecord | None":
        from repro.exp.resilience import FailureRecord

        path = self._failure_path(key)
        if not path.is_file():
            return None
        try:
            return FailureRecord.from_dict(
                json.loads(path.read_text(encoding="utf-8"))
            )
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            # A corrupt failure record carries no science: drop it and
            # let the scenario simply run again.
            self._discard(path, exc)
            return None

    def pop_failure(self, key: str) -> bool:
        try:
            self._failure_path(key).unlink()
            return True
        except FileNotFoundError:
            return False

    # -- metadata side-channel --------------------------------------------------------

    _META_NAME_RE = re.compile(r"[A-Za-z][A-Za-z0-9_-]{0,63}")

    def _meta_path(self, name: str) -> Path:
        if not self._META_NAME_RE.fullmatch(name):
            raise ValueError(f"bad metadata document name {name!r}")
        return self.root / "meta" / f"{name}.json"

    def put_meta(self, name: str, payload: Mapping) -> None:
        path = self._meta_path(name)
        text = json.dumps(payload, allow_nan=False, sort_keys=True)

        def write() -> None:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.parent / self._tmp_name(name, ".json")
            try:
                tmp.write_text(text, encoding="utf-8")
                self._replace(tmp, path)
            except OSError:
                tmp.unlink(missing_ok=True)
                raise

        self._guarded_write(f"meta/{name}.json", write)

    def get_meta(self, name: str) -> dict | None:
        path = self._meta_path(name)
        if not path.is_file():
            return None
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            # Metadata is advisory bookkeeping: discard and regenerate.
            self._discard(path, exc)
            return None
        return payload if isinstance(payload, dict) else None

    def failures(self) -> list["FailureRecord"]:
        if not self.root.is_dir():
            return []
        records = []
        for path in sorted(self.root.rglob("*.fail.json")):
            key = path.name[: -len(".fail.json")]
            if _KEY_RE.fullmatch(key):
                record = self.get_failure(key)
                if record is not None:
                    records.append(record)
        return records

    def keys(self) -> list[str]:
        if not self.root.is_dir():
            return []
        # Only well-formed result keys count: temp litter from a killed
        # writer ("<key>.tmp.<...>.json") and stray JSON dropped into
        # the store tree are not stored keys — reporting them would
        # poison prune() ordering and merge checks.
        return sorted(
            p.stem for p in self.root.rglob("*.json") if _KEY_RE.fullmatch(p.stem)
        )

    def prune(
        self,
        max_entries: int | None = None,
        *,
        max_age: float | None = None,
        lru: bool = False,
    ) -> list[str]:
        """Evict entries over the count and/or age budget (see
        :meth:`ResultStore.prune`); the ``.npz`` series payload goes
        with its result.  Ordered/aged by the result file's mtime, or
        its atime with ``lru`` (hits bump it).  Ties break on the key,
        so concurrent pruners make the same choice."""
        return _prune_files(
            self,
            [
                (key, (self._result_path(key), self._series_path(key)))
                for key in self.keys()
            ],
            max_entries=max_entries,
            max_age=max_age,
            lru=lru,
        )

    def _evicted(self, key: str) -> None:
        """Hook run after ``key``'s files are unlinked by :meth:`prune`.

        Subclasses with extra on-disk structure per key (fan-out
        directories) clean it up here.
        """


class SharedDirectoryStore(DirectoryStore):
    """A directory store safe for concurrent writers across machines.

    Differences from :class:`DirectoryStore`, all aimed at many
    independent workers pointing at one network-filesystem directory:

    * entries fan out into ``<dir>/<key[:2]>/`` so a big sweep does not
      produce one directory with thousands of entries (slow to list on
      NFS);
    * temp names embed hostname, pid and a per-process counter, so two
      workers with colliding pids on different machines can never
      clobber each other's in-flight writes;
    * the temp file is fsynced before the atomic rename, so a reader on
      another NFS client never sees a renamed-but-unflushed entry;
    * an existing entry is never rewritten (first writer wins): replays
      are deterministic, so a concurrent writer would produce the same
      bytes, and skipping the write avoids rename storms on hot keys;
    * writes retry transient ``OSError``s (stale NFS handles, EAGAIN,
      ENOSPC while a cleaner runs) with bounded backoff, then abandon
      the cache entry with a warning instead of failing the sweep —
      tallied in :attr:`health`.
    """

    _seq = count()
    _write_attempts = 4

    def _result_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _series_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.npz"

    def _tmp_name(self, key: str, suffix: str) -> str:
        host = socket.gethostname() or "host"
        return f"{key}.tmp.{host}.{os.getpid()}.{next(self._seq)}{suffix}"

    def put(self, key: str, result: "RunResult") -> None:
        if self._result_path(key).is_file():
            return
        super().put(key, result)

    def put_series(self, key: str, series: Mapping[str, np.ndarray]) -> None:
        if self._series_path(key).is_file():
            return
        super().put_series(key, series)

    def _replace(self, tmp: Path, path: Path) -> None:
        fd = os.open(tmp, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, path)

    def _evicted(self, key: str) -> None:
        # Drop the ``<key[:2]>/`` fan-out directory once its last entry
        # is gone.  rmdir refuses non-empty directories, and a
        # concurrent pruner may have removed it first (or be writing a
        # new entry into it) — either way OSError means "leave it".
        try:
            (self.root / key[:2]).rmdir()
        except OSError:
            pass


def make_store(
    spec: str, *, series_dt: float = DEFAULT_SERIES_DT
) -> ResultStore:
    """Build a store from a CLI-style spec string.

    ``memory`` — in-process memo; ``dir:PATH`` — local directory cache;
    ``shared:PATH`` — shared directory safe for concurrent writers.  A
    bare path is accepted as shorthand for ``dir:PATH``.
    """
    kind, sep, arg = spec.partition(":")
    if not sep and kind not in ("memory", "dir", "shared"):
        # A bare non-keyword spec is a path; a bare keyword ("shared"
        # with the :PATH forgotten) must error, not silently become a
        # local directory literally named "shared".
        kind, arg = "dir", spec
    if kind == "memory":
        if arg:
            raise ValueError("memory store takes no argument")
        return MemoryStore()
    if kind == "dir":
        if not arg:
            raise ValueError("dir store needs a path: dir:PATH")
        return DirectoryStore(arg, series_dt=series_dt)
    if kind == "shared":
        if not arg:
            raise ValueError("shared store needs a path: shared:PATH")
        return SharedDirectoryStore(arg, series_dt=series_dt)
    raise ValueError(
        f"unknown store spec {spec!r}; expected memory, dir:PATH or shared:PATH"
    )
