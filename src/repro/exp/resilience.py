"""Fault tolerance: retries, timeouts, failure records, sweep reports.

The vocabulary shared by every execution backend and the
:class:`~repro.exp.runner.GridRunner`:

* :class:`RetryPolicy` — how many attempts a scenario gets, which
  errors are worth retrying (transient I/O, injected faults, worker
  deaths) versus fatal (a deterministic replay raising ``ValueError``
  will raise it again), and an exponential backoff schedule whose
  jitter is **deterministic** (keyed on the task label and attempt),
  so two chaos runs with the same plan wait the same milliseconds;
* :class:`TaskFailure` — a backend's in-band "this item terminally
  failed" outcome, yielded where a result would have been so one
  failure no longer aborts a whole sweep;
* :class:`FailureRecord` — the persisted form: scenario identity,
  failure kind, attempts, quarantine state.  Stores keep these
  alongside results (``<key>.fail.json``) so a resumed sweep knows
  what failed last time and can skip or retry it;
* :class:`SweepReport` — the structured outcome of one
  :meth:`GridRunner.sweep`: results, failures, skips, retry/heal
  tallies, and the store's health counters.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence, Tuple

from repro.exp.faults import (
    InjectedCrash,
    InjectedFault,
    InjectedHang,
    InjectedTransient,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exp.runner import RunResult

#: terminal failure kinds
FAILURE_KINDS = ("crash", "timeout", "error")

#: what a fault-tolerant map yields per item:
#: ``(index, result_or_TaskFailure, retries)``
TaskOutcome = Tuple[int, Any, int]

#: ``GridRunner`` terminal-failure dispositions
ON_ERROR_MODES = ("raise", "skip", "quarantine")


class SweepError(RuntimeError):
    """A sweep lost scenarios it was not allowed to lose.

    Raised under ``on_error="raise"`` when a scenario fails terminally
    (carrying the failure records), and by the runner's defensive
    accounting when a backend silently drops results.
    """

    def __init__(self, message: str, failures: Sequence["FailureRecord"] = ()):
        super().__init__(message)
        self.failures = list(failures)


@dataclass(frozen=True)
class RetryPolicy:
    """Attempt budget, error classification, and backoff schedule.

    ``max_attempts`` counts executions, not retries: ``1`` means fail
    on the first error (the pre-fault-tolerance behaviour), ``4``
    means one try plus up to three retries.  Worker crashes and
    timeouts are always considered retryable — they are environmental,
    not a property of the scenario — while ordinary exceptions retry
    only when :meth:`is_retryable` accepts them: a deterministic
    replay that raised ``ValueError`` once will raise it every time,
    so burning attempts on it is pointless.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    factor: float = 2.0
    max_delay: float = 2.0
    retryable: tuple[type[BaseException], ...] = (
        InjectedFault,
        OSError,
        ConnectionError,
        TimeoutError,
    )

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("backoff delays cannot be negative")
        if self.factor < 1.0:
            raise ValueError("backoff factor must be >= 1")

    def is_retryable(self, exc: BaseException) -> bool:
        return isinstance(exc, self.retryable)

    def backoff(self, label: str, attempt: int) -> float:
        """Seconds to wait before attempt ``attempt + 1``.

        Exponential in the attempt number with a deterministic jitter
        multiplier in ``[0.5, 1.0)`` derived from ``(label, attempt)``
        — spreading a thundering herd of retries without making the
        schedule (and thus any timing-sensitive chaos test)
        irreproducible.
        """
        if self.base_delay == 0:
            return 0.0
        raw = self.base_delay * self.factor ** max(0, attempt - 1)
        digest = hashlib.sha256(f"{label}:{attempt}".encode()).digest()
        jitter = 0.5 + (int.from_bytes(digest[:4], "big") / 2**32) * 0.5
        return min(self.max_delay, raw * jitter)


@dataclass(frozen=True)
class TaskFailure:
    """In-band terminal failure of one work item.

    Backends yield this where the item's result would have gone; the
    runner turns it into a :class:`FailureRecord`.  ``exception``
    carries the original driver-side exception object when one exists
    (worker crashes and timeouts have none), so ``on_error="raise"``
    can re-raise exactly what the caller would have seen before fault
    tolerance existed.
    """

    kind: str  # crash | timeout | error
    error_type: str
    message: str
    attempts: int
    exception: BaseException | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAILURE_KINDS:
            raise ValueError(f"unknown failure kind {self.kind!r}")


@dataclass(frozen=True)
class FailureRecord:
    """Persisted per-scenario failure state.

    Written next to the result store entry the scenario would have
    produced (``<key>.fail.json``), so resumed sweeps see exactly
    which cell failed, how, and whether it was quarantined — and a
    later successful run of the same key deletes it (the heal path).
    """

    scenario_name: str
    scenario_hash: str
    key: str
    backend: str
    kind: str
    error_type: str
    message: str
    attempts: int
    quarantined: bool = False
    skipped: bool = False
    recorded_at: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "scenario_name": self.scenario_name,
            "scenario_hash": self.scenario_hash,
            "key": self.key,
            "backend": self.backend,
            "kind": self.kind,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
            "quarantined": self.quarantined,
            "skipped": self.skipped,
            "recorded_at": self.recorded_at,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "FailureRecord":
        return cls(
            scenario_name=str(d["scenario_name"]),
            scenario_hash=str(d["scenario_hash"]),
            key=str(d["key"]),
            backend=str(d["backend"]),
            kind=str(d["kind"]),
            error_type=str(d["error_type"]),
            message=str(d["message"]),
            attempts=int(d["attempts"]),
            quarantined=bool(d.get("quarantined", False)),
            skipped=bool(d.get("skipped", False)),
            recorded_at=float(d.get("recorded_at", 0.0)),
        )


@dataclass
class SweepReport:
    """Structured outcome of one :meth:`GridRunner.sweep`.

    ``results`` holds every successful :class:`RunResult` in input
    order (minus failed/skipped/foreign-shard slots).  ``failures``
    are this sweep's terminal losses (quarantined or not);
    ``skipped`` are known-bad scenarios not re-attempted under
    ``on_error="skip"``; ``healed`` are scenarios whose persisted
    failure record was cleared by a successful re-run.
    """

    results: list["RunResult"] = field(default_factory=list)
    failures: list[FailureRecord] = field(default_factory=list)
    skipped: list[FailureRecord] = field(default_factory=list)
    healed: list[str] = field(default_factory=list)  # scenario names
    n_hits: int = 0
    n_executed: int = 0
    n_retries: int = 0
    backend: str = ""
    wall_seconds: float = 0.0
    store_health: dict[str, int] = field(default_factory=dict)
    #: warm-start accounting when a checkpoint store was configured
    #: (see :class:`repro.exp.checkpoints.CheckpointTally`); empty when
    #: no store was in play or no cell was fork-eligible
    checkpoints: dict[str, int] = field(default_factory=dict)
    #: lockstep-group accounting when a scenario-aware backend ran
    #: (batch / batch-pool): group/singleton counts, degradations, the
    #: LPT dispatch plan (batch-pool), and per-group elapsed/warm stats
    #: keyed by cap-free scenario hash; empty otherwise
    groups: dict[str, Any] = field(default_factory=dict)
    #: data-plane accounting when a pool backend ran (see
    #: :class:`repro.exp.shm.TransferTally`): bytes shipped through
    #: pickle vs shared through shm segments, spec-cache hits/misses,
    #: pickle fallbacks; empty for in-process execution
    transfer: dict[str, int] = field(default_factory=dict)

    @property
    def quarantined(self) -> list[FailureRecord]:
        return [f for f in self.failures if f.quarantined]

    @property
    def unquarantined_losses(self) -> list[FailureRecord]:
        """Failures that were neither quarantined nor deliberately
        skipped — the losses a chaos gate must reject."""
        return [f for f in self.failures if not f.quarantined and not f.skipped]

    @property
    def ok(self) -> bool:
        """Whether the sweep completed with zero losses of any kind."""
        return not self.failures and not self.skipped

    def summary(self) -> str:
        parts = [
            f"{len(self.results)} result(s)",
            f"{self.n_hits} cached",
            f"{self.n_executed} executed",
        ]
        if self.n_retries:
            parts.append(f"{self.n_retries} retr{'y' if self.n_retries == 1 else 'ies'}")
        if self.failures:
            parts.append(
                f"{len(self.failures)} failed "
                f"({len(self.quarantined)} quarantined)"
            )
        if self.skipped:
            parts.append(f"{len(self.skipped)} skipped (known failures)")
        if self.healed:
            parts.append(f"{len(self.healed)} healed")
        g = self.groups
        if g and g.get("n_groups"):
            degraded = g.get("n_degraded_groups", 0)
            parts.append(
                f"{g['n_groups']} lockstep group(s) "
                f"({g.get('n_batched_cells', 0)} cell(s) batched"
                + (f", {degraded} degraded" if degraded else "")
                + ")"
            )
        ck = self.checkpoints
        if ck and any(ck.values()):
            parts.append(
                f"warm starts: {ck.get('hits', 0)} hit(s), "
                f"{ck.get('misses', 0)} miss(es), "
                f"{ck.get('publishes', 0)} published"
            )
        if self.transfer and any(self.transfer.values()):
            from repro.exp.shm import transfer_summary

            parts.append(transfer_summary(self.transfer))
        return ", ".join(parts)


def classify_failure(exc: BaseException) -> str:
    """Map an exception to a :class:`FailureRecord` kind."""
    if isinstance(exc, InjectedCrash):
        return "crash"
    if isinstance(exc, (InjectedHang, TimeoutError)):
        return "timeout"
    return "error"


def run_with_retry(
    call: Callable[[int], Any],
    *,
    label: str,
    retry: RetryPolicy | None,
    sleep: Callable[[float], None] = time.sleep,
) -> tuple[Any, int]:
    """In-process attempt loop shared by the serial and batch paths.

    ``call(attempt)`` runs one attempt (1-based).  Returns ``(outcome,
    retries)`` where the outcome is the call's return value or a
    :class:`TaskFailure`; exceptions the policy classifies as fatal
    fail immediately with the original exception attached.
    """
    policy = retry if retry is not None else RetryPolicy(max_attempts=1)
    attempt = 0
    while True:
        attempt += 1
        try:
            return call(attempt), attempt - 1
        except Exception as exc:  # noqa: BLE001 - classified below
            retriable = policy.is_retryable(exc)
            if retriable and attempt < policy.max_attempts:
                sleep(policy.backoff(label, attempt))
                continue
            return (
                TaskFailure(
                    kind=classify_failure(exc),
                    error_type=type(exc).__name__,
                    message=str(exc),
                    attempts=attempt,
                    exception=exc,
                ),
                attempt - 1,
            )
