"""Built-in scenario library.

Named, ready-to-run scenarios covering the paper's figures, the
demand-response shapes utilities actually ask for, cap staircases, and
the rho-regime extremes of the Section III model
(:mod:`repro.core.powermodel`):

* the DVFS-only floor sits at ``Pmin/Pmax`` of the node power range
  (193/358 ≈ 0.54 of node power on Curie) — caps just above it leave
  DVFS barely feasible, caps below force the combined regime (case 4);
* the idle floor (117/358 plus infrastructure, ≈ 0.37 of machine max)
  bounds what any non-shutdown policy can reach at all.

Every scenario replays deterministically; `repro exp run` executes any
of them by name, and the figure benchmarks consume the ``fig*`` ones.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.report import PAPER_GRID_POLICIES
from repro.exp.spec import CapWindow, HOUR, Scenario


def _build_library() -> tuple[Scenario, ...]:
    day = 24 * HOUR
    return (
        # -- the paper's figures ---------------------------------------------------
        Scenario.paper_cell(
            "24h", "MIX", 0.4, name="fig6-24h-mix-40"
        ),
        Scenario.paper_cell(
            "bigjob", "SHUT", 0.6, name="fig7a-bigjob-shut-60"
        ),
        Scenario.paper_cell(
            "smalljob", "DVFS", 0.4, name="fig7b-smalljob-dvfs-40"
        ),
        Scenario.paper_cell(
            "medianjob", "NONE", name="baseline-medianjob-uncapped"
        ),
        # -- demand-response day: morning and evening grid-peak windows -------------
        Scenario(
            name="demand-response-day",
            interval="24h",
            policy="MIX",
            caps=(
                CapWindow(9 * HOUR, 11 * HOUR, 0.6),
                CapWindow(18 * HOUR, 20 * HOUR, 0.5),
            ),
        ),
        # -- descending cap staircase across a day ----------------------------------
        Scenario(
            name="cap-staircase-24h",
            interval="24h",
            policy="MIX",
            caps=(
                CapWindow(6 * HOUR, 10 * HOUR, 0.8),
                CapWindow(10 * HOUR, 14 * HOUR, 0.6),
                CapWindow(14 * HOUR, 18 * HOUR, 0.4),
            ),
        ),
        # -- overnight economy window starting cold ----------------------------------
        Scenario(
            name="night-valley-shut",
            interval="24h",
            policy="SHUT",
            caps=(CapWindow(0.0, 6 * HOUR, 0.5),),
        ),
        # -- rho-regime extremes (Section III) ----------------------------------------
        # Just above the DVFS-only floor: throttling alone still fits.
        Scenario.paper_cell(
            "medianjob", "DVFS", 0.55, name="rho-floor-dvfs-55"
        ),
        # Below the floor: the model's combined regime (case 4); MIX
        # must pair switch-off with high-range DVFS.
        Scenario.paper_cell(
            "medianjob", "MIX", 0.45, name="rho-combined-mix-45"
        ),
        # -- enforcement variants ------------------------------------------------------
        Scenario.paper_cell(
            "medianjob",
            "IDLE",
            0.5,
            name="extreme-kill-idle-50",
            config={"kill_on_violation": True},
        ),
        Scenario.paper_cell(
            "smalljob",
            "DVFS",
            0.5,
            name="dynamic-rescaling-dvfs-50",
            config={"dynamic_rescaling": True},
        ),
        Scenario.paper_cell(
            "bigjob",
            "MIX",
            0.6,
            name="strict-future-mix-60",
            config={"strict_future_caps": True},
        ),
        # -- non-Curie platforms (repro.platform registry) ----------------------------
        # Fat-node small cluster: coarse switch-off granularity, a
        # short high-GHz ladder — SHUT must drop whole fat nodes.
        Scenario.paper_cell(
            "bigjob", "SHUT", 0.6, platform="fatnode", scale=1.0
        ),
        # Same machine under MIX with the wide-leaning medianjob mix
        # the platform ships (workload_classes override in play).
        Scenario.paper_cell(
            "medianjob", "MIX", 0.5, platform="fatnode", scale=1.0
        ),
        # Many-thin-node machine: DVFS over the deep low-GHz ladder,
        # driven by the platform's tinier smalljob swarm.
        Scenario.paper_cell(
            "smalljob", "DVFS", 0.4, platform="manythin", scale=1.0
        ),
        # Fine-grained shutdown: a cap staircase over 768 thin nodes,
        # where MIX can shave power nearly node-by-node.
        Scenario(
            name="manythin-staircase-mix",
            interval="medianjob",
            policy="MIX",
            platform="manythin",
            scale=1.0,
            caps=(
                CapWindow(1 * HOUR, 2 * HOUR, 0.75),
                CapWindow(2 * HOUR, 3 * HOUR, 0.55),
                CapWindow(3 * HOUR, 4 * HOUR, 0.4),
            ),
        ),
        # -- adaptive + feedback policies (repro.policy registry) ----------------------
        # ADAPTIVE consults the Section III model per cap window.  At
        # the *same* 60 % cap the model lands on opposite mechanisms
        # across the registry: on fatnode the cap falls below the
        # full-ladder DVFS floor, so ADAPTIVE pairs switch-off with
        # throttling (the combined case-4 split), while on manythin
        # (rho <= 0, cap above the floor) it plans pure grouped
        # switch-off and never lowers a frequency — the cross-platform
        # comparison the strategy seam exists to express.
        Scenario.paper_cell("medianjob", "ADAPTIVE", 0.6),
        Scenario.paper_cell(
            "medianjob", "ADAPTIVE", 0.6, platform="fatnode", scale=1.0
        ),
        Scenario.paper_cell(
            "smalljob", "ADAPTIVE", 0.6, platform="manythin", scale=1.0
        ),
        # TRACK closes the loop on observed consumption instead of
        # worst-case projections: no offline planning; each pass
        # re-selects frequencies — running jobs stepped down, new jobs
        # admitted at a sliding setpoint — against the measured cap
        # error with a 0.9 proportional gain.  Caps sit above each
        # platform's DVFS-only floor (``Pmin/Pmax``), where throttling
        # alone can genuinely reach the target.
        Scenario.paper_cell("medianjob", "TRACK", 0.6),
        Scenario.paper_cell(
            "medianjob", "TRACK", 0.7, platform="fatnode", scale=1.0
        ),
        Scenario.paper_cell(
            "smalljob", "TRACK", 0.6, platform="manythin", scale=1.0
        ),
    )


SCENARIO_LIBRARY: tuple[Scenario, ...] = _build_library()

_BY_NAME = {sc.name: sc for sc in SCENARIO_LIBRARY}
assert len(_BY_NAME) == len(SCENARIO_LIBRARY), "duplicate scenario names"


def scenario_names() -> list[str]:
    return [sc.name for sc in SCENARIO_LIBRARY]


def get_scenario(name: str) -> Scenario:
    """Look a library scenario up by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(scenario_names())}"
        ) from None


#: (cap_fraction, policy) rows of the paper's Figure 8 grid, in
#: publication order (caps descending, policies as configured).
PAPER_GRID_ROWS: tuple[tuple[float, str], ...] = tuple(
    (fraction, policy)
    for fraction in sorted(PAPER_GRID_POLICIES, reverse=True)
    for policy in PAPER_GRID_POLICIES[fraction]
)


def paper_grid_scenarios(
    *,
    scale: float = 0.125,
    intervals: Sequence[str] = ("bigjob", "medianjob", "smalljob"),
) -> list[Scenario]:
    """The full Figure 8 evaluation grid as scenarios (27 cells)."""
    return [
        Scenario.paper_cell(interval, policy, fraction, scale=scale)
        for interval in intervals
        for fraction, policy in PAPER_GRID_ROWS
    ]
