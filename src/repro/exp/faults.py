"""Deterministic fault injection for the experiment harness.

A :class:`FaultPlan` is a seed-driven, fully serialisable description
of *which scenarios fail, how, and on which attempts*.  Installing a
plan (:func:`install_plan`, or the :func:`injected` context manager)
arms the harness-wide injection points:

* :func:`maybe_fire` — called by the scenario work path at the start
  of every attempt.  In a **pool worker process** a ``crash`` fault
  hard-kills the worker (``os._exit``) and a ``hang`` fault sleeps
  past any reasonable timeout, exactly like a segfaulted or wedged
  production worker.  **In-process** (serial/batch backends, where a
  hard exit would take the whole harness down) the same plan raises
  :class:`InjectedCrash` / :class:`InjectedHang` instead — observable,
  classifiable stand-ins for the unrecoverable thing;
* :func:`mangle_payload` / :func:`maybe_truncate` — called by the
  directory stores on every write.  A ``corrupt`` fault truncates the
  serialised payload mid-write, modelling a torn write on a network
  filesystem; the store's corrupt-entry healing discards it on the
  next read and the runner recomputes.

Every decision is a pure function of the plan content plus the
scenario hash and attempt number, so a chaos run is exactly
reproducible: the same seed fails the same scenarios in the same way,
whatever backend executes them.  Plans round-trip through JSON and are
shipped to pool workers inside the task payload, so ``spawn`` workers
inject identically to ``fork`` workers and the driver process.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping, Sequence

#: injectable failure modes
FAULT_KINDS = ("crash", "hang", "transient", "corrupt")


class InjectedFault(Exception):
    """Base of every in-process injected failure."""


class InjectedCrash(InjectedFault):
    """In-process stand-in for a hard worker death (segfault/OOM-kill)."""


class InjectedHang(InjectedFault):
    """In-process stand-in for a wedged worker (raised, since an
    in-process sleep could never be interrupted)."""


class InjectedTransient(InjectedFault):
    """A transient, retryable error (flaky filesystem, spurious EIO)."""


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: scenario (by content hash), kind, duration.

    ``times`` is how many *attempts* the fault fires on (attempt 1 is
    the first execution): ``times=1`` fails once and then heals, so a
    single retry recovers; ``times=None`` fires on every attempt — a
    **poison** scenario that can only be quarantined.
    """

    scenario_hash: str
    kind: str
    times: int | None = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.times is not None and self.times < 1:
            raise ValueError(f"fault times must be >= 1 or None, got {self.times}")

    def fires_on(self, attempt: int) -> bool:
        return self.times is None or attempt <= self.times

    def to_dict(self) -> dict[str, Any]:
        return {
            "scenario_hash": self.scenario_hash,
            "kind": self.kind,
            "times": self.times,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "FaultSpec":
        return cls(
            scenario_hash=str(d["scenario_hash"]),
            kind=str(d["kind"]),
            times=None if d.get("times") is None else int(d["times"]),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of :class:`FaultSpec`s plus firing knobs.

    ``hang_seconds`` bounds an injected worker hang: long enough to
    trip any sane per-scenario timeout, short enough that a leaked
    hung worker still unwinds eventually instead of pinning a CI job.
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int | None = None
    hang_seconds: float = 30.0

    def __post_init__(self) -> None:
        specs = tuple(
            s if isinstance(s, FaultSpec) else FaultSpec.from_dict(s)
            for s in self.specs
        )
        object.__setattr__(self, "specs", specs)
        hashes = [s.scenario_hash for s in specs]
        if len(set(hashes)) != len(hashes):
            raise ValueError("a scenario can carry at most one planned fault")
        if self.hang_seconds <= 0:
            raise ValueError("hang_seconds must be positive")

    @classmethod
    def random(
        cls,
        scenario_hashes: Iterable[str],
        seed: int,
        *,
        rate: float = 0.5,
        kinds: Sequence[str] = FAULT_KINDS,
        times: int | None = 1,
        hang_seconds: float = 30.0,
    ) -> "FaultPlan":
        """Seed-driven plan over a scenario set.

        Selection iterates the hashes in sorted order (so the plan is
        independent of grid expansion order) and assigns the chosen
        kinds round-robin after a seeded shuffle, guaranteeing every
        kind appears once the selection is large enough.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {rate}")
        unknown = [k for k in kinds if k not in FAULT_KINDS]
        if unknown:
            raise ValueError(f"unknown fault kinds {unknown}")
        rng = random.Random(seed)
        chosen = [h for h in sorted(set(scenario_hashes)) if rng.random() < rate]
        order = list(kinds)
        rng.shuffle(order)
        specs = tuple(
            FaultSpec(h, order[i % len(order)], times=times)
            for i, h in enumerate(chosen)
        )
        return cls(specs=specs, seed=seed, hang_seconds=hang_seconds)

    # -- lookup -----------------------------------------------------------------------

    def fault_for(self, scenario_hash: str) -> FaultSpec | None:
        for spec in self.specs:
            if spec.scenario_hash == scenario_hash:
                return spec
        return None

    def should_fire(
        self, scenario_hash: str, attempt: int, *, kind: str | None = None
    ) -> FaultSpec | None:
        spec = self.fault_for(scenario_hash)
        if spec is None or not spec.fires_on(attempt):
            return None
        if kind is not None and spec.kind != kind:
            return None
        return spec

    def kinds_planned(self) -> dict[str, int]:
        """Planned fault count per kind (diagnostics / CI gating)."""
        counts: dict[str, int] = {}
        for spec in self.specs:
            counts[spec.kind] = counts.get(spec.kind, 0) + 1
        return counts

    # -- serialisation ----------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "specs": [s.to_dict() for s in self.specs],
            "seed": self.seed,
            "hang_seconds": self.hang_seconds,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "FaultPlan":
        return cls(
            specs=tuple(FaultSpec.from_dict(s) for s in d.get("specs", ())),
            seed=None if d.get("seed") is None else int(d["seed"]),
            hang_seconds=float(d.get("hang_seconds", 30.0)),
        )


def parse_fault_plan(spec: str, scenario_hashes: Iterable[str]) -> FaultPlan:
    """Build a plan from a CLI spec string.

    ``seed:N`` — seeded random plan at the default rate over the
    scenario set; ``seed:N:RATE`` adjusts the selection rate;
    ``seed:N:RATE:TIMES`` also sets how many attempts each fault fires
    on (``*`` = every attempt, a poison plan).  ``@PATH`` loads a JSON
    plan written by :meth:`FaultPlan.to_dict`.
    """
    import json

    if spec.startswith("@"):
        return FaultPlan.from_dict(
            json.loads(Path(spec[1:]).read_text(encoding="utf-8"))
        )
    parts = spec.split(":")
    if parts[0] != "seed" or len(parts) < 2 or len(parts) > 4:
        raise ValueError(
            f"bad fault-plan spec {spec!r}: expected seed:N[:RATE[:TIMES]] "
            "or @plan.json"
        )
    try:
        seed = int(parts[1])
        rate = float(parts[2]) if len(parts) > 2 else 0.5
        times: int | None = 1
        if len(parts) > 3:
            times = None if parts[3] == "*" else int(parts[3])
    except ValueError:
        raise ValueError(f"bad fault-plan spec {spec!r}") from None
    return FaultPlan.random(scenario_hashes, seed, rate=rate, times=times)


# -- installation -------------------------------------------------------------------

#: the armed plan of this process (None = injection disabled)
_ACTIVE: FaultPlan | None = None
#: driver-side corrupt-write charges already consumed, per scenario hash
_CORRUPT_FIRED: dict[str, int] = {}


def active_plan() -> FaultPlan | None:
    return _ACTIVE


def install_plan(plan: FaultPlan | Mapping[str, Any] | None) -> None:
    """Arm ``plan`` in this process (``None`` disarms).

    Re-installing an identical plan keeps the corrupt-write charge
    ledger (pool workers re-install per task); a different plan resets
    it.
    """
    global _ACTIVE
    if plan is not None and not isinstance(plan, FaultPlan):
        plan = FaultPlan.from_dict(plan)
    if plan != _ACTIVE:
        _CORRUPT_FIRED.clear()
    _ACTIVE = plan


@contextlib.contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Arm ``plan`` for the duration of the block (tests/CLI)."""
    previous = _ACTIVE
    install_plan(plan)
    try:
        yield plan
    finally:
        install_plan(previous)


def _in_worker_process() -> bool:
    return multiprocessing.parent_process() is not None


def maybe_fire(scenario_hash: str, attempt: int = 1) -> None:
    """Fire the planned execution fault for this scenario/attempt.

    Called at the start of every scenario attempt.  ``corrupt`` faults
    are not execution faults and never fire here (see
    :func:`mangle_payload`).
    """
    plan = _ACTIVE
    if plan is None:
        return
    spec = plan.should_fire(scenario_hash, attempt)
    if spec is None or spec.kind == "corrupt":
        return
    if spec.kind == "transient":
        raise InjectedTransient(
            f"injected transient fault (scenario {scenario_hash}, "
            f"attempt {attempt})"
        )
    if spec.kind == "crash":
        if _in_worker_process():
            os._exit(73)  # hard death: no atexit, no cleanup, like a segfault
        raise InjectedCrash(
            f"injected crash (scenario {scenario_hash}, attempt {attempt})"
        )
    # hang
    if _in_worker_process():
        time.sleep(plan.hang_seconds)
        return  # a hang that outlives the timeout was killed long ago
    raise InjectedHang(
        f"injected hang (scenario {scenario_hash}, attempt {attempt})"
    )


def _take_corrupt(key: str) -> bool:
    """Consume one corrupt-write charge for a store key, if planned.

    Store keys embed the scenario hash as their first component; the
    charge ledger lives driver-side because store writes do.
    """
    plan = _ACTIVE
    if plan is None:
        return False
    scenario_hash = key.partition("-")[0]
    spec = plan.fault_for(scenario_hash)
    if spec is None or spec.kind != "corrupt":
        return False
    fired = _CORRUPT_FIRED.get(scenario_hash, 0)
    if spec.times is not None and fired >= spec.times:
        return False
    _CORRUPT_FIRED[scenario_hash] = fired + 1
    return True


def mangle_payload(key: str, payload: str) -> str:
    """Torn-write injection point for text payloads (store JSON)."""
    if _take_corrupt(key):
        return payload[: max(1, len(payload) // 2)]
    return payload


def maybe_truncate(key: str, path: Path | str) -> None:
    """Torn-write injection point for binary payloads (``.npz``)."""
    if _take_corrupt(key):
        path = Path(path)
        data = path.read_bytes()
        path.write_bytes(data[: max(1, len(data) // 2)])
