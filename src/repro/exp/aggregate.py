"""Aggregation of :class:`RunResult` lists into the reporting layer.

Bridges the experiment harness to :mod:`repro.analysis.report`: grid
results become :class:`GridCell` rows renderable with
:func:`repro.analysis.report.render_grid`, and plain-text tables and
pairwise comparisons serve the ``repro exp`` CLI.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.analysis.report import GridCell, cell_sort_key, render_grid
from repro.exp.runner import RunResult


def merge_results(groups: Iterable[Sequence[RunResult]]) -> list[RunResult]:
    """Merge partial result lists — per-shard runs, per-machine store
    reads — into one deduplicated sweep.

    Results are identified by scenario content hash.  Duplicates must
    be bit-identical (:meth:`RunResult.same_outcome`): the replays are
    deterministic, so two shards disagreeing on one scenario means a
    stale or corrupt store, and that raises rather than silently
    picking a side.  The merged list comes back in canonical grid
    order (platform, workload, caps descending, paper policy order),
    so any partition of a sweep merges to the identical table.
    """
    merged: dict[str, RunResult] = {}
    for group in groups:
        for result in group:
            key = result.scenario_hash
            seen = merged.setdefault(key, result)
            if seen is not result and not seen.same_outcome(result):
                raise ValueError(
                    f"conflicting results for scenario "
                    f"{result.scenario.name!r} ({key}): trace digests "
                    f"{seen.trace_digest[:12]} vs {result.trace_digest[:12]} "
                    "— deterministic replays cannot disagree; one side is "
                    "stale or corrupt"
                )
    return sorted(
        merged.values(),
        key=lambda r: (*cell_sort_key(cell_from_result(r)), r.scenario_hash),
    )


def cell_from_result(result: RunResult) -> GridCell:
    """One Figure 8 grid cell from a condensed run result."""
    sc = result.scenario
    m = result.metrics
    return GridCell(
        workload=sc.interval,
        cap_fraction=sc.cap_fraction,
        policy=sc.policy_name,
        energy_norm=m["energy_norm"],
        job_energy_norm=m["job_energy_norm"],
        jobs_norm=m["jobs_norm"],
        work_norm=m["work_norm"],
        effective_work_norm=m["effective_work_norm"],
        launched_jobs=int(m["launched_jobs"]),
        energy_joules=m["energy_joules"],
        window_energy_norm=m.get("window_energy_norm", float("nan")),
        window_work_norm=m.get("window_work_norm", float("nan")),
        window_effective_work_norm=m.get("window_effective_work_norm", float("nan")),
        platform=sc.platform,
    )


def results_to_cells(results: Iterable[RunResult]) -> list[GridCell]:
    return [cell_from_result(r) for r in results]


def render_results_grid(results: Iterable[RunResult]) -> str:
    """The Figure 8 bar rendering, straight from run results."""
    return render_grid(results_to_cells(results))


def results_table(results: Sequence[RunResult]) -> str:
    """One line per result: identity, headline metrics, provenance.

    ``wall`` is the cell's own cost (a batched cell reports its share
    of the group replay); ``unit`` is the wall clock of the execution
    unit that produced it — equal to ``wall`` for solo runs, the whole
    group's elapsed for batched cells, ``-`` for results cached before
    the field existed."""
    header = (
        f"{'scenario':<28} {'hash':<16} {'platform':<10} {'policy':>6} {'cap':>5} "
        f"{'energy':>7} {'work':>6} {'jobs':>6} {'digest':>12} {'wall':>7} "
        f"{'unit':>7} src"
    )
    lines = [header, "-" * len(header)]
    for r in results:
        sc = r.scenario
        cap = f"{sc.cap_fraction:.0%}" if sc.caps else "-"
        unit = (
            f"{r.elapsed_seconds:>6.1f}s"
            if r.elapsed_seconds is not None
            else f"{'-':>7}"
        )
        lines.append(
            f"{sc.name:<28.28} {r.scenario_hash:<16} {sc.platform:<10.10} "
            f"{sc.policy_name:>6} {cap:>5} "
            f"{r.metrics['energy_norm']:>7.3f} {r.metrics['work_norm']:>6.3f} "
            f"{int(r.metrics['launched_jobs']):>6d} {r.trace_digest[:12]:>12} "
            f"{r.wall_seconds:>6.1f}s {unit} {'cache' if r.cached else 'run'}"
        )
    return "\n".join(lines)


def compare_results(a: RunResult, b: RunResult) -> str:
    """Metric-by-metric comparison of two runs (the paper's method:
    deterministic replays compared against each other)."""
    keys = sorted(set(a.metrics) | set(b.metrics))
    name_a, name_b = a.scenario.name, b.scenario.name
    width = max(len(name_a), len(name_b), 12)
    lines = [
        f"{'metric':<26} {name_a:>{width}} {name_b:>{width}} {'delta':>12} {'rel':>8}",
    ]
    for key in keys:
        va = a.metrics.get(key, float("nan"))
        vb = b.metrics.get(key, float("nan"))
        delta = vb - va
        rel = delta / va if va not in (0.0,) and not math.isnan(va) else float("nan")
        rel_s = f"{rel:+.1%}" if not math.isnan(rel) else "-"
        lines.append(
            f"{key:<26} {va:>{width}.4g} {vb:>{width}.4g} {delta:>+12.4g} {rel_s:>8}"
        )
    lines.append("")

    def _cost(r: RunResult) -> str:
        unit = (
            f"{r.elapsed_seconds:.1f}s" if r.elapsed_seconds is not None else "-"
        )
        return f"{r.wall_seconds:.1f}s wall / {unit} unit"

    lines.append(f"cost: {name_a} {_cost(a)}; {name_b} {_cost(b)}")
    if a.trace_digest == b.trace_digest:
        lines.append(f"traces identical (digest {a.trace_digest[:16]})")
    else:
        lines.append(
            f"traces differ: {a.trace_digest[:16]} vs {b.trace_digest[:16]}"
        )
    return "\n".join(lines)
