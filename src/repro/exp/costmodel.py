"""Group-level cost model: calibrated estimates + LPT scheduling.

The batch×pool composition (:class:`repro.exp.backends.BatchPoolBackend`)
dispatches whole lockstep groups to pool workers.  Its makespan is
gated by whichever group lands *last*, so dispatch order matters: a
heavy group submitted at the end idles every other worker while it
finishes alone.  This module estimates each group's cost and orders
dispatch longest-processing-time-first (LPT) — the classic greedy
bound of makespan ``<= (4/3 - 1/3m) * OPT`` — so the sweep approaches
``total/workers`` instead of ``total/workers + heaviest``.

Two estimate sources, in preference order:

* **observed** — mean per-cell wall seconds of earlier runs of the
  same cap-free group, persisted as result-store metadata
  (:data:`COST_META`, see :meth:`repro.exp.store.ResultStore.put_meta`);
* **cold** — a pure function of the scenario spec: replay cost grows
  with the simulated duration, the job pressure (``overload``) and the
  scaled machine size (jobs are generated to fill capacity), with
  per-interval weights for the class mixes' job granularity.  Cold
  estimates are additionally *calibrated*: every observation also
  records the ratio of observed seconds to the cold estimate, and the
  per-platform mean ratio rescales cold estimates for groups never
  seen before.

A group of ``n`` cells does not cost ``n`` cells: everything before
the earliest cap window is a shared prefix replayed once (PR 6), so
the group estimate is ``cell * (shared + n * (1 - shared))`` with
``shared`` the prefix fraction of the replay horizon.

Estimates order work; they never change results.  A wildly wrong
estimate costs wall clock only.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exp.spec import Scenario

#: result-store metadata document holding observed costs
COST_META = "costmodel"

#: schema version of the metadata document
COST_META_SCHEMA = 1

#: cold-estimate rate before any calibration: seconds of wall clock
#: per cost unit (one simulated hour of a 1k-core machine at unit
#: pressure).  Deliberately rough — LPT only needs relative order, and
#: the first observed sweep calibrates the absolute scale away.
DEFAULT_RATE = 0.02

#: per-interval weight of the job-class mix: smaller jobs mean more
#: jobs (and more events) per unit of delivered capacity
INTERVAL_WEIGHTS = {
    "medianjob": 1.0,
    "smalljob": 1.6,
    "bigjob": 0.7,
    "24h": 1.0,
}

#: cap on remembered group observations so the metadata document (and
#: every sweep's read of it) stays bounded
MAX_OBSERVED_GROUPS = 512


def _group_key(scenario: "Scenario") -> str:
    """Observation key: the cap-free scenario hash (the lockstep-group
    identity, platform/policy content folded into the hash itself)."""
    return scenario.with_(caps=()).scenario_hash()


def _shared_fraction(scenarios: Sequence["Scenario"]) -> float:
    """Fraction of the replay horizon the group replays once.

    A proxy for the PR 6 divergence onset: nothing can diverge before
    the earliest cap window opens.  An uncapped cell never diverges,
    so it does not lower the bound (``default=duration``).
    """
    base = scenarios[0]
    duration = base.effective_duration
    if duration <= 0:
        return 0.0
    earliest = min(
        min((c.start for c in sc.caps), default=duration) for sc in scenarios
    )
    return max(0.0, min(1.0, earliest / duration))


@dataclass(frozen=True)
class GroupEstimate:
    """One scheduled unit of a batch×pool sweep plan."""

    group: str  #: cap-free scenario hash (lockstep-group identity)
    label: str  #: display name (the first member's scenario name)
    indices: tuple[int, ...]  #: member positions in the submitted list
    seconds: float  #: estimated group wall seconds
    source: str  #: "observed" | "calibrated" | "cold"

    @property
    def n_cells(self) -> int:
        return len(self.indices)


class CostModel:
    """Per-cell cost estimates refined by persisted observations.

    Construct via :meth:`from_store` to pick up earlier sweeps'
    observations; call :meth:`observe` as results land and
    :meth:`flush` once per sweep to persist the refined state.
    """

    def __init__(self, meta: Mapping[str, Any] | None = None) -> None:
        self._groups: dict[str, dict[str, float]] = {}
        self._rates: dict[str, dict[str, float]] = {}
        self._dirty = False
        if meta and meta.get("schema") == COST_META_SCHEMA:
            for key, entry in dict(meta.get("groups", {})).items():
                try:
                    self._groups[str(key)] = {
                        "mean": float(entry["mean"]),
                        "n": float(entry["n"]),
                    }
                except (KeyError, TypeError, ValueError):
                    continue  # a malformed entry costs an estimate, not a sweep
            for key, entry in dict(meta.get("rates", {})).items():
                try:
                    self._rates[str(key)] = {
                        "mean": float(entry["mean"]),
                        "n": float(entry["n"]),
                    }
                except (KeyError, TypeError, ValueError):
                    continue

    @classmethod
    def from_store(cls, store: Any) -> "CostModel":
        """Seed from a result store's metadata document (stores without
        a metadata side-channel yield an uncalibrated model)."""
        get_meta = getattr(store, "get_meta", None)
        meta = get_meta(COST_META) if callable(get_meta) else None
        return cls(meta)

    # -- estimation -------------------------------------------------------------------

    @staticmethod
    def cold_cell_units(scenario: "Scenario") -> float:
        """Spec-only cost units of one cell (platform-aware, rateless)."""
        from repro.platform import get_platform

        spec = get_platform(scenario.platform)
        cores = max(1.0, spec.full_machine_cores * scenario.scale)
        hours = scenario.effective_duration / 3600.0
        weight = INTERVAL_WEIGHTS.get(scenario.interval, 1.0)
        # Jobs scale with capacity x pressure; event cost grows a bit
        # more than linearly in machine size (queue depth), hence the
        # sqrt-boosted core term.
        return hours * scenario.overload * weight * (cores / 1000.0) ** 0.5

    def estimate_cell(self, scenario: "Scenario") -> tuple[float, str]:
        """Estimated wall seconds of one cell, and the estimate source."""
        observed = self._groups.get(_group_key(scenario))
        if observed is not None and observed["n"] > 0:
            return observed["mean"], "observed"
        units = self.cold_cell_units(scenario)
        rate = self._rates.get(scenario.platform)
        if rate is not None and rate["n"] > 0:
            return units * rate["mean"], "calibrated"
        return units * DEFAULT_RATE, "cold"

    def estimate_group(
        self, scenarios: Sequence["Scenario"], indices: Sequence[int]
    ) -> GroupEstimate:
        """Estimated cost of one lockstep group (prefix sharing folded
        in: the pre-window prefix is replayed once, not ``n`` times)."""
        members = [scenarios[i] for i in indices]
        cell, source = self.estimate_cell(members[0])
        shared = _shared_fraction(members)
        n = len(members)
        return GroupEstimate(
            group=_group_key(members[0]),
            label=members[0].name,
            indices=tuple(indices),
            seconds=cell * (shared + n * (1.0 - shared)),
            source=source,
        )

    # -- refinement -------------------------------------------------------------------

    def observe(self, scenario: "Scenario", cell_seconds: float) -> None:
        """Fold one executed cell's wall seconds into the model."""
        if not (cell_seconds > 0) or math.isinf(cell_seconds):
            return
        key = _group_key(scenario)
        entry = self._groups.setdefault(key, {"mean": 0.0, "n": 0.0})
        entry["n"] += 1
        entry["mean"] += (cell_seconds - entry["mean"]) / entry["n"]
        units = self.cold_cell_units(scenario)
        if units > 0:
            rate = self._rates.setdefault(
                scenario.platform, {"mean": 0.0, "n": 0.0}
            )
            rate["n"] += 1
            rate["mean"] += (cell_seconds / units - rate["mean"]) / rate["n"]
        self._dirty = True

    def to_meta(self) -> dict[str, Any]:
        groups = self._groups
        if len(groups) > MAX_OBSERVED_GROUPS:
            # Keep the best-sampled groups; ties break on the key so
            # concurrent flushers converge.
            keep = sorted(groups, key=lambda k: (-groups[k]["n"], k))
            groups = {k: groups[k] for k in keep[:MAX_OBSERVED_GROUPS]}
        return {
            "schema": COST_META_SCHEMA,
            "groups": {k: dict(v) for k, v in sorted(groups.items())},
            "rates": {k: dict(v) for k, v in sorted(self._rates.items())},
        }

    def flush(self, store: Any) -> None:
        """Persist observations to the store's metadata side-channel
        (no-op for stores without one, or with nothing new)."""
        put_meta = getattr(store, "put_meta", None)
        if not self._dirty or not callable(put_meta):
            return
        put_meta(COST_META, self.to_meta())
        self._dirty = False


def lpt_order(estimates: Sequence[GroupEstimate]) -> list[GroupEstimate]:
    """Longest-processing-time-first dispatch order (ties break on the
    group key, so a plan is deterministic for a given model state)."""
    return sorted(estimates, key=lambda e: (-e.seconds, e.group))


def assign_workers(
    estimates: Sequence[GroupEstimate], workers: int
) -> list[tuple[GroupEstimate, int]]:
    """Greedy LPT placement onto ``workers`` identical workers.

    Returns ``(estimate, worker_index)`` pairs in dispatch order — the
    plan ``repro exp run --plan`` prints, and the order the batch-pool
    backend submits.  With one worker everything lands on worker 0 and
    the order is pure LPT.
    """
    workers = max(1, int(workers))
    loads = [0.0] * workers
    placed: list[tuple[GroupEstimate, int]] = []
    for est in lpt_order(estimates):
        w = min(range(workers), key=lambda i: (loads[i], i))
        loads[w] += est.seconds
        placed.append((est, w))
    return placed


def plan_table(
    placed: Sequence[tuple[GroupEstimate, int]], workers: int
) -> str:
    """Plain-text rendering of an LPT plan (``repro exp run --plan``)."""
    header = (
        f"{'group':<18} {'scenario':<28} {'cells':>5} {'est':>8} "
        f"{'src':>10} {'worker':>6}"
    )
    lines = [header, "-" * len(header)]
    total = 0.0
    loads = [0.0] * max(1, int(workers))
    for est, w in placed:
        total += est.seconds
        loads[w] += est.seconds
        lines.append(
            f"{est.group[:16]:<18} {est.label:<28.28} {est.n_cells:>5d} "
            f"{est.seconds:>7.1f}s {est.source:>10} {w:>6d}"
        )
    makespan = max(loads) if placed else 0.0
    lines.append(
        f"{len(placed)} group(s), {sum(e.n_cells for e, _ in placed)} "
        f"cell(s); est total {total:.1f}s, est makespan {makespan:.1f}s "
        f"on {max(1, int(workers))} worker(s)"
    )
    return "\n".join(lines)
