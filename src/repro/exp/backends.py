"""Execution backends: pluggable engines behind the experiment harness.

An :class:`ExecutionBackend` answers two questions for the
:class:`~repro.exp.runner.GridRunner`:

* **ownership** — :meth:`ExecutionBackend.owns` says whether this
  backend instance is responsible for a given scenario (keyed by its
  content hash).  Full backends own everything; a
  :class:`ShardedBackend` owns the deterministic ``1/n`` slice assigned
  to its shard, which is how one grid splits across independent
  machines or CI jobs without any coordination;
* **execution** — :meth:`ExecutionBackend.map` runs the work function
  over the owned scenarios and yields results in input order, and
  :meth:`ExecutionBackend.map_tasks` is its **fault-tolerant** form:
  per-item retries under a :class:`~repro.exp.resilience.RetryPolicy`,
  per-item timeouts, and in-band
  :class:`~repro.exp.resilience.TaskFailure` outcomes instead of a
  sweep-aborting exception.

Every backend executes the identical work function on the identical
scenario specs, so *which* backend ran a scenario can never change the
result — the golden trace digests pin this bit-for-bit.

:class:`ProcessPoolBackend` runs on a
:class:`concurrent.futures.ProcessPoolExecutor` and **survives worker
death**: a crashed worker (segfault, OOM kill, injected ``os._exit``)
breaks the executor, which is then respawned; in-flight scenarios are
requeued, and crash attribution is settled by re-running the suspects
one at a time — so a poison scenario is charged (and eventually
quarantined) while innocent bystanders of the same pool break are
not.  A scenario that outlives its per-item timeout is presumed hung:
its workers are killed, the pool respawned, the offender charged.
Its :meth:`close` is idempotent — including after a pool break — and
live pools are additionally terminated by one ``atexit`` hook, never
by ``__del__``, whose GC timing at interpreter shutdown used to race
the pool teardown and leak resource warnings.
"""

from __future__ import annotations

import atexit
import multiprocessing
import time
import warnings
import weakref
from collections import deque
from dataclasses import replace
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from functools import partial
from typing import Any, Callable, Iterable, Iterator, Sequence

import os

from repro.exp import faults as _faults
from repro.exp import shm as _shm
from repro.exp.resilience import (
    RetryPolicy,
    TaskFailure,
    TaskOutcome,
    run_with_retry,
)
from repro.exp.spec import Scenario, parse_shard, shard_index
from repro.exp.store import DEFAULT_SERIES_DT


def _task_label(item: Any) -> str:
    """Stable per-item label for backoff jitter and diagnostics."""
    hasher = getattr(item, "scenario_hash", None)
    if callable(hasher):
        return hasher()
    return repr(item)


def _available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


class ExecutionBackend:
    """Duck-typed protocol of a harness execution backend."""

    #: human label (CLI/diagnostics)
    name: str = "backend"

    def owns(self, scenario_hash: str) -> bool:
        """Whether this backend executes the scenario with this content
        hash.  Full backends own everything; sharded ones a slice."""
        return True

    def map(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> Iterator[Any]:
        """Apply ``fn`` to every item, yielding results in input order."""
        raise NotImplementedError

    def map_tasks(
        self,
        fn: Callable[..., Any],
        items: Sequence[Any],
        *,
        retry: RetryPolicy | None = None,
        timeout: float | None = None,
    ) -> Iterator[TaskOutcome]:
        """Fault-tolerant :meth:`map`: yields ``(index, outcome,
        retries)`` triples, in no particular order.

        ``fn`` must accept an ``attempt`` keyword (1-based execution
        count) — that is how deterministic fault plans and retry
        accounting see *which* execution this is.  The outcome is
        ``fn``'s return value, or a
        :class:`~repro.exp.resilience.TaskFailure` once the retry
        budget is exhausted (or immediately, for errors the policy
        classifies as fatal).  ``timeout`` bounds one attempt's wall
        clock where the backend can enforce it (the process pool can;
        in-process backends cannot preempt a running replay and treat
        an injected hang as an ordinary timeout failure).

        The default implementation runs in-process, one item at a
        time, through :func:`~repro.exp.resilience.run_with_retry`.
        """
        for i, item in enumerate(items):
            outcome, retries = run_with_retry(
                partial(self._call_attempt, fn, item),
                label=_task_label(item),
                retry=retry,
            )
            yield i, outcome, retries

    @staticmethod
    def _call_attempt(fn: Callable[..., Any], item: Any, attempt: int) -> Any:
        return fn(item, attempt=attempt)

    def close(self) -> None:
        """Release resources; must be idempotent."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """In-process, one scenario at a time — the reference executor."""

    name = "serial"

    def map(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> Iterator[Any]:
        return (fn(item) for item in items)


#: pools that must not survive interpreter shutdown (see _atexit_reap)
_LIVE_POOL_BACKENDS: "weakref.WeakSet[ProcessPoolBackend]" = weakref.WeakSet()
_REAPER_REGISTERED = False


def _atexit_reap() -> None:  # pragma: no cover - interpreter shutdown
    """Terminate pools that were never closed.

    Runs while the interpreter is still intact (unlike ``__del__`` at
    GC time, which could fire after multiprocessing's own machinery was
    torn down and spray ResourceWarnings).  ``terminate`` rather than
    ``close``: an abandoned pool's workers may be mid-task (or hung),
    and exit must not wait on them.  Tolerates pools that a
    ``BrokenProcessPool`` already tore down — a broken executor's
    shutdown is a no-op, not an error.
    """
    for backend in list(_LIVE_POOL_BACKENDS):
        try:
            backend._shutdown(terminate=True)
        except Exception:
            pass  # shutdown noise must never mask the real exit status


class ProcessPoolBackend(ExecutionBackend):
    """Process-pool execution that survives worker death.

    Parameters
    ----------
    workers:
        Process count; ``None`` or ``<= 1`` degrades to serial
        execution in-process (no pool is ever created).
    mp_context:
        Start method; default picks ``fork`` where available (cheap,
        and harmless here: workers rebuild every scenario from its
        spec, so inherited state cannot leak into results) and
        ``spawn`` elsewhere.
    persistent:
        Keep the pool alive between :meth:`map` calls (fork once,
        stream scenarios).  Workers then retain their per-process
        machine/workload memos, so iterative sweeps stop paying a pool
        spin-up plus cold caches per batch.  Off by default: a
        persistent pool outlives ``map()``, so callers must release it
        via :meth:`close` or a ``with`` block (an ``atexit`` hook
        terminates leaked ones).
    """

    name = "pool"

    #: poll interval of the resilient loop (timeout checks), seconds
    _TICK = 0.25

    def __init__(
        self,
        workers: int | None = None,
        *,
        mp_context: str | None = None,
        persistent: bool = False,
    ) -> None:
        self.workers = int(workers) if workers is not None else 1
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else "spawn"
        self.mp_context = mp_context
        self.persistent = bool(persistent)
        self._pool: ProcessPoolExecutor | None = None
        self._pool_size = 0
        #: pool respawns forced by worker death or hung-task kills
        self.n_respawns = 0
        #: driver-owned shm segment-name prefix: every segment this
        #: backend's workers place carries it, so killed workers'
        #: orphans are enumerable (and reaped on respawn/shutdown)
        self._shm_prefix = _shm.new_prefix()

    @property
    def transport_prefix(self) -> str | None:
        """The shm data plane's segment prefix — ``None`` when no
        process boundary is in play (``workers <= 1`` runs tasks
        in-process, where descriptors would only add a copy)."""
        return self._shm_prefix if self.workers > 1 else None

    @property
    def supports_spec_cache(self) -> bool:
        """Whether hash-only spec envelopes are worth shipping.

        Restricted to the ``fork`` start method: forked workers
        inherit the driver's seeded content-addressed caches, so
        hash-only references hit from the first task.  ``spawn``
        workers start cold — every first reference would bounce
        through the miss protocol, costing a round-trip per worker —
        so they keep full envelopes.
        """
        return self.workers > 1 and self.mp_context == "fork"

    def _get_pool(self, n_tasks: int) -> ProcessPoolExecutor:
        """The persistent pool, sized ``min(workers, n_tasks)``.

        An existing pool is reused when it is big enough; a larger
        batch grows it (workers are re-forked, a one-off cost).
        """
        global _REAPER_REGISTERED
        n = min(self.workers, max(n_tasks, 1))
        if self._pool is not None and self._pool_size < n:
            self.close()
        if self._pool is None:
            ctx = multiprocessing.get_context(self.mp_context)
            self._pool = ProcessPoolExecutor(max_workers=n, mp_context=ctx)
            self._pool_size = n
            _LIVE_POOL_BACKENDS.add(self)
            if not _REAPER_REGISTERED:
                atexit.register(_atexit_reap)
                _REAPER_REGISTERED = True
        return self._pool

    @staticmethod
    def _kill_workers(pool: ProcessPoolExecutor) -> None:
        """Hard-stop a pool's worker processes (hung or orphaned)."""
        for proc in list(getattr(pool, "_processes", {}).values()):
            try:
                proc.terminate()
            except Exception:  # pragma: no cover - already-dead workers
                pass

    def _shutdown(self, *, terminate: bool) -> None:
        pool, self._pool = self._pool, None
        self._pool_size = 0
        _LIVE_POOL_BACKENDS.discard(self)
        if pool is not None:
            if terminate:
                procs = list(getattr(pool, "_processes", {}).values())
                self._kill_workers(pool)
                pool.shutdown(wait=False, cancel_futures=True)
                for proc in procs:
                    # Bounded join: reaping below must not race a
                    # worker that is still dying mid-segment-write.
                    try:
                        proc.join(1.0)
                    except Exception:  # pragma: no cover - already reaped
                        pass
            else:
                pool.shutdown(wait=True, cancel_futures=False)
        # The workers are dead (or joined, or never existed): any
        # segment still carrying this backend's prefix was placed by a
        # worker whose descriptor never reached the driver — reclaim
        # it now rather than leak it until reboot.  Unconditional: the
        # respawn contract is "this prefix is clean before the fresh
        # pool forks", whatever state the old pool was in.
        _shm.reap_prefix(self._shm_prefix)

    def _respawn(self, n_tasks: int) -> ProcessPoolExecutor:
        """Replace a broken/hung pool with a fresh one, requeue-ready.

        Part of the crash-cleanup contract: ``_shutdown`` reaps shm
        segments orphaned by the killed workers before the fresh pool
        forks, so a worker dying mid-write can never leak a segment
        past its pool's lifetime."""
        self.n_respawns += 1
        self._shutdown(terminate=True)
        return self._get_pool(n_tasks)

    def close(self) -> None:
        """Shut the pool down; safe to call any number of times, and
        safe after a ``BrokenProcessPool`` already killed the workers
        (a broken executor's ``shutdown`` is a no-op)."""
        self._shutdown(terminate=False)

    # -- plain map --------------------------------------------------------------------

    def map(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> Iterator[Any]:
        items = list(items)
        if self.workers <= 1 or len(items) <= 1:
            # Nothing to parallelise: skip the pool entirely (and its
            # per-item pickling) — results are identical either way.
            return (fn(item) for item in items)
        if self.persistent:
            return self._stream(self._get_pool(len(items)), fn, items)
        return self._oneshot_map(fn, items)

    def _stream(
        self,
        pool: ProcessPoolExecutor,
        fn: Callable[[Any], Any],
        items: list[Any],
        *,
        owned: bool = False,
    ) -> Iterator[Any]:
        try:
            futures = [pool.submit(fn, item) for item in items]
            for fut in futures:
                yield fut.result()
        except BrokenProcessPool:
            # The pool is dead; discard it so the backend stays usable
            # (the next map() forks a fresh pool) and close() stays an
            # idempotent no-op instead of tripping over the corpse.
            if pool is self._pool:
                self._shutdown(terminate=True)
            raise
        finally:
            if owned:
                pool.shutdown(wait=False, cancel_futures=True)

    def _oneshot_map(
        self, fn: Callable[[Any], Any], items: list[Any]
    ) -> Iterator[Any]:
        ctx = multiprocessing.get_context(self.mp_context)
        pool = ProcessPoolExecutor(
            max_workers=min(self.workers, len(items)), mp_context=ctx
        )
        return self._stream(pool, fn, items, owned=True)

    # -- resilient map ----------------------------------------------------------------

    def map_tasks(
        self,
        fn: Callable[..., Any],
        items: Sequence[Any],
        *,
        retry: RetryPolicy | None = None,
        timeout: float | None = None,
    ) -> Iterator[TaskOutcome]:
        items = list(items)
        if self.workers <= 1 or len(items) <= 1:
            yield from super().map_tasks(fn, items, retry=retry, timeout=timeout)
            return
        yield from self._resilient_map(
            fn, items, retry if retry is not None else RetryPolicy(max_attempts=1),
            timeout,
        )

    def _resilient_map(
        self,
        fn: Callable[..., Any],
        items: list[Any],
        policy: RetryPolicy,
        timeout: float | None,
    ) -> Iterator[TaskOutcome]:
        """The crash-surviving scheduler loop.

        State per item: ``execs`` (how many times it actually started
        executing — the ``attempt`` number fault plans key on) and
        ``charges`` (failures attributed to *it*, judged against the
        retry budget).  The two differ exactly when a pool break kills
        innocent bystanders: those are re-executed without being
        charged.

        Attribution protocol on a pool break: every in-flight scenario
        is a suspect, and suspects are re-run **solo** (one in flight
        at a time).  A solo crash has exactly one suspect, which is
        charged; after ``max_attempts`` charges the poison scenario is
        failed (``kind="crash"``) instead of the sweep.  Timeouts need
        no such protocol — the expired future identifies its owner —
        so only the offender is charged while other in-flight items
        requeue unpenalised.
        """
        n = len(items)
        execs = [0] * n
        charges = [0] * n
        retries = [0] * n
        # (index, ready_at) queues: wide runs through `pending`,
        # attribution runs through `solo` (drained one at a time).
        pending: deque[tuple[int, float]] = deque((i, 0.0) for i in range(n))
        solo: deque[tuple[int, float]] = deque()
        inflight: dict[Any, tuple[int, float]] = {}  # future -> (index, started)
        tick = self._TICK if timeout is None else max(0.01, min(self._TICK, timeout / 5))
        self._get_pool(n)  # sets _pool_size, which bounds the window below

        def submit(index: int) -> None:
            pool = self._get_pool(n)
            execs[index] += 1
            fut = pool.submit(partial(fn, attempt=execs[index]), items[index])
            inflight[fut] = (index, time.monotonic())

        def charge(index: int, exc: BaseException | None, kind: str) -> TaskFailure | None:
            """Attribute one failure; requeue to ``queue`` or fail."""
            charges[index] += 1
            retryable = exc is None or policy.is_retryable(exc)
            if retryable and charges[index] < policy.max_attempts:
                retries[index] += 1
                delay = policy.backoff(_task_label(items[index]), charges[index])
                solo.append((index, time.monotonic() + delay))
                return None
            return TaskFailure(
                kind=kind,
                error_type=type(exc).__name__ if exc is not None else kind,
                message=(
                    str(exc)
                    if exc is not None
                    else f"worker died executing this scenario "
                    f"({charges[index]} attempt(s))"
                    if kind == "crash"
                    else f"scenario exceeded its {timeout:g}s timeout "
                    f"({charges[index]} attempt(s))"
                ),
                attempts=charges[index],
                exception=exc,
            )

        def ready(queue: deque[tuple[int, float]]) -> int | None:
            if queue and queue[0][1] <= time.monotonic():
                return queue.popleft()[0]
            return None

        try:
            while pending or solo or inflight:
                # Fill the pool: solo mode (suspects awaiting
                # attribution) admits one in-flight item at a time and
                # starves the wide queue until the suspects are clear.
                if solo:
                    if not inflight:
                        index = ready(solo)
                        if index is not None:
                            submit(index)
                else:
                    while len(inflight) < self._pool_size:
                        index = ready(pending)
                        if index is None:
                            break
                        submit(index)
                if not inflight:
                    # Backoff gap: nothing running, nothing ready yet.
                    queue = solo if solo else pending
                    time.sleep(
                        max(0.0, min(queue[0][1] - time.monotonic(), tick))
                        if queue
                        else tick
                    )
                    continue

                done, _ = wait(
                    set(inflight), timeout=tick, return_when=FIRST_COMPLETED
                )
                broken = False
                for fut in done:
                    index, _started = inflight.pop(fut)
                    try:
                        result = fut.result()
                    except BrokenProcessPool:
                        broken = True
                        suspects = [index] + [i for i, _ in inflight.values()]
                        inflight.clear()
                        break
                    except Exception as exc:  # noqa: BLE001 - classified by policy
                        failure = charge(index, exc, "error")
                        if failure is not None:
                            yield index, failure, retries[index]
                    else:
                        yield index, result, retries[index]

                if broken:
                    self._respawn(n)
                    if len(suspects) == 1:
                        # Definite attribution: the lone in-flight
                        # scenario killed its worker.
                        failure = charge(suspects[0], None, "crash")
                        if failure is not None:
                            yield suspects[0], failure, retries[suspects[0]]
                    else:
                        # Ambiguous: isolate the suspects, uncharged
                        # (the re-execution still counts as a retry in
                        # the report's accounting).
                        for i in suspects:
                            retries[i] += 1
                            solo.append((i, 0.0))
                    continue

                if timeout is not None and inflight:
                    now = time.monotonic()
                    expired = [
                        (fut, idx)
                        for fut, (idx, started) in inflight.items()
                        if now - started > timeout and not fut.done()
                    ]
                    if expired:
                        # Presumed hung: kill the whole pool (a single
                        # worker cannot be detached), requeue the
                        # innocent in-flight scenarios unpenalised,
                        # charge the offenders.
                        offender_ids = {idx for _, idx in expired}
                        innocents = [
                            idx
                            for _, (idx, _s) in inflight.items()
                            if idx not in offender_ids
                        ]
                        inflight.clear()
                        self._respawn(n)
                        for idx in innocents:
                            retries[idx] += 1
                            pending.appendleft((idx, 0.0))
                        for idx in offender_ids:
                            failure = charge(idx, None, "timeout")
                            if failure is not None:
                                yield idx, failure, retries[idx]
        finally:
            if not self.persistent:
                self.close()


class BatchBackend(ExecutionBackend):
    """Vectorised lockstep execution of same-platform scenario groups.

    Scenarios that differ only in their cap windows — the shape of a
    powercap sweep — share one machine, one workload and one policy;
    this backend groups them by their cap-free content (scenario hash
    with ``caps`` stripped, plus the registered platform's content
    hash) and replays each multi-cell group through
    :func:`repro.sim.batch.run_replay_batch`: one process, one
    scenario-major node-state matrix, a shared event horizon, and a
    checkpointed warm-start of the pre-window prefix where the
    divergence analysis allows it.  Singleton groups take the ordinary
    serial path.  Results are bit-identical to any other backend —
    the golden digests pin this.

    **Graceful degradation**: a faulting cell falls out of the
    lockstep batch and re-runs solo, siblings unaffected.  A cell with
    an armed fault plan entry is excluded up front (its faults fire on
    the solo path, where they are retryable/quarantinable); a batch
    replay that raises degrades every cell of that group to solo
    re-runs — one bad cell can cost its group the lockstep speedup,
    never their results.
    """

    name = "batch"
    #: GridRunner seam: hand this backend the scenario list itself
    #: (:meth:`run_scenarios`) instead of an opaque work function
    wants_scenarios = True
    #: one timeout warning per backend instance (class default keeps
    #: the no-__init__ construction shape)
    _warned_timeout = False

    def map(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> Iterator[Any]:
        """Opaque work functions cannot be batched: run them serially."""
        return (fn(item) for item in items)

    @staticmethod
    def group_key(scenario: "Scenario") -> tuple[str, str]:
        """Batching key: everything but the caps, platform by content."""
        from repro.platform import get_platform

        return (
            scenario.with_(caps=()).scenario_hash(),
            get_platform(scenario.platform).content_hash(),
        )

    def run_scenarios(
        self,
        scenarios: Sequence["Scenario"],
        *,
        series: bool = False,
        grid_dt: float = DEFAULT_SERIES_DT,
        retry: RetryPolicy | None = None,
        timeout: float | None = None,
        checkpoints: Any = None,
        tally: Any = None,
        profile_dir: str | None = None,
        cost_model: Any = None,
        group_stats: dict | None = None,
        shipper: Any = None,
        transfer: Any = None,
        shm_prefix: str | None = None,
    ) -> Iterator[TaskOutcome]:
        """Execute ``scenarios`` (already deduped by the runner),
        yielding ``(index, outcome, retries)`` triples shaped exactly
        like :meth:`ExecutionBackend.map_tasks` — outcomes are
        :func:`repro.exp.runner._run_task`-shaped payloads or
        :class:`~repro.exp.resilience.TaskFailure`.  ``timeout``
        cannot be enforced in-process (nothing can preempt a running
        replay from inside its own process), so requesting one warns
        once and points at ``--backend batch-pool``, where the pool's
        hung-worker kill path makes it real.

        ``checkpoints``/``tally`` thread the runner's warm-start store
        through **every** execution path: lockstep groups pass a
        :class:`~repro.exp.checkpoints.WarmStart` into the batch replay,
        while singleton groups, fault-planned cells, and degraded solo
        re-runs probe/publish through the serial path — a group of one
        still reuses (and seeds) the shared prefix instead of silently
        running cold.  Everything runs in-process, so the runner's
        tally object is mutated directly.

        ``cost_model`` is accepted for signature parity with the
        batch×pool composition (serial group order cannot change the
        makespan); ``group_stats``, when given, is filled with the
        per-group accounting :attr:`SweepReport.groups` reports.
        ``shipper``/``transfer``/``shm_prefix`` — the data plane's
        seams — are likewise parity-only: nothing crosses a process
        boundary here, so there is nothing to compact or account."""
        from repro.exp.checkpoints import WarmStart, checkpoint_group
        from repro.exp.runner import (
            _condense,
            _jobs_for,
            _machine_for,
            run_scenario,
            run_scenario_with_series,
        )
        from repro.platform import get_platform
        from repro.sim.batch import run_replay_batch

        scenarios = list(scenarios)
        plan = _faults.active_plan()
        if timeout is not None and not self._warned_timeout:
            self._warned_timeout = True
            warnings.warn(
                "the in-process batch backend cannot enforce per-scenario "
                "timeouts (a running replay cannot be preempted from its "
                "own process); the timeout is ignored — use "
                "--backend batch-pool to run lockstep groups under the "
                "pool's hung-worker kill path",
                RuntimeWarning,
                stacklevel=3,
            )

        def run_solo(index: int) -> TaskOutcome:
            sc = scenarios[index]

            def one_attempt(attempt: int) -> Any:
                if series:
                    return run_scenario_with_series(
                        sc,
                        grid_dt=grid_dt,
                        attempt=attempt,
                        checkpoints=checkpoints,
                        tally=tally,
                        profile_dir=profile_dir,
                    )
                return run_scenario(
                    sc,
                    attempt=attempt,
                    checkpoints=checkpoints,
                    tally=tally,
                    profile_dir=profile_dir,
                )

            outcome, n_retries = run_with_retry(
                one_attempt, label=sc.scenario_hash(), retry=retry
            )
            return index, outcome, n_retries

        groups: dict[tuple[str, str], list[int]] = {}
        n_fault_solo = 0
        for i, sc in enumerate(scenarios):
            if plan is not None and plan.fault_for(sc.scenario_hash()) is not None:
                # A cell with a planned fault falls out of its lockstep
                # group: its faults fire (and are retried/quarantined)
                # on the solo path, siblings batch unaffected.
                n_fault_solo += 1
                yield run_solo(i)
                continue
            groups.setdefault(self.group_key(sc), []).append(i)

        multi = [idxs for idxs in groups.values() if len(idxs) > 1]
        if group_stats is not None:
            group_stats.update(
                n_groups=len(multi),
                n_batched_cells=sum(len(idxs) for idxs in multi),
                n_singletons=sum(
                    1 for idxs in groups.values() if len(idxs) == 1
                ),
                n_fault_solo=n_fault_solo,
                n_degraded_groups=0,
                groups={},
            )

        for (capfree_hash, platform_hash), idxs in groups.items():
            if len(idxs) == 1:
                yield run_solo(idxs[0])
                continue
            t0 = time.perf_counter()
            base = scenarios[idxs[0]]
            timings: dict[str, float] = {}
            prof = None
            try:
                platform = get_platform(base.platform)
                machine = _machine_for(base.platform, platform_hash, base.scale)
                jobs = _jobs_for(
                    base.platform,
                    platform_hash,
                    base.interval,
                    base.effective_seed,
                    base.effective_duration,
                    base.overload,
                    base.scale,
                )
                warm = (
                    WarmStart(checkpoints, checkpoint_group(base), tally)
                    if checkpoints is not None
                    else None
                )
                if profile_dir is not None:
                    import cProfile

                    prof = cProfile.Profile()
                    prof.enable()
                replays = run_replay_batch(
                    machine,
                    jobs,
                    base.build_policy(machine),
                    duration=base.effective_duration,
                    caps_per_cell=[
                        scenarios[i].build_caps(machine) for i in idxs
                    ],
                    config=base.build_config(),
                    platform=platform,
                    warm_start=warm,
                    timings=timings,
                )
            except Exception:  # noqa: BLE001 - degrade, don't lose the group
                # The lockstep replay itself failed: degrade every cell
                # of this group to an independent solo re-run.  The
                # failure cannot be attributed to one cell from here;
                # solo execution attributes (and retries) it exactly.
                if prof is not None:
                    prof.disable()
                if group_stats is not None:
                    group_stats["n_degraded_groups"] += 1
                for i in idxs:
                    yield run_solo(i)
                continue
            if prof is not None:
                prof.disable()
                from pathlib import Path

                out = Path(profile_dir)
                out.mkdir(parents=True, exist_ok=True)
                prof.dump_stats(out / f"batch-{capfree_hash}.pstats")
            # Each cell's wall clock reports its share of the batch, so
            # aggregate wall sums stay comparable across backends; the
            # group's full elapsed rides on every cell.
            t_end = time.perf_counter()
            elapsed = t_end - t0
            share_t0 = t_end - elapsed / len(idxs)
            if group_stats is not None:
                group_stats["groups"][capfree_hash] = {
                    "cells": len(idxs),
                    "elapsed_seconds": elapsed,
                    "warm": bool(timings.get("warm")),
                    "fork_t": timings.get("fork_t", 0.0),
                }
            for i, replay in zip(idxs, replays):
                result = replace(
                    _condense(scenarios[i], replay, share_t0),
                    elapsed_seconds=elapsed,
                )
                if series:
                    grid = dict(
                        replay.recorder.to_grid(0.0, replay.duration, grid_dt)
                    )
                    yield i, (result, grid), 0
                else:
                    yield i, result, 0


class BatchPoolBackend(ProcessPoolBackend):
    """Batch×pool composition: whole lockstep groups on pool workers.

    Groups scenarios exactly like :class:`BatchBackend` (cap-free
    scenario hash + platform content hash), then dispatches each
    multi-cell group to a :class:`ProcessPoolBackend` worker as one
    work item (:func:`repro.exp.runner._run_group_task`): the worker
    replays the group in lockstep and returns the condensed per-cell
    outcomes, so the PR 6 lockstep win multiplies by the worker count
    instead of serialising on one core.  Singleton groups ride the
    ordinary solo task path (the parent's resilient ``map_tasks``).

    Dispatch order is **longest-processing-time-first** under the
    calibrated cost model (:mod:`repro.exp.costmodel`): heavy groups
    go out first so the sweep's makespan approaches ``total/workers``
    instead of idling every worker behind whichever group lands last.

    **Fault semantics** (the PR 7 state machine at group granularity):
    a group is single-shot — any failure *degrades* it, it is never
    retried as a group.  A worker exception degrades the group's cells
    to solo re-runs; a dead worker (``BrokenProcessPool``) degrades
    every in-flight group; a group outliving its budget — the
    per-scenario ``timeout`` × its cell count, since one group does
    that many cells of work — has its workers killed and degrades,
    which finally makes ``timeout`` enforceable for batch execution.
    Degraded cells re-run through the solo path with its full
    retry/attribution machinery, so one bad cell costs its group the
    lockstep speedup, never their results.  Unlike the in-process
    batch backend, cells with planned faults are *not* pre-excluded
    from their group: their faults fire inside a pool worker (where a
    crash kills a worker, not the driver), exercising exactly this
    degradation path.

    **Warm starts** compose structurally: a lockstep group and a
    checkpoint group are the same partition (both key on the cap-free
    scenario content plus platform/policy), so each group's worker is
    its own publisher election of one — the donor cell publishes the
    shared cap-free prefix, and any later run of the same key (this
    sweep's degraded solos, the next sweep's groups) restores it.
    Only shareable checkpoint stores reach workers; the runner
    already withholds in-memory stores from pool backends.
    """

    name = "batch-pool"
    wants_scenarios = True

    def run_scenarios(
        self,
        scenarios: Sequence["Scenario"],
        *,
        series: bool = False,
        grid_dt: float = DEFAULT_SERIES_DT,
        retry: RetryPolicy | None = None,
        timeout: float | None = None,
        checkpoints: Any = None,
        tally: Any = None,
        profile_dir: str | None = None,
        cost_model: Any = None,
        group_stats: dict | None = None,
        shipper: Any = None,
        transfer: Any = None,
        shm_prefix: str | None = None,
    ) -> Iterator[TaskOutcome]:
        """Execute ``scenarios``; yields ``map_tasks``-shaped triples.

        With one worker there is nothing to compose: execution
        delegates to an in-process :class:`BatchBackend` (bit-identical
        results, no pool).

        The data plane threads through both dispatch paths: group
        envelopes ship compact (:class:`~repro.exp.shm.GroupEnvelope`
        — base spec once, then scenario hashes plus cap deltas) when
        ``shipper`` allows it, a worker's spec-cache miss requeues the
        same group with a full envelope exactly once (uncharged — no
        replay ran), series payloads ride shm segments named under
        ``shm_prefix``, and per-group transfer tallies are harvested
        from the in-band ``timings`` dict into ``transfer``.
        """
        scenarios = list(scenarios)
        if self.workers <= 1:
            yield from BatchBackend().run_scenarios(
                scenarios,
                series=series,
                grid_dt=grid_dt,
                retry=retry,
                timeout=timeout,
                checkpoints=checkpoints,
                tally=tally,
                profile_dir=profile_dir,
                cost_model=cost_model,
                group_stats=group_stats,
            )
            return

        from repro.exp.costmodel import CostModel, assign_workers
        from repro.exp.runner import (
            _run_group_task,
            _run_task,
        )

        plan = _faults.active_plan()
        faults_dict = plan.to_dict() if plan is not None else None
        if shipper is None:
            shipper = _shm.SpecShipper(compact=False)
        model = cost_model if cost_model is not None else CostModel()

        groups: dict[tuple[str, str], list[int]] = {}
        for i, sc in enumerate(scenarios):
            groups.setdefault(BatchBackend.group_key(sc), []).append(i)
        solo_idx = [idxs[0] for idxs in groups.values() if len(idxs) == 1]
        multi = [idxs for idxs in groups.values() if len(idxs) > 1]

        # LPT plan: heavy groups dispatch first.  The worker column is
        # the greedy placement the estimate predicts — dispatch itself
        # stays dynamic (whichever worker frees up takes the next
        # group), so a wrong estimate costs order, never correctness.
        placed = assign_workers(
            [model.estimate_group(scenarios, idxs) for idxs in multi],
            self.workers,
        )
        if group_stats is not None:
            group_stats.update(
                n_groups=len(multi),
                n_batched_cells=sum(len(idxs) for idxs in multi),
                n_singletons=len(solo_idx),
                n_fault_solo=sum(
                    1
                    for i in solo_idx
                    if plan is not None
                    and plan.fault_for(scenarios[i].scenario_hash()) is not None
                ),
                n_degraded_groups=0,
                plan=[
                    {
                        "group": est.group,
                        "label": est.label,
                        "cells": est.n_cells,
                        "est_seconds": est.seconds,
                        "source": est.source,
                        "worker": w,
                    }
                    for est, w in placed
                ],
                groups={},
            )

        def note_degraded(n: int = 1) -> None:
            if group_stats is not None:
                group_stats["n_degraded_groups"] += n

        if transfer is None:
            transfer = _shm.TransferTally()
        # Group dispatch never benefits from more workers than CPUs:
        # forking the surplus costs start-up and memory for zero
        # parallelism, and fewer in-flight groups keeps degradation
        # attribution tighter.  (Solo/`map_tasks` dispatch is not
        # capped — its per-cell timeout machinery wants the requested
        # width.)
        cap = max(1, min(self.workers, _available_cpus()))

        def group_payload(est: Any, full: bool) -> Any:
            """The group's wire form: full scenario tuple, or a
            compact envelope once the base spec has shipped."""
            cells = tuple(scenarios[i] for i in est.indices)
            if not shipper.compact or full:
                return cells
            base = cells[0].with_(caps=())
            group_hash = base.scenario_hash()
            return _shm.GroupEnvelope(
                group=group_hash,
                base=shipper.group_base(base, group_hash),
                cells=tuple((sc.name, sc.caps) for sc in cells),
                hashes=tuple(sc.scenario_hash() for sc in cells),
            )

        degraded: list[int] = []
        queue = deque((est, False) for est, _ in placed)
        # future -> (est, started, full-envelope?)
        inflight: dict[Any, tuple[Any, float, bool]] = {}
        tick = (
            self._TICK
            if timeout is None
            else max(0.01, min(self._TICK, timeout / 5))
        )
        group_task = partial(
            _run_group_task,
            series=series,
            grid_dt=grid_dt,
            faults=faults_dict,
            checkpoints=checkpoints,
            profile_dir=profile_dir,
            shm_prefix=shm_prefix,
        )

        try:
            if queue:
                self._get_pool(min(len(queue), cap))
            while queue or inflight:
                while queue and len(inflight) < min(self._pool_size, cap):
                    est, full = queue.popleft()
                    cells = tuple(scenarios[i] for i in est.indices)
                    env = group_payload(est, full)
                    task = partial(
                        group_task,
                        platforms=shipper.platform_payload(cells, full=full),
                    )
                    transfer.note_envelope((task, env))
                    fut = self._get_pool(min(len(queue) + 1, cap)).submit(
                        task, env
                    )
                    inflight[fut] = (est, time.monotonic(), full)
                done, _ = wait(
                    set(inflight), timeout=tick, return_when=FIRST_COMPLETED
                )
                broken = False
                for fut in done:
                    est, _started, was_full = inflight.pop(fut)
                    try:
                        res = fut.result()
                    except BrokenProcessPool:
                        broken = True
                        suspects = [est] + [
                            e for e, _s, _f in inflight.values()
                        ]
                        inflight.clear()
                        break
                    except Exception:  # noqa: BLE001 - degrade, don't lose the group
                        # The group replay raised in its worker.  As in
                        # the in-process batch backend the failure has
                        # no single owner yet; solo re-runs attribute
                        # (and retry) it exactly.
                        note_degraded()
                        degraded.extend(est.indices)
                    else:
                        if _shm.is_spec_miss(res):
                            # The worker's spec cache could not resolve
                            # the compact envelope (cold fork, LRU
                            # eviction).  Nothing ran: requeue the same
                            # group with full specs, uncharged.  A full
                            # envelope cannot miss — if one somehow
                            # does, degrade rather than loop.
                            transfer.spec_misses += len(res[1])
                            shipper.invalidate(res[1])
                            if was_full:
                                note_degraded()
                                degraded.extend(est.indices)
                            else:
                                queue.appendleft((est, True))
                            continue
                        tally_dict, timings, payloads = res
                        if len(payloads) != len(est.indices):
                            # Defensive: a malformed worker reply must
                            # not silently drop cells.
                            note_degraded()
                            degraded.extend(est.indices)
                            continue
                        if tally is not None and tally_dict:
                            tally.add(tally_dict)
                        xfer_dict = timings.pop("xfer", None)
                        if xfer_dict:
                            transfer.add(xfer_dict)
                        if group_stats is not None:
                            group_stats["groups"][est.group] = {
                                "cells": est.n_cells,
                                "elapsed_seconds": timings.get("elapsed", 0.0),
                                "warm": bool(timings.get("warm")),
                                "fork_t": timings.get("fork_t", 0.0),
                            }
                        for i, item in zip(est.indices, payloads):
                            yield i, item, 0
                if broken:
                    # A dead worker takes its whole group; with several
                    # groups in flight attribution is ambiguous, and a
                    # group is never re-run as a group — every suspect
                    # degrades to solo, where crash attribution is
                    # per-cell and exact.
                    self._respawn(min(max(len(queue), 1), cap))
                    note_degraded(len(suspects))
                    for est in suspects:
                        degraded.extend(est.indices)
                    continue
                if timeout is not None and inflight:
                    now = time.monotonic()
                    expired = {
                        fut
                        for fut, (est, started, _f) in inflight.items()
                        if now - started > timeout * est.n_cells
                        and not fut.done()
                    }
                    if expired:
                        # Presumed hung: kill the pool, requeue the
                        # innocent in-flight groups unpenalised (still
                        # as groups, keeping their envelope form), and
                        # degrade the offenders to solo — where the
                        # per-cell timeout charges the real culprit.
                        innocents = [
                            (est, f)
                            for fut, (est, _s, f) in inflight.items()
                            if fut not in expired
                        ]
                        offenders = [inflight[fut][0] for fut in expired]
                        inflight.clear()
                        self._respawn(
                            min(len(queue) + len(innocents) + 1, cap)
                        )
                        for entry in reversed(innocents):
                            queue.appendleft(entry)
                        note_degraded(len(offenders))
                        for est in offenders:
                            degraded.extend(est.indices)

            solo_all = sorted(set(solo_idx) | set(degraded))
            if solo_all:
                subset = [scenarios[i] for i in solo_all]

                def solo_task(full: bool) -> Callable[..., Any]:
                    return partial(
                        _run_task,
                        platforms=shipper.platform_payload(
                            subset, full=full
                        ),
                        series=series,
                        grid_dt=grid_dt,
                        faults=faults_dict,
                        checkpoints=checkpoints,
                        profile_dir=profile_dir,
                        shm_prefix=shm_prefix,
                    )

                # The runner leaves spec misses to scenario-aware
                # backends (it cannot re-dispatch what it did not
                # dispatch), so solo misses are answered here: one
                # full-spec redo, after which a further sentinel
                # surfaces as a loud failure upstream.
                redo: list[int] = []
                for local, outcome, retries in super().map_tasks(
                    solo_task(False), subset, retry=retry, timeout=timeout
                ):
                    if _shm.is_spec_miss(outcome):
                        transfer.spec_misses += len(outcome[1])
                        shipper.invalidate(outcome[1])
                        redo.append(local)
                        continue
                    yield solo_all[local], outcome, retries
                if redo:
                    resubset = [subset[i] for i in redo]
                    for local, outcome, retries in super().map_tasks(
                        solo_task(True), resubset, retry=retry, timeout=timeout
                    ):
                        yield solo_all[redo[local]], outcome, retries
        finally:
            if not self.persistent:
                self.close()


class ShardedBackend(ExecutionBackend):
    """A deterministic ``index/count`` slice of the grid.

    Shard membership is a pure function of the scenario content hash
    (:func:`repro.exp.spec.shard_index`), so every participant of a
    split sweep — other CI jobs, other machines — agrees on the
    partition without talking to each other, duplicates of one
    scenario always land in one shard, and the union of all shards is
    exactly the full grid.  Execution of the owned slice is delegated
    to ``inner`` (serial by default, a process pool for wide shards),
    including the fault-tolerant :meth:`map_tasks` path.
    """

    def __init__(
        self,
        index: int,
        count: int,
        *,
        inner: ExecutionBackend | None = None,
    ) -> None:
        if count < 1:
            raise ValueError("shard count must be >= 1")
        if not 0 <= index < count:
            raise ValueError(f"shard index {index} outside 0..{count - 1}")
        self.index = int(index)
        self.count = int(count)
        self.inner = inner if inner is not None else SerialBackend()
        self.name = f"shard {index + 1}/{count} on {self.inner.name}"

    def owns(self, scenario_hash: str) -> bool:
        return shard_index(scenario_hash, self.count) == self.index

    @property
    def wants_scenarios(self) -> bool:
        """Forward the batch seam when the inner backend offers it."""
        return bool(getattr(self.inner, "wants_scenarios", False))

    @property
    def transport_prefix(self) -> str | None:
        """Forward the shm seam: the inner pool's segment prefix."""
        return getattr(self.inner, "transport_prefix", None)

    @property
    def supports_spec_cache(self) -> bool:
        return bool(getattr(self.inner, "supports_spec_cache", False))

    def run_scenarios(self, scenarios: Sequence["Scenario"], **kwargs: Any):
        return self.inner.run_scenarios(scenarios, **kwargs)

    def map(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> Iterator[Any]:
        return self.inner.map(fn, items)

    def map_tasks(
        self,
        fn: Callable[..., Any],
        items: Sequence[Any],
        *,
        retry: RetryPolicy | None = None,
        timeout: float | None = None,
    ) -> Iterator[TaskOutcome]:
        return self.inner.map_tasks(fn, items, retry=retry, timeout=timeout)

    def close(self) -> None:
        self.inner.close()


#: CLI names of the full backends
BACKEND_NAMES = ("serial", "pool", "batch", "batch-pool")


def make_backend(
    name: str | None = None,
    *,
    workers: int | None = None,
    mp_context: str | None = None,
    persistent: bool = False,
    shard: str | tuple[int, int] | None = None,
) -> ExecutionBackend:
    """Build a backend from CLI-style arguments.

    ``name`` is ``serial``, ``pool``, ``batch`` or ``batch-pool``
    (``None`` picks ``pool`` when ``workers > 1``, ``serial``
    otherwise).  ``batch-pool`` composes both parallel axes: lockstep
    groups dispatched whole onto pool workers, LPT-ordered by the
    calibrated cost model.  ``shard`` — ``"k/n"`` or a ``(index,
    count)`` pair — wraps the result in a :class:`ShardedBackend`
    owning that slice.
    """
    n_workers = int(workers) if workers is not None else 1
    if name is None:
        name = "pool" if n_workers > 1 else "serial"
    if name == "serial":
        base: ExecutionBackend = SerialBackend()
    elif name == "pool":
        base = ProcessPoolBackend(
            n_workers, mp_context=mp_context, persistent=persistent
        )
    elif name == "batch":
        base = BatchBackend()
    elif name == "batch-pool":
        base = BatchPoolBackend(
            n_workers, mp_context=mp_context, persistent=persistent
        )
    else:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {BACKEND_NAMES}"
        )
    if shard is None:
        return base
    index, total = parse_shard(shard) if isinstance(shard, str) else shard
    if total == 1 and index == 0:
        return base  # 1/1 is the whole grid: no wrapper needed
    return ShardedBackend(index, total, inner=base)
