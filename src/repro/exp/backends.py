"""Execution backends: pluggable engines behind the experiment harness.

An :class:`ExecutionBackend` answers two questions for the
:class:`~repro.exp.runner.GridRunner`:

* **ownership** — :meth:`ExecutionBackend.owns` says whether this
  backend instance is responsible for a given scenario (keyed by its
  content hash).  Full backends own everything; a
  :class:`ShardedBackend` owns the deterministic ``1/n`` slice assigned
  to its shard, which is how one grid splits across independent
  machines or CI jobs without any coordination;
* **execution** — :meth:`ExecutionBackend.map` runs the work function
  over the owned scenarios and yields results in input order.

Every backend executes the identical work function on the identical
scenario specs, so *which* backend ran a scenario can never change the
result — the golden trace digests pin this bit-for-bit.

:class:`ProcessPoolBackend` holds the ``multiprocessing`` pool that
used to live inside ``GridRunner``.  Its :meth:`close` is idempotent,
and live pools are additionally terminated by one ``atexit`` hook —
never by ``__del__``, whose GC timing at interpreter shutdown used to
race the pool teardown and leak resource warnings.
"""

from __future__ import annotations

import atexit
import multiprocessing
import weakref
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.exp.spec import Scenario, parse_shard, shard_index
from repro.exp.store import DEFAULT_SERIES_DT


class ExecutionBackend:
    """Duck-typed protocol of a harness execution backend."""

    #: human label (CLI/diagnostics)
    name: str = "backend"

    def owns(self, scenario_hash: str) -> bool:
        """Whether this backend executes the scenario with this content
        hash.  Full backends own everything; sharded ones a slice."""
        return True

    def map(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> Iterator[Any]:
        """Apply ``fn`` to every item, yielding results in input order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; must be idempotent."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """In-process, one scenario at a time — the reference executor."""

    name = "serial"

    def map(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> Iterator[Any]:
        return (fn(item) for item in items)


#: pools that must not survive interpreter shutdown (see _atexit_reap)
_LIVE_POOL_BACKENDS: "weakref.WeakSet[ProcessPoolBackend]" = weakref.WeakSet()
_REAPER_REGISTERED = False


def _atexit_reap() -> None:  # pragma: no cover - interpreter shutdown
    """Terminate pools that were never closed.

    Runs while the interpreter is still intact (unlike ``__del__`` at
    GC time, which could fire after multiprocessing's own machinery was
    torn down and spray ResourceWarnings).  ``terminate`` rather than
    ``close``: an abandoned pool's workers may be mid-task, and exit
    must not hang on them.
    """
    for backend in list(_LIVE_POOL_BACKENDS):
        backend._shutdown(terminate=True)


class ProcessPoolBackend(ExecutionBackend):
    """``multiprocessing`` pool execution (today's ``GridRunner`` pool).

    Parameters
    ----------
    workers:
        Process count; ``None`` or ``<= 1`` degrades to serial
        execution in-process (no pool is ever created).
    mp_context:
        Start method; default picks ``fork`` where available (cheap,
        and harmless here: workers rebuild every scenario from its
        spec, so inherited state cannot leak into results) and
        ``spawn`` elsewhere.
    persistent:
        Keep the pool alive between :meth:`map` calls (fork once,
        stream scenarios).  Workers then retain their per-process
        machine/workload memos, so iterative sweeps stop paying a pool
        spin-up plus cold caches per batch.  Off by default: a
        persistent pool outlives ``map()``, so callers must release it
        via :meth:`close` or a ``with`` block (an ``atexit`` hook
        terminates leaked ones).
    """

    name = "pool"

    def __init__(
        self,
        workers: int | None = None,
        *,
        mp_context: str | None = None,
        persistent: bool = False,
    ) -> None:
        self.workers = int(workers) if workers is not None else 1
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else "spawn"
        self.mp_context = mp_context
        self.persistent = bool(persistent)
        self._pool = None
        self._pool_size = 0

    def _get_pool(self, n_tasks: int):
        """The persistent pool, sized ``min(workers, n_tasks)``.

        An existing pool is reused when it is big enough; a larger
        batch grows it (workers are re-forked, a one-off cost).
        """
        global _REAPER_REGISTERED
        n = min(self.workers, max(n_tasks, 1))
        if self._pool is not None and self._pool_size < n:
            self.close()
        if self._pool is None:
            ctx = multiprocessing.get_context(self.mp_context)
            self._pool = ctx.Pool(processes=n)
            self._pool_size = n
            _LIVE_POOL_BACKENDS.add(self)
            if not _REAPER_REGISTERED:
                atexit.register(_atexit_reap)
                _REAPER_REGISTERED = True
        return self._pool

    def _shutdown(self, *, terminate: bool) -> None:
        pool, self._pool = self._pool, None
        self._pool_size = 0
        _LIVE_POOL_BACKENDS.discard(self)
        if pool is not None:
            if terminate:
                pool.terminate()
            else:
                pool.close()
            pool.join()

    def close(self) -> None:
        """Shut the pool down; safe to call any number of times."""
        self._shutdown(terminate=False)

    def map(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> Iterator[Any]:
        items = list(items)
        if self.workers <= 1 or len(items) <= 1:
            # Nothing to parallelise: skip the pool entirely (and its
            # per-item pickling) — results are identical either way.
            return (fn(item) for item in items)
        if self.persistent:
            pool = self._get_pool(len(items))
            return pool.imap(fn, items, chunksize=1)
        return self._oneshot_map(fn, items)

    def _oneshot_map(
        self, fn: Callable[[Any], Any], items: list[Any]
    ) -> Iterator[Any]:
        ctx = multiprocessing.get_context(self.mp_context)
        n = min(self.workers, len(items))
        with ctx.Pool(processes=n) as pool:
            yield from pool.imap(fn, items, chunksize=1)


class BatchBackend(ExecutionBackend):
    """Vectorised lockstep execution of same-platform scenario groups.

    Scenarios that differ only in their cap windows — the shape of a
    powercap sweep — share one machine, one workload and one policy;
    this backend groups them by their cap-free content (scenario hash
    with ``caps`` stripped, plus the registered platform's content
    hash) and replays each multi-cell group through
    :func:`repro.sim.batch.run_replay_batch`: one process, one
    scenario-major node-state matrix, a shared event horizon, and a
    checkpointed warm-start of the pre-window prefix where the
    divergence analysis allows it.  Singleton groups take the ordinary
    serial path.  Results are bit-identical to any other backend —
    the golden digests pin this.
    """

    name = "batch"
    #: GridRunner seam: hand this backend the scenario list itself
    #: (:meth:`run_scenarios`) instead of an opaque work function
    wants_scenarios = True

    def map(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> Iterator[Any]:
        """Opaque work functions cannot be batched: run them serially."""
        return (fn(item) for item in items)

    @staticmethod
    def group_key(scenario: "Scenario") -> tuple[str, str]:
        """Batching key: everything but the caps, platform by content."""
        from repro.platform import get_platform

        return (
            scenario.with_(caps=()).scenario_hash(),
            get_platform(scenario.platform).content_hash(),
        )

    def run_scenarios(
        self,
        scenarios: Sequence["Scenario"],
        *,
        series: bool = False,
        grid_dt: float = DEFAULT_SERIES_DT,
    ) -> list[Any]:
        """Execute ``scenarios`` (already deduped by the runner) and
        return items in input order, shaped exactly like
        :func:`repro.exp.runner._run_task` output: a ``RunResult``,
        or a ``(RunResult, grid)`` pair when ``series`` is set."""
        import time

        from repro.exp.runner import (
            _condense,
            _jobs_for,
            _machine_for,
            run_scenario,
            run_scenario_with_series,
        )
        from repro.platform import get_platform
        from repro.sim.batch import run_replay_batch

        scenarios = list(scenarios)
        groups: dict[tuple[str, str], list[int]] = {}
        for i, sc in enumerate(scenarios):
            groups.setdefault(self.group_key(sc), []).append(i)

        out: list[Any] = [None] * len(scenarios)
        for (_, platform_hash), idxs in groups.items():
            if len(idxs) == 1:
                sc = scenarios[idxs[0]]
                out[idxs[0]] = (
                    run_scenario_with_series(sc, grid_dt=grid_dt)
                    if series
                    else run_scenario(sc)
                )
                continue
            t0 = time.perf_counter()
            base = scenarios[idxs[0]]
            platform = get_platform(base.platform)
            machine = _machine_for(base.platform, platform_hash, base.scale)
            jobs = _jobs_for(
                base.platform,
                platform_hash,
                base.interval,
                base.effective_seed,
                base.effective_duration,
                base.overload,
                base.scale,
            )
            replays = run_replay_batch(
                machine,
                jobs,
                base.build_policy(machine),
                duration=base.effective_duration,
                caps_per_cell=[scenarios[i].build_caps(machine) for i in idxs],
                config=base.build_config(),
                platform=platform,
            )
            # Each cell's wall clock reports its share of the batch, so
            # aggregate wall sums stay comparable across backends.
            t_end = time.perf_counter()
            share_t0 = t_end - (t_end - t0) / len(idxs)
            for i, replay in zip(idxs, replays):
                result = _condense(scenarios[i], replay, share_t0)
                if series:
                    grid = dict(
                        replay.recorder.to_grid(0.0, replay.duration, grid_dt)
                    )
                    out[i] = (result, grid)
                else:
                    out[i] = result
        return out


class ShardedBackend(ExecutionBackend):
    """A deterministic ``index/count`` slice of the grid.

    Shard membership is a pure function of the scenario content hash
    (:func:`repro.exp.spec.shard_index`), so every participant of a
    split sweep — other CI jobs, other machines — agrees on the
    partition without talking to each other, duplicates of one
    scenario always land in one shard, and the union of all shards is
    exactly the full grid.  Execution of the owned slice is delegated
    to ``inner`` (serial by default, a process pool for wide shards).
    """

    def __init__(
        self,
        index: int,
        count: int,
        *,
        inner: ExecutionBackend | None = None,
    ) -> None:
        if count < 1:
            raise ValueError("shard count must be >= 1")
        if not 0 <= index < count:
            raise ValueError(f"shard index {index} outside 0..{count - 1}")
        self.index = int(index)
        self.count = int(count)
        self.inner = inner if inner is not None else SerialBackend()
        self.name = f"shard {index + 1}/{count} on {self.inner.name}"

    def owns(self, scenario_hash: str) -> bool:
        return shard_index(scenario_hash, self.count) == self.index

    @property
    def wants_scenarios(self) -> bool:
        """Forward the batch seam when the inner backend offers it."""
        return bool(getattr(self.inner, "wants_scenarios", False))

    def run_scenarios(self, scenarios: Sequence["Scenario"], **kwargs: Any):
        return self.inner.run_scenarios(scenarios, **kwargs)

    def map(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> Iterator[Any]:
        return self.inner.map(fn, items)

    def close(self) -> None:
        self.inner.close()


#: CLI names of the full backends
BACKEND_NAMES = ("serial", "pool", "batch")


def make_backend(
    name: str | None = None,
    *,
    workers: int | None = None,
    mp_context: str | None = None,
    persistent: bool = False,
    shard: str | tuple[int, int] | None = None,
) -> ExecutionBackend:
    """Build a backend from CLI-style arguments.

    ``name`` is ``serial``, ``pool`` or ``batch`` (``None`` picks
    ``pool`` when ``workers > 1``, ``serial`` otherwise).  ``shard`` —
    ``"k/n"`` or a ``(index, count)`` pair — wraps the result in a
    :class:`ShardedBackend` owning that slice.
    """
    n_workers = int(workers) if workers is not None else 1
    if name is None:
        name = "pool" if n_workers > 1 else "serial"
    if name == "serial":
        base: ExecutionBackend = SerialBackend()
    elif name == "pool":
        base = ProcessPoolBackend(
            n_workers, mp_context=mp_context, persistent=persistent
        )
    elif name == "batch":
        base = BatchBackend()
    else:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {BACKEND_NAMES}"
        )
    if shard is None:
        return base
    index, total = parse_shard(shard) if isinstance(shard, str) else shard
    if total == 1 and index == 0:
        return base  # 1/1 is the whole grid: no wrapper needed
    return ShardedBackend(index, total, inner=base)
