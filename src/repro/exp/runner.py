"""Scenario execution: serial, parallel, and cached.

:func:`run_scenario` replays one :class:`~repro.exp.spec.Scenario` and
condenses it into a :class:`RunResult` — the metrics summary plus an
event-trace digest.  The digest covers every job outcome and every
power/utilisation sample with bit-exact float encoding, so two results
are equal iff the replays were byte-for-byte identical; that is what
makes serial and multi-process grid runs directly comparable.

:class:`GridRunner` executes scenario lists across ``multiprocessing``
workers with per-scenario JSON caching keyed by the scenario content
hash.  Results always come back in input order, and a worker pool
produces exactly the output a serial run would (each worker rebuilds
the scenario from scratch; nothing is shared), so parallelism never
changes results — only wall time.
"""

from __future__ import annotations

import hashlib
import json
import math
import multiprocessing
import os
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

from functools import lru_cache, partial

import numpy as np

from repro.analysis.report import window_norms
from repro.exp.spec import Scenario
from repro.sim.metrics import MetricsRecorder
from repro.sim.replay import ReplayResult, run_replay

#: cache file schema version
_CACHE_SCHEMA = 1


def _hexfloat(x: float) -> str:
    """Bit-exact, platform-independent float encoding for digests."""
    if x != x:  # NaN
        return "nan"
    if math.isinf(x):
        return "inf" if x > 0 else "-inf"
    return float(x).hex()


def trace_digest(recorder: MetricsRecorder) -> str:
    """SHA-256 digest of a replay's full observable trace.

    Covers every job record (identity, placement width, chronology,
    assigned frequency, terminal state) and every recorded series
    sample.  Floats are hashed via :func:`float.hex`, so the digest is
    equal exactly when the traces are bit-identical.
    """
    h = hashlib.sha256()
    for jid in sorted(recorder.jobs):
        r = recorder.jobs[jid]
        h.update(
            "|".join(
                (
                    str(r.job_id),
                    str(r.cores),
                    str(r.n_nodes),
                    _hexfloat(r.submit_time),
                    _hexfloat(r.start_time) if r.start_time is not None else "-",
                    _hexfloat(r.end_time) if r.end_time is not None else "-",
                    _hexfloat(r.freq_ghz) if r.freq_ghz is not None else "-",
                    _hexfloat(r.degradation),
                    r.state,
                )
            ).encode()
        )
        h.update(b"\n")
    for s in recorder.samples:
        h.update(
            "|".join(
                (
                    _hexfloat(s.time),
                    *(_hexfloat(c) for c in s.cores_by_freq),
                    _hexfloat(s.off_cores),
                    _hexfloat(s.power_watts),
                    _hexfloat(s.idle_watts),
                    _hexfloat(s.down_watts),
                    _hexfloat(s.infra_watts),
                    _hexfloat(s.bonus_watts),
                    _hexfloat(s.busy_watts),
                )
            ).encode()
        )
        h.update(b"\n")
    return h.hexdigest()


@dataclass(frozen=True)
class RunResult:
    """Condensed outcome of one scenario replay.

    Small enough to pickle across process boundaries and to cache as
    JSON, yet carrying everything the aggregation layer needs: the
    scenario itself, the metric summary (whole-interval and
    cap-window), and the trace digest that certifies determinism.
    """

    scenario: Scenario
    metrics: Mapping[str, float]
    trace_digest: str
    n_jobs: int
    n_rejected: int
    n_events: int
    n_samples: int
    wall_seconds: float
    cached: bool = False

    @property
    def scenario_hash(self) -> str:
        return self.scenario.scenario_hash()

    def same_outcome(self, other: "RunResult") -> bool:
        """Bit-identical replay: same trace digest and metrics.

        NaN-aware (uncapped scenarios carry NaN window metrics, and
        ``nan != nan`` would make every comparison fail after a JSON
        round-trip breaks object identity).
        """
        if self.trace_digest != other.trace_digest:
            return False
        a, b = dict(self.metrics), dict(other.metrics)
        if set(a) != set(b):
            return False
        return all(
            a[k] == b[k] or (math.isnan(a[k]) and math.isnan(b[k])) for k in a
        )

    def to_dict(self) -> dict[str, Any]:
        # NaN encodes as null so cache files stay strict RFC 8259 JSON
        # (bare NaN tokens would break non-Python consumers).
        return {
            "schema": _CACHE_SCHEMA,
            "scenario": self.scenario.to_dict(),
            "scenario_hash": self.scenario_hash,
            "metrics": {
                k: (None if math.isnan(v) else v) for k, v in self.metrics.items()
            },
            "trace_digest": self.trace_digest,
            "n_jobs": self.n_jobs,
            "n_rejected": self.n_rejected,
            "n_events": self.n_events,
            "n_samples": self.n_samples,
            "wall_seconds": self.wall_seconds,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any], *, cached: bool = False) -> "RunResult":
        if d.get("schema") != _CACHE_SCHEMA:
            raise ValueError(f"unsupported result schema {d.get('schema')}")
        return cls(
            scenario=Scenario.from_dict(d["scenario"]),
            metrics={
                k: (float("nan") if v is None else float(v))
                for k, v in d["metrics"].items()
            },
            trace_digest=str(d["trace_digest"]),
            n_jobs=int(d["n_jobs"]),
            n_rejected=int(d["n_rejected"]),
            n_events=int(d["n_events"]),
            n_samples=int(d["n_samples"]),
            wall_seconds=float(d["wall_seconds"]),
            cached=cached,
        )


@lru_cache(maxsize=16)
def _machine_for(platform: str, platform_hash: str, scale: float):
    # ``platform_hash`` keys the memo to the spec *content*, so
    # register_platform(..., replace=True) invalidates stale entries
    # instead of silently serving the previous spec's hardware.
    from repro.platform import get_platform

    return get_platform(platform).build_machine(scale=scale)


@lru_cache(maxsize=8)
def _jobs_for(
    platform: str,
    platform_hash: str,
    interval: str,
    seed: int,
    duration: float,
    overload: float,
    scale: float,
):
    """Per-process workload memo — a grid run replays only a handful
    of distinct workloads across many cells, and generation is pure
    (fully keyed by its inputs, the platform via its content hash),
    so caching cannot affect results.  Returns a tuple: callers must
    not see a mutable shared list."""
    from repro.exp.spec import build_workload

    return tuple(
        build_workload(
            _machine_for(platform, platform_hash, scale),
            interval,
            seed=seed,
            duration=duration,
            overload=overload,
            platform=platform,
        )
    )


def replay_scenario(scenario: Scenario) -> ReplayResult:
    """Run the full replay of a scenario (in-process, full telemetry)."""
    from repro.platform import get_platform

    platform_hash = get_platform(scenario.platform).content_hash()
    machine = _machine_for(scenario.platform, platform_hash, scenario.scale)
    jobs = _jobs_for(
        scenario.platform,
        platform_hash,
        scenario.interval,
        scenario.effective_seed,
        scenario.effective_duration,
        scenario.overload,
        scenario.scale,
    )
    return run_replay(
        machine,
        jobs,
        scenario.build_policy(machine),
        duration=scenario.effective_duration,
        powercaps=scenario.build_caps(machine),
        config=scenario.build_config(),
    )


def scenario_series(scenario: Scenario, *, grid_dt: float = 300.0) -> dict[str, object]:
    """Replay a scenario and export the Figure 6/7 time-series bundle.

    Same shape as :func:`repro.analysis.figures.figure_series`; the
    hatched window/cap levels come from the scenario's first cap.
    """
    result = replay_scenario(scenario)
    machine = result.machine
    grid = result.recorder.to_grid(0.0, result.duration, grid_dt)
    first = scenario.caps[0] if scenario.caps else None
    return {
        "grid": grid,
        "result": result,
        "window": (first.start, first.end) if first is not None else None,
        "cap_watts": first.fraction * machine.max_power() if first else math.inf,
        "max_power": machine.max_power(),
        "total_cores": machine.total_cores,
        "frequencies": machine.freq_table.frequencies,
    }


def run_scenario(scenario: Scenario) -> RunResult:
    """Replay one scenario and condense it into a :class:`RunResult`."""
    t0 = time.perf_counter()
    result = replay_scenario(scenario)
    return _condense(scenario, result, t0)


def run_scenario_with_series(
    scenario: Scenario, *, grid_dt: float = 300.0
) -> tuple[RunResult, dict[str, np.ndarray]]:
    """Replay one scenario; return the condensed result *and* the
    Figure 6/7 grid series (the payload behind ``.npz`` caching)."""
    t0 = time.perf_counter()
    result = replay_scenario(scenario)
    run = _condense(scenario, result, t0)
    grid = dict(result.recorder.to_grid(0.0, result.duration, grid_dt))
    return run, grid


def _condense(scenario: Scenario, result: ReplayResult, t0: float) -> RunResult:
    machine = result.machine
    rec = result.recorder
    metrics: dict[str, float] = dict(result.summary())
    metrics["job_energy_norm"] = result.job_energy_joules() / (
        machine.max_power() * result.duration
    )
    metrics["completed_jobs"] = float(rec.completed_jobs(0.0, result.duration))
    wait = rec.mean_wait_time()
    metrics["mean_wait_seconds"] = float(wait) if wait is not None else float("nan")

    # Cap-window metrics (the quantities Figure 8's trade-off reading
    # needs): normalised over the first cap window, NaN when uncapped.
    nan = float("nan")
    w_energy = w_work = w_eff = nan
    if scenario.caps:
        w_energy, w_work, w_eff = window_norms(
            result, scenario.caps[0].start, scenario.caps[0].end
        )
    metrics["window_energy_norm"] = w_energy
    metrics["window_work_norm"] = w_work
    metrics["window_effective_work_norm"] = w_eff

    return RunResult(
        scenario=scenario,
        metrics=metrics,
        trace_digest=trace_digest(rec),
        n_jobs=result.n_submitted,
        n_rejected=len(result.controller.rejected),
        n_events=result.controller.engine.processed_events,
        n_samples=rec.n_samples,
        wall_seconds=time.perf_counter() - t0,
    )


#: default grid step of the ``.npz`` series payload (seconds)
DEFAULT_SERIES_DT = 300.0


def _platform_payload(scenarios: Sequence[Scenario]) -> tuple[dict, ...]:
    """Serialised specs of every platform the scenarios reference.

    Scenarios carry only a platform *name*, and a worker's registry
    state is unknowable from here: a ``spawn`` worker sees just the
    builtins, while a long-lived ``fork`` pool carries whatever was
    registered when it forked (possibly a since-replaced spec).
    Shipping every referenced spec and re-registering with
    ``replace=True`` makes the worker mirror the driver's registry
    exactly, whatever its history."""
    from repro.platform import get_platform

    return tuple(
        get_platform(name).to_dict()
        for name in dict.fromkeys(sc.platform for sc in scenarios)
    )


def _run_task(
    scenario: Scenario,
    *,
    platforms: tuple[dict, ...],
    series: bool,
    grid_dt: float,
):
    """One GridRunner work item (top-level so it pickles to workers)."""
    if platforms:
        from repro.platform import PlatformSpec, register_platform

        for d in platforms:
            # The driver's registry wins over whatever the worker
            # inherited; identical content makes this a no-op.
            register_platform(PlatformSpec.from_dict(d), replace=True)
    if series:
        return run_scenario_with_series(scenario, grid_dt=grid_dt)
    return run_scenario(scenario)


class GridRunner:
    """Executes scenario lists, optionally in parallel, with caching.

    Parameters
    ----------
    workers:
        Process count; ``None`` or ``<= 1`` runs serially in-process.
        Parallel execution is deterministic: results are identical to
        a serial run of the same list, in the same order.
    cache_dir:
        When set, each finished scenario is written to
        ``<cache_dir>/<scenario_hash>-<platform_hash>.json`` (the key
        covers the scenario *and* the registered platform content)
        and later runs of the same content skip straight to the
        stored result.
    mp_context:
        ``multiprocessing`` start method; default picks ``fork`` where
        available (cheap, and harmless here: workers rebuild every
        scenario from its spec, so inherited state cannot leak into
        results) and ``spawn`` elsewhere.
    persistent:
        Keep the worker pool alive between :meth:`run` calls (fork
        once, stream scenarios).  Workers then retain their per-process
        machine/workload memos across calls, so iterative grid sweeps
        stop paying a pool spin-up plus cold caches per batch.  Off by
        default: a persistent pool outlives ``run()``, so callers must
        release it via :meth:`close` or a ``with`` block.
    series:
        Also export each scenario's Figure 6/7 grid series and store it
        as a ``.npz`` under the same cache key next to the JSON result
        (loadable via :meth:`load_series`).  A cached scenario missing
        its ``.npz`` is treated as a cache miss so the payload is
        (re)produced.
    series_dt:
        Grid step of the exported series, in seconds.
    """

    def __init__(
        self,
        workers: int | None = None,
        *,
        cache_dir: str | Path | None = None,
        mp_context: str | None = None,
        persistent: bool = False,
        series: bool = False,
        series_dt: float = DEFAULT_SERIES_DT,
    ) -> None:
        self.workers = int(workers) if workers is not None else 1
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else "spawn"
        self.mp_context = mp_context
        self.persistent = bool(persistent)
        self.series = bool(series)
        if series_dt <= 0:
            raise ValueError("series_dt must be positive")
        self.series_dt = float(series_dt)
        self._pool = None
        self._pool_size = 0

    # -- worker pool ------------------------------------------------------------------

    def _get_pool(self, n_tasks: int):
        """The persistent pool, sized ``min(workers, n_tasks)``.

        An existing pool is reused when it is big enough; a larger
        batch grows it (workers are re-forked, a one-off cost).
        """
        n = min(self.workers, max(n_tasks, 1))
        if self._pool is not None and self._pool_size < n:
            self.close()
        if self._pool is None:
            ctx = multiprocessing.get_context(self.mp_context)
            self._pool = ctx.Pool(processes=n)
            self._pool_size = n
        return self._pool

    def close(self) -> None:
        """Shut the persistent worker pool down (no-op when absent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
            self._pool_size = 0

    def __enter__(self) -> "GridRunner":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing
        pool = getattr(self, "_pool", None)
        if pool is not None:
            try:
                pool.terminate()
            except Exception:
                pass

    # -- cache ------------------------------------------------------------------------

    @staticmethod
    def _cache_key(scenario: Scenario) -> str:
        """On-disk cache key: scenario content + platform content.

        The scenario hash covers only the platform *name*; appending
        the registered spec's content hash makes a cache entry stale
        the moment ``register_platform(..., replace=True)`` changes
        what that name means — instead of silently serving results
        from the previous hardware.
        """
        from repro.platform import get_platform

        platform_hash = get_platform(scenario.platform).content_hash()
        return f"{scenario.scenario_hash()}-{platform_hash[:8]}"

    def _cache_path(self, cache_key: str) -> Path | None:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{cache_key}.json"

    def _series_path(self, cache_key: str) -> Path | None:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{cache_key}.npz"

    def _load_cached(self, scenario: Scenario) -> RunResult | None:
        path = self._cache_path(self._cache_key(scenario))
        if path is None or not path.is_file():
            return None
        if self.series and not self._series_ok(self._cache_key(scenario)):
            return None  # series payload missing/stale: re-run to produce it
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            result = RunResult.from_dict(data, cached=True)
        except (ValueError, KeyError, TypeError, json.JSONDecodeError):
            return None  # corrupt/stale cache entry: re-run
        if result.scenario.scenario_hash() != scenario.scenario_hash():
            return None
        # The cached label may be stale; the content is what matters.
        return RunResult(
            scenario=scenario,
            metrics=result.metrics,
            trace_digest=result.trace_digest,
            n_jobs=result.n_jobs,
            n_rejected=result.n_rejected,
            n_events=result.n_events,
            n_samples=result.n_samples,
            wall_seconds=result.wall_seconds,
            cached=True,
        )

    def _store(self, result: RunResult) -> None:
        path = self._cache_path(self._cache_key(result.scenario))
        if path is None:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(
            json.dumps(result.to_dict(), allow_nan=False), encoding="utf-8"
        )
        tmp.replace(path)  # atomic: concurrent writers race benignly

    def _series_ok(self, cache_key: str) -> bool:
        """A usable cached series: present, readable, at this dt.

        Any unreadable payload (truncated write, corrupted zip) is a
        cache miss, mirroring the JSON cache's self-healing.
        """
        path = self._series_path(cache_key)
        if path is None or not path.is_file():
            return False
        try:
            with np.load(path) as z:
                return float(z["_series_dt"]) == self.series_dt
        except Exception:
            return False

    def _store_series(self, cache_key: str, series: Mapping[str, np.ndarray]) -> None:
        path = self._series_path(cache_key)
        if path is None:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        tmp = self.cache_dir / f"{cache_key}.tmp.{os.getpid()}.npz"
        # The grid step is stored alongside the arrays so a runner with
        # a different series_dt treats the payload as stale, not a hit.
        np.savez_compressed(tmp, _series_dt=np.float64(self.series_dt), **series)
        tmp.replace(path)

    def load_series(self, scenario: Scenario) -> dict[str, np.ndarray] | None:
        """Load a scenario's cached ``.npz`` series payload, if any.

        A payload recorded at a different grid step than this runner's
        ``series_dt`` is treated as absent, matching :meth:`run`'s
        cache-miss behaviour for stale resolutions.
        """
        path = self._series_path(self._cache_key(scenario))
        if path is None or not path.is_file():
            return None
        try:
            with np.load(path) as z:
                if "_series_dt" in z.files and float(z["_series_dt"]) != self.series_dt:
                    return None
                return {k: z[k] for k in z.files if k != "_series_dt"}
        except Exception:
            return None  # corrupted payload: same as absent

    # -- execution --------------------------------------------------------------------

    def run(
        self,
        scenarios: Sequence[Scenario],
        *,
        progress: Callable[[RunResult], None] | None = None,
    ) -> list[RunResult]:
        """Execute ``scenarios`` and return results in input order.

        Cached scenarios are skipped; duplicates (same content hash)
        are executed once and the result is shared.
        """
        scenarios = list(scenarios)
        results: list[RunResult | None] = [None] * len(scenarios)

        # Cache hits and content-hash deduplication.
        to_run: list[Scenario] = []
        slot_of: dict[str, list[int]] = {}
        for i, sc in enumerate(scenarios):
            key = sc.scenario_hash()
            if key in slot_of:
                slot_of[key].append(i)
                continue
            cached = self._load_cached(sc)
            if cached is not None:
                results[i] = cached
                if progress is not None:
                    progress(cached)
                continue
            slot_of[key] = [i]
            to_run.append(sc)

        def collect(fresh: Iterable[Any]) -> None:
            for item in fresh:
                if want_series:
                    result, series = item
                    self._store_series(self._cache_key(result.scenario), series)
                else:
                    result = item
                self._store(result)
                for i in slot_of[result.scenario_hash]:
                    # Duplicate slots keep their own scenario label
                    # (content-identical, possibly differently named).
                    slot_result = (
                        result
                        if scenarios[i] == result.scenario
                        else replace(result, scenario=scenarios[i])
                    )
                    results[i] = slot_result
                    if progress is not None:
                        progress(slot_result)

        want_series = self.series and self.cache_dir is not None
        task: Callable[[Scenario], Any] = partial(
            _run_task,
            platforms=_platform_payload(to_run),
            series=want_series,
            grid_dt=self.series_dt,
        )

        if self.workers > 1 and len(to_run) > 1:
            if self.persistent:
                pool = self._get_pool(len(to_run))
                collect(pool.imap(task, to_run, chunksize=1))
            else:
                ctx = multiprocessing.get_context(self.mp_context)
                n = min(self.workers, len(to_run))
                with ctx.Pool(processes=n) as pool:
                    collect(pool.imap(task, to_run, chunksize=1))
        else:
            collect(task(sc) for sc in to_run)

        out = [r for r in results if r is not None]
        if len(out) != len(scenarios):  # pragma: no cover - defensive
            raise RuntimeError("scenario execution dropped results")
        return out
