"""Scenario execution: serial, parallel, and cached.

:func:`run_scenario` replays one :class:`~repro.exp.spec.Scenario` and
condenses it into a :class:`RunResult` — the metrics summary plus an
event-trace digest.  The digest covers every job outcome and every
power/utilisation sample with bit-exact float encoding, so two results
are equal iff the replays were byte-for-byte identical; that is what
makes serial and multi-process grid runs directly comparable.

:class:`GridRunner` is pure orchestration over two pluggable seams:
an :class:`~repro.exp.backends.ExecutionBackend` (where scenarios
execute: in-process, a ``multiprocessing`` pool, or one deterministic
shard of a split sweep) and a :class:`~repro.exp.store.ResultStore`
(where results persist: an in-memory memo, a local JSON/``.npz``
directory, or a shared directory safe for concurrent writers).  One
``run()`` is dedupe → store lookup → backend submit → store write →
aggregate.  Results always come back in input order, and every
backend produces exactly the output a serial run would (each worker
rebuilds the scenario from scratch; nothing is shared), so neither
parallelism nor sharding ever changes results — only wall time.
"""

from __future__ import annotations

import hashlib
import math
import time
import warnings
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

from functools import lru_cache, partial

import numpy as np

from repro.analysis.report import window_norms
from repro.exp import faults as _faults
from repro.exp.backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ShardedBackend,
)
from repro.exp.checkpoints import (
    CheckpointStore,
    CheckpointTally,
    WarmStart,
    checkpoint_group,
    make_checkpoint_store,
)
from repro.exp.costmodel import CostModel
from repro.exp import shm as _shm
from repro.exp.resilience import (
    ON_ERROR_MODES,
    FailureRecord,
    RetryPolicy,
    SweepError,
    SweepReport,
    TaskFailure,
)
from repro.exp.spec import Scenario
from repro.exp.store import (
    DEFAULT_SERIES_DT,
    DirectoryStore,
    MemoryStore,
    ResultStore,
    result_key,
)
from repro.sim.metrics import MetricsRecorder
from repro.sim.replay import ReplayResult, run_replay

#: cache file schema version
_CACHE_SCHEMA = 1


def _hexfloat(x: float) -> str:
    """Bit-exact, platform-independent float encoding for digests."""
    if x != x:  # NaN
        return "nan"
    if math.isinf(x):
        return "inf" if x > 0 else "-inf"
    return float(x).hex()


def trace_digest(recorder: MetricsRecorder) -> str:
    """SHA-256 digest of a replay's full observable trace.

    Covers every job record (identity, placement width, chronology,
    assigned frequency, terminal state) and every recorded series
    sample.  Floats are hashed via :func:`float.hex`, so the digest is
    equal exactly when the traces are bit-identical.
    """
    h = hashlib.sha256()
    for jid in sorted(recorder.jobs):
        r = recorder.jobs[jid]
        h.update(
            "|".join(
                (
                    str(r.job_id),
                    str(r.cores),
                    str(r.n_nodes),
                    _hexfloat(r.submit_time),
                    _hexfloat(r.start_time) if r.start_time is not None else "-",
                    _hexfloat(r.end_time) if r.end_time is not None else "-",
                    _hexfloat(r.freq_ghz) if r.freq_ghz is not None else "-",
                    _hexfloat(r.degradation),
                    r.state,
                )
            ).encode()
        )
        h.update(b"\n")
    for s in recorder.samples:
        h.update(
            "|".join(
                (
                    _hexfloat(s.time),
                    *(_hexfloat(c) for c in s.cores_by_freq),
                    _hexfloat(s.off_cores),
                    _hexfloat(s.power_watts),
                    _hexfloat(s.idle_watts),
                    _hexfloat(s.down_watts),
                    _hexfloat(s.infra_watts),
                    _hexfloat(s.bonus_watts),
                    _hexfloat(s.busy_watts),
                )
            ).encode()
        )
        h.update(b"\n")
    return h.hexdigest()


@dataclass(frozen=True)
class RunResult:
    """Condensed outcome of one scenario replay.

    Small enough to pickle across process boundaries and to cache as
    JSON, yet carrying everything the aggregation layer needs: the
    scenario itself, the metric summary (whole-interval and
    cap-window), and the trace digest that certifies determinism.
    """

    scenario: Scenario
    metrics: Mapping[str, float]
    trace_digest: str
    n_jobs: int
    n_rejected: int
    n_events: int
    n_samples: int
    wall_seconds: float
    cached: bool = False
    #: wall clock of the execution unit that produced this result: the
    #: successful attempt's elapsed for a solo replay, the whole
    #: group's elapsed for a lockstep batch cell (shared by siblings,
    #: >= ``wall_seconds``, which reports the cell's amortised share).
    #: ``None`` for entries cached before the field existed.
    elapsed_seconds: float | None = None

    @property
    def scenario_hash(self) -> str:
        return self.scenario.scenario_hash()

    def same_outcome(self, other: "RunResult") -> bool:
        """Bit-identical replay: same trace digest and metrics.

        NaN-aware (uncapped scenarios carry NaN window metrics, and
        ``nan != nan`` would make every comparison fail after a JSON
        round-trip breaks object identity).
        """
        if self.trace_digest != other.trace_digest:
            return False
        a, b = dict(self.metrics), dict(other.metrics)
        if set(a) != set(b):
            return False
        return all(
            a[k] == b[k] or (math.isnan(a[k]) and math.isnan(b[k])) for k in a
        )

    def to_dict(self) -> dict[str, Any]:
        # NaN encodes as null so cache files stay strict RFC 8259 JSON
        # (bare NaN tokens would break non-Python consumers).
        return {
            "schema": _CACHE_SCHEMA,
            "scenario": self.scenario.to_dict(),
            "scenario_hash": self.scenario_hash,
            "metrics": {
                k: (None if math.isnan(v) else v) for k, v in self.metrics.items()
            },
            "trace_digest": self.trace_digest,
            "n_jobs": self.n_jobs,
            "n_rejected": self.n_rejected,
            "n_events": self.n_events,
            "n_samples": self.n_samples,
            "wall_seconds": self.wall_seconds,
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any], *, cached: bool = False) -> "RunResult":
        if d.get("schema") != _CACHE_SCHEMA:
            raise ValueError(f"unsupported result schema {d.get('schema')}")
        return cls(
            scenario=Scenario.from_dict(d["scenario"]),
            metrics={
                k: (float("nan") if v is None else float(v))
                for k, v in d["metrics"].items()
            },
            trace_digest=str(d["trace_digest"]),
            n_jobs=int(d["n_jobs"]),
            n_rejected=int(d["n_rejected"]),
            n_events=int(d["n_events"]),
            n_samples=int(d["n_samples"]),
            wall_seconds=float(d["wall_seconds"]),
            cached=cached,
            # Schema-tolerant: entries written before the field existed
            # (same _CACHE_SCHEMA) still load, just without an elapsed.
            elapsed_seconds=(
                float(d["elapsed_seconds"])
                if d.get("elapsed_seconds") is not None
                else None
            ),
        )


@lru_cache(maxsize=16)
def _machine_for(platform: str, platform_hash: str, scale: float):
    # ``platform_hash`` keys the memo to the spec *content*, so
    # register_platform(..., replace=True) invalidates stale entries
    # instead of silently serving the previous spec's hardware.
    from repro.platform import get_platform

    return get_platform(platform).build_machine(scale=scale)


@lru_cache(maxsize=8)
def _jobs_for(
    platform: str,
    platform_hash: str,
    interval: str,
    seed: int,
    duration: float,
    overload: float,
    scale: float,
):
    """Per-process workload memo — a grid run replays only a handful
    of distinct workloads across many cells, and generation is pure
    (fully keyed by its inputs, the platform via its content hash),
    so caching cannot affect results.  Returns a tuple: callers must
    not see a mutable shared list."""
    from repro.exp.spec import build_workload

    return tuple(
        build_workload(
            _machine_for(platform, platform_hash, scale),
            interval,
            seed=seed,
            duration=duration,
            overload=overload,
            platform=platform,
        )
    )


def replay_scenario(
    scenario: Scenario,
    *,
    checkpoints: CheckpointStore | None = None,
    tally: CheckpointTally | None = None,
) -> ReplayResult:
    """Run the full replay of a scenario (in-process, full telemetry).

    With a ``checkpoints`` store the replay runs as a batch of one
    cell through :func:`repro.sim.batch.run_replay_batch` — bit
    identical to the plain path, pinned by the cross-backend golden
    digests — probing the store for its cap-free prefix before
    replaying it cold, and publishing the prefix on a miss so the next
    run (any backend, any process, any machine) warm-starts.  Probes
    and publishes are tallied into ``tally`` when given.
    """
    from repro.platform import get_platform

    platform = get_platform(scenario.platform)
    platform_hash = platform.content_hash()
    machine = _machine_for(scenario.platform, platform_hash, scenario.scale)
    jobs = _jobs_for(
        scenario.platform,
        platform_hash,
        scenario.interval,
        scenario.effective_seed,
        scenario.effective_duration,
        scenario.overload,
        scenario.scale,
    )
    if checkpoints is not None:
        from repro.sim.batch import run_replay_batch

        warm = WarmStart(checkpoints, checkpoint_group(scenario), tally)
        return run_replay_batch(
            machine,
            jobs,
            scenario.build_policy(machine),
            duration=scenario.effective_duration,
            caps_per_cell=[scenario.build_caps(machine)],
            config=scenario.build_config(),
            platform=platform,
            warm_start=warm,
        )[0]
    return run_replay(
        machine,
        jobs,
        scenario.build_policy(machine),
        duration=scenario.effective_duration,
        powercaps=scenario.build_caps(machine),
        config=scenario.build_config(),
    )


def scenario_series(scenario: Scenario, *, grid_dt: float = 300.0) -> dict[str, object]:
    """Replay a scenario and export the Figure 6/7 time-series bundle.

    Same shape as :func:`repro.analysis.figures.figure_series`; the
    hatched window/cap levels come from the scenario's first cap.
    """
    result = replay_scenario(scenario)
    machine = result.machine
    grid = result.recorder.to_grid(0.0, result.duration, grid_dt)
    first = scenario.caps[0] if scenario.caps else None
    return {
        "grid": grid,
        "result": result,
        "window": (first.start, first.end) if first is not None else None,
        "cap_watts": first.fraction * machine.max_power() if first else math.inf,
        "max_power": machine.max_power(),
        "total_cores": machine.total_cores,
        "frequencies": machine.freq_table.frequencies,
    }


class _profiled:
    """Context manager dumping a cProfile of its body per scenario.

    ``<profile_dir>/<scenario_hash>.pstats``, one file per scenario —
    pool workers write files, so profiles survive process boundaries;
    ``repro exp run --profile DIR`` aggregates them afterwards.
    """

    def __init__(self, scenario: Scenario, profile_dir: str | Path | None):
        self.scenario = scenario
        self.profile_dir = profile_dir
        self._prof = None

    def __enter__(self) -> "_profiled":
        if self.profile_dir is not None:
            import cProfile

            self._prof = cProfile.Profile()
            self._prof.enable()
        return self

    def __exit__(self, *exc: object) -> None:
        if self._prof is not None:
            self._prof.disable()
            out = Path(self.profile_dir)
            out.mkdir(parents=True, exist_ok=True)
            self._prof.dump_stats(
                out / f"{self.scenario.scenario_hash()}.pstats"
            )


def run_scenario(
    scenario: Scenario,
    *,
    attempt: int = 1,
    checkpoints: CheckpointStore | None = None,
    tally: CheckpointTally | None = None,
    profile_dir: str | Path | None = None,
) -> RunResult:
    """Replay one scenario and condense it into a :class:`RunResult`.

    ``attempt`` is the 1-based execution count — the fault-injection
    hook keys on it, so a ``times=1`` fault fails the first attempt
    and lets the retry through.  A no-op unless a plan is armed.
    ``checkpoints``/``tally`` thread warm starts into the replay (see
    :func:`replay_scenario`); ``profile_dir`` wraps it in cProfile.
    """
    _faults.maybe_fire(scenario.scenario_hash(), attempt)
    t0 = time.perf_counter()
    with _profiled(scenario, profile_dir):
        result = replay_scenario(scenario, checkpoints=checkpoints, tally=tally)
    return _condense(scenario, result, t0)


def run_scenario_with_series(
    scenario: Scenario,
    *,
    grid_dt: float = 300.0,
    attempt: int = 1,
    checkpoints: CheckpointStore | None = None,
    tally: CheckpointTally | None = None,
    profile_dir: str | Path | None = None,
) -> tuple[RunResult, dict[str, np.ndarray]]:
    """Replay one scenario; return the condensed result *and* the
    Figure 6/7 grid series (the payload behind ``.npz`` caching)."""
    _faults.maybe_fire(scenario.scenario_hash(), attempt)
    t0 = time.perf_counter()
    with _profiled(scenario, profile_dir):
        result = replay_scenario(scenario, checkpoints=checkpoints, tally=tally)
    run = _condense(scenario, result, t0)
    grid = dict(result.recorder.to_grid(0.0, result.duration, grid_dt))
    return run, grid


def _condense(scenario: Scenario, result: ReplayResult, t0: float) -> RunResult:
    machine = result.machine
    rec = result.recorder
    metrics: dict[str, float] = dict(result.summary())
    metrics["job_energy_norm"] = result.job_energy_joules() / (
        machine.max_power() * result.duration
    )
    metrics["completed_jobs"] = float(rec.completed_jobs(0.0, result.duration))
    wait = rec.mean_wait_time()
    metrics["mean_wait_seconds"] = float(wait) if wait is not None else float("nan")

    # Cap-window metrics (the quantities Figure 8's trade-off reading
    # needs): normalised over the first cap window, NaN when uncapped.
    nan = float("nan")
    w_energy = w_work = w_eff = nan
    if scenario.caps:
        w_energy, w_work, w_eff = window_norms(
            result, scenario.caps[0].start, scenario.caps[0].end
        )
    metrics["window_energy_norm"] = w_energy
    metrics["window_work_norm"] = w_work
    metrics["window_effective_work_norm"] = w_eff

    wall = time.perf_counter() - t0
    return RunResult(
        scenario=scenario,
        metrics=metrics,
        trace_digest=trace_digest(rec),
        n_jobs=result.n_submitted,
        n_rejected=len(result.controller.rejected),
        n_events=result.controller.engine.processed_events,
        n_samples=rec.n_samples,
        wall_seconds=wall,
        # Solo replays are their own execution unit; batch callers
        # overwrite this with the whole group's elapsed.
        elapsed_seconds=wall,
    )


def _platform_payload(
    scenarios: Sequence[Scenario],
) -> tuple[tuple[str, dict | None], ...]:
    """Serialised specs of every platform the scenarios reference.

    Scenarios carry only a platform *name*, and a worker's registry
    state is unknowable from here: a ``spawn`` worker sees just the
    builtins, while a long-lived ``fork`` pool carries whatever was
    registered when it forked (possibly a since-replaced spec).
    Shipping every referenced spec and re-registering with
    ``replace=True`` makes the worker mirror the driver's registry
    exactly, whatever its history.

    Entries are ``(content_hash, spec_dict)`` pairs; a
    :class:`~repro.exp.shm.SpecShipper` produces the same shape with
    ``None`` dicts once a hash has been delivered, and the worker's
    content-addressed cache fills the gap.
    """
    from repro.platform import get_platform

    specs = (
        get_platform(name)
        for name in dict.fromkeys(sc.platform for sc in scenarios)
    )
    return tuple((spec.content_hash(), spec.to_dict()) for spec in specs)


def _register_platforms(
    entries: Sequence[Any], tally: "_shm.TransferTally"
) -> list[str]:
    """Worker-side mirror of the driver's platform registry.

    Full entries register and seed this process's content-addressed
    cache; hash-only entries resolve from it.  Returns the hashes
    that could not be resolved (the caller answers with a
    :func:`~repro.exp.shm.spec_miss` sentinel so the driver re-ships
    them in full, once)."""
    from repro.platform import PlatformSpec, register_platform

    missing: list[str] = []
    for entry in entries:
        if isinstance(entry, Mapping):  # legacy full-dict form
            register_platform(PlatformSpec.from_dict(entry), replace=True)
            continue
        h, d = entry
        if d is not None:
            spec = PlatformSpec.from_dict(d)
            _shm.PLATFORM_CACHE.put(h, spec)
        else:
            spec = _shm.PLATFORM_CACHE.get(h)
            if spec is None:
                missing.append(h)
                continue
            tally.spec_hits += 1
        # The driver's registry wins over whatever the worker
        # inherited; identical content makes this a no-op.
        register_platform(spec, replace=True)
    return missing


def _pack_series(
    grid: dict[str, np.ndarray],
    shm_prefix: str | None,
    tally: "_shm.TransferTally",
) -> Any:
    """Worker-side series transport: a segment descriptor when the
    data plane is on, the plain dict (pickle path) otherwise.

    ``shm_prefix`` is ``None`` exactly when no process boundary is in
    play (in-process backends), where neither transport nor
    accounting applies."""
    if shm_prefix is None:
        return grid
    payload = _shm.arena.place(grid, prefix=shm_prefix)
    if payload is not None:
        return payload
    tally.fallbacks += 1
    tally.bytes_shipped += sum(a.nbytes for a in grid.values())
    return grid


#: sentinel wrapping a task payload whose worker has in-band metadata
#: to report — the warm-start tally and/or the transfer tally ride
#: back inside the outcome as ``(_META_WRAPPER, meta_dict, payload)``
_META_WRAPPER = "__taskmeta__"


def _run_task(
    scenario: Scenario,
    *,
    platforms: Sequence[Any],
    series: bool,
    grid_dt: float,
    faults: Mapping[str, Any] | None = None,
    attempt: int = 1,
    checkpoints: CheckpointStore | None = None,
    profile_dir: str | None = None,
    shm_prefix: str | None = None,
):
    """One GridRunner work item (top-level so it pickles to workers)."""
    xfer = _shm.TransferTally()
    missing = _register_platforms(platforms, xfer)
    if missing:
        # Hash-only envelope referenced specs this worker has never
        # seen: answer before arming faults or replaying anything —
        # the attempt "didn't happen" and the driver re-ships in full.
        return _shm.spec_miss(missing)
    if faults is not None:
        # Arm the driver's fault plan in this process: a spawn worker
        # starts disarmed, and a fork worker's copy may be stale.
        _faults.install_plan(faults)
    # A directory checkpoint store pickles as its path, so a pool
    # worker probes/publishes the same entries as the driver; the
    # per-call tally rides back in-band inside the outcome.
    tally = CheckpointTally() if checkpoints is not None else None
    if series:
        result, grid = run_scenario_with_series(
            scenario,
            grid_dt=grid_dt,
            attempt=attempt,
            checkpoints=checkpoints,
            tally=tally,
            profile_dir=profile_dir,
        )
        payload: Any = (result, _pack_series(grid, shm_prefix, xfer))
    else:
        payload = run_scenario(
            scenario,
            attempt=attempt,
            checkpoints=checkpoints,
            tally=tally,
            profile_dir=profile_dir,
        )
    meta: dict[str, Any] = {}
    if tally is not None:
        meta["ckpt"] = tally.to_dict()
    if xfer:
        meta["xfer"] = xfer.to_dict()
    if meta:
        return (_META_WRAPPER, meta, payload)
    return payload


def _run_group_task(
    scenarios: "tuple[Scenario, ...] | _shm.GroupEnvelope",
    *,
    platforms: Sequence[Any],
    series: bool,
    grid_dt: float,
    faults: Mapping[str, Any] | None = None,
    checkpoints: CheckpointStore | None = None,
    profile_dir: str | None = None,
    attempt: int = 1,
    shm_prefix: str | None = None,
):
    """One whole lockstep group as a pool work item (top-level so it
    pickles to workers — the batch×pool composition's transport).

    ``scenarios`` is either the full scenario tuple or a compact
    :class:`~repro.exp.shm.GroupEnvelope` (scenario-hash list plus cap
    deltas) resolved against this worker's content-addressed cache; an
    unresolvable envelope returns the spec-miss sentinel and the
    driver re-ships the group in full, uncharged.

    Returns ``(tally_dict, timings_dict, payloads)`` with one payload
    per cell in input order (``RunResult`` or ``(RunResult, grid)``
    with ``series``).  Any exception — including a planned fault fired
    by a member cell, which on the pool may kill this whole worker —
    is the driver's signal to degrade the group to solo re-runs.
    """
    from repro.exp.checkpoints import WarmStart, checkpoint_group
    from repro.platform import get_platform
    from repro.sim.batch import run_replay_batch

    xfer = _shm.TransferTally()
    missing = _register_platforms(platforms, xfer)
    if isinstance(scenarios, _shm.GroupEnvelope):
        resolved = scenarios.resolve()
        if _shm.is_spec_miss(resolved):
            return _shm.spec_miss(list(resolved[1]) + missing)
        xfer.spec_hits += 1 if scenarios.base is None else 0
        scenarios = resolved
    if missing:
        return _shm.spec_miss(missing)
    if faults is not None:
        _faults.install_plan(faults)
    base = scenarios[0]
    for sc in scenarios:
        # Planned faults fire here, before the replay, exactly as on
        # the solo path — except a crash now kills a *worker*, not the
        # driver, and costs its group the lockstep speedup only.
        _faults.maybe_fire(sc.scenario_hash(), attempt)
    t0 = time.perf_counter()
    platform = get_platform(base.platform)
    platform_hash = platform.content_hash()
    machine = _machine_for(base.platform, platform_hash, base.scale)
    jobs = _jobs_for(
        base.platform,
        platform_hash,
        base.interval,
        base.effective_seed,
        base.effective_duration,
        base.overload,
        base.scale,
    )
    tally = CheckpointTally()
    warm = (
        WarmStart(checkpoints, checkpoint_group(base), tally)
        if checkpoints is not None
        else None
    )
    timings: dict[str, float] = {}
    prof = None
    if profile_dir is not None:
        import cProfile

        prof = cProfile.Profile()
        prof.enable()
    try:
        replays = run_replay_batch(
            machine,
            jobs,
            base.build_policy(machine),
            duration=base.effective_duration,
            caps_per_cell=[sc.build_caps(machine) for sc in scenarios],
            config=base.build_config(),
            platform=platform,
            warm_start=warm,
            timings=timings,
        )
    finally:
        if prof is not None:
            prof.disable()
    if prof is not None:
        out = Path(profile_dir)
        out.mkdir(parents=True, exist_ok=True)
        # Same name the in-process batch backend uses for this group.
        prof.dump_stats(out / f"batch-{base.with_(caps=()).scenario_hash()}.pstats")
    # Per-cell wall clock reports the cell's share of the batch (sums
    # comparable across backends); the group's full elapsed rides on
    # every cell so the driver can report and calibrate per group.
    t_end = time.perf_counter()
    elapsed = t_end - t0
    share_t0 = t_end - elapsed / len(scenarios)
    timings["elapsed"] = elapsed
    payloads: list[Any] = []
    for sc, rep in zip(scenarios, replays):
        result = replace(_condense(sc, rep, share_t0), elapsed_seconds=elapsed)
        if series:
            grid = dict(rep.recorder.to_grid(0.0, rep.duration, grid_dt))
            payloads.append((result, _pack_series(grid, shm_prefix, xfer)))
        else:
            payloads.append(result)
    if xfer:
        timings["xfer"] = xfer.to_dict()
    return tally.to_dict(), timings, payloads


class GridRunner:
    """Pure orchestration of scenario sweeps over pluggable seams.

    One :meth:`run` is **dedupe → store lookup → backend submit →
    store write → aggregate**: content-identical scenarios collapse to
    one execution, the :class:`~repro.exp.store.ResultStore` serves
    whatever it already holds, the
    :class:`~repro.exp.backends.ExecutionBackend` executes the rest
    (in-process, across a worker pool, or only its deterministic shard
    of a split sweep), and fresh results are written back to the store
    before being returned in input order.

    Parameters
    ----------
    workers:
        Process count; ``None`` or ``<= 1`` runs serially in-process.
        Shorthand for ``backend=ProcessPoolBackend(workers)``;
        mutually exclusive with an explicit ``backend`` (passing both
        raises).  Parallel execution is deterministic: results are
        identical to a serial run of the same list, in the same order.
    cache_dir:
        Shorthand for ``store=DirectoryStore(cache_dir)``: each
        finished scenario is written to
        ``<cache_dir>/<scenario_hash>-<platform_hash>.json`` (the key
        covers the scenario *and* the registered platform content)
        and later runs of the same content skip straight to the
        stored result.  Mutually exclusive with an explicit ``store``
        (passing both raises).
    mp_context:
        ``multiprocessing`` start method of the shorthand pool backend
        (see :class:`~repro.exp.backends.ProcessPoolBackend`).
    persistent:
        Keep the shorthand pool backend's workers alive between
        :meth:`run` calls (fork once, stream scenarios); release via
        :meth:`close` or a ``with`` block.
    series:
        Also export each scenario's Figure 6/7 grid series and hand it
        to the store as a ``.npz`` payload under the same key
        (loadable via :meth:`load_series`).  A stored scenario missing
        its series is treated as a miss so the payload is
        (re)produced.  Only applies to stores that persist series
        (the in-memory memo does not).
    series_dt:
        Grid step of the exported series, in seconds (applies to the
        shorthand directory store; an explicit ``store`` carries its
        own).
    backend:
        Explicit :class:`~repro.exp.backends.ExecutionBackend`; use
        :func:`~repro.exp.backends.make_backend` for the CLI names.
        With a sharded backend, :meth:`run` returns results only for
        the scenarios the shard owns (plus store hits are *not*
        consulted for foreign scenarios — shards stay independent).
    store:
        Explicit :class:`~repro.exp.store.ResultStore`; use
        :func:`~repro.exp.store.make_store` for the CLI specs.
        Default: a :class:`~repro.exp.store.DirectoryStore` when
        ``cache_dir`` is set, an in-process
        :class:`~repro.exp.store.MemoryStore` otherwise.
    retry:
        :class:`~repro.exp.resilience.RetryPolicy` applied per
        scenario by the backend.  ``None`` (default) means one
        attempt, no retries — failures are terminal immediately.
    timeout:
        Per-scenario wall-clock budget in seconds, enforced where the
        backend can (the process pool kills and respawns hung
        workers); ``None`` disables.
    on_error:
        Disposition of terminally-failed scenarios: ``"raise"``
        (default — re-raise, the pre-fault-tolerance behaviour),
        ``"skip"`` (drop them from the results; known failures from a
        previous sweep are not re-attempted), or ``"quarantine"``
        (drop them, mark their persisted
        :class:`~repro.exp.resilience.FailureRecord` quarantined, and
        keep retrying them on later sweeps).
    checkpoints:
        A :class:`~repro.exp.checkpoints.CheckpointStore` (or a
        CLI-style spec string / directory path, see
        :func:`~repro.exp.checkpoints.make_checkpoint_store`) of
        persistent warm-start prefixes.  Every executed cell probes
        the store for its cap-free prefix before replaying it cold and
        publishes it on a miss; on a multi-process pool the runner
        additionally plans reuse up front — one elected publisher per
        unstored checkpoint group runs first, then the rest of the
        grid fans out as warm starts.  Hit/miss/publish tallies land
        in :attr:`SweepReport.checkpoints`.  An in-memory checkpoint
        store only helps in-process backends (pool workers would probe
        a pickled empty copy), so it is not shipped to pools.
    profile_dir:
        Dump one cProfile stats file per executed scenario into this
        directory (``<scenario_hash>.pstats``; the batch backend adds
        ``batch-<group>.pstats`` per lockstep group).
    """

    def __init__(
        self,
        workers: int | None = None,
        *,
        cache_dir: str | Path | None = None,
        mp_context: str | None = None,
        persistent: bool = False,
        series: bool = False,
        series_dt: float = DEFAULT_SERIES_DT,
        backend: ExecutionBackend | None = None,
        store: ResultStore | None = None,
        retry: RetryPolicy | None = None,
        timeout: float | None = None,
        on_error: str = "raise",
        checkpoints: "CheckpointStore | str | Path | None" = None,
        profile_dir: str | Path | None = None,
    ) -> None:
        self.workers = int(workers) if workers is not None else 1
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if series_dt <= 0:
            raise ValueError("series_dt must be positive")
        self.series = bool(series)
        self.series_dt = float(series_dt)
        if backend is None:
            if self.workers > 1:
                backend = ProcessPoolBackend(
                    self.workers, mp_context=mp_context, persistent=persistent
                )
            else:
                backend = SerialBackend()
        elif workers is not None or mp_context is not None or persistent:
            raise ValueError(
                "pass either an explicit backend or workers/mp_context/"
                "persistent, not both"
            )
        self.backend = backend
        if store is None:
            if self.cache_dir is not None:
                store = DirectoryStore(self.cache_dir, series_dt=self.series_dt)
            else:
                store = MemoryStore()
        elif cache_dir is not None:
            raise ValueError("pass either an explicit store or cache_dir, not both")
        self.store = store
        if on_error not in ON_ERROR_MODES:
            raise ValueError(
                f"unknown on_error mode {on_error!r}; expected one of {ON_ERROR_MODES}"
            )
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive")
        self.retry = retry
        self.timeout = timeout
        self.on_error = on_error
        if checkpoints is not None and not hasattr(checkpoints, "best"):
            checkpoints = make_checkpoint_store(str(checkpoints))
        self.checkpoints = checkpoints
        self.profile_dir = Path(profile_dir) if profile_dir is not None else None

    # -- lifecycle --------------------------------------------------------------------

    def close(self) -> None:
        """Release the backend's resources (idempotent)."""
        self.backend.close()

    def __enter__(self) -> "GridRunner":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- compatibility shims ----------------------------------------------------------

    @property
    def _pool(self):
        """The live worker pool of a pool backend (tests/diagnostics)."""
        return getattr(self.backend, "_pool", None)

    @property
    def mp_context(self) -> str | None:
        return getattr(self.backend, "mp_context", None)

    @property
    def persistent(self) -> bool:
        return bool(getattr(self.backend, "persistent", False))

    @staticmethod
    def _cache_key(scenario: Scenario) -> str:
        """Content-addressed store key (see :func:`repro.exp.store.result_key`)."""
        return result_key(scenario)

    # -- store access -----------------------------------------------------------------

    @property
    def _want_series(self) -> bool:
        return self.series and self.store.stores_series

    def _lookup(self, scenario: Scenario) -> RunResult | None:
        """Store hit for this scenario, relabelled to the request.

        The stored label may differ (content-identical scenario under
        another name) and the stored ``cached`` flag is stale by
        definition; the content is what matters.
        """
        key = result_key(scenario)
        result = self.store.get(key)
        if result is None:
            return None
        if result.scenario.scenario_hash() != scenario.scenario_hash():
            return None  # foreign/corrupt entry: recompute
        if self._want_series and not self.store.has_series(key):
            return None  # series payload missing/stale: re-run to produce it
        return replace(result, scenario=scenario, cached=True)

    def load_series(self, scenario: Scenario) -> dict[str, np.ndarray] | None:
        """Load a scenario's stored ``.npz`` series payload, if any.

        A payload recorded at a different grid step than the store's
        ``series_dt`` is treated as absent, matching :meth:`run`'s
        miss behaviour for stale resolutions.
        """
        return self.store.get_series(result_key(scenario))

    # -- warm-start planning ----------------------------------------------------------

    def _backend_in_process(self) -> bool:
        """Whether scenarios execute in this process (no pool workers)."""
        b = self.backend
        while isinstance(b, ShardedBackend):
            b = b.inner
        return not isinstance(b, ProcessPoolBackend)

    def _plan_waves(self, to_run: Sequence[Scenario]) -> list[list[int]]:
        """Plan prefix reuse for a multi-process fan-out.

        Groups the deduped work list by checkpoint group (cap-free
        scenario × platform × policy).  For every group of two or more
        cells with nothing stored yet, one **publisher** is elected
        into the first wave; everything else lands in the second wave
        and fans out against the published prefixes.  Without the
        split, parallel workers of one group would all miss and replay
        the shared prefix cold, then race to publish the same artifact.
        """
        assert self.checkpoints is not None
        groups: dict[str, list[int]] = {}
        for i, sc in enumerate(to_run):
            groups.setdefault(checkpoint_group(sc), []).append(i)
        first: list[int] = []
        rest: list[int] = []
        for group, members in groups.items():
            if len(members) > 1 and not self.checkpoints.has_group(group):
                first.append(members[0])
                rest.extend(members[1:])
            else:
                rest.extend(members)
        if not first:
            return [sorted(rest)]
        return [sorted(first), sorted(rest)]

    # -- execution --------------------------------------------------------------------

    def run(
        self,
        scenarios: Sequence[Scenario],
        *,
        progress: Callable[[RunResult], None] | None = None,
    ) -> list[RunResult]:
        """Execute ``scenarios`` and return results in input order.

        Stored scenarios are skipped; duplicates (same content hash)
        are executed once and the result is shared.  Under a sharded
        backend, scenarios outside the shard are dropped entirely
        (not looked up, not executed): the returned list covers
        exactly the shard's slice of the request, and merging the
        shards' stores reassembles the full sweep.

        Thin wrapper over :meth:`sweep` returning just the results;
        under the default ``on_error="raise"`` the first terminal
        failure propagates, so a plain ``run()`` can never silently
        lose scenarios.
        """
        return self.sweep(scenarios, progress=progress).results

    def sweep(
        self,
        scenarios: Sequence[Scenario],
        *,
        progress: Callable[[RunResult], None] | None = None,
        retry: RetryPolicy | None = None,
        timeout: float | None = None,
        on_error: str | None = None,
    ) -> SweepReport:
        """Execute ``scenarios`` fault-tolerantly; return the full
        :class:`~repro.exp.resilience.SweepReport`.

        Orchestration is :meth:`run`'s (dedupe → store lookup →
        backend submit → store write → aggregate) with failure as a
        first-class outcome: the backend retries each scenario under
        the :class:`~repro.exp.resilience.RetryPolicy`, terminal
        failures become :class:`~repro.exp.resilience.FailureRecord`s
        (persisted next to the store entry when the store supports
        it), and ``on_error`` decides whether they raise, skip, or
        quarantine.  A scenario with a persisted failure record from
        an earlier sweep is skipped outright under ``"skip"`` and
        re-attempted otherwise; a successful re-run deletes the
        record (**heals** it).  Keyword overrides fall back to the
        constructor's ``retry``/``timeout``/``on_error``.
        """
        t_sweep = time.perf_counter()
        mode = self.on_error if on_error is None else on_error
        if mode not in ON_ERROR_MODES:
            raise ValueError(
                f"unknown on_error mode {mode!r}; expected one of {ON_ERROR_MODES}"
            )
        retry = self.retry if retry is None else retry
        timeout = self.timeout if timeout is None else timeout

        scenarios = list(scenarios)
        results: list[RunResult | None] = [None] * len(scenarios)
        report = SweepReport(backend=self.backend.name)

        # Dedupe by content hash, drop foreign shards, serve store
        # hits, and settle known failures from earlier sweeps.
        to_run: list[Scenario] = []
        slot_of: dict[str, list[int]] = {}
        hits: dict[str, RunResult] = {}
        foreign: set[str] = set()
        known_failed: set[str] = set()  # hashes with a persisted record
        settled: set[str] = set()  # hashes skipped as known failures

        def serve_hit(i: int, sc: Scenario, hit: RunResult) -> None:
            slot_result = hit if hit.scenario == sc else replace(hit, scenario=sc)
            results[i] = slot_result
            report.n_hits += 1
            if progress is not None:
                progress(slot_result)

        track_failures = self.store.persists_failures
        for i, sc in enumerate(scenarios):
            key = sc.scenario_hash()
            if key in slot_of:
                slot_of[key].append(i)
                continue
            if key in hits:
                serve_hit(i, sc, hits[key])
                continue
            if key in foreign or key in settled:
                continue
            if not self.backend.owns(key):
                foreign.add(key)
                continue
            cached = self._lookup(sc)
            if cached is not None:
                hits[key] = cached
                serve_hit(i, sc, cached)
                continue
            if track_failures:
                prior = self.store.get_failure(result_key(sc))
                if prior is not None:
                    if mode == "skip":
                        # Known-bad: don't burn attempts on it again.
                        report.skipped.append(replace(prior, skipped=True))
                        settled.add(key)
                        continue
                    known_failed.add(key)  # re-attempt; success heals
            slot_of[key] = [i]
            to_run.append(sc)

        failed: set[str] = set()  # hashes that failed terminally this sweep

        def record_failure(sc: Scenario, failure: TaskFailure) -> None:
            record = FailureRecord(
                scenario_name=sc.name,
                scenario_hash=sc.scenario_hash(),
                key=result_key(sc),
                backend=self.backend.name,
                kind=failure.kind,
                error_type=failure.error_type,
                message=failure.message,
                attempts=failure.attempts,
                quarantined=(mode == "quarantine"),
                skipped=(mode == "skip"),
                recorded_at=time.time(),
            )
            failed.add(record.scenario_hash)
            report.failures.append(record)
            if track_failures:
                self.store.put_failure(record.key, record)
            if mode == "raise":
                if failure.exception is not None:
                    raise failure.exception
                raise SweepError(
                    f"scenario {sc.name!r} ({record.scenario_hash}) failed "
                    f"terminally on backend {self.backend.name!r}: "
                    f"[{failure.kind}] {failure.message}",
                    [record],
                )

        # Calibrated cost model: seeded from earlier sweeps' persisted
        # observations, refined by every cell executed here, flushed
        # back after the sweep.  Estimates only order the batch-pool
        # dispatch — they never touch results.
        cost_model = CostModel.from_store(self.store)
        group_stats: dict[str, Any] = {}

        # Data plane: per-sweep transfer accounting, a spec-delivery
        # ledger (hash-only envelopes once a spec has shipped), and
        # the backend's segment-name prefix for shm series transport.
        # All three are inert on in-process backends.
        xfer = _shm.TransferTally()
        compact_specs = bool(
            getattr(self.backend, "supports_spec_cache", False)
        )
        shipper = _shm.SpecShipper(compact=compact_specs)
        transport_prefix = getattr(self.backend, "transport_prefix", None)

        def collect_result(sc: Scenario, item: Any) -> None:
            if want_series:
                result, series = item
                if isinstance(series, _shm.ShmPayload):
                    # Zero-copy adoption: the store reads the arrays
                    # straight out of the worker's segment; the driver
                    # closes and unlinks once they are persisted.
                    try:
                        with _shm.arena.adopt(series) as view:
                            xfer.bytes_shared += view.nbytes
                            xfer.segments += 1
                            self.store.put_series(
                                result_key(result.scenario), view.arrays
                            )
                    except _shm.ShmAdoptError as exc:
                        # The result survived; only its series payload
                        # was lost with the segment.  Degrade loudly to
                        # a missing-series store entry rather than
                        # failing a finished scenario.
                        warnings.warn(
                            f"series payload for {result.scenario.name!r} "
                            f"lost with its shm segment: {exc}",
                            RuntimeWarning,
                            stacklevel=2,
                        )
                else:
                    self.store.put_series(result_key(result.scenario), series)
            else:
                result = item
            self.store.put(result_key(result.scenario), result)
            report.n_executed += 1
            if result.wall_seconds is not None:
                # wall_seconds is the per-cell share even for batched
                # cells — exactly the unit the scheduler estimates.
                cost_model.observe(result.scenario, result.wall_seconds)
            scenario_hash = result.scenario_hash
            if scenario_hash in known_failed and track_failures:
                # Heal: a success supersedes the persisted failure.
                if self.store.pop_failure(result_key(result.scenario)):
                    report.healed.append(sc.name)
            for i in slot_of[scenario_hash]:
                # Duplicate slots keep their own scenario label
                # (content-identical, possibly differently named).
                slot_result = (
                    result
                    if scenarios[i] == result.scenario
                    else replace(result, scenario=scenarios[i])
                )
                results[i] = slot_result
                if progress is not None:
                    progress(slot_result)

        want_series = self._want_series
        grid_dt = self.store.series_dt if want_series else self.series_dt
        plan = _faults.active_plan()
        ckpt_tally = CheckpointTally()
        in_process = self._backend_in_process()
        # An in-memory checkpoint store can't cross a process boundary
        # (workers would probe a pickled empty copy and publish into
        # the void), so only shareable stores ship to pools.
        use_ckpt = self.checkpoints is not None and (
            in_process or self.checkpoints.shareable
        )
        profile_arg = str(self.profile_dir) if self.profile_dir is not None else None
        shm_prefix = transport_prefix if want_series else None
        wants_scenarios = bool(getattr(self.backend, "wants_scenarios", False))
        if compact_specs:
            # Seed this process's content-addressed caches before any
            # pool forks: children inherit them, so hash-only
            # envelopes hit from the very first task.
            _shm.seed_platform_cache(sc.platform for sc in to_run)
        if wants_scenarios:
            # Scenario-aware backends (batch) group and execute the
            # specs themselves; outcomes come back shaped like
            # map_tasks' (index, result-or-failure, retries) triples.
            # (They also answer spec misses internally — a sentinel
            # reaching this loop is a protocol bug and fails loudly.)
            outcomes: Iterable[Any] = self.backend.run_scenarios(
                to_run,
                series=want_series,
                grid_dt=grid_dt,
                retry=retry,
                timeout=timeout,
                checkpoints=self.checkpoints if use_ckpt else None,
                tally=ckpt_tally,
                profile_dir=profile_arg,
                cost_model=cost_model,
                group_stats=group_stats,
                shipper=shipper,
                transfer=xfer,
                shm_prefix=shm_prefix,
            )
        else:
            def _map_subset(
                subset: Sequence[Scenario], *, full: bool = False
            ) -> Iterable[Any]:
                task: Callable[..., Any] = partial(
                    _run_task,
                    platforms=shipper.platform_payload(subset, full=full),
                    series=want_series,
                    grid_dt=grid_dt,
                    faults=plan.to_dict() if plan is not None else None,
                    checkpoints=self.checkpoints if use_ckpt else None,
                    profile_dir=profile_arg,
                    shm_prefix=shm_prefix,
                )
                if transport_prefix is not None:
                    # Each pool submit pickles the task envelope anew;
                    # charge what actually crosses the pipe.
                    xfer.note_envelope(task, len(subset))
                return self.backend.map_tasks(
                    task, subset, retry=retry, timeout=timeout
                )

            if use_ckpt and not in_process and len(to_run) > 1:
                # Pool fan-out: run one elected publisher per unstored
                # checkpoint group first, then warm-start the rest.
                def _iter_waves() -> Iterable[Any]:
                    for wave in self._plan_waves(to_run):
                        subset = [to_run[i] for i in wave]
                        for local, outcome, retries in _map_subset(subset):
                            yield wave[local], outcome, retries

                outcomes = _iter_waves()
            else:
                outcomes = _map_subset(to_run)
        spec_redo: list[int] = []

        def handle_outcome(
            index: int, outcome: Any, retries: int, *, allow_redo: bool
        ) -> None:
            report.n_retries += retries
            sc = to_run[index]
            if _shm.is_spec_miss(outcome):
                # The worker's content-addressed cache lacked a spec a
                # hash-only envelope referenced.  Re-ship in full,
                # once, uncharged; a second miss means the protocol is
                # broken and fails the scenario honestly.
                xfer.spec_misses += len(outcome[1])
                if allow_redo:
                    shipper.invalidate(outcome[1])
                    spec_redo.append(index)
                    return
                record_failure(
                    sc,
                    TaskFailure(
                        kind="error",
                        error_type="SpecCacheMiss",
                        message=(
                            "worker could not resolve spec hash(es) "
                            f"{', '.join(outcome[1])} even from a full "
                            "envelope"
                        ),
                        attempts=1,
                    ),
                )
                return
            if (
                isinstance(outcome, tuple)
                and len(outcome) == 3
                and outcome[0] == _META_WRAPPER
            ):
                _, meta, outcome = outcome
                if meta.get("ckpt"):
                    ckpt_tally.add(meta["ckpt"])
                if meta.get("xfer"):
                    xfer.add(meta["xfer"])
            if isinstance(outcome, TaskFailure):
                record_failure(sc, outcome)
            else:
                collect_result(sc, outcome)

        for index, outcome, retries in outcomes:
            handle_outcome(index, outcome, retries, allow_redo=not wants_scenarios)
        if spec_redo:
            redo, spec_redo = spec_redo, []
            subset = [to_run[i] for i in redo]
            for local, outcome, retries in _map_subset(subset, full=True):
                handle_outcome(redo[local], outcome, retries, allow_redo=False)

        # Defensive accounting: every deduped scenario must come back
        # as a result or a failure — a backend that silently drops one
        # is a bug worth naming precisely.
        missing = sorted(
            h
            for h, slots in slot_of.items()
            if results[slots[0]] is None and h not in failed
        )
        if missing:  # pragma: no cover - defensive
            raise SweepError(
                f"backend {self.backend.name!r} dropped {len(missing)} "
                f"scenario(s) without result or failure: {', '.join(missing)}",
                report.failures,
            )

        try:
            cost_model.flush(self.store)
        except Exception:  # noqa: BLE001 - advisory metadata must not fail a sweep
            pass
        report.results = [r for r in results if r is not None]
        report.wall_seconds = time.perf_counter() - t_sweep
        report.store_health = self.store.health.to_dict()
        report.checkpoints = ckpt_tally.to_dict() if ckpt_tally else {}
        report.groups = group_stats
        report.transfer = xfer.to_dict() if xfer else {}
        return report
