"""Declarative experiment scenarios.

A :class:`Scenario` captures everything a replay depends on — machine
scale, workload interval and seed, powercap schedule, policy, and the
scheduler configuration — as plain data.  Two properties make large
comparative sweeps practical:

* **content-hash identity**: :meth:`Scenario.scenario_hash` digests the
  canonical serialised form (the ``name`` is excluded — it is a label,
  not content), so result caches key on *what was simulated*;
* **full declarativity**: a scenario can be shipped to a worker
  process, written to JSON, or rebuilt from JSON, and always replays to
  the bit-identical result ("as the replay is deterministic, we can
  compare the different replays").
"""

from __future__ import annotations

import hashlib
import itertools
import json
import math
from dataclasses import dataclass, field, fields, replace
from typing import Any, Iterable, Mapping, Sequence

from repro.analysis.figures import middle_window
from repro.cluster.machine import Machine
from repro.core.policies import Policy
from repro.platform import get_platform
from repro.policy import PAPER_POLICY_NAMES, PolicySpec, get_policy
from repro.rjms.config import SchedulerConfig
from repro.rjms.reservations import PowercapReservation
from repro.workload.intervals import PAPER_INTERVALS
from repro.workload.spec import JobSpec

HOUR = 3600.0

#: the paper's five policies (legacy alias; any name in the policy
#: registry is a valid scenario policy — see ``repro exp policies``)
POLICIES = PAPER_POLICY_NAMES

#: the platform every scenario ran on before the registry existed
DEFAULT_PLATFORM = "curie"

#: hash/serialisation schema version; bump when Scenario semantics change.
#: v2 added the ``platform`` axis; v3 made ``policy`` structured (a
#: registry name or an inline :class:`repro.policy.PolicySpec` dict)
#: and re-keyed the content hash on the policy's *content* hash.
#: v1/v2 dicts (string policies, implicitly Curie for v1) are still
#: accepted by :meth:`Scenario.from_dict`.
SCHEMA_VERSION = 3
_ACCEPTED_SCHEMAS = (1, 2, 3)

#: SchedulerConfig fields a scenario may override (scalars only; the
#: multifactor priority weights stay at their defaults)
_CONFIG_FIELDS = frozenset(
    f.name for f in fields(SchedulerConfig) if f.name != "priority"
)


@dataclass(frozen=True)
class CapWindow:
    """One powercap window as a fraction of the machine's max power."""

    start: float
    end: float
    fraction: float

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"cap fraction must be in (0, 1], got {self.fraction}")
        if not self.start < self.end:
            raise ValueError(f"empty cap window [{self.start}, {self.end})")
        if self.start < 0:
            raise ValueError("cap window cannot start before the replay")

    @classmethod
    def middle(cls, duration: float, fraction: float, hours: float = 1.0) -> "CapWindow":
        """The paper's setup: an ``hours``-long window centred in the
        interval (same placement the figure benchmarks assert on).

        The window must fit strictly inside the replay; a too-long
        request is rejected here, naming both values, instead of
        surfacing later as a negative start time.
        """
        if hours <= 0:
            raise ValueError(f"cap window length must be positive, got {hours} h")
        if hours * HOUR >= duration:
            raise ValueError(
                f"cap window of {hours:g} h ({hours * HOUR:g} s) does not fit "
                f"inside the {duration:g} s replay; shorten the window or "
                "extend the duration"
            )
        start, end = middle_window(duration, hours)
        return cls(start=start, end=end, fraction=fraction)

    def reservation(self, machine: Machine) -> PowercapReservation:
        return PowercapReservation(
            start=self.start, end=self.end, watts=self.fraction * machine.max_power()
        )

    def to_dict(self) -> dict[str, float]:
        return {"start": self.start, "end": self.end, "fraction": self.fraction}

    @classmethod
    def from_dict(cls, d: Mapping[str, float]) -> "CapWindow":
        return cls(
            start=float(d["start"]), end=float(d["end"]), fraction=float(d["fraction"])
        )


def build_workload(
    machine: Machine,
    interval: str,
    *,
    seed: int,
    duration: float,
    overload: float,
    platform: str = DEFAULT_PLATFORM,
) -> list[JobSpec]:
    """The one workload-construction path of the harness.

    Both :meth:`Scenario.build_jobs` and the runner's per-process memo
    go through here, so spec-driven and harness-driven workloads can
    never diverge.  The platform supplies the job-class mix (when it
    overrides the interval's default) and the core-width basis.
    """
    from repro.workload.intervals import generate_interval

    spec = replace(PAPER_INTERVALS[interval], duration=duration, seed=seed)
    pf = get_platform(platform)
    return generate_interval(
        machine,
        spec,
        overload=overload,
        classes=pf.interval_classes(interval),
        reference_cores=pf.workload_reference_cores,
    )


@dataclass(frozen=True)
class Scenario:
    """One fully-specified replay experiment.

    Attributes
    ----------
    name:
        Human label; excluded from the content hash.
    interval:
        Paper interval flavour (``medianjob``/``smalljob``/``bigjob``/
        ``24h``) selecting the job-class mix and default duration/seed.
    policy:
        Powercap policy: a policy-registry name (``NONE``/``IDLE``/
        ``SHUT``/``DVFS``/``MIX``/``ADAPTIVE``/``TRACK`` or anything
        registered via :func:`repro.policy.register_policy`) or an
        inline :class:`repro.policy.PolicySpec`.  The content hash
        covers the policy's *content* (strategy decomposition), not
        its name, so renaming a policy keeps cache entries valid while
        editing its registration invalidates them.
    scale:
        Machine scale factor (1.0 = the platform's full rack count;
        5040 nodes on Curie).
    duration:
        Replay length in seconds; ``None`` uses the interval default.
    seed:
        Workload RNG seed; ``None`` uses the interval default.
    overload:
        Offered work as a multiple of machine capacity.
    caps:
        Powercap windows, as fractions of the machine's max power.
    config:
        ``SchedulerConfig`` overrides as sorted ``(field, value)``
        pairs (a mapping is accepted and normalised).
    platform:
        Platform registry entry the replay runs on (machine topology,
        DVFS ladder, degradation model, app-mix defaults); ``curie``
        by default.
    """

    name: str
    interval: str
    policy: str | PolicySpec
    scale: float = 0.125
    duration: float | None = None
    seed: int | None = None
    overload: float = 1.6
    caps: tuple[CapWindow, ...] = ()
    config: tuple[tuple[str, Any], ...] = ()
    platform: str = DEFAULT_PLATFORM

    def __post_init__(self) -> None:
        if self.interval not in PAPER_INTERVALS:
            raise ValueError(
                f"unknown interval {self.interval!r}; "
                f"expected one of {sorted(PAPER_INTERVALS)}"
            )
        policy = self.policy
        if isinstance(policy, Mapping):
            policy = PolicySpec.from_dict(policy)
            object.__setattr__(self, "policy", policy)
        if isinstance(policy, str):
            try:
                get_policy(policy)
            except KeyError as exc:
                # The registry's message already lists the entries.
                raise ValueError(exc.args[0]) from None
        elif not isinstance(policy, PolicySpec):
            raise ValueError(
                f"policy must be a registered name or a PolicySpec, "
                f"got {policy!r}"
            )
        try:
            get_platform(self.platform)
        except KeyError as exc:
            # The registry's message already lists the entries.
            raise ValueError(exc.args[0]) from None
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.duration is not None and self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.overload <= 0:
            raise ValueError("overload must be positive")
        caps = tuple(
            c if isinstance(c, CapWindow) else CapWindow(**c) for c in self.caps
        )
        object.__setattr__(self, "caps", caps)
        cfg = self.config
        if isinstance(cfg, Mapping):
            cfg = tuple(sorted(cfg.items()))
        else:
            cfg = tuple(sorted((str(k), v) for k, v in cfg))
        unknown = [k for k, _ in cfg if k not in _CONFIG_FIELDS]
        if unknown:
            raise ValueError(f"unknown SchedulerConfig overrides: {unknown}")
        object.__setattr__(self, "config", cfg)
        for cap in caps:
            if cap.start >= self.effective_duration:
                raise ValueError(
                    f"cap window starting at {cap.start} lies beyond the "
                    f"{self.effective_duration}s replay"
                )

    # -- derived ---------------------------------------------------------------------

    @property
    def effective_duration(self) -> float:
        return (
            self.duration
            if self.duration is not None
            else PAPER_INTERVALS[self.interval].duration
        )

    @property
    def effective_seed(self) -> int:
        return self.seed if self.seed is not None else PAPER_INTERVALS[self.interval].seed

    @property
    def policy_name(self) -> str:
        """The policy's registry/display name (tables, cell labels)."""
        return self.policy if isinstance(self.policy, str) else self.policy.name

    @property
    def policy_spec(self) -> PolicySpec:
        """The declarative policy this scenario runs under: the inline
        spec, or the registry's current entry for the name."""
        if isinstance(self.policy, PolicySpec):
            return self.policy
        return get_policy(self.policy)

    @property
    def cap_fraction(self) -> float:
        """First cap window's fraction, 1.0 when uncapped.

        The grid-cell label; the first window is also the one the
        ``window_*`` metrics are measured over, so label and
        measurement always refer to the same cap.
        """
        return self.caps[0].fraction if self.caps else 1.0

    def with_(self, **changes: Any) -> "Scenario":
        """Copy with fields replaced (``dataclasses.replace`` wrapper)."""
        return replace(self, **changes)

    # -- identity ---------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA_VERSION,
            "name": self.name,
            "interval": self.interval,
            "policy": (
                self.policy
                if isinstance(self.policy, str)
                else self.policy.to_dict()
            ),
            "platform": self.platform,
            "scale": self.scale,
            "duration": self.duration,
            "seed": self.seed,
            "overload": self.overload,
            "caps": [c.to_dict() for c in self.caps],
            "config": {k: v for k, v in self.config},
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "Scenario":
        schema = d.get("schema", SCHEMA_VERSION)
        if schema not in _ACCEPTED_SCHEMAS:
            raise ValueError(f"unsupported scenario schema {schema}")
        # Anything beyond the dataclass fields is a typo'd axis and
        # must be rejected, not dropped — a silently ignored key would
        # alias distinct scenarios onto one cache entry.
        known = {f.name for f in fields(cls)} | {"schema"}
        unknown = sorted(set(d) - known)
        if unknown:
            raise ValueError(
                f"unknown Scenario keys {unknown}; known: {sorted(known)}"
            )
        policy = d["policy"]
        if not isinstance(policy, Mapping):
            policy = str(policy)
        return cls(
            name=str(d["name"]),
            interval=str(d["interval"]),
            policy=policy,
            platform=str(d.get("platform", DEFAULT_PLATFORM)),
            scale=float(d["scale"]),
            duration=None if d.get("duration") is None else float(d["duration"]),
            seed=None if d.get("seed") is None else int(d["seed"]),
            overload=float(d.get("overload", 1.6)),
            caps=tuple(CapWindow.from_dict(c) for c in d.get("caps", ())),
            config=dict(d.get("config", {})),
        )

    def scenario_hash(self) -> str:
        """Stable 16-hex-digit content hash (labels excluded).

        The scenario ``name`` is excluded outright, and the policy
        enters as its **content hash** rather than its registry name:
        a renamed-but-identical policy keys the same results, while
        re-registering different content under the same name produces
        a different scenario identity (and therefore a cache miss).
        The platform stays a *name* here; its content is appended by
        :func:`repro.exp.store.result_key`.
        """
        content = self.to_dict()
        del content["name"]
        content["policy"] = self.policy_spec.content_hash()
        canon = json.dumps(content, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:16]

    # -- build the replay inputs ---------------------------------------------------------

    def build_machine(self) -> Machine:
        return get_platform(self.platform).build_machine(scale=self.scale)

    def build_policy(self, machine: Machine | None = None) -> Policy:
        """The policy bound to this scenario's platform (its DVFS
        range and degradation constants, not Curie's)."""
        return get_platform(self.platform).make_policy(
            self.policy, machine.freq_table if machine is not None else None
        )

    def build_jobs(self, machine: Machine) -> list[JobSpec]:
        return build_workload(
            machine,
            self.interval,
            seed=self.effective_seed,
            duration=self.effective_duration,
            overload=self.overload,
            platform=self.platform,
        )

    def build_caps(self, machine: Machine) -> list[PowercapReservation]:
        return [c.reservation(machine) for c in self.caps]

    def build_config(self) -> SchedulerConfig:
        return SchedulerConfig(**{k: v for k, v in self.config})

    # -- convenience constructors ----------------------------------------------------------

    @classmethod
    def paper_cell(
        cls,
        interval: str,
        policy: str | PolicySpec,
        cap: float = 1.0,
        *,
        scale: float = 0.125,
        duration: float | None = None,
        seed: int | None = None,
        name: str | None = None,
        config: Mapping[str, Any] | None = None,
        platform: str = DEFAULT_PLATFORM,
    ) -> "Scenario":
        """One Figure 8 grid cell: a one-hour cap window of ``cap``
        fraction centred in the interval (no window when uncapped or
        the policy does not enforce caps)."""
        if interval not in PAPER_INTERVALS:
            raise ValueError(f"unknown interval {interval!r}")
        if not 0.0 < cap <= 1.0:
            raise ValueError(f"cap fraction must be in (0, 1], got {cap}")
        if isinstance(policy, str):
            try:
                policy_spec = get_policy(policy)
            except KeyError as exc:
                raise ValueError(exc.args[0]) from None
        else:
            policy_spec = policy
        eff_duration = duration if duration is not None else PAPER_INTERVALS[interval].duration
        caps: tuple[CapWindow, ...] = ()
        if policy_spec.enforces_caps and cap < 1.0:
            caps = (CapWindow.middle(eff_duration, cap),)
        if name is None:
            # No cap window, no cap suffix: a NONE/uncapped cell must
            # not masquerade as a capped run in tables and caches.
            # Curie cells keep their historical (unprefixed) names.
            name = f"{interval}-{policy_spec.name.lower()}"
            if platform != DEFAULT_PLATFORM:
                name = f"{platform}-{name}"
            if caps:
                name += f"-{int(round(cap * 100))}"
            if seed is not None:
                name += f"-s{seed}"
        return cls(
            name=name,
            interval=interval,
            policy=policy,
            scale=scale,
            duration=duration,
            seed=seed,
            caps=caps,
            config=dict(config or {}),
            platform=platform,
        )


def shard_index(scenario_hash: str, count: int) -> int:
    """Deterministic shard assignment of a scenario content hash.

    A pure function of the content hash, so every participant of a
    split sweep computes the same partition with no coordination,
    content-identical duplicates always land in the same shard, and
    the assignment is independent of list order, machine, or which
    subset of the grid a participant happens to look at.
    """
    if count < 1:
        raise ValueError("shard count must be >= 1")
    return int(scenario_hash, 16) % count


def parse_shard(spec: str) -> tuple[int, int]:
    """Parse a CLI ``"k/n"`` shard spec into ``(index, count)``.

    ``k`` is 1-based on the command line (``--shard 1/3`` .. ``3/3``);
    the returned index is 0-based.
    """
    k_s, sep, n_s = spec.partition("/")
    try:
        if not sep:
            raise ValueError
        k, n = int(k_s), int(n_s)
    except ValueError:
        raise ValueError(f"bad shard spec {spec!r}: expected k/n, e.g. 2/3") from None
    if n < 1 or not 1 <= k <= n:
        raise ValueError(f"bad shard spec {spec!r}: need 1 <= k <= n")
    return k - 1, n


def shard_scenarios(
    scenarios: Iterable[Scenario], index: int, count: int
) -> list[Scenario]:
    """The slice of ``scenarios`` owned by shard ``index`` of ``count``.

    Selection over :func:`expand_grid` output (or any scenario list):
    the union of all shards is the input, shards are disjoint by
    content, and each keeps the input order.
    """
    if not 0 <= index < count:
        raise ValueError(f"shard index {index} outside 0..{count - 1}")
    return [
        sc for sc in scenarios if shard_index(sc.scenario_hash(), count) == index
    ]


def expand_grid(
    axes: Mapping[str, Sequence[Any]],
    *,
    scale: float = 0.125,
    duration: float | None = None,
    config: Mapping[str, Any] | None = None,
    shard: tuple[int, int] | None = None,
) -> list[Scenario]:
    """Expand a parameter grid into scenarios via :meth:`Scenario.paper_cell`.

    ``axes`` maps axis names to value lists; recognised axes are
    ``interval``, ``policy``, ``cap``, ``seed`` and ``platform``.  The
    cartesian product is taken in the axes' insertion order, so the
    expansion (and therefore a grid run's output order) is
    deterministic.  ``shard=(index, count)`` keeps only that
    deterministic slice of the expansion (see :func:`shard_scenarios`).
    """
    allowed = {"interval", "policy", "cap", "seed", "platform"}
    unknown = set(axes) - allowed
    if unknown:
        raise ValueError(f"unknown grid axes {sorted(unknown)}; allowed: {sorted(allowed)}")
    if not axes:
        raise ValueError("empty grid")
    defaults: dict[str, Any] = {
        "interval": "medianjob",
        "policy": "MIX",
        "cap": 1.0,
        "seed": None,
        "platform": DEFAULT_PLATFORM,
    }
    keys = list(axes)
    scenarios: list[Scenario] = []
    for combo in itertools.product(*(axes[k] for k in keys)):
        kw = dict(defaults)
        kw.update(zip(keys, combo))
        scenarios.append(
            Scenario.paper_cell(
                kw["interval"],
                kw["policy"],
                float(kw["cap"]),
                seed=kw["seed"],
                scale=scale,
                duration=duration,
                config=config,
                platform=kw["platform"],
            )
        )
    if shard is not None:
        scenarios = shard_scenarios(scenarios, *shard)
    return scenarios
