"""Persistent content-addressed checkpoints: cross-run warm starts.

PR 6's lockstep batch replay showed that everything before a cap
window's divergence onset is a *shared prefix* — but the fork only
paid off when sibling cells happened to land in the same process of
the same run.  This module makes the prefix durable: the captured
fork state (:func:`repro.sim.batch.capture_fork_state`) becomes a
versioned artifact in a :class:`CheckpointStore`, so any later run —
serial, pool worker, sharded CI job, another machine — restores the
prefix instead of replaying it.

**Checkpoint key.**  A stored prefix is valid for every scenario that
shares its cap-free content, platform and policy, at any horizon at or
beyond the stored one::

    <cap-free scenario hash:16>-<platform hash:8>-<policy hash:8>-h<horizon tag:8>

The first three segments are the *group* (:func:`checkpoint_group`):
the scenario's content hash with its cap windows stripped (name never
counts, see :meth:`~repro.exp.spec.Scenario.scenario_hash`), the
registered platform spec's content hash, and the policy spec's content
hash.  The horizon tag hashes the exact ``float.hex()`` rendering of
the fork time, so distinct horizons of one group coexist and
:meth:`CheckpointStore.best` picks the deepest one not exceeding the
requesting cell's own divergence onset.

**Artifact schema.**  One checkpoint is a JSON file plus an ``.npz``:

* ``<key>.json`` — ``{"schema": CHECKPOINT_SCHEMA, "group": ...,
  "horizon": <hexfloat>, "meta": <fork-state meta>}``.  The fork-state
  meta is pure JSON with every float rendered via ``float.hex()``
  (bit-exact round trip, including ``-inf``); its own ``version``
  field is :data:`repro.sim.batch.FORK_STATE_VERSION`.
* ``<key>.npz`` — the fork state's numpy arrays (node/power state,
  fair-share usage, the columnar metrics prefix, job allocations).

The ``.npz`` is written first and the JSON second, so the JSON is the
commit point: a torn pair is either invisible (orphan ``.npz``) or
discarded loudly on first read and re-published by the next cold run.
A wrapper-schema or fork-state-version mismatch is *silent* staleness
(the entry is left for the build that wrote it); anything unreadable
is corruption — discarded with a warning, tallied in ``health``, and
healed by the caller's cold start.  Restores are bit-identical by
construction: the persisted representation *is* the in-memory fork
representation, installed through the same
:func:`~repro.sim.batch.install_fork_state` path.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import re
import socket
import time
import warnings
from dataclasses import dataclass
from itertools import count
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.exp import shm as _shm
from repro.exp.store import TRANSIENT_ERRNOS, StoreHealth, _prune_files
from repro.sim.batch import FORK_STATE_VERSION

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exp.spec import Scenario

#: version of the artifact wrapper; the fork-state layout carries its
#: own version (:data:`repro.sim.batch.FORK_STATE_VERSION`) inside
CHECKPOINT_SCHEMA = 1

#: shape of a :func:`checkpoint_key`:
#: ``<cap-free scenario16>-<platform8>-<policy8>-h<horizon8>``
_CKPT_KEY_RE = re.compile(r"[0-9a-f]{16}-[0-9a-f]{8}-[0-9a-f]{8}-h[0-9a-f]{8}")


def checkpoint_group(scenario: "Scenario") -> str:
    """Content-addressed group: cap-free scenario + platform + policy.

    Mirrors :func:`repro.exp.store.result_key` with the cap windows
    stripped from the scenario hash — every cell of a cap sweep maps
    to the same group, which is exactly the set of cells that share a
    replay prefix.
    """
    from repro.platform import get_platform

    cap_free = scenario.with_(caps=()).scenario_hash()
    platform_hash = get_platform(scenario.platform).content_hash()
    policy_hash = scenario.policy_spec.content_hash()
    return f"{cap_free}-{platform_hash[:8]}-{policy_hash[:8]}"


def horizon_tag(horizon: float) -> str:
    """Tag of one fork horizon, hashed from its exact bit pattern."""
    digest = hashlib.sha256(float(horizon).hex().encode("ascii")).hexdigest()
    return f"h{digest[:8]}"


def checkpoint_key(group: str, horizon: float) -> str:
    return f"{group}-{horizon_tag(horizon)}"


@dataclass
class CheckpointTally:
    """Warm-start accounting for one sweep: store hits, misses (cold
    prefix replays that then publish), and published checkpoints."""

    hits: int = 0
    misses: int = 0
    publishes: int = 0

    def to_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "publishes": self.publishes,
        }

    def add(self, other: Mapping[str, int]) -> None:
        self.hits += int(other.get("hits", 0))
        self.misses += int(other.get("misses", 0))
        self.publishes += int(other.get("publishes", 0))

    def __bool__(self) -> bool:
        return bool(self.hits or self.misses or self.publishes)


class CheckpointStore:
    """Duck-typed protocol of a fork-state checkpoint store.

    ``best`` is the read path the replay layers use: the deepest
    stored horizon of a group that does not exceed the requesting
    cell's own divergence onset.  ``put`` persists a captured state
    under its content-addressed key; ``get``/``has`` are key-exact.
    """

    #: whether worker processes may reconstruct this store from its
    #: pickled form and still observe the same entries (directory
    #: stores: yes; a memory store pickles into an empty copy)
    shareable = False

    def get(self, key: str) -> dict | None:
        raise NotImplementedError

    def put(self, group: str, horizon: float, state: dict) -> str:
        raise NotImplementedError

    def has(self, key: str) -> bool:
        raise NotImplementedError

    def best(self, group: str, max_horizon: float) -> dict | None:
        raise NotImplementedError

    def keys(self) -> list[str]:
        raise NotImplementedError

    def has_group(self, group: str) -> bool:
        """Whether *any* horizon of ``group`` is stored — the question
        publisher election asks (a group with an entry warm-starts; one
        without elects a publisher).  Key-prefix scan by default;
        stores with a cheaper index may override."""
        prefix = f"{group}-h"
        return any(k.startswith(prefix) for k in self.keys())

    def prune(
        self,
        max_entries: int | None = None,
        *,
        max_age: float | None = None,
        lru: bool = False,
    ) -> list[str]:
        raise NotImplementedError

    @property
    def health(self) -> StoreHealth:
        h = getattr(self, "_health", None)
        if h is None:
            h = StoreHealth()
            setattr(self, "_health", h)
        return h


class MemoryCheckpointStore(CheckpointStore):
    """In-process checkpoint memo (tests, single-run warm starts)."""

    def __init__(self) -> None:
        self._entries: dict[str, tuple[str, float, dict]] = {}

    def get(self, key: str) -> dict | None:
        entry = self._entries.get(key)
        return None if entry is None else entry[2]

    def put(self, group: str, horizon: float, state: dict) -> str:
        key = checkpoint_key(group, horizon)
        self._entries.pop(key, None)  # re-putting refreshes LRU order
        self._entries[key] = (group, float(horizon), state)
        return key

    def has(self, key: str) -> bool:
        return key in self._entries

    def best(self, group: str, max_horizon: float) -> dict | None:
        best_h, best_key = -math.inf, None
        for key, (g, h, _) in self._entries.items():
            if g == group and h <= max_horizon and h > best_h:
                best_h, best_key = h, key
        return None if best_key is None else self._entries[best_key][2]

    def keys(self) -> list[str]:
        return sorted(self._entries)

    def prune(
        self,
        max_entries: int | None = None,
        *,
        max_age: float | None = None,
        lru: bool = False,
    ) -> list[str]:
        if max_age is not None:
            raise ValueError("memory checkpoint store does not track entry age")
        if max_entries is None or max_entries < 0:
            raise ValueError("max_entries must be >= 0")
        evict = max(0, len(self._entries) - max_entries)
        removed = list(self._entries)[:evict]  # dicts keep insertion order
        for key in removed:
            del self._entries[key]
        return removed


class DirectoryCheckpointStore(CheckpointStore):
    """Local checkpoint directory: ``<dir>/<key>.json`` + ``<key>.npz``.

    Mirrors :class:`repro.exp.store.DirectoryStore`: atomic temp-file
    writes, loud discard of corrupt entries (both halves of the pair
    go together), silent miss on schema staleness, mtime/atime-ordered
    pruning.
    """

    shareable = True

    _write_attempts = 1
    _retry_delay = 0.05

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # -- paths ------------------------------------------------------------------------

    def _json_path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def _npz_path(self, key: str) -> Path:
        return self.root / f"{key}.npz"

    def _tmp_name(self, key: str, suffix: str) -> str:
        return f"{key}.tmp.{os.getpid()}{suffix}"

    # -- write machinery (mirrors DirectoryStore) --------------------------------------

    def _discard(self, key: str, reason: Exception) -> None:
        """Drop both halves of an unreadable checkpoint, loudly: the
        caller cold-starts and re-publishes."""
        self.health.discarded += 1
        warnings.warn(
            f"discarding corrupt checkpoint {self._json_path(key)}: {reason!r}",
            RuntimeWarning,
            stacklevel=4,
        )
        for path in (self._json_path(key), self._npz_path(key)):
            try:
                path.unlink()
            except OSError:  # pragma: no cover - races with other healers
                pass

    def _guarded_write(self, label: str, write) -> None:
        attempts = self._write_attempts
        for attempt in range(1, attempts + 1):
            try:
                return write()
            except OSError as exc:
                transient = exc.errno in TRANSIENT_ERRNOS
                if transient and attempt < attempts:
                    self.health.retried_writes += 1
                    time.sleep(self._retry_delay * 2 ** (attempt - 1))
                    continue
                if transient and attempts > 1:
                    self.health.failed_writes += 1
                    warnings.warn(
                        f"abandoning checkpoint write {label}: {exc!r} "
                        f"(after {attempts} attempts; the prefix will be "
                        "replayed cold on demand)",
                        RuntimeWarning,
                        stacklevel=4,
                    )
                    return
                raise

    def _replace(self, tmp: Path, path: Path) -> None:
        os.replace(tmp, path)  # atomic: concurrent writers race benignly

    def _touch(self, path: Path) -> None:
        """Bump the access time (LRU pruning) without moving mtime."""
        try:
            st = path.stat()
            os.utime(path, times=(time.time(), st.st_mtime))
        except OSError:  # pragma: no cover - read-only or raced store
            pass

    # -- read/write --------------------------------------------------------------------

    def get(self, key: str) -> dict | None:
        jpath = self._json_path(key)
        if not jpath.is_file():
            return None
        # Fork states are content-addressed, so a cached entry can
        # only go stale through the filesystem: pruning (the
        # ``is_file`` probe above) or on-disk damage.  A hit must
        # match the ``.npz``'s recorded stat signature — anything
        # that changed the bytes falls through to the real loader,
        # which detects corruption loudly.  Hits still bump the
        # atime so LRU pruning sees cached readers.
        cached = _shm.FORK_STATE_CACHE.get((str(self.root), key))
        if cached is not None and self._npz_sig(key) == cached["sig"]:
            self._touch(jpath)
            return {"meta": dict(cached["meta"]), "arrays": dict(cached["arrays"])}
        try:
            wrapper = json.loads(jpath.read_text(encoding="utf-8"))
            schema = wrapper["schema"]
            group = wrapper["group"]
            meta = wrapper["meta"]
        except (OSError, json.JSONDecodeError, KeyError, TypeError) as exc:
            self._discard(key, exc)
            return None
        if schema != CHECKPOINT_SCHEMA:
            return None  # wrapper-schema bump is expected staleness
        if not isinstance(meta, dict) or meta.get("version") != FORK_STATE_VERSION:
            return None  # fork-state layout bump: same silent miss
        # Content addressing is the integrity check: the key must spell
        # out the stored group and the stored horizon's exact bits.
        if not key.startswith(f"{group}-h") or not key.endswith(
            horizon_tag(float.fromhex(meta["horizon"]))
        ):
            self._discard(key, ValueError("stored checkpoint does not match key"))
            return None
        try:
            with np.load(self._npz_path(key)) as z:
                arrays = {name: z[name] for name in z.files}
        except Exception as exc:
            self._discard(key, exc)
            return None
        self._touch(jpath)
        # Memoise the loaded state (read-only arrays shared between
        # the cache and every borrower — install_fork_state only ever
        # reads them), sparing repeat warm starts the .npz decompress.
        for arr in arrays.values():
            arr.setflags(write=False)
        _shm.FORK_STATE_CACHE.put(
            (str(self.root), key),
            {"meta": meta, "arrays": arrays, "sig": self._npz_sig(key)},
        )
        return {"meta": dict(meta), "arrays": dict(arrays)}

    def _npz_sig(self, key: str) -> tuple[int, int] | None:
        """Cheap change detector for the cached fork state: the
        ``.npz``'s ``(mtime_ns, size)``, ``None`` when unreadable."""
        try:
            st = self._npz_path(key).stat()
        except OSError:
            return None
        return (st.st_mtime_ns, st.st_size)

    def put(self, group: str, horizon: float, state: dict) -> str:
        key = checkpoint_key(group, horizon)
        wrapper = {
            "schema": CHECKPOINT_SCHEMA,
            "group": group,
            "horizon": float(horizon).hex(),
            "meta": state["meta"],
        }
        payload = json.dumps(wrapper, allow_nan=False)
        # Arrays first, JSON second: the JSON is the commit point, so
        # a torn pair is invisible rather than half-readable.
        self._guarded_write(
            f"{key}.npz", lambda: self._write_npz(key, state["arrays"])
        )
        self._guarded_write(
            f"{key}.json", lambda: self._write_text(key, payload)
        )
        return key

    def _write_npz(self, key: str, arrays: Mapping[str, np.ndarray]) -> None:
        path = self._npz_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / self._tmp_name(key, ".npz")
        try:
            np.savez_compressed(tmp, **arrays)
            self._replace(tmp, path)
        except OSError:
            tmp.unlink(missing_ok=True)
            raise

    def _write_text(self, key: str, payload: str) -> None:
        path = self._json_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / self._tmp_name(key, ".json")
        try:
            tmp.write_text(payload, encoding="utf-8")
            self._replace(tmp, path)
        except OSError:
            tmp.unlink(missing_ok=True)
            raise

    def has(self, key: str) -> bool:
        return self._json_path(key).is_file()

    def _peek_horizon(self, key: str) -> float | None:
        """The stored horizon, from the JSON wrapper only (no arrays)."""
        try:
            wrapper = json.loads(
                self._json_path(key).read_text(encoding="utf-8")
            )
            if wrapper["schema"] != CHECKPOINT_SCHEMA:
                return None
            return float.fromhex(wrapper["horizon"])
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            return None  # get() on the winner discards what it must

    def best(self, group: str, max_horizon: float) -> dict | None:
        prefix = f"{group}-h"
        candidates = [
            (h, key)
            for key in self.keys()
            if key.startswith(prefix)
            and (h := self._peek_horizon(key)) is not None
            and h <= max_horizon
        ]
        # Deepest horizon first; a corrupt winner is discarded by get()
        # and the next-deepest entry serves instead.
        for _, key in sorted(candidates, reverse=True):
            state = self.get(key)
            if state is not None:
                return state
        return None

    def keys(self) -> list[str]:
        if not self.root.is_dir():
            return []
        return sorted(
            p.stem
            for p in self.root.rglob("*.json")
            if _CKPT_KEY_RE.fullmatch(p.stem)
        )

    def prune(
        self,
        max_entries: int | None = None,
        *,
        max_age: float | None = None,
        lru: bool = False,
    ) -> list[str]:
        """Evict checkpoints by count and/or age.

        ``max_entries`` keeps at most that many entries (oldest out
        first); ``max_age`` evicts every entry older than that many
        seconds.  Age and eviction order use the JSON file's mtime
        (least recently *written*), or its atime with ``lru=True``
        (least recently *restored* — reads bump the access time).
        """
        return _prune_files(
            self,
            [(key, (self._json_path(key), self._npz_path(key))) for key in self.keys()],
            max_entries=max_entries,
            max_age=max_age,
            lru=lru,
        )

    def _evicted(self, key: str) -> None:
        """Hook run after ``key``'s files are unlinked by :meth:`prune`."""


class SharedCheckpointStore(DirectoryCheckpointStore):
    """A checkpoint store safe for concurrent writers across machines.

    Same hardening as :class:`repro.exp.store.SharedDirectoryStore`:
    two-level key fan-out, collision-free temp names, fsync before the
    atomic rename, first-writer-wins (fork states are a pure function
    of the checkpoint key, so concurrent publishers produce identical
    bytes and the second write is skipped), and transient-``OSError``
    retry with bounded backoff.
    """

    _seq = count()
    _write_attempts = 4

    def _json_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _npz_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.npz"

    def _tmp_name(self, key: str, suffix: str) -> str:
        host = socket.gethostname() or "host"
        return f"{key}.tmp.{host}.{os.getpid()}.{next(self._seq)}{suffix}"

    def put(self, group: str, horizon: float, state: dict) -> str:
        key = checkpoint_key(group, horizon)
        if self._json_path(key).is_file():
            return key
        return super().put(group, horizon, state)

    def _replace(self, tmp: Path, path: Path) -> None:
        fd = os.open(tmp, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, path)

    def _evicted(self, key: str) -> None:
        try:
            (self.root / key[:2]).rmdir()
        except OSError:
            pass


class WarmStart:
    """Binds a checkpoint store to one group: the duck-typed adapter
    :func:`repro.sim.batch.run_replay_batch` consumes.

    ``load`` serves the deepest stored horizon not exceeding the
    batch's own fork time; ``publish`` persists a freshly captured
    prefix (skipping the write when the exact key already exists —
    checkpoint content is a pure function of its key, so the stored
    bytes are already identical).  Every probe and publish is tallied.
    """

    def __init__(
        self,
        store: CheckpointStore,
        group: str,
        tally: CheckpointTally | None = None,
    ) -> None:
        self.store = store
        self.group = group
        self.tally = tally if tally is not None else CheckpointTally()

    def load(self, max_horizon: float) -> dict | None:
        state = self.store.best(self.group, max_horizon)
        if state is None:
            self.tally.misses += 1
        else:
            self.tally.hits += 1
        return state

    def publish(self, horizon: float, state: dict) -> None:
        if self.store.has(checkpoint_key(self.group, horizon)):
            return
        self.store.put(self.group, horizon, state)
        self.tally.publishes += 1


def make_checkpoint_store(spec: str) -> CheckpointStore:
    """Build a checkpoint store from a CLI-style spec string.

    ``memory`` — in-process memo; ``dir:PATH`` — local directory;
    ``shared:PATH`` — shared directory safe for concurrent writers.  A
    bare path is shorthand for ``dir:PATH``.
    """
    kind, sep, arg = spec.partition(":")
    if not sep and kind not in ("memory", "dir", "shared"):
        kind, arg = "dir", spec
    if kind == "memory":
        if arg:
            raise ValueError("memory checkpoint store takes no argument")
        return MemoryCheckpointStore()
    if kind == "dir":
        if not arg:
            raise ValueError("dir checkpoint store needs a path: dir:PATH")
        return DirectoryCheckpointStore(arg)
    if kind == "shared":
        if not arg:
            raise ValueError("shared checkpoint store needs a path: shared:PATH")
        return SharedCheckpointStore(arg)
    raise ValueError(
        f"unknown checkpoint store spec {spec!r}; "
        "expected memory, dir:PATH or shared:PATH"
    )
