"""Zero-copy shared-memory data plane for pool sweeps.

Everything that crosses the driver↔worker boundary of a pool backend
moves through this module:

* **Array transport** — :class:`SharedArena` places NumPy payloads
  (series grids from ``run_scenario_with_series``, fork-state
  matrices, checkpoint ``.npz`` bodies) into named
  :mod:`multiprocessing.shared_memory` segments.  Workers return a
  tiny :class:`ShmPayload` descriptor — ``(segment, dtype, shape,
  offset)`` per array — and the driver adopts it as zero-copy
  ``np.ndarray`` views, so a group's series payloads cost one memcpy
  instead of pickle → pipe → unpickle (two serialisations plus two
  kernel copies).  Lifecycle is explicit: the adopting side closes
  *and unlinks*; an ``atexit`` reaper sweeps anything left adopted,
  and :func:`reap_prefix` reclaims segments orphaned by a worker that
  died mid-write (tied into the pool respawn state machine).  When
  shm is unavailable — platform without ``/dev/shm`` semantics,
  payload under :data:`MIN_SHM_BYTES`, ``REPRO_SHM=0`` — placement
  returns ``None`` and the caller falls back to the pickle path;
  results are bit-identical either way (the golden digests never
  flow through the segment, only bulk series data does).

* **Content-addressed spec cache** — workers memoise deserialised
  :class:`~repro.platform.PlatformSpec` objects, group base scenarios
  and checkpoint fork states in bounded per-process LRUs keyed by
  content hash.  After first delivery the driver ships only hashes
  (:class:`SpecShipper`), so a 12-cell group envelope shrinks to a
  scenario-hash list plus cap deltas (:class:`GroupEnvelope`).  A
  cache miss — a worker forked before the cache was seeded, or an
  LRU eviction — is answered with the :func:`spec_miss` sentinel and
  the driver re-ships the full spec once, uncharged.

* **Transfer accounting** — :class:`TransferTally` counts bytes
  shipped through pickle, bytes shared through segments, and spec
  cache hits/misses; the per-sweep totals surface in
  ``SweepReport.transfer`` and ``exp run --plan``.
"""

from __future__ import annotations

import atexit
import itertools
import os
import pickle
import warnings
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.exp.spec import Scenario

__all__ = [
    "MIN_SHM_BYTES",
    "GroupEnvelope",
    "SharedArena",
    "ShmAdoptError",
    "ShmPayload",
    "ShmView",
    "SpecShipper",
    "TransferTally",
    "arena",
    "format_bytes",
    "is_spec_miss",
    "live_segments",
    "new_prefix",
    "reap_prefix",
    "seed_platform_cache",
    "set_shm_enabled",
    "shm_available",
    "spec_miss",
]

#: payloads smaller than this ship pickled — a segment costs two
#: syscalls plus a descriptor round-trip, which only pays off once the
#: memcpy it saves is big enough to notice
MIN_SHM_BYTES = 1 << 16

#: segment offsets are cache-line aligned so adopted views start clean
_ALIGN = 64

_SHM_DIR = "/dev/shm"  # POSIX shm namespace; absent => enumeration off

_seq = itertools.count()
_enabled_override: bool | None = None


def _shm_module():
    try:
        from multiprocessing import shared_memory
    except ImportError:  # pragma: no cover - minimal builds
        return None
    return shared_memory


def set_shm_enabled(flag: bool | None) -> None:
    """Force the data plane on/off (``None`` restores the env default).

    The ``shm-off`` column of the equivalence matrix and the CLI's
    ``REPRO_SHM=0`` both funnel through here: disabling shm forces the
    pickle fallback everywhere, which must stay bit-identical.
    """
    global _enabled_override
    _enabled_override = flag


def shm_available() -> bool:
    """Whether array payloads may ride shared-memory segments."""
    if _enabled_override is not None:
        return _enabled_override and _shm_module() is not None
    if os.environ.get("REPRO_SHM", "").strip().lower() in {"0", "off", "no"}:
        return False
    return _shm_module() is not None


def new_prefix() -> str:
    """A fresh driver-owned segment-name prefix.

    Every segment a backend's workers create carries its backend's
    prefix, so the driver can enumerate (and reap) exactly its own
    orphans after killing a worker — without ever touching segments
    of a concurrent runner in the same process.
    """
    return f"rs{os.getpid():x}a{next(_seq):x}-"


# -- descriptors -----------------------------------------------------------------------


@dataclass(frozen=True)
class ShmBlock:
    """One array inside a segment: ``(key, dtype, shape, offset)``."""

    key: str
    dtype: str
    shape: tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class ShmPayload:
    """Picklable descriptor of one placed segment (replaces the bulk
    array pickle on the wire; a few hundred bytes regardless of
    payload size)."""

    segment: str
    blocks: tuple[ShmBlock, ...]
    nbytes: int


class ShmAdoptError(RuntimeError):
    """A descriptor's segment could not be attached (the worker died
    after placing it and a reaper already reclaimed the segment, or
    the platform dropped it)."""


class ShmView:
    """Adopted segment: zero-copy read-only array views plus explicit
    ``close()`` (unmap + unlink).  Context manager."""

    def __init__(self, shm: Any, payload: ShmPayload) -> None:
        self._shm = shm
        self.segment = payload.segment
        self.nbytes = payload.nbytes
        self.arrays: dict[str, np.ndarray] = {}
        buf = shm.buf
        for b in payload.blocks:
            n = int(np.prod(b.shape, dtype=np.int64)) if b.shape else 1
            a = np.frombuffer(
                buf, dtype=np.dtype(b.dtype), count=n, offset=b.offset
            ).reshape(b.shape)
            a.flags.writeable = False
            self.arrays[b.key] = a

    def __enter__(self) -> "ShmView":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def close(self) -> None:
        """Unmap and unlink; idempotent.  Views become invalid."""
        shm, self._shm = self._shm, None
        if shm is None:
            return
        self.arrays = {}
        try:
            shm.close()
        except BufferError:  # pragma: no cover - caller kept a view alive
            warnings.warn(
                f"shm segment {self.segment} still has live array views; "
                "leaking the mapping until they are released",
                RuntimeWarning,
                stacklevel=2,
            )
            return
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - raced with a reaper
            # The segment is already gone; still send the unregister
            # the attach-time registration is waiting for.
            SharedArena._untrack(shm)


class SharedArena:
    """Places and adopts shm-backed array payloads.

    One process-wide instance (:data:`arena`) serves both roles:
    workers :meth:`place` payloads (create + copy + detach — the
    *driver* owns the unlink), the driver :meth:`adopt`\\ s descriptors
    into zero-copy views.  Live adoptions are tracked so the
    ``atexit`` reaper can close-and-unlink anything a crashed sweep
    left behind.
    """

    def __init__(self) -> None:
        self._live: dict[str, ShmView] = {}
        self._atexit_registered = False

    # -- worker side ----------------------------------------------------------------

    def place(
        self,
        arrays: Mapping[str, np.ndarray],
        *,
        prefix: str | None = None,
        min_bytes: int | None = None,
    ) -> ShmPayload | None:
        """Copy ``arrays`` into a fresh named segment.

        Returns the descriptor, or ``None`` when the pickle fallback
        should carry the payload instead (shm unavailable, payload
        under the size guard, or segment creation failed).
        """
        mod = _shm_module()
        if mod is None or not shm_available():
            return None
        floor = MIN_SHM_BYTES if min_bytes is None else min_bytes
        blocks: list[tuple[str, np.ndarray, int]] = []
        total = 0
        for key, arr in arrays.items():
            a = np.ascontiguousarray(arr)
            total = -(-total // _ALIGN) * _ALIGN  # round up
            blocks.append((key, a, total))
            total += a.nbytes
        if total < floor:
            return None
        name = f"{prefix or new_prefix()}{os.getpid():x}x{next(_seq):x}"
        try:
            seg = mod.SharedMemory(name=name, create=True, size=max(total, 1))
        except OSError:  # pragma: no cover - exhausted /dev/shm etc.
            return None
        try:
            buf = seg.buf
            out_blocks = []
            for key, a, off in blocks:
                dst = np.frombuffer(
                    buf, dtype=a.dtype, count=a.size, offset=off
                ).reshape(a.shape)
                np.copyto(dst, a)
                # Release the view's buffer export immediately: any
                # surviving export would make ``seg.close()`` below
                # raise ``BufferError``.
                del dst
            del buf
            for key, a, off in blocks:
                out_blocks.append(ShmBlock(key, a.dtype.str, a.shape, off))
            payload = ShmPayload(seg.name, tuple(out_blocks), total)
        except Exception:  # pragma: no cover - defensive: no orphan on error
            try:
                seg.close()
            except BufferError:
                pass
            try:
                seg.unlink()
            except OSError:
                pass
            raise
        # The adopter owns the unlink: detach locally and tell this
        # process's resource tracker to forget the segment, so a
        # worker exiting cleanly does not tear it down under the
        # driver (nor warn about a "leak" it no longer owns).
        self._untrack(seg)
        seg.close()
        return payload

    @staticmethod
    def _untrack(seg: Any) -> None:
        try:  # pragma: no branch
            from multiprocessing import resource_tracker

            resource_tracker.unregister(seg._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker impl drift
            pass

    # -- driver side ----------------------------------------------------------------

    def adopt(self, payload: ShmPayload) -> ShmView:
        """Attach a descriptor as zero-copy views; the returned view's
        ``close()`` (or the atexit reaper) unlinks the segment."""
        mod = _shm_module()
        if mod is None:
            raise ShmAdoptError("shared_memory unavailable in this process")
        try:
            seg = mod.SharedMemory(name=payload.segment)
        except (OSError, ValueError) as exc:
            raise ShmAdoptError(
                f"cannot attach shm segment {payload.segment!r}: {exc}"
            ) from exc
        # No _untrack here: attaching registered the name with the
        # resource tracker, and ``ShmView.close()``'s unlink sends the
        # matching unregister — the tracker stays balanced and serves
        # as the backstop if this process dies before closing.
        view = ShmView(seg, payload)
        orig_close = view.close
        live = self._live

        def close() -> None:
            live.pop(payload.segment, None)
            orig_close()

        view.close = close  # type: ignore[method-assign]
        live[payload.segment] = view
        if not self._atexit_registered:
            atexit.register(self.reap)
            self._atexit_registered = True
        return view

    def reap(self) -> int:
        """Close-and-unlink every still-adopted view (atexit safety
        net); returns how many were reclaimed."""
        views = list(self._live.values())
        self._live.clear()
        for view in views:
            view.close()
        return len(views)

    @property
    def live_segments(self) -> tuple[str, ...]:
        return tuple(self._live)


#: the process-wide arena
arena = SharedArena()


def reap_prefix(prefix: str) -> int:
    """Unlink every orphaned segment under ``prefix``.

    Called after a pool's workers are dead (respawn after a crash or
    a timeout kill, and backend shutdown): any segment still carrying
    the backend's prefix was placed by a worker whose descriptor
    never reached the driver — a leak unless reclaimed here.
    Segments the driver currently holds adopted are skipped.
    """
    if not prefix or not os.path.isdir(_SHM_DIR):
        return 0
    mod = _shm_module()
    if mod is None:  # pragma: no cover - minimal builds
        return 0
    reaped = 0
    try:
        names = os.listdir(_SHM_DIR)
    except OSError:  # pragma: no cover - racing namespace teardown
        return 0
    adopted = set(arena.live_segments)
    for name in names:
        if not name.startswith(prefix) or name in adopted:
            continue
        try:
            os.unlink(os.path.join(_SHM_DIR, name))
            reaped += 1
        except OSError:  # pragma: no cover - raced with another reaper
            pass
    return reaped


def live_segments(prefix: str = "rs") -> set[str]:
    """Names of live ``/dev/shm`` segments under ``prefix`` (empty set
    where the namespace is not enumerable) — the leak-check probe."""
    if not os.path.isdir(_SHM_DIR):
        return set()
    try:
        return {n for n in os.listdir(_SHM_DIR) if n.startswith(prefix)}
    except OSError:  # pragma: no cover
        return set()


# -- content-addressed spec caches -----------------------------------------------------


class SpecCache:
    """Bounded LRU keyed by content hash.

    Content addressing makes entries immortal-if-present: two values
    under one key are bit-identical by construction, so there is no
    invalidation protocol — only capacity eviction.
    """

    def __init__(self, maxsize: int) -> None:
        self.maxsize = int(maxsize)
        self._data: OrderedDict[Any, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: Any) -> Any | None:
        try:
            self._data.move_to_end(key)
        except KeyError:
            self.misses += 1
            return None
        self.hits += 1
        return self._data[key]

    def put(self, key: Any, value: Any) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()
        self.hits = self.misses = 0


#: per-process memo of deserialised PlatformSpecs by content hash
PLATFORM_CACHE = SpecCache(maxsize=64)
#: per-process memo of group base scenarios by cap-free scenario hash
SCENARIO_CACHE = SpecCache(maxsize=64)
#: per-process memo of loaded checkpoint fork states by (root, key) —
#: fork states are multi-MB array dicts, so the bound stays tight
FORK_STATE_CACHE = SpecCache(maxsize=4)


def seed_platform_cache(names: Iterable[str]) -> None:
    """Driver-side cache warm-up before the pool forks.

    Under the ``fork`` start method children inherit this process's
    caches, so seeding here makes hash-only envelopes hit from the
    very first task; ``spawn`` (or a pool forked earlier) answers
    through the miss protocol instead.
    """
    from repro.platform import get_platform

    for name in dict.fromkeys(names):
        spec = get_platform(name)
        PLATFORM_CACHE.put(spec.content_hash(), spec)


#: head of the miss sentinel a worker returns instead of a result when
#: a hash-only envelope references specs its caches do not hold
SPEC_MISS = "__specmiss__"


def spec_miss(missing: Sequence[str]) -> tuple[str, tuple[str, ...]]:
    return (SPEC_MISS, tuple(missing))


def is_spec_miss(obj: Any) -> bool:
    return (
        isinstance(obj, tuple)
        and len(obj) == 2
        and obj[0] == SPEC_MISS
    )


# -- envelopes -------------------------------------------------------------------------


@dataclass(frozen=True)
class GroupEnvelope:
    """Compact wire form of one lockstep group.

    ``base`` is the cap-free base scenario — shipped once, then
    ``None`` (the worker resolves it from its cache by ``group``
    hash).  Cells are ``(name, caps)`` deltas; ``hashes`` pin each
    reconstructed cell's content hash, so a worker whose
    reconstruction drifts fails loudly instead of replaying the
    wrong spec.
    """

    group: str
    base: "Scenario | None"
    cells: tuple[tuple[str, tuple], ...]
    hashes: tuple[str, ...]

    def resolve(self) -> "tuple[Scenario, ...] | tuple[str, tuple[str, ...]]":
        """Reconstruct the group's scenarios in this process, or a
        :func:`spec_miss` sentinel when the base is not cached."""
        base = self.base
        if base is None:
            base = SCENARIO_CACHE.get(self.group)
            if base is None:
                return spec_miss([self.group])
        else:
            SCENARIO_CACHE.put(self.group, base)
        cells = tuple(
            base.with_(name=name, caps=caps) for name, caps in self.cells
        )
        for sc, expected in zip(cells, self.hashes):
            got = sc.scenario_hash()
            if got != expected:
                raise ValueError(
                    f"group envelope integrity failure: cell {sc.name!r} "
                    f"reconstructed to {got}, envelope pinned {expected}"
                )
        return cells


class SpecShipper:
    """Driver-side ledger of which spec hashes have been delivered.

    With ``compact`` off (non-fork pools, or spec caching disabled)
    every envelope carries full spec dicts — the pre-data-plane wire
    format.  With it on, a spec ships in full exactly once per sweep
    and as a bare hash afterwards; :meth:`invalidate` reverts a hash
    to full shipping after a worker reported a miss.
    """

    def __init__(self, *, compact: bool = False) -> None:
        self.compact = bool(compact)
        self._sent: set[str] = set()

    def platform_payload(
        self, scenarios: Sequence["Scenario"], *, full: bool = False
    ) -> tuple[tuple[str, dict | None], ...]:
        """``(content_hash, spec_dict | None)`` per referenced platform."""
        from repro.platform import get_platform

        entries: list[tuple[str, dict | None]] = []
        for name in dict.fromkeys(sc.platform for sc in scenarios):
            spec = get_platform(name)
            h = spec.content_hash()
            if self.compact and not full and h in self._sent:
                entries.append((h, None))
            else:
                self._sent.add(h)
                entries.append((h, spec.to_dict()))
        return tuple(entries)

    def group_base(self, base: "Scenario", group: str) -> "Scenario | None":
        """The envelope's ``base`` field: the full spec on first
        delivery (also seeding the driver-side cache, which forked
        workers inherit), ``None`` afterwards."""
        if not self.compact:
            return base
        SCENARIO_CACHE.put(group, base)
        if group in self._sent:
            return None
        self._sent.add(group)
        return base

    def invalidate(self, hashes: Iterable[str]) -> None:
        self._sent.difference_update(hashes)


# -- transfer accounting ---------------------------------------------------------------


@dataclass
class TransferTally:
    """Per-sweep data-plane accounting (mirrors ``CheckpointTally``).

    ``bytes_shipped`` counts pickled payloads on the wire (task
    envelopes plus any series arrays that fell back to pickling);
    ``bytes_shared`` counts segment bytes adopted zero-copy;
    ``fallbacks`` counts series payloads that wanted shm but pickled
    instead.  Spec hits/misses aggregate the workers' cache stats.
    """

    bytes_shipped: int = 0
    bytes_shared: int = 0
    segments: int = 0
    spec_hits: int = 0
    spec_misses: int = 0
    fallbacks: int = 0

    def add(self, d: Mapping[str, int] | "TransferTally") -> None:
        if isinstance(d, TransferTally):
            d = d.to_dict()
        for key, value in d.items():
            if hasattr(self, key):
                setattr(self, key, getattr(self, key) + int(value))

    def to_dict(self) -> dict[str, int]:
        return {
            "bytes_shipped": self.bytes_shipped,
            "bytes_shared": self.bytes_shared,
            "segments": self.segments,
            "spec_hits": self.spec_hits,
            "spec_misses": self.spec_misses,
            "fallbacks": self.fallbacks,
        }

    def __bool__(self) -> bool:
        return any(self.to_dict().values())

    def note_envelope(self, obj: Any, count: int = 1) -> None:
        """Charge ``count`` shipments of ``obj``'s pickled size."""
        try:
            self.bytes_shipped += len(pickle.dumps(obj)) * count
        except Exception:  # pragma: no cover - unpicklable in-process task
            pass


def pickled_size(obj: Any) -> int:
    try:
        return len(pickle.dumps(obj))
    except Exception:  # pragma: no cover - in-process-only payloads
        return 0


def format_bytes(n: int) -> str:
    """``2.4 MB``-style human size (SI, one decimal)."""
    size = float(n)
    for unit in ("B", "KB", "MB", "GB"):
        if size < 1000.0 or unit == "GB":
            return f"{size:.1f} {unit}" if unit != "B" else f"{int(size)} B"
        size /= 1000.0
    return f"{size:.1f} GB"  # pragma: no cover


def transfer_summary(t: Mapping[str, int]) -> str:
    """The ``SweepReport.summary()`` fragment for a transfer dict."""
    parts = [f"{format_bytes(t.get('bytes_shipped', 0))} shipped"]
    if t.get("bytes_shared"):
        parts.append(
            f"{format_bytes(t['bytes_shared'])} shm "
            f"({t.get('segments', 0)} seg)"
        )
    hits, misses = t.get("spec_hits", 0), t.get("spec_misses", 0)
    if hits or misses:
        parts.append(f"spec-cache {hits}/{hits + misses} hit(s)")
    if t.get("fallbacks"):
        parts.append(f"{t['fallbacks']} pickle fallback(s)")
    return "transfer: " + ", ".join(parts)


def envelope_report(
    scenarios: Sequence["Scenario"], groups: Sequence[Sequence[int]]
) -> list[str]:
    """``exp run --plan`` lines: projected envelope sizes and the data
    plane's status for this host."""
    lines = [
        "data plane: shm array transport "
        + ("on" if shm_available() else "off (pickle fallback)")
        + " — series payloads ride /dev/shm segments; REPRO_SHM=0 forces pickle"
    ]
    if not groups:
        return lines
    full = compact = 0
    for idxs in groups:
        cells = tuple(scenarios[i] for i in idxs)
        base = cells[0].with_(caps=())
        env = GroupEnvelope(
            group=base.scenario_hash(),
            base=None,
            cells=tuple((sc.name, sc.caps) for sc in cells),
            hashes=tuple(sc.scenario_hash() for sc in cells),
        )
        full += pickled_size(cells)
        compact += pickled_size(env)
    ratio = full / compact if compact else 1.0
    lines.append(
        f"envelopes: {len(groups)} group(s): {format_bytes(full)} full -> "
        f"{format_bytes(compact)} compact ({ratio:.1f}x smaller after first "
        "delivery)"
    )
    return lines
