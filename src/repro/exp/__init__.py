"""Experiment harness: declarative scenarios, parallel grid runs.

The subsystem behind ``repro exp run/list/compare``:

* :class:`Scenario` / :class:`CapWindow` — declarative replay specs
  with stable content-hash identity (:mod:`repro.exp.spec`);
* :func:`run_scenario` / :class:`GridRunner` — serial and
  multi-process execution with per-scenario result caching
  (:mod:`repro.exp.runner`);
* :data:`SCENARIO_LIBRARY` — named, ready-to-run scenarios
  (:mod:`repro.exp.library`);
* aggregation into the Figure 8 reporting layer
  (:mod:`repro.exp.aggregate`).
"""

from repro.exp.spec import CapWindow, Scenario, expand_grid
from repro.exp.runner import (
    GridRunner,
    RunResult,
    replay_scenario,
    run_scenario,
    run_scenario_with_series,
    scenario_series,
    trace_digest,
)
from repro.exp.library import (
    PAPER_GRID_ROWS,
    SCENARIO_LIBRARY,
    get_scenario,
    paper_grid_scenarios,
    scenario_names,
)
from repro.exp.aggregate import (
    cell_from_result,
    compare_results,
    render_results_grid,
    results_table,
    results_to_cells,
)

__all__ = [
    "CapWindow",
    "Scenario",
    "expand_grid",
    "GridRunner",
    "RunResult",
    "replay_scenario",
    "run_scenario",
    "run_scenario_with_series",
    "scenario_series",
    "trace_digest",
    "PAPER_GRID_ROWS",
    "SCENARIO_LIBRARY",
    "get_scenario",
    "paper_grid_scenarios",
    "scenario_names",
    "cell_from_result",
    "compare_results",
    "render_results_grid",
    "results_table",
    "results_to_cells",
]
