"""Experiment harness: declarative scenarios, pluggable grid runs.

The subsystem behind ``repro exp run/list/compare``:

* :class:`Scenario` / :class:`CapWindow` — declarative replay specs
  with stable content-hash identity, plus deterministic shard
  selection (:mod:`repro.exp.spec`);
* :class:`ExecutionBackend` — where scenarios execute: in-process
  (:class:`SerialBackend`), a ``multiprocessing`` pool
  (:class:`ProcessPoolBackend`), same-platform scenarios replayed in
  lockstep (:class:`BatchBackend`), whole lockstep groups fanned out
  onto pool workers under a calibrated LPT cost model
  (:class:`BatchPoolBackend`, :mod:`repro.exp.costmodel`), or one
  shard of a split sweep (:class:`ShardedBackend`)
  (:mod:`repro.exp.backends`);
* :class:`ResultStore` — where results persist: an in-memory memo
  (:class:`MemoryStore`), a local JSON/``.npz`` directory
  (:class:`DirectoryStore`), or a shared directory safe for
  concurrent writers (:class:`SharedDirectoryStore`)
  (:mod:`repro.exp.store`);
* :class:`CheckpointStore` — persistent content-addressed warm-start
  prefixes: the lockstep fork state as a durable artifact, restored
  bit-identically across runs, backends, and machines
  (:mod:`repro.exp.checkpoints`);
* :func:`run_scenario` / :class:`GridRunner` — pure orchestration:
  dedupe → store lookup → backend submit → store write → aggregate
  (:mod:`repro.exp.runner`);
* fault tolerance — deterministic fault injection
  (:class:`FaultPlan`, :mod:`repro.exp.faults`), retry/timeout/
  quarantine semantics and structured sweep outcomes
  (:class:`RetryPolicy`, :class:`SweepReport`,
  :mod:`repro.exp.resilience`);
* :data:`SCENARIO_LIBRARY` — named, ready-to-run scenarios
  (:mod:`repro.exp.library`);
* aggregation and shard merging into the Figure 8 reporting layer
  (:mod:`repro.exp.aggregate`).
"""

from repro.exp.spec import (
    CapWindow,
    Scenario,
    expand_grid,
    parse_shard,
    shard_index,
    shard_scenarios,
)
from repro.exp.backends import (
    BatchBackend,
    BatchPoolBackend,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ShardedBackend,
    make_backend,
)
from repro.exp.costmodel import (
    CostModel,
    GroupEstimate,
    assign_workers,
    lpt_order,
    plan_table,
)
from repro.exp.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    InjectedFault,
    InjectedHang,
    InjectedTransient,
    injected,
    install_plan,
    parse_fault_plan,
)
from repro.exp.resilience import (
    FAILURE_KINDS,
    ON_ERROR_MODES,
    FailureRecord,
    RetryPolicy,
    SweepError,
    SweepReport,
    TaskFailure,
)
from repro.exp.store import (
    DirectoryStore,
    MemoryStore,
    ResultStore,
    SharedDirectoryStore,
    StoreHealth,
    make_store,
    result_key,
)
from repro.exp.checkpoints import (
    CheckpointStore,
    CheckpointTally,
    DirectoryCheckpointStore,
    MemoryCheckpointStore,
    SharedCheckpointStore,
    WarmStart,
    checkpoint_group,
    checkpoint_key,
    make_checkpoint_store,
)
from repro.exp.runner import (
    GridRunner,
    RunResult,
    replay_scenario,
    run_scenario,
    run_scenario_with_series,
    scenario_series,
    trace_digest,
)
from repro.exp.library import (
    PAPER_GRID_ROWS,
    SCENARIO_LIBRARY,
    get_scenario,
    paper_grid_scenarios,
    scenario_names,
)
from repro.exp.aggregate import (
    cell_from_result,
    compare_results,
    merge_results,
    render_results_grid,
    results_table,
    results_to_cells,
)
from repro.exp.shm import (
    GroupEnvelope,
    SharedArena,
    ShmPayload,
    ShmView,
    SpecShipper,
    TransferTally,
    set_shm_enabled,
    shm_available,
)

__all__ = [
    "CapWindow",
    "Scenario",
    "expand_grid",
    "parse_shard",
    "shard_index",
    "shard_scenarios",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "BatchBackend",
    "BatchPoolBackend",
    "ShardedBackend",
    "make_backend",
    "CostModel",
    "GroupEstimate",
    "assign_workers",
    "lpt_order",
    "plan_table",
    "ResultStore",
    "MemoryStore",
    "DirectoryStore",
    "SharedDirectoryStore",
    "StoreHealth",
    "make_store",
    "result_key",
    "CheckpointStore",
    "CheckpointTally",
    "MemoryCheckpointStore",
    "DirectoryCheckpointStore",
    "SharedCheckpointStore",
    "WarmStart",
    "checkpoint_group",
    "checkpoint_key",
    "make_checkpoint_store",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "InjectedCrash",
    "InjectedHang",
    "InjectedTransient",
    "injected",
    "install_plan",
    "parse_fault_plan",
    "FAILURE_KINDS",
    "ON_ERROR_MODES",
    "FailureRecord",
    "RetryPolicy",
    "SweepError",
    "SweepReport",
    "TaskFailure",
    "GroupEnvelope",
    "SharedArena",
    "ShmPayload",
    "ShmView",
    "SpecShipper",
    "TransferTally",
    "set_shm_enabled",
    "shm_available",
    "GridRunner",
    "RunResult",
    "replay_scenario",
    "run_scenario",
    "run_scenario_with_series",
    "scenario_series",
    "trace_digest",
    "PAPER_GRID_ROWS",
    "SCENARIO_LIBRARY",
    "get_scenario",
    "paper_grid_scenarios",
    "scenario_names",
    "cell_from_result",
    "compare_results",
    "merge_results",
    "render_results_grid",
    "results_table",
    "results_to_cells",
]
