"""Name -> :class:`PlatformSpec` registry.

The single lookup point behind the ``platform`` axis of the
experiment harness: scenarios, the workload generator, the CLI and
the policy factories all resolve platform names here.  Built-in
entries (:mod:`repro.platform.builtin`) are registered on import;
downstream code registers additional platforms with
:func:`register_platform` — no simulator-stack change required.
"""

from __future__ import annotations

from repro.platform.spec import PlatformSpec

_REGISTRY: dict[str, PlatformSpec] = {}


def register_platform(spec: PlatformSpec, *, replace: bool = False) -> PlatformSpec:
    """Add ``spec`` to the registry under its name.

    Registering a different spec under an existing name raises unless
    ``replace`` is set; re-registering identical content is a no-op
    (idempotent imports).
    """
    existing = _REGISTRY.get(spec.name)
    if existing is not None:
        if existing == spec:
            return existing  # identical content: keep the original object
        if not replace:
            raise ValueError(
                f"platform {spec.name!r} is already registered with different "
                "content; pass replace=True to override"
            )
    _REGISTRY[spec.name] = spec
    return spec


def unregister_platform(name: str) -> None:
    """Remove a platform (primarily for tests)."""
    _REGISTRY.pop(name, None)


def get_platform(name: str) -> PlatformSpec:
    """Look a platform up by name.

    Raises ``KeyError`` with the registry contents — the message the
    CLI surfaces for a typo'd ``--platform``.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown platform {name!r}; available: {', '.join(platform_names())}"
        ) from None


def platform_names() -> list[str]:
    """Registered platform names, in registration order (Curie first)."""
    return list(_REGISTRY)


def platform_specs() -> list[PlatformSpec]:
    return list(_REGISTRY.values())
