"""Declarative platform registry.

Decouples the simulator stack from Curie: a :class:`PlatformSpec`
bundles topology, frequency/power table, degradation model and
workload defaults as serialisable, content-hashable data, and the
registry maps names to specs.  ``repro.exp`` scenarios carry a
``platform`` axis resolved here; the CLI exposes the registry via
``repro exp platforms`` and ``--platform``.
"""

from repro.platform.spec import PLATFORM_SCHEMA_VERSION, PlatformSpec
from repro.platform.registry import (
    get_platform,
    platform_names,
    platform_specs,
    register_platform,
    unregister_platform,
)
from repro.platform.builtin import (
    BUILTIN_PLATFORMS,
    CURIE_PLATFORM,
    FATNODE_PLATFORM,
    MANYTHIN_PLATFORM,
)

__all__ = [
    "PLATFORM_SCHEMA_VERSION",
    "PlatformSpec",
    "get_platform",
    "platform_names",
    "platform_specs",
    "register_platform",
    "unregister_platform",
    "BUILTIN_PLATFORMS",
    "CURIE_PLATFORM",
    "FATNODE_PLATFORM",
    "MANYTHIN_PLATFORM",
]
