"""Built-in platform registry entries.

* ``curie`` — the paper's machine, re-expressed verbatim from the
  constants in :mod:`repro.cluster.curie`.  The golden determinism
  digests (:mod:`tests.exp.test_determinism`) pin this entry: every
  Curie scenario must replay bit-identically through the registry
  path.
* ``fatnode`` — a small cluster of fat nodes (dual-socket, 64 cores,
  a short high-frequency DVFS ladder).  Few, expensive nodes make the
  switch-off bonus coarse and DVFS comparatively attractive.
* ``manythin`` — a many-thin-node machine (low-power 4-core nodes, a
  deep low-frequency ladder).  Shutdown granularity is fine and the
  idle floor is low, the opposite regime from ``fatnode``.

The two non-Curie entries are deliberately placed on either side of
Curie in the rho-model's terms (Section III): they change which
mechanism (switch-off vs DVFS) wins at a given cap, which is exactly
the comparison the platform axis exists to express.
"""

from __future__ import annotations

from dataclasses import replace

from repro.cluster.curie import (
    CURIE_BENCHMARK_DEGMIN,
    CURIE_DEGMIN_FULL_RANGE,
    CURIE_DEGMIN_MIX_RANGE,
    CURIE_FREQ_WATTS,
    CURIE_MIX_MIN_GHZ,
    CURIE_NODE_DOWN_WATTS,
    CURIE_NODE_IDLE_WATTS,
    CURIE_TOPOLOGY,
)
from repro.platform.registry import register_platform
from repro.platform.spec import PlatformSpec
from repro.workload.synthetic import CURIE_JOB_CLASSES, SMALLJOB_CLASSES

#: Curie, constants verbatim (Figures 2/4/5, Section VI-A).
CURIE_PLATFORM = PlatformSpec(
    name="curie",
    description="Curie petaflopic supercomputer (the paper's machine)",
    nodes_per_chassis=CURIE_TOPOLOGY.nodes_per_chassis,
    chassis_per_rack=CURIE_TOPOLOGY.chassis_per_rack,
    racks=CURIE_TOPOLOGY.racks,
    chassis_watts=CURIE_TOPOLOGY.chassis_watts,
    rack_watts=CURIE_TOPOLOGY.rack_watts,
    cores_per_node=16,
    idle_watts=CURIE_NODE_IDLE_WATTS,
    down_watts=CURIE_NODE_DOWN_WATTS,
    freq_watts=tuple(sorted(CURIE_FREQ_WATTS.items())),
    degmin_full_range=CURIE_DEGMIN_FULL_RANGE,
    degmin_mix_range=CURIE_DEGMIN_MIX_RANGE,
    mix_min_ghz=CURIE_MIX_MIN_GHZ,
    benchmark_degmin=tuple(CURIE_BENCHMARK_DEGMIN.items()),
)

#: Fat-node small cluster: 2 racks x 3 chassis x 6 nodes = 36 nodes,
#: 64 cores each.  The medianjob mix leans wide — fat nodes attract
#: fat jobs — while staying on the Curie 80640-core width basis.
FATNODE_PLATFORM = PlatformSpec(
    name="fatnode",
    description="small cluster of 36 fat nodes (64 cores, high-GHz ladder)",
    nodes_per_chassis=6,
    chassis_per_rack=3,
    racks=2,
    chassis_watts=310.0,
    rack_watts=1250.0,
    cores_per_node=64,
    idle_watts=210.0,
    down_watts=11.0,
    freq_watts=(
        (1.6, 380.0),
        (2.0, 440.0),
        (2.4, 505.0),
        (2.8, 575.0),
        (3.1, 640.0),
    ),
    degmin_full_range=1.48,
    degmin_mix_range=1.21,
    mix_min_ghz=2.4,
    workload_classes=(
        (
            "medianjob",
            (
                replace(CURIE_JOB_CLASSES[0], weight=0.550),
                replace(CURIE_JOB_CLASSES[1], weight=0.270),
                replace(CURIE_JOB_CLASSES[2], weight=0.140),
                replace(CURIE_JOB_CLASSES[3], weight=0.040),
            ),
        ),
    ),
)

#: Many-thin-node machine: 4 racks x 8 chassis x 24 nodes = 768
#: low-power 4-core nodes with a deep sub-GHz-step ladder.  The
#: smalljob mix is tinier still (edge-style task swarms).
MANYTHIN_PLATFORM = PlatformSpec(
    name="manythin",
    description="768 thin low-power nodes (4 cores, deep low-GHz ladder)",
    nodes_per_chassis=24,
    chassis_per_rack=8,
    racks=4,
    chassis_watts=90.0,
    rack_watts=600.0,
    cores_per_node=4,
    idle_watts=16.0,
    down_watts=3.0,
    freq_watts=(
        (0.8, 28.0),
        (1.0, 33.0),
        (1.2, 39.0),
        (1.5, 46.0),
        (1.7, 52.0),
        (2.0, 60.0),
    ),
    degmin_full_range=1.72,
    degmin_mix_range=1.31,
    mix_min_ghz=1.5,
    workload_classes=(
        (
            "smalljob",
            (
                replace(SMALLJOB_CLASSES[0], weight=0.860, max_runtime=45.0),
                replace(SMALLJOB_CLASSES[1], weight=0.100),
                replace(SMALLJOB_CLASSES[2], weight=0.030),
                replace(SMALLJOB_CLASSES[3], weight=0.010),
            ),
        ),
    ),
)

BUILTIN_PLATFORMS: tuple[PlatformSpec, ...] = (
    CURIE_PLATFORM,
    FATNODE_PLATFORM,
    MANYTHIN_PLATFORM,
)

for _spec in BUILTIN_PLATFORMS:
    register_platform(_spec)
