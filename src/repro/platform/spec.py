"""Declarative platform description.

The paper's method — power-adaptive scheduling with DVFS and grouped
switch-off under a cluster powercap — is machine-generic, but its
evaluation is bound to one machine (Curie).  A :class:`PlatformSpec`
captures everything the simulator stack needs to know about *a*
machine as plain, serialisable data:

* the enclosure **topology** (node/chassis/rack shape and the shared
  infrastructure watts behind the power-bonus model of Section III-B);
* the **node power model** (idle/down watts and the DVFS
  frequency/power ladder of Figure 4);
* the **degradation model** (completion-time stretch at the slowest
  DVFS step for the full and MIX-restricted ranges, Section VII-B,
  plus the optional per-benchmark table of Figure 5);
* **workload defaults** (the reference core count job-class widths
  are expressed against, and optional per-interval job-class mixes).

Specs are frozen, content-hashable (:meth:`PlatformSpec.content_hash`)
and round-trip through JSON (:meth:`to_dict` / :meth:`from_dict`), so
a platform can key result caches and ship across process boundaries
exactly like a :class:`repro.exp.Scenario` does.  The registry
(:mod:`repro.platform.registry`) maps names to specs; Curie is the
first entry (:mod:`repro.platform.builtin`), re-expressed verbatim
from :mod:`repro.cluster.curie` and pinned by the golden digests.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import Any, Mapping

from repro.cluster.frequency import FrequencyTable
from repro.cluster.machine import Machine
from repro.cluster.topology import Topology
from repro.core.policies import Policy, PolicyKind, PolicySpec, policy_set
from repro.workload.synthetic import CURIE_TOTAL_CORES, JobClass

#: serialisation schema version; bump when PlatformSpec semantics change
PLATFORM_SCHEMA_VERSION = 1


def _job_class_to_dict(cls: JobClass) -> dict[str, Any]:
    return {
        "name": cls.name,
        "weight": cls.weight,
        "min_cores": cls.min_cores,
        "max_cores": cls.max_cores,
        "min_runtime": cls.min_runtime,
        "max_runtime": cls.max_runtime,
    }


def _job_class_from_dict(d: Mapping[str, Any]) -> JobClass:
    return JobClass(
        name=str(d["name"]),
        weight=float(d["weight"]),
        min_cores=int(d["min_cores"]),
        max_cores=int(d["max_cores"]),
        min_runtime=float(d["min_runtime"]),
        max_runtime=float(d["max_runtime"]),
    )


@dataclass(frozen=True)
class PlatformSpec:
    """Everything the simulator stack needs to know about one machine.

    Attributes
    ----------
    name:
        Registry key; also the :class:`~repro.cluster.machine.Machine`
        name (suffixed ``-x<scale>`` when scaled).
    nodes_per_chassis, chassis_per_rack, racks:
        Enclosure hierarchy shape.
    chassis_watts, rack_watts:
        Shared-infrastructure power per enclosure level.
    cores_per_node:
        Cores offered per node (jobs are allocated whole nodes).
    idle_watts, down_watts:
        Node power when idle / switched off (BMC still powered).
    freq_watts:
        The DVFS ladder as ``(ghz, watts)`` pairs, ascending.
    degmin_full_range:
        Completion-time degradation at the slowest step of the full
        ladder (the DVFS policy's span).
    degmin_mix_range:
        Degradation at the slowest step of the MIX-restricted range.
    mix_min_ghz:
        Lower bound of the MIX policy's energy-efficient high range.
    description:
        Human-readable one-liner for listings.
    benchmark_degmin:
        Optional per-benchmark degradation table (Figure 5 analogue),
        as ``(benchmark, degmin)`` pairs.
    reference_cores:
        Core count of the reference machine that job-class widths are
        expressed against.  ``None`` means the default class mixes'
        basis (the full Curie, 80 640 cores); a platform shipping its
        own ``workload_classes`` sets the basis those classes use.
    workload_classes:
        Per-interval job-class overrides as ``(interval, classes)``
        pairs; intervals not listed use the paper's default mixes.
    """

    name: str
    nodes_per_chassis: int
    chassis_per_rack: int
    racks: int
    chassis_watts: float
    rack_watts: float
    cores_per_node: int
    idle_watts: float
    down_watts: float
    freq_watts: tuple[tuple[float, float], ...]
    degmin_full_range: float
    degmin_mix_range: float
    mix_min_ghz: float
    description: str = ""
    benchmark_degmin: tuple[tuple[str, float], ...] = ()
    reference_cores: int | None = None
    workload_classes: tuple[tuple[str, tuple[JobClass, ...]], ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("platform name cannot be empty")
        freq = self.freq_watts
        if isinstance(freq, Mapping):
            freq = freq.items()
        freq = tuple(sorted((float(g), float(w)) for g, w in freq))
        object.__setattr__(self, "freq_watts", freq)
        bench = self.benchmark_degmin
        if isinstance(bench, Mapping):
            bench = bench.items()
        object.__setattr__(
            self, "benchmark_degmin", tuple((str(k), float(v)) for k, v in bench)
        )
        wl = self.workload_classes
        if isinstance(wl, Mapping):
            wl = wl.items()
        wl = tuple(
            (
                str(interval),
                tuple(
                    c if isinstance(c, JobClass) else _job_class_from_dict(c)
                    for c in classes
                ),
            )
            for interval, classes in wl
        )
        object.__setattr__(self, "workload_classes", wl)
        if len({i for i, _ in wl}) != len(wl):
            raise ValueError(f"{self.name}: duplicate workload_classes interval")
        if self.cores_per_node <= 0:
            raise ValueError("cores_per_node must be positive")
        if self.reference_cores is not None and self.reference_cores <= 0:
            raise ValueError("reference_cores must be positive")
        if self.degmin_full_range < 1.0 or self.degmin_mix_range < 1.0:
            raise ValueError("degradation factors must be >= 1")
        # Constructing the table/topology runs their full validation
        # (power monotone in frequency, down <= idle, positive dims),
        # and restrict() confirms the MIX range holds at least one step.
        table = self.frequency_table()
        table.restrict(self.mix_min_ghz, table.max.ghz)
        self.topology()

    # -- hardware builders -----------------------------------------------------------

    def frequency_table(self) -> FrequencyTable:
        return FrequencyTable(
            self.freq_watts, idle_watts=self.idle_watts, down_watts=self.down_watts
        )

    def topology(self) -> Topology:
        return Topology(
            nodes_per_chassis=self.nodes_per_chassis,
            chassis_per_rack=self.chassis_per_rack,
            racks=self.racks,
            chassis_watts=self.chassis_watts,
            rack_watts=self.rack_watts,
            node_down_watts=self.down_watts,
        )

    def build_machine(self, scale: float = 1.0) -> Machine:
        """The platform's machine, optionally scaled by whole racks.

        Matches :func:`repro.cluster.curie.curie_machine` for the
        Curie entry (same topology values, same ``-x<scale>`` naming),
        which is what keeps the golden digests pinned.
        """
        topo = self.topology() if scale == 1.0 else self.topology().scaled(scale)
        return Machine(
            name=self.name if scale == 1.0 else f"{self.name}-x{scale:g}",
            topology=topo,
            freq_table=self.frequency_table(),
            cores_per_node=self.cores_per_node,
        )

    # -- policies --------------------------------------------------------------------

    def make_policy(
        self,
        kind: "PolicyKind | PolicySpec | str",
        freq_table: FrequencyTable | None = None,
    ) -> Policy:
        """One policy bound to this platform's degradation model.

        ``kind`` may be any registered policy name (or an inline
        :class:`repro.policy.PolicySpec`); unknown names raise with
        the registry contents.
        """
        from repro.policy import resolve_policy

        return resolve_policy(kind).build(
            self.frequency_table() if freq_table is None else freq_table,
            degmin_full=self.degmin_full_range,
            degmin_mix=self.degmin_mix_range,
            mix_min_ghz=self.mix_min_ghz,
        )

    def policies(self, freq_table: FrequencyTable | None = None) -> dict[str, Policy]:
        """All five policies instantiated for this platform."""
        return policy_set(
            self.frequency_table() if freq_table is None else freq_table,
            degmin_full=self.degmin_full_range,
            degmin_mix=self.degmin_mix_range,
            mix_min_ghz=self.mix_min_ghz,
        )

    # -- workload defaults -----------------------------------------------------------

    @property
    def full_machine_cores(self) -> int:
        """Total cores of the unscaled machine."""
        return (
            self.racks
            * self.chassis_per_rack
            * self.nodes_per_chassis
            * self.cores_per_node
        )

    @property
    def workload_reference_cores(self) -> int:
        """Basis of job-class core widths (defaults to the full Curie)."""
        return (
            self.reference_cores
            if self.reference_cores is not None
            else CURIE_TOTAL_CORES
        )

    def interval_classes(self, interval: str) -> tuple[JobClass, ...] | None:
        """This platform's job-class mix for ``interval``; ``None``
        when the paper's default mix applies."""
        for name, classes in self.workload_classes:
            if name == interval:
                return classes
        return None

    # -- identity --------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": PLATFORM_SCHEMA_VERSION,
            "name": self.name,
            "description": self.description,
            "nodes_per_chassis": self.nodes_per_chassis,
            "chassis_per_rack": self.chassis_per_rack,
            "racks": self.racks,
            "chassis_watts": self.chassis_watts,
            "rack_watts": self.rack_watts,
            "cores_per_node": self.cores_per_node,
            "idle_watts": self.idle_watts,
            "down_watts": self.down_watts,
            "freq_watts": [list(p) for p in self.freq_watts],
            "degmin_full_range": self.degmin_full_range,
            "degmin_mix_range": self.degmin_mix_range,
            "mix_min_ghz": self.mix_min_ghz,
            "benchmark_degmin": [list(p) for p in self.benchmark_degmin],
            "reference_cores": self.reference_cores,
            "workload_classes": [
                [interval, [_job_class_to_dict(c) for c in classes]]
                for interval, classes in self.workload_classes
            ],
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "PlatformSpec":
        schema = d.get("schema", PLATFORM_SCHEMA_VERSION)
        if schema != PLATFORM_SCHEMA_VERSION:
            raise ValueError(f"unsupported platform schema {schema}")
        known = {f.name for f in fields(cls)} | {"schema"}
        unknown = sorted(set(d) - known)
        if unknown:
            raise ValueError(f"unknown PlatformSpec keys {unknown}")
        return cls(
            name=str(d["name"]),
            description=str(d.get("description", "")),
            nodes_per_chassis=int(d["nodes_per_chassis"]),
            chassis_per_rack=int(d["chassis_per_rack"]),
            racks=int(d["racks"]),
            chassis_watts=float(d["chassis_watts"]),
            rack_watts=float(d["rack_watts"]),
            cores_per_node=int(d["cores_per_node"]),
            idle_watts=float(d["idle_watts"]),
            down_watts=float(d["down_watts"]),
            freq_watts=tuple((float(g), float(w)) for g, w in d["freq_watts"]),
            degmin_full_range=float(d["degmin_full_range"]),
            degmin_mix_range=float(d["degmin_mix_range"]),
            mix_min_ghz=float(d["mix_min_ghz"]),
            benchmark_degmin=tuple(
                (str(k), float(v)) for k, v in d.get("benchmark_degmin", ())
            ),
            reference_cores=(
                None
                if d.get("reference_cores") is None
                else int(d["reference_cores"])
            ),
            workload_classes=tuple(
                (str(interval), tuple(_job_class_from_dict(c) for c in classes))
                for interval, classes in d.get("workload_classes", ())
            ),
        )

    def content_hash(self) -> str:
        """Stable 16-hex-digit content hash (description excluded —
        it is a label, not behaviour)."""
        content = self.to_dict()
        del content["description"]
        canon = json.dumps(content, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:16]
