"""Advanced reservations: power caps and planned node switch-offs.

Section V: "SLURM reservation characteristics have been extended by a
new Watts parameter in order to specify a particular amount of power
reserved for a specific time slot", and the offline scheduling phase
triggers node shutdowns "through a specific type of reservations".

A :class:`PowercapReservation` limits the *whole-cluster* power to
``watts`` during its window.  A :class:`ShutdownReservation` pins a
set of nodes that must be powered off during its window; the offline
planner creates one per cap window for SHUT/MIX policies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from repro.cluster.topology import Topology


@dataclass(frozen=True)
class PowercapReservation:
    """A cluster-wide power budget over ``[start, end)``.

    ``watts`` is the allowed consumption ("the system power which is
    allocated for computation", Figure 8).  ``end`` may be ``inf``:
    the paper's "set for now with no time restriction".
    """

    start: float
    end: float
    watts: float

    def __post_init__(self) -> None:
        if self.watts <= 0:
            raise ValueError("powercap watts must be positive")
        if not self.start < self.end:
            raise ValueError(f"empty powercap window [{self.start}, {self.end})")

    def active_at(self, t: float) -> bool:
        return self.start <= t < self.end

    def overlaps(self, t0: float, t1: float) -> bool:
        """Window intersects ``[t0, t1)``."""
        return self.start < t1 and t0 < self.end


@dataclass(frozen=True)
class ShutdownReservation:
    """Nodes planned to be powered off over ``[start, end)``.

    ``savings_from_idle_watts`` is precomputed by the planner: watts
    saved during the window relative to those nodes sitting idle —
    including the chassis/rack bonuses the grouping harvests.
    """

    start: float
    end: float
    nodes: np.ndarray
    savings_from_idle_watts: float = 0.0

    def __post_init__(self) -> None:
        if not self.start < self.end:
            raise ValueError(f"empty shutdown window [{self.start}, {self.end})")
        nodes = np.asarray(self.nodes, dtype=np.int64)
        if nodes.size and len(np.unique(nodes)) != nodes.size:
            raise ValueError("duplicate nodes in shutdown reservation")
        object.__setattr__(self, "nodes", nodes)

    @property
    def n_nodes(self) -> int:
        return int(self.nodes.size)

    def active_at(self, t: float) -> bool:
        return self.start <= t < self.end

    def overlaps(self, t0: float, t1: float) -> bool:
        return self.start < t1 and t0 < self.end


def shutdown_savings_from_idle(nodes: np.ndarray, topology: Topology, idle_watts: float) -> float:
    """Watts saved by powering ``nodes`` off, relative to them idling.

    Scattered nodes save ``idle - down`` each; every *complete*
    chassis additionally cuts its 18 BMCs and its 248 W of enclosure
    components; every complete rack cuts a further 900 W (Figure 2).
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    if nodes.size == 0:
        return 0.0
    down = topology.node_down_watts
    per_chassis = np.bincount(
        topology.chassis_of_node[nodes], minlength=topology.n_chassis
    )
    full_chassis = per_chassis == topology.nodes_per_chassis
    n_full_chassis = int(full_chassis.sum())
    per_rack = np.bincount(
        topology.rack_of_chassis[np.nonzero(full_chassis)[0]],
        minlength=topology.racks,
    )
    n_full_racks = int((per_rack == topology.chassis_per_rack).sum())
    dark_nodes = n_full_chassis * topology.nodes_per_chassis
    scattered = nodes.size - dark_nodes
    return (
        scattered * (idle_watts - down)
        + dark_nodes * idle_watts  # BMC dark too
        + n_full_chassis * topology.chassis_watts
        + n_full_racks * topology.rack_watts
    )


class ReservationRegistry:
    """Holds all reservations of a replay and answers overlap queries."""

    def __init__(self, n_nodes: int) -> None:
        self.n_nodes = n_nodes
        self._powercaps: list[PowercapReservation] = []
        self._shutdowns: list[ShutdownReservation] = []

    # -- registration ----------------------------------------------------------------

    def add_powercap(self, cap: PowercapReservation) -> None:
        self._powercaps.append(cap)
        self._powercaps.sort(key=lambda c: c.start)

    def add_shutdown(self, sd: ShutdownReservation) -> None:
        if sd.nodes.size and (sd.nodes.max() >= self.n_nodes or sd.nodes.min() < 0):
            raise ValueError("shutdown reservation references unknown nodes")
        self._shutdowns.append(sd)
        self._shutdowns.sort(key=lambda s: s.start)

    @property
    def powercaps(self) -> tuple[PowercapReservation, ...]:
        return tuple(self._powercaps)

    @property
    def shutdowns(self) -> tuple[ShutdownReservation, ...]:
        return tuple(self._shutdowns)

    def __iter__(self) -> Iterator[PowercapReservation]:  # pragma: no cover
        return iter(self._powercaps)

    # -- queries ------------------------------------------------------------------------

    def cap_at(self, t: float) -> float:
        """Effective cluster power budget at instant ``t`` (inf if none)."""
        caps = [c.watts for c in self._powercaps if c.active_at(t)]
        return min(caps) if caps else math.inf

    def caps_overlapping(self, t0: float, t1: float) -> list[PowercapReservation]:
        """Cap windows intersecting ``[t0, t1)``, by start time."""
        return [c for c in self._powercaps if c.overlaps(t0, t1)]

    def future_caps(self, t: float) -> list[PowercapReservation]:
        """Caps starting strictly after ``t``."""
        return [c for c in self._powercaps if c.start > t]

    def shutdowns_overlapping(self, t0: float, t1: float) -> list[ShutdownReservation]:
        return [s for s in self._shutdowns if s.overlaps(t0, t1)]

    def shutdown_node_mask(self, t0: float, t1: float) -> np.ndarray:
        """Boolean mask of nodes unavailable to a job spanning ``[t0, t1)``.

        A job may not be placed on a node whose shutdown window
        overlaps the job's expected execution interval.
        """
        mask = np.zeros(self.n_nodes, dtype=bool)
        for sd in self._shutdowns:
            if sd.overlaps(t0, t1):
                mask[sd.nodes] = True
        return mask

    def boundaries(self) -> list[float]:
        """All window edges (for event scheduling), ascending, deduplicated."""
        edges: set[float] = set()
        for c in self._powercaps:
            edges.add(c.start)
            if math.isfinite(c.end):
                edges.add(c.end)
        for s in self._shutdowns:
            edges.add(s.start)
            if math.isfinite(s.end):
                edges.add(s.end)
        return sorted(edges)
