"""SLURM-like Resource and Job Management System substrate.

Reproduces the decision pipeline the paper's patch plugs into:
multifactor job priority, FCFS with EASY backfilling, advanced
reservations, whole-node selection, and the central controller that
owns cluster state and power accounting.
"""

from repro.rjms.job import Job, JobState
from repro.rjms.reservations import (
    PowercapReservation,
    ShutdownReservation,
    ReservationRegistry,
)
from repro.rjms.fairshare import FairShare
from repro.rjms.queue import PendingQueue
from repro.rjms.backfill import easy_backfill_window, BackfillWindow
from repro.rjms.config import SchedulerConfig, PriorityWeights


def __getattr__(name: str):
    # Deferred: the controller pulls in repro.core (the powercap
    # algorithms), which itself depends on this package's reservation
    # types — a cycle if imported eagerly at package load.
    if name == "Controller":
        from repro.rjms.controller import Controller

        return Controller
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Job",
    "JobState",
    "PowercapReservation",
    "ShutdownReservation",
    "ReservationRegistry",
    "FairShare",
    "PendingQueue",
    "PriorityWeights",
    "easy_backfill_window",
    "BackfillWindow",
    "SchedulerConfig",
    "Controller",
]
