"""Job lifecycle inside the RJMS."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.workload.spec import JobSpec


class JobState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    KILLED = "killed"


@dataclass
class Job:
    """A submitted job and its scheduling state.

    ``spec.runtime`` is the execution time at the top frequency; when
    the online algorithm assigns a lower step, both the actual runtime
    and the requested walltime are stretched by the policy's
    degradation factor (Section V: "the walltime of the job needs to
    be adapted respectively").
    """

    spec: JobSpec
    n_nodes: int
    state: JobState = JobState.PENDING
    nodes: np.ndarray | None = None
    freq_index: int | None = None
    freq_ghz: float | None = None
    degradation: float = 1.0
    start_time: float | None = None
    end_time: float | None = None

    @property
    def job_id(self) -> int:
        return self.spec.job_id

    @property
    def cores(self) -> int:
        return self.spec.cores

    @property
    def user(self) -> int:
        return self.spec.user

    @property
    def stretched_runtime(self) -> float:
        """Actual execution time at the assigned frequency."""
        return self.spec.runtime * self.degradation

    @property
    def stretched_walltime(self) -> float:
        """Requested limit at the assigned frequency."""
        return self.spec.walltime * self.degradation

    @property
    def expected_end(self) -> float:
        """Upper bound on the end time the scheduler can rely on.

        Based on the (stretched) walltime, as in SLURM — the actual
        runtime is unknown to the controller.
        """
        if self.start_time is None:
            raise ValueError(f"job {self.job_id} has not started")
        return self.start_time + self.stretched_walltime

    def start(
        self,
        time: float,
        nodes: np.ndarray,
        freq_index: int,
        freq_ghz: float,
        degradation: float,
    ) -> None:
        if self.state != JobState.PENDING:
            raise ValueError(f"job {self.job_id} is {self.state.value}, not pending")
        if len(nodes) != self.n_nodes:
            raise ValueError(
                f"job {self.job_id} needs {self.n_nodes} nodes, got {len(nodes)}"
            )
        if degradation < 1.0:
            raise ValueError("degradation must be >= 1")
        self.state = JobState.RUNNING
        self.start_time = time
        self.nodes = np.asarray(nodes, dtype=np.int64)
        self.freq_index = freq_index
        self.freq_ghz = freq_ghz
        self.degradation = degradation

    def finish(self, time: float, *, killed: bool = False) -> None:
        if self.state != JobState.RUNNING:
            raise ValueError(f"job {self.job_id} is {self.state.value}, not running")
        self.state = JobState.KILLED if killed else JobState.COMPLETED
        self.end_time = time
