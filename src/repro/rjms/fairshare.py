"""Classic fair-share priority factor.

The paper's replay restores "fairshare values for each user" as part
of the interval's initial state.  We implement SLURM's classic
formula: each user's factor is ``2^(-U/S)`` where ``U`` is the user's
share of the (exponentially decayed) consumed core-seconds and ``S``
the user's share of the configured shares (equal here).  Usage decays
with a configurable half-life, applied lazily.
"""

from __future__ import annotations

import numpy as np


class FairShare:
    """Decayed-usage fair-share factors for a fixed user population."""

    def __init__(
        self,
        n_users: int,
        *,
        half_life: float = 7 * 86400.0,
    ) -> None:
        if n_users <= 0:
            raise ValueError("n_users must be positive")
        if half_life <= 0:
            raise ValueError("half_life must be positive")
        self.n_users = n_users
        self.half_life = half_life
        self._usage = np.zeros(n_users, dtype=np.float64)
        self._last_decay = 0.0

    def _decay_to(self, t: float) -> None:
        if t < self._last_decay:
            raise ValueError("time went backwards")
        if t > self._last_decay and self._usage.any():
            self._usage *= 0.5 ** ((t - self._last_decay) / self.half_life)
        self._last_decay = t

    def decay_to(self, t: float) -> None:
        """Advance the lazy usage decay to time ``t``.

        Reading :meth:`factors` advances the decay as a side effect, so
        fast paths that skip a priority computation must still call
        this to keep the decay chain — and therefore every later
        factor — bit-identical to the full computation.
        """
        self._decay_to(t)

    def record_usage(self, user: int, core_seconds: float, t: float) -> None:
        """Charge ``core_seconds`` of usage to ``user`` at time ``t``."""
        if not 0 <= user < self.n_users:
            raise IndexError(f"unknown user {user}")
        if core_seconds < 0:
            raise ValueError("usage cannot be negative")
        self._decay_to(t)
        self._usage[user] += core_seconds

    def seed_usage(self, usage: np.ndarray) -> None:
        """Install initial per-user usage (the replay's initial state)."""
        usage = np.asarray(usage, dtype=np.float64)
        if usage.shape != (self.n_users,):
            raise ValueError("usage vector shape mismatch")
        if (usage < 0).any():
            raise ValueError("usage cannot be negative")
        self._usage = usage.copy()

    def factors(self, t: float) -> np.ndarray:
        """Fair-share factor per user in [0, 1] at time ``t``.

        1.0 for an unused system; heavy users decay toward 0.
        """
        self._decay_to(t)
        total = self._usage.sum()
        if total <= 0:
            return np.ones(self.n_users, dtype=np.float64)
        norm_usage = self._usage / total
        norm_shares = 1.0 / self.n_users
        return np.power(2.0, -norm_usage / norm_shares)

    def factor(self, user: int, t: float) -> float:
        if not 0 <= user < self.n_users:
            raise IndexError(f"unknown user {user}")
        return float(self.factors(t)[user])
