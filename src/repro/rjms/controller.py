"""The central RJMS controller (the simulated ``slurmctld``).

Owns the cluster state (through the power accountant), the pending
queue, the reservations, and the two-phase powercap algorithm:

* the **offline** phase runs when powercap reservations are
  registered — it plans grouped switch-off reservations (Algorithm 1,
  :class:`repro.core.offline.OfflinePlanner`);
* the **online** phase runs inside every scheduling pass — it selects
  each starting job's CPU frequency against the active and planned
  caps (Algorithm 2, :class:`repro.core.online.FrequencySelector`).

Scheduling passes implement SLURM's pipeline: multifactor priority
ordering, FCFS until the first blocked job, then EASY backfilling
bounded by ``backfill_depth``.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.cluster.machine import Machine
from repro.cluster.states import NodeState
from repro.core.offline import OfflinePlanner, ShutdownPlan
from repro.core.online import PowercapView
from repro.core.policies import Policy, make_policy
from repro.rjms.backfill import BackfillWindow, easy_backfill_window
from repro.rjms.config import SchedulerConfig
from repro.rjms.fairshare import FairShare
from repro.rjms.job import Job, JobState
from repro.rjms.queue import PendingQueue
from repro.rjms.reservations import (
    PowercapReservation,
    ReservationRegistry,
    ShutdownReservation,
)
from repro.sim.engine import EventKind, SimEngine
from repro.sim.metrics import MetricsRecorder
from repro.workload.spec import JobSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.platform.spec import PlatformSpec


class _PassAllocator:
    """Node allocation bookkeeping for one scheduling pass.

    Free nodes are split into a *reserved* segment (member of some
    shutdown reservation) and a *clear* segment.  Jobs whose expected
    execution overlaps a shutdown window may only take clear nodes;
    other jobs consume reserved nodes first, leaving clear capacity
    for window-crossing jobs.  Node ids are consumed in ascending
    order inside each segment, which packs enclosures naturally.
    """

    def __init__(self, free_ids: np.ndarray, reserved_mask: np.ndarray) -> None:
        in_res = reserved_mask[free_ids]
        self._reserved = free_ids[in_res]
        self._clear = free_ids[~in_res]
        self._p_res = 0
        self._p_clear = 0

    @property
    def free_total(self) -> int:
        return (len(self._reserved) - self._p_res) + (len(self._clear) - self._p_clear)

    @property
    def free_clear(self) -> int:
        return len(self._clear) - self._p_clear

    def take(self, n: int, *, clear_only: bool) -> np.ndarray | None:
        """Consume ``n`` nodes, or return None without consuming."""
        if clear_only:
            if self.free_clear < n:
                return None
            out = self._clear[self._p_clear : self._p_clear + n]
            self._p_clear += n
            return out
        if self.free_total < n:
            return None
        n_res = min(n, len(self._reserved) - self._p_res)
        parts = []
        if n_res:
            parts.append(self._reserved[self._p_res : self._p_res + n_res])
            self._p_res += n_res
        n_clear = n - n_res
        if n_clear:
            parts.append(self._clear[self._p_clear : self._p_clear + n_clear])
            self._p_clear += n_clear
        return parts[0] if len(parts) == 1 else np.concatenate(parts)


class Controller:
    """Simulated resource and job management controller."""

    def __init__(
        self,
        machine: Machine,
        policy: Policy | str,
        engine: SimEngine,
        *,
        config: SchedulerConfig | None = None,
        powercaps: Sequence[PowercapReservation] = (),
        recorder: MetricsRecorder | None = None,
        platform: "PlatformSpec | None" = None,
    ) -> None:
        self.machine = machine
        # A string policy resolves against the platform's degradation
        # model when one is given; bare strings keep the paper's
        # constants (the pre-registry behaviour).
        if isinstance(policy, str):
            policy = (
                platform.make_policy(policy, machine.freq_table)
                if platform is not None
                else make_policy(policy, machine.freq_table)
            )
        self.policy = policy
        self.engine = engine
        self.config = config or SchedulerConfig()
        self.accountant = machine.new_accountant()
        self.registry = ReservationRegistry(machine.n_nodes)
        self.fairshare = FairShare(self.config.n_users)
        self.queue = PendingQueue(
            machine.total_cores, self.config.priority, self.fairshare
        )
        # The two phases come from the policy's strategy objects
        # (repro.policy.strategies): the shutdown-planning strategy
        # parameterises the offline planner, the frequency-selection
        # strategy builds the online selector — no policy-kind
        # branching in the controller itself.
        self.offline_planner = OfflinePlanner(machine, self.policy)
        self.freq_selector = self.policy.frequency_strategy.build_selector(
            self.policy, config=self.config, planner=self.offline_planner
        )
        self.recorder = recorder or MetricsRecorder(machine.freq_table.frequencies)
        self.running: dict[int, Job] = {}
        self.jobs: dict[int, Job] = {}
        self.shutdown_plans: list[ShutdownPlan] = []
        #: jobs too wide for the machine, dropped at submission
        self.rejected: list[int] = []
        #: per-node count of active shutdown reservations wanting it off
        self._shutdown_wanted = np.zeros(machine.n_nodes, dtype=np.int16)
        #: cores currently computing per DVFS step (utilisation series)
        self._cores_by_freq = np.zeros(len(machine.freq_table), dtype=np.float64)
        self._pass_pending = False
        self._last_pass = -math.inf
        self._end_events: dict[int, object] = {}
        #: idle free list, cached against the accountant's version so a
        #: pass skips the O(n_nodes) scan when no node changed state
        self._free_ids = np.empty(0, dtype=np.int64)
        self._free_version = -1
        #: reservation mask cache, keyed by the indices of the pending
        #: shutdown reservations (their node sets never change)
        self._reserved_mask = np.zeros(machine.n_nodes, dtype=bool)
        self._mask_key: tuple[int, ...] | None = None
        #: running-set generation counter + cached (expected_end,
        #: n_nodes) snapshot, pre-sorted for the backfill window
        self._running_version = 0
        self._snapshot_version = -1
        self._running_snapshot: list[tuple[float, int]] = []

        if self.policy.enforces_caps:
            for cap in powercaps:
                self._register_powercap(cap)
        self._record()

    # -- reservation / offline phase -------------------------------------------------------

    def _register_powercap(self, cap: PowercapReservation) -> None:
        """Register a cap window and run the offline phase for it."""
        self.registry.add_powercap(cap)
        plan = self.offline_planner.plan(cap)
        self.shutdown_plans.append(plan)
        if plan.reservation is not None:
            self.registry.add_shutdown(plan.reservation)
            self._schedule_window_events(plan.reservation)
        self.engine.at(
            max(cap.start, self.engine.now),
            lambda c=cap: self._on_cap_begin(c),
            kind=EventKind.POWERCAP_BEGIN,
        )
        if math.isfinite(cap.end):
            self.engine.at(
                cap.end, lambda: self._request_pass(), kind=EventKind.POWERCAP_END
            )

    def _schedule_window_events(self, sd: ShutdownReservation) -> None:
        self.engine.at(
            max(sd.start, self.engine.now),
            lambda s=sd: self._on_shutdown_begin(s),
            kind=EventKind.POWERCAP_BEGIN,
        )
        if math.isfinite(sd.end):
            self.engine.at(
                sd.end, lambda s=sd: self._on_shutdown_end(s), kind=EventKind.POWERCAP_END
            )

    # -- job submission --------------------------------------------------------------------

    def submit(self, spec: JobSpec) -> Job | None:
        """Accept a job into the pending queue.

        Jobs wider than the machine are rejected (they could never
        run), mirroring a submit-time limit check.
        """
        n_nodes = self.machine.nodes_for_cores(spec.cores)
        if n_nodes > self.machine.n_nodes:
            self.rejected.append(spec.job_id)
            return None
        job = Job(spec=spec, n_nodes=n_nodes)
        self.jobs[spec.job_id] = job
        self.queue.add(job)
        self.recorder.job_submitted(spec.job_id, spec.cores, n_nodes, self.engine.now)
        self._request_pass()
        return job

    # -- event handlers -----------------------------------------------------------------------

    def _on_job_end(self, job: Job, *, killed: bool = False) -> None:
        now = self.engine.now
        job.finish(now, killed=killed)
        self.running.pop(job.job_id)
        self._running_version += 1
        self._end_events.pop(job.job_id, None)
        assert job.nodes is not None and job.freq_index is not None
        self._release_nodes(job.nodes)
        # Utilisation/work is accounted in *allocated* cores (whole
        # nodes), like SLURM's CPUTime for exclusive-node jobs and the
        # paper's sleep-job replay.
        self._cores_by_freq[job.freq_index] -= job.n_nodes * self.machine.cores_per_node
        elapsed = now - (job.start_time or now)
        self.fairshare.record_usage(job.user, job.cores * elapsed, now)
        self.recorder.job_finished(
            job.job_id, now, state="killed" if killed else "completed"
        )
        self._record()
        self._request_pass()

    def _release_nodes(self, nodes: np.ndarray) -> None:
        """Return nodes to IDLE — or straight to OFF when a shutdown
        reservation is waiting for them (deferred switch-off of nodes
        that were still running jobs at the window start)."""
        wanted = self._shutdown_wanted[nodes] > 0
        to_off = nodes[wanted]
        to_idle = nodes[~wanted]
        if to_idle.size:
            self.accountant.set_state(to_idle, NodeState.IDLE)
        if to_off.size:
            self._power_off(to_off)

    def _power_off(self, nodes: np.ndarray) -> None:
        delay = self.config.shutdown_delay
        if delay > 0:
            self.accountant.set_state(nodes, NodeState.SHUTTING_DOWN)
            self.engine.after(
                delay,
                lambda n=nodes: self._finish_power_off(n),
                kind=EventKind.NODE_TRANSITION,
            )
        else:
            self.accountant.set_state(nodes, NodeState.OFF)

    def _finish_power_off(self, nodes: np.ndarray) -> None:
        still_wanted = self._shutdown_wanted[nodes] > 0
        if still_wanted.any():
            self.accountant.set_state(nodes[still_wanted], NodeState.OFF)
        back = nodes[~still_wanted]
        if back.size:
            # The window ended during the transition.
            self.accountant.set_state(back, NodeState.IDLE)
        self._record()
        self._request_pass()

    def _on_shutdown_begin(self, sd: ShutdownReservation) -> None:
        self._shutdown_wanted[sd.nodes] += 1
        state = self.accountant.state[sd.nodes]
        idle = sd.nodes[state == NodeState.IDLE]
        if idle.size:
            self._power_off(idle)
        self._record()
        self._request_pass()

    def _on_shutdown_end(self, sd: ShutdownReservation) -> None:
        self._shutdown_wanted[sd.nodes] -= 1
        free_again = sd.nodes[self._shutdown_wanted[sd.nodes] == 0]
        state = self.accountant.state[free_again]
        off = free_again[state == NodeState.OFF]
        if off.size:
            delay = self.config.boot_delay
            if delay > 0:
                self.accountant.set_state(off, NodeState.BOOTING)
                self.engine.after(
                    delay,
                    lambda n=off: self._finish_boot(n),
                    kind=EventKind.NODE_TRANSITION,
                )
            else:
                self.accountant.set_state(off, NodeState.IDLE)
        self._record()
        self._request_pass()

    def _finish_boot(self, nodes: np.ndarray) -> None:
        still_wanted = self._shutdown_wanted[nodes] > 0
        back = nodes[~still_wanted]
        if back.size:
            self.accountant.set_state(back, NodeState.IDLE)
        if still_wanted.any():
            self.accountant.set_state(nodes[still_wanted], NodeState.OFF)
        self._record()
        self._request_pass()

    def _on_cap_begin(self, cap: PowercapReservation) -> None:
        """Cap window opens.  Default: wait for drain if over budget;
        with ``dynamic_rescaling``: lower running jobs' frequencies
        first (Section VIII future work); with ``kill_on_violation``:
        kill the youngest running jobs until the cluster fits (the
        paper's "extreme actions")."""
        if self.config.dynamic_rescaling and self.policy.uses_dvfs:
            self._rescale_running_jobs(cap.watts)
        if self.config.kill_on_violation:
            victims = sorted(
                self.running.values(),
                key=lambda j: (-(j.start_time or 0.0), j.job_id),
            )
            for job in victims:
                if self.accountant.total_power() <= cap.watts:
                    break
                ev = self._end_events.get(job.job_id)
                if ev is not None:
                    SimEngine.cancel(ev)
                self._on_job_end(job, killed=True)
        self._record()
        self._request_pass()

    def _rescale_running_jobs(self, cap_watts: float) -> None:
        """Step running jobs down the policy's frequency ladder until
        the cluster fits under ``cap_watts`` (or everything is at the
        lowest allowed step).

        The remaining execution is re-stretched by the ratio of the
        new and old degradation factors; the completion event moves
        accordingly.  Youngest jobs are slowed first (they have the
        most execution left to benefit from power savings).
        """
        allowed_desc = self.policy.frequency_indices_desc()
        lowest = allowed_desc[-1]
        pos_of = {idx: pos for pos, idx in enumerate(allowed_desc)}
        victims = sorted(
            self.running.values(),
            key=lambda j: (-(j.start_time or 0.0), j.job_id),
        )
        now = self.engine.now
        changed = False
        while self.accountant.total_power() > cap_watts:
            stepped = False
            for job in victims:
                assert job.freq_index is not None and job.nodes is not None
                pos = pos_of.get(job.freq_index)
                if pos is None or job.freq_index == lowest:
                    continue
                new_index = allowed_desc[pos + 1]
                new_ghz = self.machine.freq_table.steps[new_index].ghz
                new_deg = self.policy.degradation(new_ghz)
                old_deg = job.degradation
                # The job's *scheduled* completion, which already folds
                # in any earlier re-stretches; recomputing it from
                # start_time + stretched_runtime is only valid for a
                # job's first down-step and would inflate the remaining
                # work of every later one.
                ev_old = self._end_events.get(job.job_id)
                old_end = (
                    ev_old.time
                    if ev_old is not None
                    else job.start_time + job.stretched_runtime
                )
                remaining = max(old_end - now, 0.0)
                # Re-stretch only the remaining execution.
                new_remaining = remaining * (new_deg / old_deg)
                self.accountant.set_state(
                    job.nodes, NodeState.BUSY, freq_index=new_index
                )
                cores = job.n_nodes * self.machine.cores_per_node
                self._cores_by_freq[job.freq_index] -= cores
                self._cores_by_freq[new_index] += cores
                job.freq_index = new_index
                job.freq_ghz = new_ghz
                job.degradation = new_deg
                # expected_end stretches with the new degradation
                self._running_version += 1
                ev = self._end_events.get(job.job_id)
                if ev is not None:
                    SimEngine.cancel(ev)
                new_ev = self.engine.at(
                    now + new_remaining,
                    lambda j=job: self._on_job_end(j),
                    kind=EventKind.JOB_END,
                )
                self._end_events[job.job_id] = new_ev
                rec = self.recorder.jobs.get(job.job_id)
                if rec is not None:
                    rec.freq_ghz = new_ghz
                    rec.degradation = new_deg
                changed = True
                stepped = True
                if self.accountant.total_power() <= cap_watts:
                    break
            if not stepped:
                break
        if changed:
            self._record()

    # -- scheduling pass ---------------------------------------------------------------------

    def _request_pass(self) -> None:
        if self._pass_pending:
            return
        now = self.engine.now
        at = now
        if self.config.min_pass_interval > 0:
            at = max(now, self._last_pass + self.config.min_pass_interval)
        self._pass_pending = True
        self.engine.at(at, self._sched_pass, kind=EventKind.SCHED_PASS)

    def _free_idle_ids(self) -> np.ndarray:
        """Idle node ids, rescanned only when the accountant changed."""
        acct = self.accountant
        if self._free_version != acct.version:
            self._free_ids = np.flatnonzero(acct.state == NodeState.IDLE)
            self._free_version = acct.version
        return self._free_ids

    def _pending_shutdowns(self, now: float) -> list[ShutdownReservation]:
        """Shutdown reservations protecting nodes at ``now``, with the
        reservation mask refreshed only when the pending set changes.

        Reservations start protecting their nodes one drain horizon
        ahead of the window (see SchedulerConfig); their node sets are
        immutable, so the mask is keyed by the identities of the
        pending reservations (the registry keeps them alive, and —
        unlike list positions — identities survive the registry
        re-sorting on a later ``add_shutdown``).
        """
        horizon = self.config.reservation_drain_horizon
        pending = [
            sd
            for sd in self.registry.shutdowns
            if sd.end > now and (math.isinf(horizon) or now >= sd.start - horizon)
        ]
        key = tuple(id(sd) for sd in pending)
        if key != self._mask_key:
            self._reserved_mask[:] = False
            for sd in pending:
                self._reserved_mask[sd.nodes] = True
            self._mask_key = key
        return pending

    def _running_snapshot_sorted(self) -> list[tuple[float, int]]:
        """``(expected_end, n_nodes)`` of the running jobs, pre-sorted
        by end time; rebuilt only when the running set changed."""
        if self._snapshot_version != self._running_version:
            snap = [(j.expected_end, j.n_nodes) for j in self.running.values()]
            snap.sort(key=lambda r: r[0])
            self._running_snapshot = snap
            self._snapshot_version = self._running_version
        return self._running_snapshot

    def _sched_pass(self) -> None:
        self._pass_pending = False
        now = self.engine.now
        self._last_pass = now
        # Feedback selectors may re-select *running* jobs' frequencies
        # against the observed consumption before any admission
        # decision; the paper's Algorithm 2 selectors never do
        # (tracks_observed False), keeping the drained-pass fast path.
        if self.freq_selector.tracks_observed and self.policy.enforces_caps:
            target = self.freq_selector.pass_rescale_watts(
                self.registry.cap_at(now)
            )
            if target is not None and self.accountant.total_power() > target:
                self._rescale_running_jobs(target)
        if len(self.queue) == 0:
            return

        free_ids = self._free_idle_ids()
        if free_ids.size == 0:
            if not self.config.backfill:
                return
            # Nothing can start (every allocation needs >= 1 node) and
            # a pass mutates nothing else — except that the priority
            # ordering it would have computed advances the fair-share
            # usage decay.  Apply that decay step explicitly so the
            # fast path leaves bit-identical state behind.
            self.fairshare.decay_to(now)
            return
        pending_sds = self._pending_shutdowns(now)
        alloc = _PassAllocator(free_ids, self._reserved_mask)

        view = PowercapView(
            self.registry, self.accountant, now, self.running.values()
        ) if self.policy.enforces_caps else PowercapView(
            ReservationRegistry(0), self.accountant, now, ()
        )

        order = self.queue.order(now, limit=self.config.backfill_depth)
        window: BackfillWindow | None = None
        tested = 0
        #: per-pass memo of frequency decisions keyed by the decision's
        #: full input (n_nodes, walltime); the view only changes when a
        #: job starts, which clears the memo (walltimes cluster on the
        #: default limit and the queue-menu grains, so blocked passes
        #: collapse to a handful of distinct ladder walks)
        decide_cache: dict[tuple[int, float], object] = {}
        for jid in order:
            if tested >= self.config.backfill_depth:
                break
            tested += 1
            job = self.queue.job(int(jid))
            started = self._try_start(
                job, now, view, alloc, pending_sds, window, decide_cache
            )
            if not started and window is None:
                # This is the blocker: compute its EASY reservation.
                window = easy_backfill_window(
                    job.n_nodes,
                    alloc.free_total,
                    self._running_snapshot_sorted(),
                    now,
                    presorted=True,
                )
                if not self.config.backfill:
                    break
            if alloc.free_total == 0:
                # No allocation can succeed any more; the remaining
                # candidates could only be tested and rejected.
                break

    def _try_start(
        self,
        job: Job,
        now: float,
        view: PowercapView,
        alloc: _PassAllocator,
        pending_sds: list[ShutdownReservation],
        window: BackfillWindow | None,
        decide_cache: dict[tuple[int, float], object] | None = None,
    ) -> bool:
        # Online phase: frequency decision (Algorithm 2).  The decision
        # is a pure function of (n_nodes, walltime) and the pass view,
        # so identical candidates reuse the memoised result until a
        # start changes the view.
        key = (job.n_nodes, job.spec.walltime)
        decision = decide_cache.get(key) if decide_cache is not None else None
        if decision is None:
            decision = self.freq_selector.decide(job.n_nodes, job.spec.walltime, view)
            if decide_cache is not None:
                decide_cache[key] = decision
        if not decision.ok:
            return False
        expected_end = now + job.spec.walltime * decision.degradation
        # EASY constraint for backfilled jobs.
        if window is not None and not window.admits(job.n_nodes, expected_end):
            return False
        # Node selection: stay off nodes whose shutdown window overlaps
        # the job's expected execution.
        overlap = any(sd.overlaps(now, expected_end) for sd in pending_sds)
        nodes = alloc.take(job.n_nodes, clear_only=overlap)
        if nodes is None:
            return False
        self._start_job(job, nodes, decision, now)
        view.note_start(job.n_nodes, decision.freq_index, expected_end)
        if decide_cache is not None:
            decide_cache.clear()
        return True

    def _start_job(self, job, nodes: np.ndarray, decision, now: float) -> None:
        self.queue.remove(job.job_id)
        job.start(
            now, nodes, decision.freq_index, decision.freq_ghz, decision.degradation
        )
        self.running[job.job_id] = job
        self._running_version += 1
        self.accountant.set_state(nodes, NodeState.BUSY, freq_index=decision.freq_index)
        self._cores_by_freq[decision.freq_index] += job.n_nodes * self.machine.cores_per_node
        ev = self.engine.at(
            now + job.stretched_runtime,
            lambda j=job: self._on_job_end(j),
            kind=EventKind.JOB_END,
        )
        self._end_events[job.job_id] = ev
        self.recorder.job_started(
            job.job_id, now, decision.freq_ghz, decision.degradation
        )
        self._record()

    # -- instrumentation ------------------------------------------------------------------------

    def _record(self) -> None:
        acct = self.accountant
        ft = self.machine.freq_table
        topo = self.machine.topology
        counts = acct.count_by_state
        off_nodes = int(counts[NodeState.OFF] + counts[NodeState.SHUTTING_DOWN])
        dark_nodes = acct.n_dark_chassis * topo.nodes_per_chassis
        self.recorder.sample(
            self.engine.now,
            cores_by_freq=self._cores_by_freq,
            off_cores=off_nodes * self.machine.cores_per_node,
            power_watts=acct.total_power(),
            idle_watts=float(counts[NodeState.IDLE]) * ft.idle_watts,
            down_watts=float(counts[NodeState.OFF] - dark_nodes) * ft.down_watts,
            infra_watts=(
                (topo.n_chassis - acct.n_dark_chassis) * topo.chassis_watts
                + (topo.racks - acct.n_dark_racks) * topo.rack_watts
            ),
            bonus_watts=acct.bonus_watts(),
            busy_watts=float((acct.busy_count_by_freq * ft.watts_array).sum()),
        )

    # -- convenience readings ----------------------------------------------------------------------

    @property
    def n_pending(self) -> int:
        return len(self.queue)

    @property
    def n_running(self) -> int:
        return len(self.running)

    def utilization(self) -> float:
        """Fraction of the machine's cores currently computing."""
        return float(self._cores_by_freq.sum()) / self.machine.total_cores
