"""EASY backfilling (Mu'alem & Feitelson), node-count level.

The highest-priority job that cannot start ("the blocker") gets a
reservation at the *shadow time* — the earliest instant enough nodes
free up, per the running jobs' (stretched) walltimes.  Lower-priority
jobs may start out of order iff they cannot delay the blocker:

* they finish before the shadow time, or
* they fit in the ``extra_nodes`` the blocker leaves unused.

The paper points out that backfilling barely works on the Curie trace
because requested walltimes exceed runtimes ~12000-fold; that
behaviour emerges here for the same reason.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class BackfillWindow:
    """The EASY reservation protecting the blocked head-of-queue job."""

    #: when the blocker is expected to be able to start
    shadow_time: float
    #: nodes that remain free at the shadow time beyond the blocker's
    #: need: backfilled jobs of any length may use up to this many
    extra_nodes: int

    def admits(self, n_nodes: int, expected_end: float) -> bool:
        """May a job of ``n_nodes`` ending at ``expected_end`` backfill?"""
        return expected_end <= self.shadow_time or n_nodes <= self.extra_nodes


def easy_backfill_window(
    blocker_nodes: int,
    free_nodes: int,
    running: Iterable[tuple[float, int]],
    now: float,
    *,
    presorted: bool = False,
) -> BackfillWindow:
    """Compute the blocker's shadow time and spare-node allowance.

    Parameters
    ----------
    blocker_nodes:
        Nodes the blocked job needs.
    free_nodes:
        Nodes free right now.
    running:
        ``(expected_end, n_nodes)`` of every running job (expected end
        per stretched walltime).
    now:
        Current time.
    presorted:
        ``running`` is already sorted by expected end (stably), so the
        per-call sort can be skipped — the controller maintains such a
        snapshot across scheduling passes.

    A blocker already satisfiable node-wise (blocked by power, not by
    nodes) gets ``shadow_time = now``: backfilled jobs must then fit
    inside the spare nodes, mirroring SLURM's reservation of the
    blocker's resources.
    """
    if blocker_nodes <= 0:
        raise ValueError("blocker needs at least one node")
    if free_nodes < 0:
        raise ValueError("free_nodes cannot be negative")
    if free_nodes >= blocker_nodes:
        return BackfillWindow(now, free_nodes - blocker_nodes)
    available = free_nodes
    ordered = running if presorted else sorted(running, key=lambda r: r[0])
    for end, n in ordered:
        if end < now:
            # Job overdue vs its walltime (possible only through
            # clock skew); treat as freeing now.
            end = now
        available += n
        if available >= blocker_nodes:
            return BackfillWindow(end, available - blocker_nodes)
    # Even all running jobs ending would not free enough nodes (the
    # blocker is wider than the machine's live partition).
    return BackfillWindow(math.inf, free_nodes)
