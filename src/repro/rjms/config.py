"""Scheduler configuration knobs (SLURM-style)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PriorityWeights:
    """Multifactor priority weights (SLURM ``PriorityWeight*``)."""

    age: float = 1000.0
    fairshare: float = 1000.0
    job_size: float = 200.0
    #: pending age at which the age factor saturates (SLURM
    #: ``PriorityMaxAge``)
    max_age: float = 7 * 86400.0

    def __post_init__(self) -> None:
        if min(self.age, self.fairshare, self.job_size) < 0:
            raise ValueError("priority weights must be non-negative")
        if self.max_age <= 0:
            raise ValueError("max_age must be positive")


@dataclass(frozen=True)
class SchedulerConfig:
    """All tunables of the controller.

    Defaults mirror the paper's SLURM setup where known, and SLURM
    defaults otherwise.
    """

    priority: PriorityWeights = field(default_factory=PriorityWeights)
    #: jobs examined per scheduling pass (SLURM ``bf_max_job_test``)
    backfill_depth: int = 100
    #: EASY backfilling on/off (on in the paper's Curie config)
    backfill: bool = True
    #: seconds to power a node off / boot it back (0 = instantaneous,
    #: like the paper's emulation)
    shutdown_delay: float = 0.0
    boot_delay: float = 0.0
    #: kill running jobs when an activating cap is violated
    #: (the paper's "extreme actions" variant; default waits for drain)
    kill_on_violation: bool = False
    #: rescale the CPU frequency of *running* jobs downward when a cap
    #: window opens over budget — the paper's Section VIII future-work
    #: item ("this will allow nodes to adjust the power consumption
    #: instantly... faster power decrease when a powercap period is
    #: approaching").  Only effective for DVFS-capable policies.
    dynamic_rescaling: bool = False
    #: how long before a planned switch-off window jobs overlapping it
    #: stop being placed on the reserved nodes.  ``inf`` (default) is
    #: SLURM's plain reservation semantics: a job whose walltime
    #: crosses the window is never placed there — reserved nodes keep
    #: running short-walltime jobs and drain naturally as the window
    #: approaches.  0 reproduces IGNORE_JOBS semantics (no protection,
    #: shutdown waits for whatever is running); finite values model an
    #: operator-style drain starting that long before the window.
    reservation_drain_horizon: float = float("inf")
    #: gate job starts on *future* cap windows too (ablation; the
    #: default soft mode only selects frequencies ahead of the window)
    strict_future_caps: bool = False
    #: use the Section IV-B "all idle nodes" frequency rule instead of
    #: the per-job Algorithm 2 walk (ablation)
    cluster_frequency_rule: bool = False
    #: minimum simulated seconds between scheduling passes (0 = every
    #: event; SLURM ``sched_min_interval`` is microseconds-scale)
    min_pass_interval: float = 0.0
    #: user population size for fair-share
    n_users: int = 200

    def __post_init__(self) -> None:
        if self.backfill_depth < 1:
            raise ValueError("backfill_depth must be >= 1")
        if self.shutdown_delay < 0 or self.boot_delay < 0:
            raise ValueError("transition delays must be >= 0")
        if self.reservation_drain_horizon < 0:
            raise ValueError("reservation_drain_horizon must be >= 0")
        if self.min_pass_interval < 0:
            raise ValueError("min_pass_interval must be >= 0")
        if self.n_users <= 0:
            raise ValueError("n_users must be positive")
