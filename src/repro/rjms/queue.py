"""Pending queue with vectorised multifactor priority.

SLURM's first scheduling phase selects jobs "after prioritization
among the group of pending jobs ... multifactor priorities such as job
age and job size or even more sophisticated features like
fair-sharing" (Section IV-A).  The queue keeps parallel NumPy arrays
(swap-remove on start) so a full priority ordering costs one
vectorised expression plus an ``argsort`` per scheduling pass — the
pass rate is the simulator's hot path.
"""

from __future__ import annotations

import numpy as np

from repro.rjms.config import PriorityWeights
from repro.rjms.fairshare import FairShare
from repro.rjms.job import Job

_INITIAL_CAPACITY = 256


class PendingQueue:
    """Priority-ordered pending jobs."""

    def __init__(
        self,
        total_cores: int,
        weights: PriorityWeights,
        fairshare: FairShare,
    ) -> None:
        if total_cores <= 0:
            raise ValueError("total_cores must be positive")
        self.total_cores = total_cores
        self.weights = weights
        self.fairshare = fairshare
        cap = _INITIAL_CAPACITY
        self._ids = np.empty(cap, dtype=np.int64)
        self._submit = np.empty(cap, dtype=np.float64)
        self._cores = np.empty(cap, dtype=np.float64)
        self._users = np.empty(cap, dtype=np.int64)
        self._n = 0
        self._row_of: dict[int, int] = {}
        self._jobs: dict[int, Job] = {}

    def __len__(self) -> int:
        return self._n

    def __contains__(self, job_id: int) -> bool:
        return job_id in self._row_of

    def job(self, job_id: int) -> Job:
        return self._jobs[job_id]

    def _grow(self) -> None:
        cap = len(self._ids) * 2
        self._ids = np.resize(self._ids, cap)
        self._submit = np.resize(self._submit, cap)
        self._cores = np.resize(self._cores, cap)
        self._users = np.resize(self._users, cap)

    def add(self, job: Job) -> None:
        jid = job.job_id
        if jid in self._row_of:
            raise ValueError(f"job {jid} already queued")
        if self._n == len(self._ids):
            self._grow()
        row = self._n
        self._ids[row] = jid
        self._submit[row] = job.spec.submit_time
        self._cores[row] = job.cores
        self._users[row] = job.user
        self._row_of[jid] = row
        self._jobs[jid] = job
        self._n += 1

    def remove(self, job_id: int) -> Job:
        row = self._row_of.pop(job_id)
        job = self._jobs.pop(job_id)
        last = self._n - 1
        if row != last:
            for arr in (self._ids, self._submit, self._cores, self._users):
                arr[row] = arr[last]
            self._row_of[int(self._ids[row])] = row
        self._n = last
        return job

    def priorities(self, now: float) -> np.ndarray:
        """Multifactor priority of every pending job (queue row order).

        ``priority = w_age * min(age/max_age, 1)
                   + w_fairshare * fs(user)
                   + w_size * cores/total_cores``
        """
        n = self._n
        if n == 0:
            return np.empty(0, dtype=np.float64)
        w = self.weights
        age = np.clip((now - self._submit[:n]) / w.max_age, 0.0, 1.0)
        size = self._cores[:n] / self.total_cores
        fs = self.fairshare.factors(now)[self._users[:n]]
        return w.age * age + w.fairshare * fs + w.job_size * size

    def order(self, now: float, limit: int | None = None) -> np.ndarray:
        """Pending job ids, highest priority first.

        Ties break deterministically by (submit time, job id) — FCFS.
        ``limit`` returns only the first ``limit`` ids — the same
        prefix a full ordering would produce, but via an O(n) partial
        selection instead of an O(n log n) sort of the whole queue
        (the scheduling pass only ever examines ``backfill_depth``
        candidates).
        """
        n = self._n
        if n == 0:
            return np.empty(0, dtype=np.int64)
        prio = self.priorities(now)
        ids = self._ids[:n]
        submit = self._submit[:n]
        if limit is not None and 0 < limit < n:
            # Smallest value of the top-`limit` priorities; keeping
            # *every* entry at that value makes the boundary ties
            # resolve exactly as the full lexsort would.
            part = np.argpartition(prio, n - limit)
            thresh = prio[part[n - limit]]
            cand = np.flatnonzero(prio >= thresh)
            idx = np.lexsort((ids[cand], submit[cand], -prio[cand]))
            return ids[cand][idx][:limit]
        # lexsort: last key is primary.
        idx = np.lexsort((ids, submit, -prio))
        return ids[idx].copy()

    def jobs_in_order(self, now: float) -> list[Job]:
        return [self._jobs[int(j)] for j in self.order(now)]
