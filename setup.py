"""Legacy setup shim.

The normal install path is ``pip install -e .`` (PEP 660).  On offline
machines without the ``wheel`` package, setuptools cannot build the
editable wheel; ``python setup.py develop`` provides the fallback.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
