#!/usr/bin/env python
"""Compare the powercap policies on one workload — a mini Figure 8.

Replays the ``bigjob`` interval under NONE / IDLE / SHUT / DVFS / MIX
at 80 %, 60 % and 40 % caps and prints the normalised energy / jobs /
work grid, plus the Section III model's advice for each cap.

Run:  python examples/policy_comparison.py
"""

from repro.analysis.report import render_grid, run_policy_grid
from repro.cluster.curie import curie_machine
from repro.core.offline import OfflinePlanner
from repro.core.policies import make_policy
from repro.sim.replay import powercap_reservation
from repro.workload.intervals import generate_interval

HOUR = 3600.0


def main() -> None:
    machine = curie_machine(scale=0.125)
    jobs = generate_interval(machine, "bigjob")

    print("Section III model advice (continuous, node-level):")
    planner = OfflinePlanner(machine, make_policy("SHUT", machine.freq_table))
    for fraction in (0.8, 0.6, 0.4):
        cap = powercap_reservation(machine, fraction, 0.0, HOUR)
        mp = planner.model_plan(cap.watts)
        print(
            f"  cap {fraction:.0%}: case={mp.case.value:13s} "
            f"Noff={mp.n_off:7.1f}  Ndvfs={mp.n_dvfs:7.1f}  rho={mp.rho:+.3f}"
        )

    grid = {
        1.0: ("NONE",),
        0.8: ("DVFS", "SHUT"),
        0.6: ("MIX", "DVFS", "SHUT", "IDLE"),
        0.4: ("MIX", "DVFS", "SHUT", "IDLE"),
    }
    cells = run_policy_grid(machine, {"bigjob": jobs}, grid=grid)
    print()
    print(render_grid(cells))

    print("\nreading guide (matches the paper's conclusions):")
    print("  - DVFS keeps raw work high (slowed jobs inflate CPU time)")
    print("  - SHUT/MIX keep the energy/effective-work tradeoff ahead at low caps")
    print("  - IDLE (no mechanism) wastes idle watts for the least work")


if __name__ == "__main__":
    main()
