#!/usr/bin/env python
"""Sweep a scenario grid through the experiment harness.

Expands a {interval} x {policy} x {cap} grid into declarative
scenarios, executes them on a worker pool with result caching (run the
script twice: the second pass is served from cache), and renders the
aggregated Figure 8 bars plus a library-scenario comparison.

Run:  python examples/scenario_sweep.py
"""

import tempfile

from repro.exp import (
    GridRunner,
    compare_results,
    expand_grid,
    get_scenario,
    render_results_grid,
    results_table,
)

SCALE = 1 / 14  # 360-node Curie keeps the sweep snappy


def main() -> None:
    grid = expand_grid(
        {
            "interval": ["bigjob", "medianjob"],
            "policy": ["SHUT", "DVFS", "MIX"],
            "cap": [0.6, 0.4],
        },
        scale=SCALE,
    )
    print(f"{len(grid)} scenarios, e.g. {grid[0].name} ({grid[0].scenario_hash()})")

    with tempfile.TemporaryDirectory() as cache:
        runner = GridRunner(workers=2, cache_dir=cache)
        results = runner.run(grid)
        print()
        print(results_table(results))
        print()
        print(render_results_grid(results))

        # Cached re-run: nothing is recomputed.
        again = runner.run(grid)
        assert all(r.cached for r in again)
        assert all(a.same_outcome(b) for a, b in zip(results, again))
        print("\ncached re-run: all scenarios skipped, outcomes identical")

    # Library scenarios compare just as easily.
    a = get_scenario("fig7a-bigjob-shut-60").with_(scale=SCALE)
    b = get_scenario("strict-future-mix-60").with_(scale=SCALE)
    ra, rb = GridRunner(workers=2).run([a, b])
    print()
    print(compare_results(ra, rb))


if __name__ == "__main__":
    main()
