#!/usr/bin/env python
"""Demand response: a 24-hour day with a planned grid-power shortage.

The scenario the paper's introduction motivates: the electricity
provider announces a one-hour window in which the computing centre
must shed 60 % of its power draw.  The operator registers a powercap
reservation; the offline phase plans which racks/chassis to switch
off (harvesting enclosure power bonuses), and the online phase starts
jobs at frequencies that keep the projected window power within
budget — the "system prepares itself" behaviour of the paper's
Figure 6.

Run:  python examples/demand_response_day.py
"""

from repro.analysis.figures import figure_series, render_series_ascii
from repro.cluster.curie import curie_machine
from repro.workload.intervals import generate_interval

HOUR = 3600.0


def main() -> None:
    machine = curie_machine(scale=0.125)
    jobs = generate_interval(machine, "24h")
    window = (10 * HOUR, 11 * HOUR)  # announced shortage
    print(
        f"{machine.n_nodes}-node cluster; provider allows only 40 % of "
        f"max power during [{window[0] / HOUR:.0f}h, {window[1] / HOUR:.0f}h)"
    )

    series = figure_series(
        machine,
        jobs,
        "MIX",
        duration=24 * HOUR,
        cap_fraction=0.4,
        window=window,
        grid_dt=600.0,
    )
    result = series["result"]
    plan = result.controller.shutdown_plans[0]
    print(
        f"offline plan: {plan.n_off_selected} nodes off "
        f"({plan.n_full_racks} racks + {plan.n_full_chassis} chassis grouped), "
        f"bonus {plan.bonus_watts / 1e3:.1f} kW, "
        f"worst-case alive power {plan.worst_case_alive_watts / 1e3:.0f} kW "
        f"<= cap {series['cap_watts'] / 1e3:.0f} kW"
    )
    print()
    print(render_series_ascii(series, width=96, height=10))

    grid = series["grid"]
    in_window = (grid["time"] >= window[0]) & (grid["time"] < window[1])
    peak = grid["power"][in_window].max()
    print(
        f"\npeak power inside the window: {peak / 1e3:.0f} kW "
        f"(cap {series['cap_watts'] / 1e3:.0f} kW) — "
        f"{'OK' if peak <= series['cap_watts'] * 1.001 else 'over (draining running jobs)'}"
    )
    print(f"energy over the day : {result.energy_normalized():.3f} of max")
    print(f"work over the day   : {result.work_normalized():.3f} of max")


if __name__ == "__main__":
    main()
