#!/usr/bin/env python
"""Replay a Standard Workload Format (SWF) trace under a powercap.

The paper replays the CEA Curie log from the Parallel Workloads
Archive.  This example shows the full path for any SWF file:

1. write a small SWF file (here: synthesised, standing in for the
   real ``CEA-Curie-2011-2.1-cln.swf`` — drop the real file's path in
   ``SWF_PATH`` to replay the original);
2. parse it, extract a high-pressure interval, rebuild its backlog;
3. replay it under SHUT with a one-hour 60 % cap.

Run:  python examples/swf_trace_replay.py [path/to/trace.swf]
"""

import sys
import tempfile
from pathlib import Path

from repro.cluster.curie import curie_machine
from repro.sim.replay import powercap_reservation, run_replay
from repro.workload.intervals import extract_interval, find_interval_start
from repro.workload.spec import workload_stats
from repro.workload.swf import SWFJob, SWFTrace, read_swf, swf_to_jobspecs, write_swf
from repro.workload.synthetic import CurieWorkloadModel

HOUR = 3600.0


def synthesize_swf(path: Path, machine) -> None:
    """Produce a stand-in SWF file from the calibrated Curie model."""
    model = CurieWorkloadModel(machine, seed=7)
    specs = model.generate(10 * HOUR)
    trace = SWFTrace(header={"Computer": "Bullx B510 (synthetic stand-in)",
                             "MaxProcs": str(machine.total_cores)})
    for s in specs:
        trace.jobs.append(
            SWFJob(
                job_number=s.job_id,
                submit_time=s.submit_time,
                wait_time=-1,
                run_time=s.runtime,
                allocated_procs=s.cores,
                requested_procs=s.cores,
                requested_time=s.walltime,
                status=1,
                user_id=s.user,
            )
        )
    write_swf(trace, path)


def main() -> None:
    machine = curie_machine(scale=0.125)
    if len(sys.argv) > 1:
        swf_path = Path(sys.argv[1])
    else:
        swf_path = Path(tempfile.gettempdir()) / "repro_standin.swf"
        synthesize_swf(swf_path, machine)
        print(f"(no trace given; synthesised a stand-in at {swf_path})")

    trace = read_swf(swf_path)
    print(f"parsed {len(trace)} SWF records "
          f"(MaxProcs={trace.max_procs}, header keys: {sorted(trace.header)})")

    specs = swf_to_jobspecs(trace)
    start = find_interval_start(specs, 5 * HOUR, kind="medianjob")
    interval = extract_interval(specs, start, 5 * HOUR, backlog_window=2 * HOUR)
    stats = workload_stats(interval, cluster_cores=machine.total_cores)
    print(f"interval at +{start / HOUR:.0f}h: {stats}")

    caps = [powercap_reservation(machine, 0.6, 2 * HOUR, 3 * HOUR)]
    result = run_replay(machine, interval, "SHUT", duration=5 * HOUR, powercaps=caps)
    s = result.summary()
    print(f"\nSHUT @ 60% cap: energy={s['energy_norm']:.3f} "
          f"work={s['work_norm']:.3f} launched={result.launched_jobs()}")


if __name__ == "__main__":
    main()
