#!/usr/bin/env python
"""Quickstart: cap a small Curie-like cluster and replay a workload.

Builds a 1/8-scale Curie (630 nodes), generates the paper's
``medianjob`` interval (5 hours, overloaded queue), reserves a
one-hour 60 % powercap in the middle, and replays it under the MIX
policy (grouped switch-off + high-range DVFS).

Run:  python examples/quickstart.py
"""

from repro import (
    curie_machine,
    generate_interval,
    powercap_reservation,
    run_replay,
)

HOUR = 3600.0


def main() -> None:
    machine = curie_machine(scale=0.125)
    print(f"machine: {machine.name}, {machine.n_nodes} nodes, "
          f"{machine.total_cores} cores, max power {machine.max_power() / 1e3:.0f} kW")

    jobs = generate_interval(machine, "medianjob")
    print(f"workload: {len(jobs)} jobs over 5 hours (overloaded, Curie-calibrated)")

    caps = [powercap_reservation(machine, fraction=0.6, start=2 * HOUR, end=3 * HOUR)]
    print(f"powercap: {caps[0].watts / 1e3:.0f} kW (60 % of max) from 2h to 3h")

    result = run_replay(machine, jobs, "MIX", duration=5 * HOUR, powercaps=caps)

    plan = result.controller.shutdown_plans[0]
    print(f"\noffline phase planned {plan.n_off_selected} nodes off "
          f"({plan.n_full_racks} full racks, {plan.n_full_chassis} extra chassis), "
          f"power bonus {plan.bonus_watts / 1e3:.1f} kW")

    s = result.summary()
    print("\nreplay results (normalised to the maximum possible):")
    print(f"  energy   : {s['energy_norm']:.3f}")
    print(f"  work     : {s['work_norm']:.3f}  "
          f"(effective, slowdown-corrected: {s['effective_work_norm']:.3f})")
    print(f"  launched : {result.launched_jobs()} jobs")
    freqs = sorted(
        {r.freq_ghz for r in result.recorder.jobs.values() if r.freq_ghz is not None}
    )
    print(f"  job frequencies used: {freqs} GHz")


if __name__ == "__main__":
    main()
