"""Property-based end-to-end fuzzing of the whole stack.

Random workloads, random cap windows, every policy: after any replay
the controller's incremental power accounting must agree with a
from-scratch recomputation, all integrals must respect physical
bounds, and replays must be bit-for-bit deterministic.
"""

import math
import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

pytestmark = pytest.mark.slow


def _examples(default: int) -> int:
    """Per-test fuzz budget.  ``REPRO_FUZZ_EXAMPLES`` overrides every
    test's count (e.g. 100 for a deep soak); the defaults keep the
    tier-1 gate quick."""
    return max(int(os.environ.get("REPRO_FUZZ_EXAMPLES", default)), 1)

from repro.cluster.curie import curie_machine
from repro.cluster.states import NodeState
from repro.rjms.config import SchedulerConfig
from repro.rjms.job import JobState
from repro.rjms.reservations import PowercapReservation
from repro.sim.replay import run_replay
from repro.workload.spec import JobSpec

HOUR = 3600.0
MACHINE = curie_machine(scale=1 / 56)  # 90 nodes


@st.composite
def workloads(draw):
    n = draw(st.integers(min_value=1, max_value=60))
    jobs = []
    for jid in range(n):
        submit = draw(st.floats(min_value=0.0, max_value=2 * HOUR))
        cores = draw(st.integers(min_value=1, max_value=MACHINE.total_cores))
        runtime = draw(st.floats(min_value=1.0, max_value=HOUR))
        slack = draw(st.floats(min_value=1.0, max_value=50.0))
        jobs.append(JobSpec(jid, submit, cores, runtime, runtime * slack))
    jobs.sort(key=lambda j: (j.submit_time, j.job_id))
    return jobs


#: a cap below the all-idle floor (~0.37 of max here) is unreachable
#: for policies that cannot switch nodes off; strategies stay above it
_IDLE_FRACTION = MACHINE.idle_power() / MACHINE.max_power()


@st.composite
def cap_windows(draw):
    start = draw(st.floats(min_value=0.0, max_value=2 * HOUR))
    length = draw(st.floats(min_value=600.0, max_value=2 * HOUR))
    fraction = draw(st.floats(min_value=_IDLE_FRACTION + 0.03, max_value=0.95))
    return PowercapReservation(
        start, start + length, watts=fraction * MACHINE.max_power()
    )


@settings(
    max_examples=_examples(15),
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    jobs=workloads(),
    cap=cap_windows(),
    policy=st.sampled_from(["NONE", "IDLE", "SHUT", "DVFS", "MIX"]),
)
def test_replay_invariants(jobs, cap, policy):
    duration = 3 * HOUR
    result = run_replay(
        MACHINE, jobs, policy, duration=duration, powercaps=[cap]
    )
    ctrl = result.controller

    # Incremental power accounting never drifts.
    ctrl.accountant.verify()

    # Physical bounds on the integrals.
    assert 0.0 <= result.work_normalized() <= 1.0 + 1e-9
    idle_frac = MACHINE.idle_power() / MACHINE.max_power()
    assert result.energy_normalized() <= 1.0 + 1e-9
    if policy != "SHUT" and policy != "MIX":
        # Without switch-off the cluster can never dip below idle power.
        assert result.energy_normalized() >= idle_frac * 0.999

    # Job accounting closes: every job is in exactly one terminal or
    # live state, and started jobs have consistent chronology.
    for job in ctrl.jobs.values():
        if job.start_time is not None:
            assert job.start_time >= job.spec.submit_time - 1e-9
            if job.end_time is not None:
                assert job.end_time >= job.start_time
                assert job.state in (JobState.COMPLETED, JobState.KILLED)
    n_terminal = sum(
        j.state in (JobState.COMPLETED, JobState.KILLED) for j in ctrl.jobs.values()
    )
    assert n_terminal + ctrl.n_running + ctrl.n_pending == len(ctrl.jobs)

    # Utilisation series is consistent with running state at the end.
    running_cores = sum(
        j.n_nodes * MACHINE.cores_per_node for j in ctrl.running.values()
    )
    assert ctrl.utilization() * MACHINE.total_cores == pytest.approx(running_cores)

    # No node is BUSY without a running job owning it, and vice versa.
    busy = int(ctrl.accountant.count_by_state[NodeState.BUSY])
    owned = sum(j.n_nodes for j in ctrl.running.values())
    assert busy == owned


@settings(
    max_examples=_examples(6), deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(jobs=workloads(), cap=cap_windows())
def test_replay_determinism_fuzz(jobs, cap):
    a = run_replay(MACHINE, jobs, "MIX", duration=2 * HOUR, powercaps=[cap])
    b = run_replay(MACHINE, jobs, "MIX", duration=2 * HOUR, powercaps=[cap])
    assert a.summary() == b.summary()
    assert [
        (r.job_id, r.start_time, r.freq_ghz) for r in a.recorder.jobs.values()
    ] == [(r.job_id, r.start_time, r.freq_ghz) for r in b.recorder.jobs.values()]


@settings(
    max_examples=_examples(8), deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(jobs=workloads(), cap=cap_windows())
def test_strict_active_cap_never_violated_from_cold_start(jobs, cap):
    """A cap active from t=0 (cold cluster) is a hard invariant: with
    no pre-cap jobs to drain, the power must stay under it for the
    whole replay, for every enforcement policy."""
    cap0 = PowercapReservation(0.0, math.inf, watts=cap.watts)
    for policy in ("IDLE", "SHUT", "DVFS", "MIX"):
        result = run_replay(MACHINE, jobs, policy, duration=2 * HOUR, powercaps=[cap0])
        grid = result.recorder.to_grid(0.0, 2 * HOUR, 120.0)
        assert (grid["power"] <= cap0.watts * (1 + 1e-9)).all(), policy


@settings(
    max_examples=_examples(6), deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(jobs=workloads(), cap=cap_windows())
def test_kill_enforcement_restores_cap_at_window_start(jobs, cap):
    config = SchedulerConfig(kill_on_violation=True)
    result = run_replay(
        MACHINE, jobs, "IDLE", duration=3 * HOUR, powercaps=[cap], config=config
    )
    # Immediately after the window opens the cluster fits the budget.
    t_probe = min(cap.start + 1.0, 3 * HOUR - 1.0)
    grid = result.recorder.to_grid(t_probe, t_probe + 1.0, 1.0)
    assert grid["power"][0] <= cap.watts * (1 + 1e-9)
    result.controller.accountant.verify()
