"""Unit tests for the offline planner (Algorithm 1 + grouped selection)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.curie import curie_machine
from repro.core.offline import OfflinePlanner
from repro.core.policies import make_policy
from repro.core.powermodel import ModelCase
from repro.rjms.reservations import PowercapReservation

HOUR = 3600.0


def planner(policy_name: str, scale: float = 1.0) -> OfflinePlanner:
    m = curie_machine(scale=scale)
    return OfflinePlanner(m, make_policy(policy_name, m.freq_table))


def cap_for(machine, fraction, start=HOUR, end=2 * HOUR):
    return PowercapReservation(start=start, end=end, watts=fraction * machine.max_power())


class TestPolicyGating:
    def test_dvfs_never_shuts_down(self):
        pl = planner("DVFS")
        plan = pl.plan(cap_for(pl.machine, 0.4))
        assert plan.reservation is None
        assert not plan.any_shutdown

    def test_idle_never_shuts_down(self):
        pl = planner("IDLE")
        assert not pl.plan(cap_for(pl.machine, 0.4)).any_shutdown

    def test_shut_plans_shutdown(self):
        pl = planner("SHUT")
        plan = pl.plan(cap_for(pl.machine, 0.6))
        assert plan.any_shutdown
        assert plan.reservation is not None
        assert plan.reservation.start == HOUR and plan.reservation.end == 2 * HOUR

    def test_mix_plans_shutdown_below_75(self):
        pl = planner("MIX")
        plan = pl.plan(cap_for(pl.machine, 0.6))
        assert plan.any_shutdown
        assert plan.model_plan.case == ModelCase.COMBINED

    def test_no_shutdown_needed_at_full_cap(self):
        pl = planner("SHUT")
        plan = pl.plan(cap_for(pl.machine, 1.0))
        assert not plan.any_shutdown


class TestWorstCaseFitsCap:
    @pytest.mark.parametrize("policy", ["SHUT", "MIX"])
    @pytest.mark.parametrize("fraction", [0.8, 0.6, 0.4, 0.3])
    def test_alive_worst_case_under_cap(self, policy, fraction):
        pl = planner(policy, scale=0.25)
        cap = cap_for(pl.machine, fraction)
        plan = pl.plan(cap)
        assert plan.worst_case_alive_watts <= cap.watts + 1e-6

    def test_reference_watts(self):
        assert planner("SHUT").reference_watts() == 358.0
        assert planner("MIX").reference_watts() == 269.0


class TestGroupedSelection:
    def test_large_deficit_takes_whole_racks(self):
        pl = planner("SHUT")
        plan = pl.plan(cap_for(pl.machine, 0.4))
        assert plan.n_full_racks >= 1
        # Grouping means the bonus is substantial.
        assert plan.bonus_watts >= plan.n_full_racks * 3400

    def test_small_deficit_takes_single_nodes(self):
        pl = planner("SHUT")
        m = pl.machine
        # Need to shave just ~5 nodes' worth of power.
        cap = PowercapReservation(
            start=HOUR, end=2 * HOUR, watts=m.max_power() - 5 * 344 + 1
        )
        plan = pl.plan(cap)
        assert 0 < plan.n_off_selected <= 6
        assert plan.n_full_chassis == 0

    def test_chassis_preferred_over_19_singles(self):
        """The paper's worked example: a ~6600 W reduction is served by
        one complete chassis (18 nodes, 6692 W) instead of 20
        scattered nodes."""
        pl = planner("SHUT")
        m = pl.machine
        cap = PowercapReservation(
            start=HOUR, end=2 * HOUR, watts=m.max_power() - 6600
        )
        plan = pl.plan(cap)
        assert plan.n_full_chassis == 1
        assert plan.n_off_selected == 18
        assert plan.bonus_watts == 500

    def test_savings_precomputed_on_reservation(self):
        pl = planner("SHUT", scale=0.25)
        plan = pl.plan(cap_for(pl.machine, 0.5))
        sd = plan.reservation
        assert sd.savings_from_idle_watts > 0
        # Savings relative to idle must not exceed savings relative to busy.
        assert sd.savings_from_idle_watts < plan.n_off_selected * 358

    def test_selection_from_high_node_ids(self):
        pl = planner("SHUT", scale=0.25)
        plan = pl.plan(cap_for(pl.machine, 0.6))
        nodes = plan.reservation.nodes
        # Shutdown nodes cluster at the top of the id range, leaving
        # low ids for the selector's packing.
        assert nodes.min() >= pl.machine.n_nodes - len(nodes) - 90

    def test_nodes_unique_and_in_range(self):
        pl = planner("MIX", scale=0.25)
        plan = pl.plan(cap_for(pl.machine, 0.4))
        nodes = plan.reservation.nodes
        assert len(np.unique(nodes)) == len(nodes)
        assert nodes.min() >= 0 and nodes.max() < pl.machine.n_nodes

    def test_mix_shuts_fewer_nodes_than_shut_at_same_cap(self):
        """MIX keeps more nodes alive (they run at 2.0 GHz) than SHUT
        (alive nodes at 2.7 GHz) for the same low cap."""
        cap_fraction = 0.4
        shut = planner("SHUT", scale=0.25)
        mix = planner("MIX", scale=0.25)
        n_shut = shut.plan(cap_for(shut.machine, cap_fraction)).n_off_selected
        n_mix = mix.plan(cap_for(mix.machine, cap_fraction)).n_off_selected
        assert 0 < n_mix < n_shut

    @settings(max_examples=30, deadline=None)
    @given(fraction=st.floats(min_value=0.1, max_value=0.99))
    def test_any_cap_yields_feasible_plan(self, fraction):
        pl = planner("SHUT", scale=0.125)
        cap = cap_for(pl.machine, fraction)
        plan = pl.plan(cap)
        assert plan.worst_case_alive_watts <= cap.watts + 1e-6
        assert 0 <= plan.n_off_selected <= pl.machine.n_nodes

    @settings(max_examples=30, deadline=None)
    @given(fraction=st.floats(min_value=0.1, max_value=0.99))
    def test_selection_not_grossly_overshooting(self, fraction):
        """The greedy selection should not kill far more nodes than a
        bonus-less scattered selection would."""
        pl = planner("SHUT", scale=0.125)
        m = pl.machine
        cap = cap_for(m, fraction)
        plan = pl.plan(cap)
        deficit = pl._worst_case_alive(np.array([], int)) - cap.watts
        scattered_needed = math.ceil(max(deficit, 0) / 344.0)
        # Grouping may round up to enclosure sizes, but never worse
        # than one extra rack over the scattered count.
        assert plan.n_off_selected <= scattered_needed + 90


class TestModelPlan:
    def test_model_plan_strips_infrastructure(self):
        pl = planner("SHUT")
        m = pl.machine
        cap = cap_for(m, 0.6)
        mp = pl.model_plan(cap.watts)
        assert mp.case in (ModelCase.SHUTDOWN_ONLY, ModelCase.COMBINED)
        assert mp.n_off > 0
