"""Unit tests for the online frequency selection (Algorithm 2)."""

import math

import numpy as np
import pytest

from repro.cluster.curie import curie_machine
from repro.cluster.states import NodeState
from repro.core.online import FrequencySelector, PowercapView
from repro.core.policies import make_policy
from repro.rjms.reservations import (
    PowercapReservation,
    ReservationRegistry,
    ShutdownReservation,
    shutdown_savings_from_idle,
)

HOUR = 3600.0


@pytest.fixture
def machine():
    return curie_machine(scale=1 / 56)  # 90 nodes


def view_for(machine, acct, caps=(), shutdowns=(), now=0.0, running=()):
    reg = ReservationRegistry(machine.n_nodes)
    for c in caps:
        reg.add_powercap(c)
    for s in shutdowns:
        reg.add_shutdown(s)
    return PowercapView(reg, acct, now, running)


class TestNoConstraints:
    def test_top_frequency_without_caps(self, machine):
        acct = machine.new_accountant()
        sel = FrequencySelector(make_policy("DVFS", machine.freq_table))
        d = sel.decide(10, 86400.0, view_for(machine, acct))
        assert d.ok and d.freq_ghz == 2.7 and not d.soft
        assert d.degradation == 1.0

    def test_none_policy_ignores_active_cap(self, machine):
        acct = machine.new_accountant()
        sel = FrequencySelector(make_policy("NONE", machine.freq_table))
        cap = PowercapReservation(0.0, math.inf, watts=1.0)
        d = sel.decide(90, 86400.0, view_for(machine, acct, caps=[cap]))
        assert d.ok and d.freq_ghz == 2.7


class TestActiveCap:
    def test_blocks_when_even_min_does_not_fit(self, machine):
        acct = machine.new_accountant()
        sel = FrequencySelector(make_policy("DVFS", machine.freq_table))
        # Cap barely above the idle floor: a 90-node job cannot fit.
        cap = PowercapReservation(0.0, math.inf, watts=acct.idle_floor() + 100)
        d = sel.decide(90, 86400.0, view_for(machine, acct, caps=[cap], now=1.0))
        assert not d.ok
        assert d.reason == "active powercap"

    def test_selects_highest_fitting_step(self, machine):
        acct = machine.new_accountant()
        sel = FrequencySelector(make_policy("DVFS", machine.freq_table))
        # Headroom for 10 nodes at 2.0 GHz (152 W delta) but not 2.2.
        headroom = 10 * (269 - 117) + 1
        cap = PowercapReservation(0.0, math.inf, watts=acct.idle_floor() + headroom)
        d = sel.decide(10, 86400.0, view_for(machine, acct, caps=[cap], now=1.0))
        assert d.ok and d.freq_ghz == 2.0 and not d.soft

    def test_max_fits_runs_at_max(self, machine):
        acct = machine.new_accountant()
        sel = FrequencySelector(make_policy("DVFS", machine.freq_table))
        cap = PowercapReservation(0.0, math.inf, watts=acct.max_power())
        d = sel.decide(90, 86400.0, view_for(machine, acct, caps=[cap], now=1.0))
        assert d.ok and d.freq_ghz == 2.7

    def test_accounts_running_jobs_through_current_power(self, machine):
        acct = machine.new_accountant()
        # 40 nodes already busy at max.
        acct.set_state(np.arange(40), NodeState.BUSY, freq_index=7)
        sel = FrequencySelector(make_policy("DVFS", machine.freq_table))
        headroom_for_min_only = acct.total_power() + 10 * (193 - 117) + 1
        cap = PowercapReservation(0.0, math.inf, watts=headroom_for_min_only)
        d = sel.decide(10, 86400.0, view_for(machine, acct, caps=[cap], now=1.0))
        assert d.ok and d.freq_ghz == 1.2

    def test_idle_policy_waits(self, machine):
        acct = machine.new_accountant()
        acct.set_state(np.arange(60), NodeState.BUSY, freq_index=7)
        sel = FrequencySelector(make_policy("IDLE", machine.freq_table))
        cap = PowercapReservation(0.0, math.inf, watts=acct.total_power() + 10)
        d = sel.decide(5, 86400.0, view_for(machine, acct, caps=[cap], now=1.0))
        assert not d.ok  # only the top step exists and does not fit


class TestFutureWindows:
    def test_overlapping_job_throttled_softly(self, machine):
        """A job whose walltime crosses a future window is started at
        the lowest step once the projected budget saturates."""
        acct = machine.new_accountant()
        policy = make_policy("DVFS", machine.freq_table)
        sel = FrequencySelector(policy)
        cap = PowercapReservation(2 * HOUR, 3 * HOUR, watts=acct.idle_floor() + 500)
        view = view_for(machine, acct, caps=[cap], now=0.0)
        # First job: 500 W of window headroom fits 6 nodes at 1.2 GHz
        # (76 W delta) but only 2 at 2.7 (241 W).
        d = sel.decide(2, 86400.0, view)
        assert d.ok and d.freq_ghz == 2.7
        view.note_start(2, d.freq_index, 86400.0)
        d2 = sel.decide(2, 86400.0, view)
        assert d2.ok and d2.freq_ghz == 1.2  # remaining headroom 18 W -> soft? no: 2*76=152 > 18
        assert d2.soft

    def test_short_job_ends_before_window_unconstrained(self, machine):
        acct = machine.new_accountant()
        sel = FrequencySelector(make_policy("DVFS", machine.freq_table))
        cap = PowercapReservation(2 * HOUR, 3 * HOUR, watts=acct.idle_floor() + 1)
        view = view_for(machine, acct, caps=[cap], now=0.0)
        d = sel.decide(90, HOUR, view)  # walltime 1h, window at 2h
        assert d.ok and d.freq_ghz == 2.7 and not d.soft

    def test_strict_future_blocks_instead_of_soft(self, machine):
        acct = machine.new_accountant()
        sel = FrequencySelector(
            make_policy("DVFS", machine.freq_table), strict_future=True
        )
        cap = PowercapReservation(2 * HOUR, 3 * HOUR, watts=acct.idle_floor() + 1)
        view = view_for(machine, acct, caps=[cap], now=0.0)
        d = sel.decide(10, 86400.0, view)
        assert not d.ok and d.reason == "planned powercap"

    def test_shutdown_savings_enlarge_window_budget(self, machine):
        """With a planned switch-off reservation, the projected window
        power drops, so jobs on alive nodes fit at high frequency —
        the SHUT mechanism in action."""
        acct = machine.new_accountant()
        topo = machine.topology
        sel = FrequencySelector(make_policy("SHUT", machine.freq_table))
        off_nodes = topo.nodes_of_rack(0)[:54]  # 3 chassis
        savings = shutdown_savings_from_idle(off_nodes, topo, 117.0)
        cap_watts = acct.idle_floor() - savings + 36 * (358 - 117) + 1
        cap = PowercapReservation(2 * HOUR, 3 * HOUR, watts=cap_watts)
        sd = ShutdownReservation(
            2 * HOUR, 3 * HOUR, off_nodes, savings_from_idle_watts=savings
        )
        view = view_for(machine, acct, caps=[cap], shutdowns=[sd], now=0.0)
        d = sel.decide(36, 86400.0, view)
        assert d.ok and d.freq_ghz == 2.7 and not d.soft

    def test_running_jobs_count_when_overlapping_window(self, machine):
        acct = machine.new_accountant()
        acct.set_state(np.arange(30), NodeState.BUSY, freq_index=7)

        class _R:
            n_nodes = 30
            freq_index = 7
            expected_end = 10 * HOUR

        cap = PowercapReservation(
            2 * HOUR, 3 * HOUR, watts=acct.idle_floor() + 30 * (358 - 117) + 100
        )
        view = view_for(machine, acct, caps=[cap], now=0.0, running=[_R()])
        sel = FrequencySelector(make_policy("DVFS", machine.freq_table))
        d = sel.decide(4, 86400.0, view)
        # 100 W left: only 1.2 GHz for 1 node; 4 nodes need 304 W -> soft.
        assert d.ok and d.soft and d.freq_ghz == 1.2

    def test_running_jobs_ending_before_window_ignored(self, machine):
        acct = machine.new_accountant()
        acct.set_state(np.arange(30), NodeState.BUSY, freq_index=7)

        class _R:
            n_nodes = 30
            freq_index = 7
            expected_end = HOUR  # done before the window opens

        cap = PowercapReservation(
            2 * HOUR, 3 * HOUR, watts=acct.idle_floor() + 4 * (358 - 117) + 1
        )
        view = view_for(machine, acct, caps=[cap], now=0.0, running=[_R()])
        sel = FrequencySelector(make_policy("DVFS", machine.freq_table))
        d = sel.decide(4, 86400.0, view)
        assert d.ok and d.freq_ghz == 2.7 and not d.soft


class TestMixRange:
    def test_mix_never_below_two_ghz(self, machine):
        acct = machine.new_accountant()
        sel = FrequencySelector(make_policy("MIX", machine.freq_table))
        cap = PowercapReservation(0.0, math.inf, watts=acct.idle_floor() + 10 * (269 - 117) + 1)
        d = sel.decide(10, 86400.0, view_for(machine, acct, caps=[cap], now=1.0))
        assert d.ok and d.freq_ghz == 2.0
        assert d.degradation == pytest.approx(1.29)

    def test_mix_blocks_below_range(self, machine):
        acct = machine.new_accountant()
        sel = FrequencySelector(make_policy("MIX", machine.freq_table))
        cap = PowercapReservation(0.0, math.inf, watts=acct.idle_floor() + 10)
        d = sel.decide(10, 86400.0, view_for(machine, acct, caps=[cap], now=1.0))
        assert not d.ok


class TestClusterRule:
    def test_cluster_rule_uses_idle_population(self, machine):
        """Section IV-B variant: the frequency must fit *all* idle
        nodes, so it is lower than the per-job choice."""
        acct = machine.new_accountant()
        policy = make_policy("DVFS", machine.freq_table)
        cap = PowercapReservation(
            0.0, math.inf, watts=acct.idle_floor() + 90 * (213 - 117) + 1
        )
        per_job = FrequencySelector(policy).decide(
            2, 86400.0, view_for(machine, acct, caps=[cap], now=1.0)
        )
        cluster = FrequencySelector(policy, cluster_rule=True).decide(
            2, 86400.0, view_for(machine, acct, caps=[cap], now=1.0)
        )
        assert per_job.ok and per_job.freq_ghz == 2.7  # 2 nodes fit easily
        assert cluster.ok and cluster.freq_ghz == 1.4  # all 90 idle must fit
