"""Unit tests for the five powercap policies."""

import pytest

from repro.cluster.curie import CURIE_FREQUENCY_TABLE
from repro.core.policies import CURIE_POLICIES, Policy, PolicyKind, make_policy


@pytest.fixture
def table():
    return CURIE_FREQUENCY_TABLE


class TestMakePolicy:
    def test_none_ignores_caps(self, table):
        p = make_policy("NONE", table)
        assert not p.enforces_caps
        assert not p.uses_shutdown
        assert not p.uses_dvfs
        assert p.degmin == 1.0

    def test_idle_enforces_but_cannot_act(self, table):
        p = make_policy("IDLE", table)
        assert p.enforces_caps
        assert not p.uses_shutdown
        assert not p.uses_dvfs
        assert p.allowed.frequencies == (2.7,)

    def test_shut(self, table):
        p = make_policy("SHUT", table)
        assert p.uses_shutdown
        assert not p.uses_dvfs
        assert p.allowed.frequencies == (2.7,)
        assert p.degradation(2.7) == 1.0

    def test_dvfs_full_range(self, table):
        p = make_policy("DVFS", table)
        assert not p.uses_shutdown
        assert p.uses_dvfs
        assert p.allowed.frequencies == table.frequencies
        assert p.degmin == 1.63
        assert p.degradation(1.2) == pytest.approx(1.63)
        assert p.degradation(2.7) == 1.0

    def test_mix_high_range(self, table):
        p = make_policy("MIX", table)
        assert p.uses_shutdown
        assert p.uses_dvfs
        assert p.allowed.frequencies == (2.0, 2.2, 2.4, 2.7)
        assert p.degmin == 1.29
        assert p.degradation(2.0) == pytest.approx(1.29)

    def test_kind_enum_accepted(self, table):
        assert make_policy(PolicyKind.SHUT, table).kind == PolicyKind.SHUT

    def test_custom_degmin(self, table):
        p = make_policy("DVFS", table, degmin=2.14)
        assert p.degradation(1.2) == pytest.approx(2.14)

    def test_unknown_kind_rejected(self, table):
        with pytest.raises(ValueError):
            make_policy("TURBO", table)


class TestFrequencyIterationOrder:
    def test_dvfs_descends_full_table(self, table):
        p = make_policy("DVFS", table)
        idx = p.frequency_indices_desc()
        ghz = [table.steps[i].ghz for i in idx]
        assert ghz == sorted(table.frequencies, reverse=True)

    def test_mix_descends_high_range_with_full_table_indices(self, table):
        p = make_policy("MIX", table)
        idx = p.frequency_indices_desc()
        ghz = [table.steps[i].ghz for i in idx]
        assert ghz == [2.7, 2.4, 2.2, 2.0]

    def test_shut_single_step(self, table):
        p = make_policy("SHUT", table)
        idx = p.frequency_indices_desc()
        assert len(idx) == 1
        assert table.steps[idx[0]].ghz == 2.7


def test_curie_policies_factory(table):
    policies = CURIE_POLICIES(table)
    assert set(policies) == {"NONE", "IDLE", "SHUT", "DVFS", "MIX"}
    assert all(isinstance(p, Policy) for p in policies.values())
