"""Unit + property tests for the Section III analytical model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.curie import CURIE_BENCHMARK_DEGMIN, CURIE_FREQUENCY_TABLE
from repro.core.powermodel import (
    ModelCase,
    capacity,
    dvfs_beats_shutdown_exact,
    dvfs_only_nodes,
    normalized_cap_floor_dvfs,
    plan_nodes,
    plan_nodes_exact,
    rho,
    shutdown_only_nodes,
)

# Curie node-level constants (Figure 4).
PMAX, PMIN, POFF = 358.0, 193.0, 14.0
N = 5040


class TestRho:
    def test_figure5_values(self):
        """Reproduce the rho column of Figure 5 (switch-off wins for
        every benchmark on Curie)."""
        expected = {
            "linpack": -0.027,
            "IMB": -0.029,
            "SPEC Float": -0.088,
            "SPEC Integer": -0.134,
            "Common value": -0.174,
            "NAS suite": -0.225,
            "STREAM": -0.350,
            "GROMACS": -0.422,
        }
        for name, degmin in CURIE_BENCHMARK_DEGMIN.items():
            r = rho(degmin, PMAX, PMIN, POFF)
            # The published table rounds aggressively; all values are
            # reproduced to ~3e-3 under the Figure 5 convention.
            assert r == pytest.approx(expected[name], abs=5e-3), name
            assert r < 0  # switch-off is always the best mechanism

    def test_breakeven_degmin(self):
        """The degmin at which rho crosses zero (the NA row of Figure 5
        lists 2.27 as the break-even degradation)."""
        r = rho(2.27, PMAX, PMIN, POFF)
        assert abs(r) < 5e-3

    def test_idle_fallback_makes_dvfs_win(self):
        """Section VI-B: if switch-off is replaced by keeping nodes
        idle (Poff = idle watts), DVFS becomes the best policy for
        every benchmark degradation (exact capacity criterion)."""
        idle = 117.0
        for degmin in CURIE_BENCHMARK_DEGMIN.values():
            assert dvfs_beats_shutdown_exact(degmin, PMAX, PMIN, idle)

    def test_real_switchoff_exact_criterion(self):
        """With true switch-off (14 W), the exact criterion keeps
        switch-off ahead only for strongly degrading codes — the
        rho convention of Figure 5 is more switch-off-friendly (see
        DESIGN.md, model nuances)."""
        assert not dvfs_beats_shutdown_exact(2.14, PMAX, PMIN, POFF)  # linpack
        assert dvfs_beats_shutdown_exact(1.16, PMAX, PMIN, POFF)  # GROMACS

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            rho(0.9, PMAX, PMIN, POFF)
        with pytest.raises(ValueError):
            rho(1.5, 100.0, 90.0, 100.0)


class TestCapacity:
    def test_full_cluster(self):
        assert capacity(N, 0, 0, 1.63) == N

    def test_off_nodes_contribute_nothing(self):
        assert capacity(100, 30, 0, 1.63) == 70

    def test_dvfs_nodes_contribute_reduced(self):
        assert capacity(100, 0, 50, 2.0) == 50 + 25

    def test_rejects_violating_c2(self):
        with pytest.raises(ValueError):
            capacity(100, 60, 50, 1.63)
        with pytest.raises(ValueError):
            capacity(100, -1, 0, 1.63)
        with pytest.raises(ValueError):
            capacity(100, 0, 0, 0.5)


class TestClosedForms:
    def test_shutdown_only_formula(self):
        # Cap at half the max node power.
        p = 0.5 * N * PMAX
        noff = shutdown_only_nodes(N, p, PMAX, POFF)
        # Remaining nodes at Pmax plus off nodes at Poff meet p exactly.
        assert noff * POFF + (N - noff) * PMAX == pytest.approx(p)

    def test_dvfs_only_formula(self):
        p = 0.8 * N * PMAX
        ndvfs = dvfs_only_nodes(N, p, PMAX, PMIN)
        assert ndvfs * PMIN + (N - ndvfs) * PMAX == pytest.approx(p)

    def test_clamping(self):
        assert shutdown_only_nodes(N, N * PMAX * 2, PMAX, POFF) == 0.0
        assert shutdown_only_nodes(N, 0.0, PMAX, POFF) == N
        assert dvfs_only_nodes(N, N * PMAX * 2, PMAX, PMIN) == 0.0
        assert dvfs_only_nodes(N, 0.0, PMAX, PMIN) == N

    def test_cap_floor(self):
        assert normalized_cap_floor_dvfs(PMIN, PMAX) == pytest.approx(193 / 358)
        with pytest.raises(ValueError):
            normalized_cap_floor_dvfs(0, PMAX)


class TestPlanNodes:
    def degmin(self):
        return 1.63

    def test_no_cap_needed(self):
        plan = plan_nodes(N, N * PMAX * 1.1, pmax=PMAX, pmin=PMIN, poff=POFF, degmin=1.63)
        assert plan.n_off == 0 and plan.n_dvfs == 0
        assert plan.capacity == N

    def test_curie_prefers_shutdown(self):
        # rho < 0 on Curie: moderate caps choose pure switch-off.
        p = 0.7 * N * PMAX
        plan = plan_nodes(N, p, pmax=PMAX, pmin=PMIN, poff=POFF, degmin=1.63)
        assert plan.case == ModelCase.SHUTDOWN_ONLY
        assert plan.n_dvfs == 0
        assert 0 < plan.n_off < N
        assert plan.rho < 0

    def test_dvfs_wins_when_rho_positive(self):
        # A hypothetical node type with a very low minimum-frequency
        # power and mild degradation: rho flips positive.
        pmin = 50.0
        plan = plan_nodes(N, 0.8 * N * PMAX, pmax=PMAX, pmin=pmin, poff=POFF, degmin=1.5)
        assert rho(1.5, PMAX, pmin, POFF) > 0
        assert plan.case == ModelCase.DVFS_ONLY
        assert plan.n_off == 0

    def test_case4_combined_below_floor(self):
        """lambda < Pmin/Pmax (54% on Curie) forces both mechanisms."""
        lam = 0.4
        p = lam * N * PMAX
        assert lam < PMIN / PMAX
        plan = plan_nodes(N, p, pmax=PMAX, pmin=PMIN, poff=POFF, degmin=1.63)
        assert plan.case == ModelCase.COMBINED
        assert plan.n_off > 0 and plan.n_dvfs > 0
        # The paper's closed form for case 4.
        assert plan.n_dvfs == pytest.approx((p - N * POFF) / (PMIN - POFF))
        assert plan.n_off == pytest.approx(N - plan.n_dvfs)

    def test_case4_satisfies_constraints(self):
        p = 0.45 * N * PMAX
        plan = plan_nodes(N, p, pmax=PMAX, pmin=PMIN, poff=POFF, degmin=1.63)
        used = plan.n_off * POFF + plan.n_dvfs * PMIN
        assert used <= p + 1e-6  # C3 with zero nodes at Pmax
        assert plan.n_off + plan.n_dvfs == pytest.approx(N)  # C2 tight

    def test_mix_threshold_75_percent(self):
        """With the MIX range (Pmin = 269 W), case 4 triggers below
        75% of max node power (Section VI-B)."""
        pmin_mix = 269.0
        floor = pmin_mix / PMAX
        assert floor == pytest.approx(0.751, abs=1e-3)
        below = plan_nodes(
            N, 0.74 * N * PMAX, pmax=PMAX, pmin=pmin_mix, poff=POFF, degmin=1.29
        )
        above = plan_nodes(
            N, 0.76 * N * PMAX, pmax=PMAX, pmin=pmin_mix, poff=POFF, degmin=1.29
        )
        assert below.case == ModelCase.COMBINED
        assert above.case != ModelCase.COMBINED

    def test_infeasible_cap_rejected(self):
        with pytest.raises(ValueError):
            plan_nodes(N, N * POFF * 0.5, pmax=PMAX, pmin=PMIN, poff=POFF, degmin=1.63)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            plan_nodes(0, 100, pmax=PMAX, pmin=PMIN, poff=POFF, degmin=1.63)
        with pytest.raises(ValueError):
            plan_nodes(N, N * PMAX, pmax=PMAX, pmin=PMIN, poff=POFF, degmin=0.5)
        with pytest.raises(ValueError):
            plan_nodes(N, N * PMAX, pmax=100, pmin=200, poff=14, degmin=1.63)

    @settings(max_examples=100, deadline=None)
    @given(
        lam=st.floats(min_value=0.05, max_value=1.0),
        degmin=st.floats(min_value=1.01, max_value=3.0),
    )
    def test_plan_always_feasible_and_capacity_bounded(self, lam, degmin):
        """Property: the chosen plan satisfies C2/C3 and its capacity
        never exceeds the unconstrained cluster."""
        p = lam * N * PMAX
        if p < N * POFF:
            return  # infeasible by construction
        plan = plan_nodes(N, p, pmax=PMAX, pmin=PMIN, poff=POFF, degmin=degmin)
        assert 0 <= plan.n_off <= N + 1e-9
        assert 0 <= plan.n_dvfs <= N + 1e-9
        assert plan.n_off + plan.n_dvfs <= N + 1e-9
        consumed = (
            plan.n_off * POFF
            + plan.n_dvfs * PMIN
            + (N - plan.n_off - plan.n_dvfs) * PMAX
        )
        assert consumed <= p + 1e-6 * max(1.0, p)
        assert 0 <= plan.capacity <= N + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(lam=st.floats(min_value=0.55, max_value=0.999))
    def test_algorithm1_follows_rho_sign(self, lam):
        """Property: in the single-mechanism regime, Algorithm 1 picks
        the mechanism the rho sign dictates (Figure 5 convention)."""
        p = lam * N * PMAX
        plan = plan_nodes(N, p, pmax=PMAX, pmin=PMIN, poff=POFF, degmin=1.63)
        r = rho(1.63, PMAX, PMIN, POFF)
        if plan.n_off == 0 and plan.n_dvfs == 0:
            return  # cap above max power, nothing to do
        if r <= 0:
            assert plan.case == ModelCase.SHUTDOWN_ONLY
        else:
            assert plan.case == ModelCase.DVFS_ONLY

    @settings(max_examples=60, deadline=None)
    @given(
        lam=st.floats(min_value=0.55, max_value=0.999),
        degmin=st.floats(min_value=1.05, max_value=3.0),
    )
    def test_exact_variant_never_worse(self, lam, degmin):
        """Property: the exact-criterion planner's capacity is always
        at least the rho-convention planner's (it is the optimum)."""
        p = lam * N * PMAX
        table = plan_nodes(N, p, pmax=PMAX, pmin=PMIN, poff=POFF, degmin=degmin)
        exact = plan_nodes_exact(N, p, pmax=PMAX, pmin=PMIN, poff=POFF, degmin=degmin)
        assert exact.capacity >= table.capacity - 1e-9
