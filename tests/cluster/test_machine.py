"""Unit tests for Machine and the Curie description."""

import pytest

from repro.cluster.curie import (
    CURIE_BENCHMARK_DEGMIN,
    CURIE_DEGMIN_FULL_RANGE,
    CURIE_DEGMIN_MIX_RANGE,
    CURIE_FREQUENCY_TABLE,
    CURIE_TOPOLOGY,
    curie_machine,
)
from repro.cluster.frequency import FrequencyTable
from repro.cluster.machine import Machine
from repro.cluster.topology import Topology


class TestCurie:
    def test_full_machine_shape(self):
        m = curie_machine()
        assert m.n_nodes == 5040
        assert m.cores_per_node == 16
        assert m.total_cores == 80640
        assert m.name == "curie"

    def test_max_power_includes_infrastructure(self):
        m = curie_machine()
        nodes_only = 5040 * 358
        assert m.max_power() == nodes_only + CURIE_TOPOLOGY.infrastructure_watts()

    def test_idle_power(self):
        m = curie_machine()
        assert m.idle_power() == 5040 * 117 + CURIE_TOPOLOGY.infrastructure_watts()

    def test_scaled_name_and_size(self):
        m = curie_machine(scale=0.25)
        assert m.n_nodes == 14 * 5 * 18
        assert "curie-x0.25" == m.name

    def test_benchmark_degmin_table_from_figure5(self):
        assert CURIE_BENCHMARK_DEGMIN["linpack"] == 2.14
        assert CURIE_BENCHMARK_DEGMIN["GROMACS"] == 1.16
        assert len(CURIE_BENCHMARK_DEGMIN) == 8

    def test_replay_degradations(self):
        assert CURIE_DEGMIN_FULL_RANGE == 1.63
        assert CURIE_DEGMIN_MIX_RANGE == 1.29


class TestMachine:
    def test_nodes_for_cores_rounds_up(self):
        m = curie_machine(scale=1 / 56)
        assert m.nodes_for_cores(1) == 1
        assert m.nodes_for_cores(16) == 1
        assert m.nodes_for_cores(17) == 2
        assert m.nodes_for_cores(512) == 32

    def test_nodes_for_cores_rejects_nonpositive(self):
        m = curie_machine(scale=1 / 56)
        with pytest.raises(ValueError):
            m.nodes_for_cores(0)

    def test_rejects_mismatched_down_watts(self):
        table = FrequencyTable([(1.0, 100.0)], idle_watts=50.0, down_watts=5.0)
        topo = Topology(node_down_watts=14.0)
        with pytest.raises(ValueError):
            Machine(name="bad", topology=topo, freq_table=table)

    def test_rejects_nonpositive_cores(self):
        with pytest.raises(ValueError):
            Machine(
                name="bad",
                topology=CURIE_TOPOLOGY,
                freq_table=CURIE_FREQUENCY_TABLE,
                cores_per_node=0,
            )

    def test_new_accountant_starts_idle(self):
        m = curie_machine(scale=1 / 56)
        acct = m.new_accountant()
        assert acct.total_power() == pytest.approx(m.idle_power())
