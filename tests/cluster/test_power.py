"""Unit + property tests for the incremental power accountant."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.curie import curie_machine
from repro.cluster.power import PowerAccountant
from repro.cluster.states import NodeState


@pytest.fixture
def machine():
    # One rack: 5 chassis x 18 nodes = 90 nodes. Small enough for
    # exhaustive cross-checks, large enough to exercise the hierarchy.
    return curie_machine(scale=1 / 56)


@pytest.fixture
def acct(machine) -> PowerAccountant:
    return machine.new_accountant()


def test_initial_state_all_idle(acct, machine):
    assert acct.count_by_state[NodeState.IDLE] == machine.n_nodes
    assert acct.total_power() == pytest.approx(machine.idle_power())
    acct.verify()


def test_max_power_matches_machine(acct, machine):
    assert acct.max_power() == pytest.approx(machine.max_power())
    acct.set_state(np.arange(machine.n_nodes), NodeState.BUSY, freq_index=acct.freq_table.max_index)
    assert acct.total_power() == pytest.approx(machine.max_power())


def test_busy_at_each_frequency(acct):
    ft = acct.freq_table
    node = np.array([0])
    for i, step in enumerate(ft):
        acct.set_state(node, NodeState.BUSY, freq_index=i)
        expected_delta = step.watts - ft.idle_watts
        assert acct.total_power() == pytest.approx(acct.idle_floor() + expected_delta)
    acct.verify()


def test_busy_requires_freq_index(acct):
    with pytest.raises(ValueError):
        acct.set_state(np.array([0]), NodeState.BUSY)


def test_empty_id_array_is_noop(acct):
    before = acct.total_power()
    acct.set_state(np.array([], dtype=np.int64), NodeState.OFF)
    assert acct.total_power() == before


def test_single_node_off_keeps_bmc(acct):
    ft = acct.freq_table
    acct.set_state(np.array([3]), NodeState.OFF)
    # One node moved idle -> off: saves idle - down watts; chassis
    # infra stays powered because 17 siblings are on.
    assert acct.total_power() == pytest.approx(
        acct.idle_floor() - (ft.idle_watts - ft.down_watts)
    )
    assert acct.n_dark_chassis == 0
    assert acct.bonus_watts() == 0.0


def test_complete_chassis_off_harvests_bonus(acct, machine):
    topo = machine.topology
    ft = acct.freq_table
    nodes = topo.nodes_of_chassis(2)
    acct.set_state(nodes, NodeState.OFF)
    assert acct.n_dark_chassis == 1
    assert acct.bonus_watts() == pytest.approx(topo.chassis_bonus_watts())
    # 18 nodes go from idle to *zero* watts (BMCs dark) and the 248 W
    # chassis infra disappears.
    expected = acct.idle_floor() - 18 * ft.idle_watts - topo.chassis_watts
    assert acct.total_power() == pytest.approx(expected)
    acct.verify()


def test_complete_rack_off_harvests_rack_bonus(acct, machine):
    topo = machine.topology
    nodes = topo.nodes_of_rack(0)
    acct.set_state(nodes, NodeState.OFF)
    assert acct.n_dark_chassis == topo.chassis_per_rack
    assert acct.n_dark_racks == 1
    assert acct.bonus_watts() == pytest.approx(
        topo.chassis_per_rack * topo.chassis_bonus_watts() + topo.rack_watts
    )
    acct.verify()


def test_accumulated_savings_match_figure2(acct, machine):
    """Switching a complete chassis off from full load saves exactly
    the Figure 2 accumulated value (6692 W)."""
    topo = machine.topology
    ft = acct.freq_table
    all_nodes = np.arange(machine.n_nodes)
    acct.set_state(all_nodes, NodeState.BUSY, freq_index=ft.max_index)
    full = acct.total_power()
    acct.set_state(topo.nodes_of_chassis(0), NodeState.OFF)
    assert full - acct.total_power() == pytest.approx(
        topo.accumulated_chassis_watts(ft.max.watts)
    )


def test_rack_off_from_full_load_saves_34360(acct, machine):
    topo = machine.topology
    ft = acct.freq_table
    acct.set_state(np.arange(machine.n_nodes), NodeState.BUSY, freq_index=ft.max_index)
    full = acct.total_power()
    acct.set_state(topo.nodes_of_rack(0), NodeState.OFF)
    assert full - acct.total_power() == pytest.approx(
        topo.accumulated_rack_watts(ft.max.watts)
    )


def test_boot_back_restores_power(acct, machine):
    topo = machine.topology
    nodes = topo.nodes_of_chassis(1)
    floor = acct.total_power()
    acct.set_state(nodes, NodeState.OFF)
    acct.set_state(nodes, NodeState.BOOTING)
    assert acct.n_dark_chassis == 0
    acct.set_state(nodes, NodeState.IDLE)
    assert acct.total_power() == pytest.approx(floor)
    acct.verify()


def test_transition_states_draw_configured_watts(machine):
    acct = PowerAccountant(
        machine.topology, machine.freq_table, boot_watts=200.0, shutdown_watts=80.0
    )
    floor = acct.total_power()
    acct.set_state(np.array([0]), NodeState.BOOTING)
    assert acct.total_power() == pytest.approx(floor - 117 + 200)
    acct.set_state(np.array([1]), NodeState.SHUTTING_DOWN)
    assert acct.total_power() == pytest.approx(floor - 117 + 200 - 117 + 80)
    acct.verify()


def test_breakdown_sums_to_total(acct, machine):
    topo = machine.topology
    acct.set_state(topo.nodes_of_chassis(0), NodeState.OFF)
    acct.set_state(np.array([40, 41]), NodeState.BUSY, freq_index=0)
    acct.set_state(np.array([50]), NodeState.BUSY, freq_index=acct.freq_table.max_index)
    acct.set_state(np.array([60]), NodeState.OFF)
    bd = acct.breakdown()
    assert bd.total == pytest.approx(acct.total_power())
    assert bd.busy_by_freq[1.2] == pytest.approx(2 * 193)
    assert bd.busy_by_freq[2.7] == pytest.approx(358)
    assert bd.down == pytest.approx(14)  # only the lone off node's BMC


def test_busy_delta_watts(acct):
    ft = acct.freq_table
    assert acct.busy_delta_watts(10, ft.max_index) == pytest.approx(10 * (358 - 117))
    assert acct.busy_delta_watts(4, 0) == pytest.approx(4 * (193 - 117))
    assert acct.idle_delta_watts(4, 0) == pytest.approx(-4 * (193 - 117))


def test_delta_matches_actual_transition(acct):
    nodes = np.arange(20, 30)
    before = acct.total_power()
    predicted = acct.busy_delta_watts(len(nodes), 3)
    acct.set_state(nodes, NodeState.BUSY, freq_index=3)
    assert acct.total_power() - before == pytest.approx(predicted)


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=89),
        st.integers(min_value=0, max_value=26),
        st.sampled_from(list(NodeState)),
        st.integers(min_value=0, max_value=7),
    ),
    min_size=1, max_size=60,
))
def test_random_transition_sequences_stay_consistent(ops):
    """Property: after any sequence of bulk transitions, the
    incremental accounting equals a from-scratch recomputation."""
    machine = curie_machine(scale=1 / 56)
    acct = machine.new_accountant()
    for start, width, state, freq in ops:
        ids = np.arange(start, min(90, start + width + 1))
        if state == NodeState.BUSY:
            acct.set_state(ids, state, freq_index=freq)
        else:
            acct.set_state(ids, state)
    acct.verify()
    assert acct.total_power() >= 0.0
    assert acct.total_power() <= acct.max_power() + 1e-9


@settings(max_examples=25, deadline=None)
@given(st.sets(st.integers(min_value=0, max_value=89), min_size=0, max_size=90))
def test_off_sets_monotone_power(off_ids):
    """Property: power with a set of nodes off never exceeds the idle
    floor and never goes below the all-off minimum."""
    machine = curie_machine(scale=1 / 56)
    acct = machine.new_accountant()
    ids = np.array(sorted(off_ids), dtype=np.int64)
    acct.set_state(ids, NodeState.OFF)
    assert acct.total_power() <= acct.idle_floor() + 1e-9
    assert acct.total_power() >= 0.0
    acct.verify()
