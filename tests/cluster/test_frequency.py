"""Unit tests for DVFS frequency tables."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.cluster.curie import CURIE_FREQ_WATTS, CURIE_FREQUENCY_TABLE
from repro.cluster.frequency import FrequencyStep, FrequencyTable, degradation_factor


@pytest.fixture
def table() -> FrequencyTable:
    return CURIE_FREQUENCY_TABLE


class TestFrequencyStep:
    def test_orders_by_frequency(self):
        assert FrequencyStep(1.2, 193) < FrequencyStep(2.7, 358)

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            FrequencyStep(0.0, 100)

    def test_rejects_negative_watts(self):
        with pytest.raises(ValueError):
            FrequencyStep(1.2, -1)


class TestFrequencyTable:
    def test_curie_table_matches_figure4(self, table):
        assert table.min.ghz == 1.2 and table.min.watts == 193
        assert table.max.ghz == 2.7 and table.max.watts == 358
        assert table.idle_watts == 117
        assert table.down_watts == 14
        for ghz, watts in CURIE_FREQ_WATTS.items():
            assert table.watts(ghz) == watts

    def test_sorted_ascending(self, table):
        freqs = table.frequencies
        assert list(freqs) == sorted(freqs)
        assert len(table) == 8

    def test_steps_accept_tuples_and_sort(self):
        t = FrequencyTable([(2.0, 250), (1.0, 100)], idle_watts=50, down_watts=5)
        assert t.frequencies == (1.0, 2.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            FrequencyTable([], idle_watts=10, down_watts=1)

    def test_rejects_duplicate_frequencies(self):
        with pytest.raises(ValueError):
            FrequencyTable([(1.0, 100), (1.0, 120)], idle_watts=10, down_watts=1)

    def test_rejects_decreasing_power(self):
        with pytest.raises(ValueError):
            FrequencyTable([(1.0, 200), (2.0, 100)], idle_watts=10, down_watts=1)

    def test_rejects_down_above_idle(self):
        with pytest.raises(ValueError):
            FrequencyTable([(1.0, 100)], idle_watts=10, down_watts=20)

    def test_index_lookup_roundtrip(self, table):
        for i, step in enumerate(table):
            assert table.index_of(step.ghz) == i
            assert table.watts_at_index(i) == step.watts

    def test_index_of_unknown_frequency_raises(self, table):
        with pytest.raises(KeyError):
            table.index_of(3.0)

    def test_step_below_walks_down(self, table):
        # Algorithm 2 walks from the highest step downward.
        ghz = table.max.ghz
        seen = []
        while True:
            seen.append(ghz)
            nxt = table.step_below(ghz)
            if nxt is None:
                break
            ghz = nxt.ghz
        assert seen == sorted(CURIE_FREQ_WATTS, reverse=True)

    def test_restrict_to_mix_range(self, table):
        mix = table.restrict(2.0, 2.7)
        assert mix.frequencies == (2.0, 2.2, 2.4, 2.7)
        assert mix.min.watts == 269
        assert mix.idle_watts == table.idle_watts

    def test_restrict_empty_raises(self, table):
        with pytest.raises(ValueError):
            table.restrict(3.0, 4.0)

    def test_equality_and_hash(self, table):
        clone = FrequencyTable(
            CURIE_FREQ_WATTS.items(), idle_watts=117, down_watts=14
        )
        assert clone == table
        assert hash(clone) == hash(table)
        assert table != table.restrict(2.0, 2.7)

    def test_normalized_cap_floor_is_paper_54_percent(self, table):
        # Pmin/Pmax = 193/358: below this lambda, DVFS alone cannot
        # satisfy the cap (Section III-A, case 4).
        assert table.normalized_cap_floor() == pytest.approx(193 / 358)

    def test_mix_cap_floor_is_paper_75_percent(self, table):
        mix = table.restrict(2.0, 2.7)
        # 269/358 = 0.751...: the paper's "below 75% both mechanisms".
        assert mix.normalized_cap_floor() == pytest.approx(0.751, abs=1e-3)

    def test_dynamic_range(self, table):
        assert table.dynamic_range() == 358 - 193

    def test_interpolate_watts_endpoints_and_midpoint(self, table):
        assert table.interpolate_watts(1.2) == 193
        assert table.interpolate_watts(2.7) == 358
        mid = table.interpolate_watts(1.3)
        assert 193 < mid < 213

    def test_interpolate_outside_range_raises(self, table):
        with pytest.raises(ValueError):
            table.interpolate_watts(0.5)


class TestDegradationFactor:
    def test_extremes_match_paper(self, table):
        # 1.63 at 1.2 GHz, 1.0 at 2.7 GHz (Section VII-B).
        assert degradation_factor(2.7, table, 1.63) == pytest.approx(1.0)
        assert degradation_factor(1.2, table, 1.63) == pytest.approx(1.63)

    def test_linear_interpolation(self, table):
        # 2.0 GHz sits at (2.7-2.0)/(2.7-1.2) of the span.
        expect = 1.0 + 0.63 * (0.7 / 1.5)
        assert degradation_factor(2.0, table, 1.63) == pytest.approx(expect)

    def test_mix_range_uses_its_own_degmin(self, table):
        mix = table.restrict(2.0, 2.7)
        assert degradation_factor(2.0, mix, 1.29) == pytest.approx(1.29)
        assert degradation_factor(2.7, mix, 1.29) == pytest.approx(1.0)

    def test_degenerate_span_returns_one(self):
        t = FrequencyTable([(2.0, 100)], idle_watts=50, down_watts=5)
        assert degradation_factor(2.0, t, 1.63) == 1.0

    def test_rejects_degmin_below_one(self, table):
        with pytest.raises(ValueError):
            degradation_factor(2.0, table, 0.9)

    def test_rejects_out_of_span(self, table):
        with pytest.raises(ValueError):
            degradation_factor(0.8, table, 1.63)

    @given(
        ghz=st.sampled_from(sorted(CURIE_FREQ_WATTS)),
        degmin=st.floats(min_value=1.0, max_value=3.0),
    )
    def test_bounds_property(self, ghz, degmin):
        # Degradation is always within [1, degmin] on configured steps.
        d = degradation_factor(ghz, CURIE_FREQUENCY_TABLE, degmin)
        assert 1.0 - 1e-12 <= d <= degmin + 1e-12

    def test_monotone_decreasing_in_frequency(self, table):
        degs = [degradation_factor(g, table, 1.63) for g in table.frequencies]
        assert all(a >= b for a, b in zip(degs, degs[1:]))
