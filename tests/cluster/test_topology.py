"""Unit tests for the enclosure topology and power-bonus model."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.cluster.curie import CURIE_TOPOLOGY
from repro.cluster.topology import LevelSpec, Topology


@pytest.fixture
def curie() -> Topology:
    return CURIE_TOPOLOGY


class TestShape:
    def test_curie_dimensions(self, curie):
        assert curie.n_nodes == 5040
        assert curie.n_chassis == 280
        assert curie.racks == 56
        assert curie.nodes_per_rack == 90

    def test_rejects_nonpositive_dimensions(self):
        with pytest.raises(ValueError):
            Topology(racks=0)

    def test_chassis_of_node_mapping(self, curie):
        assert curie.chassis_of_node[0] == 0
        assert curie.chassis_of_node[17] == 0
        assert curie.chassis_of_node[18] == 1
        assert curie.chassis_of_node[5039] == 279

    def test_rack_of_node_mapping(self, curie):
        assert curie.rack_of_node[0] == 0
        assert curie.rack_of_node[89] == 0
        assert curie.rack_of_node[90] == 1
        assert curie.rack_of_node[5039] == 55

    def test_rack_of_chassis_consistent_with_nodes(self, curie):
        for chassis in (0, 7, 279):
            nodes = curie.nodes_of_chassis(chassis)
            racks = np.unique(curie.rack_of_node[nodes])
            assert racks.tolist() == [curie.rack_of_chassis[chassis]]

    def test_nodes_of_chassis_partition(self, curie):
        seen = np.concatenate(
            [curie.nodes_of_chassis(c) for c in range(curie.n_chassis)]
        )
        assert np.array_equal(np.sort(seen), np.arange(curie.n_nodes))

    def test_nodes_of_rack_partition(self, curie):
        seen = np.concatenate([curie.nodes_of_rack(r) for r in range(curie.racks)])
        assert np.array_equal(np.sort(seen), np.arange(curie.n_nodes))

    def test_membership_bounds_checked(self, curie):
        with pytest.raises(IndexError):
            curie.nodes_of_chassis(280)
        with pytest.raises(IndexError):
            curie.nodes_of_rack(56)
        with pytest.raises(IndexError):
            curie.chassis_of_rack(-1 + 57)


class TestPowerBonus:
    """Figure 2 of the paper, row by row."""

    def test_chassis_bonus_is_500w(self, curie):
        assert curie.chassis_bonus_watts() == 248 + 18 * 14 == 500

    def test_rack_bonus_is_3400w(self, curie):
        assert curie.rack_bonus_watts() == 900 + 5 * 500 == 3400

    def test_accumulated_node_344w(self, curie):
        assert curie.accumulated_node_watts(358.0) == 344

    def test_accumulated_chassis_6692w(self, curie):
        assert curie.accumulated_chassis_watts(358.0) == 344 * 18 + 500 == 6692

    def test_accumulated_rack_34360w(self, curie):
        assert curie.accumulated_rack_watts(358.0) == 6692 * 5 + 900 == 34360

    def test_figure2_rows(self, curie):
        rows = curie.bonus_figure_rows(358.0)
        by_level = {r["level"]: r for r in rows}
        assert by_level["node"]["accumulated_watts"] == 344
        assert by_level["chassis"]["bonus_watts"] == 500
        assert by_level["chassis"]["accumulated_watts"] == 6692
        assert by_level["rack"]["bonus_watts"] == 3400
        assert by_level["rack"]["accumulated_watts"] == 34360

    def test_paper_example_chassis_vs_20_nodes(self, curie):
        """Section VI-A worked example: a 6600 W reduction needs 20
        scattered nodes (6880 W) but only 18 grouped as a chassis
        (6692 W)."""
        assert 20 * curie.accumulated_node_watts(358.0) == 6880
        assert curie.accumulated_chassis_watts(358.0) == 6692
        assert curie.accumulated_chassis_watts(358.0) >= 6600

    def test_infrastructure_watts(self, curie):
        assert curie.infrastructure_watts() == 280 * 248 + 56 * 900


class TestScaling:
    def test_scaled_keeps_enclosure_shape(self, curie):
        small = curie.scaled(0.125)
        assert small.nodes_per_chassis == 18
        assert small.chassis_per_rack == 5
        assert small.racks == 7
        assert small.n_nodes == 7 * 5 * 18

    def test_scaled_never_below_one_rack(self, curie):
        tiny = curie.scaled(1e-6)
        assert tiny.racks == 1

    def test_scale_must_be_positive(self, curie):
        with pytest.raises(ValueError):
            curie.scaled(0)

    @given(st.floats(min_value=0.01, max_value=2.0))
    def test_scaled_bonuses_invariant(self, factor):
        scaled = CURIE_TOPOLOGY.scaled(factor)
        assert scaled.chassis_bonus_watts() == CURIE_TOPOLOGY.chassis_bonus_watts()
        assert scaled.rack_bonus_watts() == CURIE_TOPOLOGY.rack_bonus_watts()


class TestLevelSpec:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            LevelSpec("chassis", 0, 248.0)
        with pytest.raises(ValueError):
            LevelSpec("chassis", 18, -1.0)

    def test_holds_fields(self):
        spec = LevelSpec("rack", 5, 900.0)
        assert spec.name == "rack"
        assert spec.children_per_parent == 5
        assert spec.component_watts == 900.0
