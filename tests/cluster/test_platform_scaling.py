"""Property tests: scaling preserves power-accounting invariants.

``Topology.scaled`` / ``Machine.scaled`` underlie every ``--scale``
run, and since the platform registry they run over *every* platform's
shape, not just Curie's.  For each registry entry and a fuzzed scale
factor, the scaled hardware must keep the per-level power model
intact: down/idle/max bounds ordered, chassis/rack bonuses unchanged
(they are per-enclosure quantities), infrastructure watts consistent
with the enclosure counts, and a fresh accountant sitting exactly on
the idle floor.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.states import NodeState
from repro.platform import BUILTIN_PLATFORMS

#: ids so failures name the platform, not an index
_PLATFORMS = pytest.mark.parametrize(
    "platform", BUILTIN_PLATFORMS, ids=lambda p: p.name
)

factors = st.floats(
    min_value=0.01, max_value=3.0, allow_nan=False, allow_infinity=False
)


@_PLATFORMS
@settings(max_examples=25, deadline=None)
@given(factor=factors)
def test_topology_scaled_preserves_bonus_model(platform, factor):
    base = platform.topology()
    scaled = base.scaled(factor)

    # Shape: whole racks only, never below one, per-level shape kept.
    assert scaled.racks >= 1
    assert scaled.nodes_per_chassis == base.nodes_per_chassis
    assert scaled.chassis_per_rack == base.chassis_per_rack
    assert scaled.n_nodes == (
        scaled.racks * scaled.chassis_per_rack * scaled.nodes_per_chassis
    )

    # Bonuses are per-enclosure: invariant under scaling, and equal to
    # their defining sums (Figure 2's construction).
    assert scaled.chassis_bonus_watts() == base.chassis_bonus_watts()
    assert scaled.rack_bonus_watts() == base.rack_bonus_watts()
    assert scaled.chassis_bonus_watts() == (
        scaled.chassis_watts
        + scaled.nodes_per_chassis * scaled.node_down_watts
    )
    assert scaled.rack_bonus_watts() == (
        scaled.rack_watts + scaled.chassis_per_rack * scaled.chassis_bonus_watts()
    )

    # Infrastructure tracks the enclosure counts exactly.
    assert scaled.infrastructure_watts() == pytest.approx(
        scaled.n_chassis * scaled.chassis_watts + scaled.racks * scaled.rack_watts
    )

    # The whole Figure 2 table is scale-invariant (per-level rows).
    node_max = platform.frequency_table().max.watts
    assert scaled.bonus_figure_rows(node_max) == base.bonus_figure_rows(node_max)


@_PLATFORMS
@settings(max_examples=25, deadline=None)
@given(factor=factors)
def test_machine_scaled_preserves_power_bounds(platform, factor):
    machine = platform.build_machine().scaled(factor)
    table = machine.freq_table

    # Node type survives scaling.
    assert table == platform.frequency_table()
    assert machine.cores_per_node == platform.cores_per_node
    assert machine.topology.node_down_watts == table.down_watts

    # Down / idle / max power bounds stay strictly ordered: a dark
    # machine draws less than an idle one, which draws less than a
    # flat-out one (every registry platform has idle < max-step watts).
    down_floor = machine.n_nodes * table.down_watts
    assert down_floor < machine.idle_power() < machine.max_power()

    # Cap fractions always land inside the feasible power interval.
    for fraction in (0.4, 0.6, 0.8, 1.0):
        watts = fraction * machine.max_power()
        assert 0 < watts <= machine.max_power()

    # The DVFS cap floor (Section III) is a node-level property —
    # scale-invariant and in (0, 1].
    assert 0.0 < table.normalized_cap_floor() <= 1.0
    assert table.normalized_cap_floor() == (
        platform.frequency_table().normalized_cap_floor()
    )


@_PLATFORMS
@settings(max_examples=10, deadline=None)
@given(factor=factors)
def test_fresh_accountant_sits_on_idle_floor(platform, factor):
    machine = platform.build_machine().scaled(factor)
    acct = machine.new_accountant()
    assert acct.total_power() == pytest.approx(machine.idle_power())
    assert acct.idle_floor() == pytest.approx(machine.idle_power())
    assert acct.max_power() == pytest.approx(machine.max_power())
    assert int(acct.count_by_state[NodeState.IDLE]) == machine.n_nodes
