"""Tests for the Section VIII extension: in-flight frequency rescaling."""

import math

import pytest

from repro.cluster.curie import curie_machine
from repro.cluster.states import NodeState
from repro.rjms.config import PriorityWeights, SchedulerConfig
from repro.rjms.controller import Controller
from repro.rjms.job import JobState
from repro.rjms.reservations import PowercapReservation
from repro.sim.engine import EventKind, SimEngine
from repro.workload.spec import JobSpec

HOUR = 3600.0


@pytest.fixture
def machine():
    return curie_machine(scale=1 / 56)


def build(machine, policy, caps, **cfg):
    engine = SimEngine()
    config = SchedulerConfig(
        priority=PriorityWeights(age=1000, fairshare=0, job_size=0),
        dynamic_rescaling=True,
        **cfg,
    )
    ctrl = Controller(machine, policy, engine, config=config, powercaps=caps)
    return engine, ctrl


def submit(engine, ctrl, jid, t, cores, runtime, walltime):
    spec = JobSpec(jid, t, cores, runtime, walltime)
    engine.at(t, lambda: ctrl.submit(spec), kind=EventKind.JOB_SUBMIT)


class TestDynamicRescaling:
    def test_running_jobs_slowed_at_window_start(self, machine):
        floor = machine.new_accountant().idle_floor()
        # Budget: 60 nodes at 1.2 GHz over the idle floor.
        cap = PowercapReservation(HOUR, 2 * HOUR, watts=floor + 60 * (193 - 117) + 1)
        engine, ctrl = build(machine, "DVFS", [cap])
        # A job on 60 nodes with a *short* walltime that nevertheless
        # crosses the window (starts at 30 min, 1.5 h walltime): at
        # 2.7 GHz it exceeds the window budget.
        submit(engine, ctrl, 1, 0.5 * HOUR, cores=60 * 16,
               runtime=1.4 * HOUR, walltime=1.5 * HOUR)
        engine.run(until=HOUR + 1)
        job = ctrl.jobs[1]
        assert job.state == JobState.RUNNING
        assert job.freq_ghz == 1.2  # stepped down to fit the cap
        assert ctrl.accountant.total_power() <= cap.watts + 1e-6
        engine.run()
        assert job.state == JobState.COMPLETED
        ctrl.accountant.verify()

    def test_remaining_runtime_restretched(self, machine):
        floor = machine.new_accountant().idle_floor()
        cap = PowercapReservation(HOUR, 2 * HOUR, watts=floor + 10 * (193 - 117) + 1)
        engine, ctrl = build(machine, "DVFS", [cap])
        # Starts at t=0 at 2.7 GHz (no active cap, but the window is
        # crossed -> soft mode may already slow it; use a walltime that
        # avoids the window to get 2.7, then extend runtime past it).
        submit(engine, ctrl, 1, 0.0, cores=10 * 16,
               runtime=1.9 * HOUR, walltime=2.0 * HOUR)
        engine.run(until=1.0)
        job = ctrl.jobs[1]
        first_ghz = job.freq_ghz
        engine.run(until=HOUR + 1)
        assert job.freq_ghz == 1.2
        # End time = window start + remaining * (deg_new / deg_old).
        deg_new = ctrl.policy.degradation(1.2)
        deg_old = ctrl.policy.degradation(first_ghz)
        remaining_at_window = job.start_time + 1.9 * HOUR * deg_old - HOUR
        expected_end = HOUR + remaining_at_window * deg_new / deg_old
        engine.run()
        assert job.end_time == pytest.approx(expected_end, rel=1e-9)

    def test_shut_policy_cannot_rescale(self, machine):
        floor = machine.new_accountant().idle_floor()
        cap = PowercapReservation(HOUR, 2 * HOUR, watts=floor + 10 * (358 - 117))
        engine, ctrl = build(machine, "SHUT", [cap])
        submit(engine, ctrl, 1, 0.0, cores=30 * 16,
               runtime=1.9 * HOUR, walltime=2.0 * HOUR)
        engine.run(until=HOUR + 1)
        job = ctrl.jobs[1]
        if job.state == JobState.RUNNING:
            assert job.freq_ghz == 2.7  # SHUT has no ladder to walk

    def test_rescaling_reduces_violation_duration(self, machine):
        """With rescaling, the cluster returns under the cap at the
        window start instead of waiting for the drain."""
        floor = machine.new_accountant().idle_floor()
        cap_watts = floor + 40 * (193 - 117) + 1
        caps = [PowercapReservation(HOUR, 2 * HOUR, watts=cap_watts)]

        def over_cap_at_window(rescale):
            engine = SimEngine()
            config = SchedulerConfig(
                priority=PriorityWeights(age=1000, fairshare=0, job_size=0),
                dynamic_rescaling=rescale,
            )
            ctrl = Controller(machine, "DVFS", engine, config=config, powercaps=caps)
            for jid in range(40):
                submit(engine, ctrl, jid, 0.0, cores=16,
                       runtime=1.8 * HOUR, walltime=1.9 * HOUR)
            engine.run(until=HOUR + 1)
            return ctrl.accountant.total_power() - cap_watts

        assert over_cap_at_window(True) <= 1e-6
        assert over_cap_at_window(False) > 0

    def test_mix_rescaling_respects_range_floor(self, machine):
        floor = machine.new_accountant().idle_floor()
        cap = PowercapReservation(HOUR, 2 * HOUR, watts=floor + 1)
        engine, ctrl = build(machine, "MIX", [cap])
        submit(engine, ctrl, 1, 0.0, cores=10 * 16,
               runtime=1.9 * HOUR, walltime=2.0 * HOUR)
        engine.run(until=HOUR + 1)
        job = ctrl.jobs[1]
        if job.state == JobState.RUNNING:
            # Even an unreachable cap never pushes MIX below 2.0 GHz.
            assert job.freq_ghz >= 2.0
        ctrl.accountant.verify()
