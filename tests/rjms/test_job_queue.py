"""Unit tests for Job lifecycle, FairShare and the PendingQueue."""

import numpy as np
import pytest

from repro.rjms.config import PriorityWeights
from repro.rjms.fairshare import FairShare
from repro.rjms.job import Job, JobState
from repro.rjms.queue import PendingQueue
from repro.workload.spec import JobSpec


def mkjob(jid, submit=0.0, cores=16, runtime=60.0, walltime=86400.0, user=0):
    return Job(spec=JobSpec(jid, submit, cores, runtime, walltime, user), n_nodes=-(-cores // 16))


class TestJob:
    def test_lifecycle(self):
        j = mkjob(1)
        assert j.state == JobState.PENDING
        j.start(10.0, np.array([0]), 7, 2.7, 1.0)
        assert j.state == JobState.RUNNING
        assert j.expected_end == 10.0 + 86400.0
        j.finish(70.0)
        assert j.state == JobState.COMPLETED
        assert j.end_time == 70.0

    def test_stretching(self):
        j = mkjob(1, runtime=100.0, walltime=1000.0)
        j.start(0.0, np.array([0]), 0, 1.2, 1.63)
        assert j.stretched_runtime == pytest.approx(163.0)
        assert j.stretched_walltime == pytest.approx(1630.0)
        assert j.expected_end == pytest.approx(1630.0)

    def test_start_validates(self):
        j = mkjob(1, cores=32)  # 2 nodes
        with pytest.raises(ValueError, match="needs 2 nodes"):
            j.start(0.0, np.array([0]), 7, 2.7, 1.0)
        with pytest.raises(ValueError, match="degradation"):
            j.start(0.0, np.array([0, 1]), 7, 2.7, 0.5)
        j.start(0.0, np.array([0, 1]), 7, 2.7, 1.0)
        with pytest.raises(ValueError):
            j.start(0.0, np.array([0, 1]), 7, 2.7, 1.0)

    def test_finish_requires_running(self):
        with pytest.raises(ValueError):
            mkjob(1).finish(0.0)

    def test_expected_end_requires_start(self):
        with pytest.raises(ValueError):
            _ = mkjob(1).expected_end

    def test_killed_state(self):
        j = mkjob(1)
        j.start(0.0, np.array([0]), 7, 2.7, 1.0)
        j.finish(5.0, killed=True)
        assert j.state == JobState.KILLED


class TestFairShare:
    def test_unused_system_gives_ones(self):
        fs = FairShare(4)
        assert np.allclose(fs.factors(0.0), 1.0)

    def test_heavy_user_penalised(self):
        fs = FairShare(2)
        fs.record_usage(0, 1000.0, 0.0)
        f = fs.factors(0.0)
        assert f[0] < f[1]
        assert f[0] == pytest.approx(2 ** (-2.0))  # all usage, half shares

    def test_decay_restores_factor(self):
        fs = FairShare(2, half_life=100.0)
        fs.record_usage(0, 1000.0, 0.0)
        f0 = fs.factor(0, 0.0)
        # Decay shrinks absolute usage but both users' relative shares
        # are unchanged when only one has usage; add competing usage.
        fs.record_usage(1, 1000.0, 0.0)
        assert fs.factor(0, 0.0) > f0

    def test_seed_usage(self):
        fs = FairShare(3)
        fs.seed_usage(np.array([10.0, 0.0, 0.0]))
        assert fs.factor(0, 0.0) < fs.factor(1, 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            FairShare(0)
        with pytest.raises(ValueError):
            FairShare(2, half_life=0)
        fs = FairShare(2)
        with pytest.raises(IndexError):
            fs.record_usage(5, 1.0, 0.0)
        with pytest.raises(ValueError):
            fs.record_usage(0, -1.0, 0.0)
        with pytest.raises(ValueError):
            fs.seed_usage(np.array([1.0]))
        fs.record_usage(0, 1.0, 100.0)
        with pytest.raises(ValueError, match="backwards"):
            fs.factors(50.0)


class TestPendingQueue:
    def make_queue(self, weights=None):
        fs = FairShare(8)
        return PendingQueue(1440, weights or PriorityWeights(), fs), fs

    def test_add_remove_contains(self):
        q, _ = self.make_queue()
        j = mkjob(1)
        q.add(j)
        assert len(q) == 1 and 1 in q
        assert q.job(1) is j
        assert q.remove(1) is j
        assert len(q) == 0 and 1 not in q

    def test_duplicate_rejected(self):
        q, _ = self.make_queue()
        q.add(mkjob(1))
        with pytest.raises(ValueError):
            q.add(mkjob(1))

    def test_fcfs_order_among_equals(self):
        q, _ = self.make_queue(PriorityWeights(age=1000, fairshare=0, job_size=0))
        for jid, submit in ((3, 20.0), (1, 0.0), (2, 10.0)):
            q.add(mkjob(jid, submit=submit))
        assert list(q.order(100.0)) == [1, 2, 3]

    def test_age_saturation_keeps_fcfs_ties_deterministic(self):
        q, _ = self.make_queue(PriorityWeights(age=1000, fairshare=0, job_size=0, max_age=10.0))
        q.add(mkjob(2, submit=5.0))
        q.add(mkjob(1, submit=0.0))
        # Both saturated at age >= 10: tie broken by submit then id.
        assert list(q.order(1000.0)) == [1, 2]

    def test_size_weight_prefers_wide_jobs(self):
        q, _ = self.make_queue(PriorityWeights(age=0, fairshare=0, job_size=100))
        q.add(mkjob(1, cores=16))
        q.add(mkjob(2, cores=1440))
        assert list(q.order(0.0)) == [2, 1]

    def test_fairshare_orders_users(self):
        q, fs = self.make_queue(PriorityWeights(age=0, fairshare=1000, job_size=0))
        fs.record_usage(0, 1e6, 0.0)
        q.add(mkjob(1, user=0))
        q.add(mkjob(2, user=1))
        assert list(q.order(0.0)) == [2, 1]

    def test_growth_beyond_initial_capacity(self):
        q, _ = self.make_queue()
        for jid in range(600):
            q.add(mkjob(jid, submit=float(jid)))
        assert len(q) == 600
        order = q.order(1e6)
        assert len(order) == 600
        assert order[0] == 0

    def test_swap_remove_keeps_consistency(self):
        q, _ = self.make_queue(PriorityWeights(age=1000, fairshare=0, job_size=0))
        for jid in range(10):
            q.add(mkjob(jid, submit=float(jid)))
        q.remove(0)
        q.remove(5)
        order = list(q.order(100.0))
        assert order == [1, 2, 3, 4, 6, 7, 8, 9]

    def test_empty_order(self):
        q, _ = self.make_queue()
        assert q.order(0.0).size == 0

    def test_jobs_in_order_returns_jobs(self):
        q, _ = self.make_queue()
        q.add(mkjob(7))
        (job,) = q.jobs_in_order(0.0)
        assert job.job_id == 7
