"""Unit tests for EASY backfilling and the reservation registry."""

import math

import numpy as np
import pytest

from repro.cluster.curie import CURIE_TOPOLOGY
from repro.rjms.backfill import BackfillWindow, easy_backfill_window
from repro.rjms.reservations import (
    PowercapReservation,
    ReservationRegistry,
    ShutdownReservation,
    shutdown_savings_from_idle,
)


class TestEasyBackfill:
    def test_blocker_fits_now(self):
        w = easy_backfill_window(10, 20, [], now=5.0)
        assert w.shadow_time == 5.0
        assert w.extra_nodes == 10

    def test_shadow_at_first_sufficient_completion(self):
        running = [(100.0, 5), (50.0, 8), (200.0, 30)]
        w = easy_backfill_window(20, 4, running, now=0.0)
        # free 4 + 8 (t=50) = 12 < 20; + 5 (t=100) = 17 < 20; + 30 (t=200) -> 47.
        assert w.shadow_time == 200.0
        assert w.extra_nodes == 47 - 20

    def test_impossible_blocker(self):
        w = easy_backfill_window(100, 4, [(10.0, 5)], now=0.0)
        assert math.isinf(w.shadow_time)

    def test_admits_short_job(self):
        w = BackfillWindow(shadow_time=100.0, extra_nodes=2)
        assert w.admits(50, expected_end=99.0)
        assert not w.admits(50, expected_end=101.0)
        assert w.admits(2, expected_end=1e9)

    def test_overdue_running_jobs_treated_as_now(self):
        w = easy_backfill_window(5, 0, [(-10.0, 5)], now=0.0)
        assert w.shadow_time == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            easy_backfill_window(0, 5, [], now=0.0)
        with pytest.raises(ValueError):
            easy_backfill_window(5, -1, [], now=0.0)


class TestPowercapReservation:
    def test_validation(self):
        with pytest.raises(ValueError):
            PowercapReservation(0.0, 10.0, watts=0)
        with pytest.raises(ValueError):
            PowercapReservation(10.0, 10.0, watts=100)

    def test_active_and_overlap(self):
        c = PowercapReservation(10.0, 20.0, watts=100)
        assert c.active_at(10.0) and c.active_at(19.9)
        assert not c.active_at(20.0) and not c.active_at(9.9)
        assert c.overlaps(0.0, 10.1)
        assert not c.overlaps(0.0, 10.0)
        assert not c.overlaps(20.0, 30.0)

    def test_open_ended(self):
        c = PowercapReservation(10.0, math.inf, watts=100)
        assert c.active_at(1e12)


class TestShutdownReservation:
    def test_duplicate_nodes_rejected(self):
        with pytest.raises(ValueError):
            ShutdownReservation(0.0, 10.0, np.array([1, 1]))

    def test_savings_scattered_vs_grouped(self):
        topo = CURIE_TOPOLOGY
        # 18 scattered nodes (one per chassis).
        scattered = np.arange(18) * 18
        grouped = topo.nodes_of_chassis(0)
        s_scattered = shutdown_savings_from_idle(scattered, topo, 117.0)
        s_grouped = shutdown_savings_from_idle(grouped, topo, 117.0)
        assert s_scattered == pytest.approx(18 * (117 - 14))
        assert s_grouped == pytest.approx(18 * 117 + 248)
        assert s_grouped > s_scattered

    def test_savings_full_rack(self):
        topo = CURIE_TOPOLOGY
        s = shutdown_savings_from_idle(topo.nodes_of_rack(0), topo, 117.0)
        assert s == pytest.approx(5 * (18 * 117 + 248) + 900)

    def test_savings_empty(self):
        assert shutdown_savings_from_idle(np.array([], int), CURIE_TOPOLOGY, 117.0) == 0.0


class TestRegistry:
    def test_cap_at_picks_minimum(self):
        reg = ReservationRegistry(100)
        reg.add_powercap(PowercapReservation(0.0, 100.0, watts=500))
        reg.add_powercap(PowercapReservation(50.0, 150.0, watts=300))
        assert reg.cap_at(10.0) == 500
        assert reg.cap_at(75.0) == 300
        assert math.isinf(reg.cap_at(200.0))

    def test_future_caps(self):
        reg = ReservationRegistry(100)
        reg.add_powercap(PowercapReservation(50.0, 100.0, watts=500))
        assert len(reg.future_caps(0.0)) == 1
        assert len(reg.future_caps(50.0)) == 0

    def test_shutdown_node_mask(self):
        reg = ReservationRegistry(100)
        reg.add_shutdown(ShutdownReservation(50.0, 100.0, np.array([3, 4])))
        mask = reg.shutdown_node_mask(0.0, 60.0)
        assert mask[3] and mask[4] and mask.sum() == 2
        assert reg.shutdown_node_mask(100.0, 200.0).sum() == 0

    def test_unknown_nodes_rejected(self):
        reg = ReservationRegistry(10)
        with pytest.raises(ValueError):
            reg.add_shutdown(ShutdownReservation(0.0, 1.0, np.array([99])))

    def test_boundaries_sorted_unique(self):
        reg = ReservationRegistry(100)
        reg.add_powercap(PowercapReservation(10.0, 20.0, watts=5))
        reg.add_shutdown(ShutdownReservation(10.0, 20.0, np.array([1])))
        reg.add_powercap(PowercapReservation(5.0, math.inf, watts=7))
        assert reg.boundaries() == [5.0, 10.0, 20.0]
