"""Integration tests: multiple/overlapping cap windows and edge cases."""

import math

import numpy as np
import pytest

from repro.cluster.curie import curie_machine
from repro.cluster.states import NodeState
from repro.rjms.config import PriorityWeights, SchedulerConfig
from repro.rjms.controller import Controller
from repro.rjms.reservations import PowercapReservation
from repro.sim.engine import EventKind, SimEngine
from repro.sim.replay import powercap_reservation, run_replay
from repro.workload.intervals import generate_interval
from repro.workload.spec import JobSpec

HOUR = 3600.0


@pytest.fixture(scope="module")
def machine():
    return curie_machine(scale=1 / 56)


@pytest.fixture(scope="module")
def jobs(machine):
    return generate_interval(machine, "medianjob")


class TestMultipleWindows:
    def test_two_disjoint_windows(self, machine, jobs):
        caps = [
            powercap_reservation(machine, 0.6, 1 * HOUR, 1.5 * HOUR),
            powercap_reservation(machine, 0.5, 3 * HOUR, 3.5 * HOUR),
        ]
        r = run_replay(machine, jobs, "SHUT", duration=5 * HOUR, powercaps=caps)
        grid = r.recorder.to_grid(0.0, 5 * HOUR, 60.0)
        t = grid["time"]
        w1 = (t >= 1 * HOUR) & (t < 1.5 * HOUR)
        w2 = (t >= 3 * HOUR) & (t < 3.5 * HOUR)
        between = (t >= 2 * HOUR) & (t < 2.75 * HOUR)
        # Both windows see switch-offs; the second is deeper.
        assert grid["off_cores"][w1].max() > 0
        assert grid["off_cores"][w2].max() > 0
        assert grid["off_cores"][w2].max() >= grid["off_cores"][w1].max()
        # Nodes come back between the windows.
        assert grid["off_cores"][between].min() == 0
        assert len(r.controller.shutdown_plans) == 2

    def test_overlapping_caps_use_minimum(self, machine):
        engine = SimEngine()
        caps = [
            PowercapReservation(0.0, math.inf, watts=0.8 * machine.max_power()),
            PowercapReservation(0.0, 2 * HOUR, watts=0.5 * machine.max_power()),
        ]
        ctrl = Controller(
            machine,
            "IDLE",
            engine,
            config=SchedulerConfig(
                priority=PriorityWeights(age=1000, fairshare=0, job_size=0)
            ),
            powercaps=caps,
        )
        assert ctrl.registry.cap_at(HOUR) == 0.5 * machine.max_power()
        assert ctrl.registry.cap_at(3 * HOUR) == 0.8 * machine.max_power()

    def test_open_ended_cap(self, machine, jobs):
        caps = [powercap_reservation(machine, 0.6, HOUR)]  # end = inf
        r = run_replay(machine, jobs, "SHUT", duration=3 * HOUR, powercaps=caps)
        # Nodes stay off through the end of the replay.
        assert int(r.controller.accountant.count_by_state[NodeState.OFF]) > 0


class TestHugeJobBehaviour:
    def test_machine_wide_job_waits_for_window_end(self, machine):
        """Fig. 6's observation: a huge job is scheduled directly
        after the powercap period (it cannot coexist with the
        reserved shutdown nodes)."""
        engine = SimEngine()
        cap = powercap_reservation(machine, 0.6, HOUR, 2 * HOUR)
        ctrl = Controller(
            machine,
            "SHUT",
            engine,
            config=SchedulerConfig(
                priority=PriorityWeights(age=1000, fairshare=0, job_size=0)
            ),
            powercaps=[cap],
        )
        spec = JobSpec(1, 0.0, machine.total_cores, 1000.0, 4 * HOUR)
        engine.at(0.0, lambda: ctrl.submit(spec), kind=EventKind.JOB_SUBMIT)
        engine.run(until=2 * HOUR + 60)
        job = ctrl.jobs[1]
        assert job.start_time is not None
        assert job.start_time >= 2 * HOUR  # right after the window

    def test_machine_wide_job_runs_without_cap(self, machine):
        engine = SimEngine()
        ctrl = Controller(machine, "NONE", engine)
        spec = JobSpec(1, 0.0, machine.total_cores, 1000.0, 4 * HOUR)
        engine.at(0.0, lambda: ctrl.submit(spec), kind=EventKind.JOB_SUBMIT)
        engine.run()
        assert ctrl.jobs[1].start_time == 0.0


class TestMinPassInterval:
    def test_rate_limited_passes_still_schedule_everything(self, machine):
        engine = SimEngine()
        ctrl = Controller(
            machine,
            "NONE",
            engine,
            config=SchedulerConfig(
                priority=PriorityWeights(age=1000, fairshare=0, job_size=0),
                min_pass_interval=30.0,
            ),
        )
        for jid in range(50):
            spec = JobSpec(jid, float(jid), 16, 100.0, HOUR)
            engine.at(spec.submit_time, lambda s=spec: ctrl.submit(s),
                      kind=EventKind.JOB_SUBMIT)
        engine.run()
        assert all(j.start_time is not None for j in ctrl.jobs.values())


class TestFairShareEndToEnd:
    def test_heavy_user_deprioritised(self, machine):
        """With fair-share dominating, a fresh user's job jumps ahead
        of a heavy user's backlog."""
        engine = SimEngine()
        ctrl = Controller(
            machine,
            "NONE",
            engine,
            config=SchedulerConfig(
                priority=PriorityWeights(age=0, fairshare=10000, job_size=0)
            ),
        )
        # User 0 burns usage first.
        for jid in range(90):
            spec = JobSpec(jid, 0.0, 16 * 16, 600.0, HOUR, user=0)
            engine.at(0.0, lambda s=spec: ctrl.submit(s), kind=EventKind.JOB_SUBMIT)
        # Later, user 0 and user 1 each queue one more job; user 1
        # should start first once nodes free.
        for jid, user in ((1000, 0), (1001, 1)):
            spec = JobSpec(jid, 10.0, 90 * 16, 600.0, HOUR, user=user)
            engine.at(10.0, lambda s=spec: ctrl.submit(s), kind=EventKind.JOB_SUBMIT)
        engine.run()
        assert ctrl.jobs[1001].start_time <= ctrl.jobs[1000].start_time
