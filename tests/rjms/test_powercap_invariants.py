"""Controller invariants under randomized powercap windows.

Three properties the paper's mechanism depends on, checked on every
recorded instant of randomized replays:

* **cap safety** — instantaneous cluster power never exceeds the
  active cap (hard from a cold start for every enforcing policy; with
  kill enforcement also for windows opening over a loaded cluster);
* **conservation** — node-state accounting always sums to the machine
  size (busy + idle + off, with instantaneous transitions);
* **reservation safety** — no job ever occupies a node inside that
  node's shutdown window.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster.curie import curie_machine
from repro.rjms.config import SchedulerConfig
from repro.sim.replay import run_replay
from repro.rjms.reservations import PowercapReservation
from repro.workload.spec import JobSpec

HOUR = 3600.0
MACHINE = curie_machine(scale=1 / 56)  # 90 nodes

#: caps below the all-idle floor are unreachable without switch-off
_IDLE_FRACTION = MACHINE.idle_power() / MACHINE.max_power()


@st.composite
def workloads(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    jobs = []
    for jid in range(n):
        submit = draw(st.floats(min_value=0.0, max_value=1.5 * HOUR))
        cores = draw(st.integers(min_value=1, max_value=MACHINE.total_cores))
        runtime = draw(st.floats(min_value=1.0, max_value=HOUR))
        slack = draw(st.floats(min_value=1.0, max_value=40.0))
        jobs.append(JobSpec(jid, submit, cores, runtime, runtime * slack))
    jobs.sort(key=lambda j: (j.submit_time, j.job_id))
    return jobs


@st.composite
def windows(draw):
    """A randomized mid-replay cap window."""
    start = draw(st.floats(min_value=0.0, max_value=1.5 * HOUR))
    length = draw(st.floats(min_value=900.0, max_value=1.5 * HOUR))
    fraction = draw(st.floats(min_value=_IDLE_FRACTION + 0.05, max_value=0.9))
    return PowercapReservation(
        start, start + length, watts=fraction * MACHINE.max_power()
    )


_SETTINGS = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


@settings(max_examples=10, **_SETTINGS)
@given(jobs=workloads(), window=windows())
def test_cold_start_cap_never_exceeded(jobs, window):
    """A cap active from t=0 is hard: every recorded instant fits it,
    for every enforcing policy (no pre-cap jobs exist to drain)."""
    cap = PowercapReservation(0.0, window.end, watts=window.watts)
    for policy in ("IDLE", "SHUT", "DVFS", "MIX"):
        result = run_replay(MACHINE, jobs, policy, duration=2 * HOUR, powercaps=[cap])
        for s in result.recorder.samples:
            if cap.active_at(s.time):
                assert s.power_watts <= cap.watts * (1 + 1e-9), (policy, s.time)


@settings(max_examples=10, **_SETTINGS)
@given(jobs=workloads(), window=windows())
def test_kill_enforcement_keeps_window_under_cap(jobs, window):
    """With the paper's "extreme actions", a window opening over a
    loaded cluster is enforced for its entire span."""
    config = SchedulerConfig(kill_on_violation=True)
    result = run_replay(
        MACHINE, jobs, "IDLE", duration=2 * HOUR, powercaps=[window], config=config
    )
    for s in result.recorder.samples:
        if window.active_at(s.time):
            assert s.power_watts <= window.watts * (1 + 1e-9), s.time
    result.controller.accountant.verify()


@settings(max_examples=10, **_SETTINGS)
@given(
    jobs=workloads(),
    window=windows(),
    policy=st.sampled_from(["NONE", "IDLE", "SHUT", "DVFS", "MIX"]),
)
def test_node_accounting_sums_to_machine_size(jobs, window, policy):
    """busy + idle + off cores equal the machine at every instant.

    Transitions are instantaneous in the paper's emulation (default
    config), so the three states partition the machine.
    """
    result = run_replay(MACHINE, jobs, policy, duration=2 * HOUR, powercaps=[window])
    ft = MACHINE.freq_table
    for s in result.recorder.samples:
        busy_cores = sum(s.cores_by_freq)
        idle_cores = s.idle_watts / ft.idle_watts * MACHINE.cores_per_node
        total = busy_cores + idle_cores + s.off_cores
        assert total == pytest.approx(MACHINE.total_cores), s.time
    # Terminal state agrees with the incremental accountant.
    counts = result.controller.accountant.count_by_state
    assert int(counts.sum()) == MACHINE.n_nodes
    result.controller.accountant.verify()


@settings(max_examples=10, **_SETTINGS)
@given(jobs=workloads(), window=windows(), policy=st.sampled_from(["SHUT", "MIX"]))
def test_no_job_occupies_node_inside_its_shutdown_window(jobs, window, policy):
    """Placement respects shutdown reservations: a job and a shutdown
    window never share a node and an instant."""
    result = run_replay(MACHINE, jobs, policy, duration=3 * HOUR, powercaps=[window])
    ctrl = result.controller
    shutdowns = ctrl.registry.shutdowns
    if not shutdowns:
        return  # cap high enough that no switch-off was planned
    for job in ctrl.jobs.values():
        if job.start_time is None or job.nodes is None:
            continue
        end = job.end_time if job.end_time is not None else result.duration
        for sd in shutdowns:
            if not sd.overlaps(job.start_time, end):
                continue
            shared = np.intersect1d(job.nodes, sd.nodes)
            assert shared.size == 0, (
                job.job_id,
                job.start_time,
                end,
                (sd.start, sd.end),
                shared[:5],
            )
