"""Integration tests for the RJMS controller on hand-crafted scenarios.

One-rack Curie (90 nodes, 5 chassis, 1440 cores) throughout.
"""

import math

import numpy as np
import pytest

from repro.cluster.curie import curie_machine
from repro.cluster.states import NodeState
from repro.rjms.config import PriorityWeights, SchedulerConfig
from repro.rjms.controller import Controller
from repro.rjms.job import JobState
from repro.rjms.reservations import PowercapReservation
from repro.sim.engine import EventKind, SimEngine
from repro.workload.spec import JobSpec

HOUR = 3600.0


@pytest.fixture
def machine():
    return curie_machine(scale=1 / 56)


def build(machine, policy="NONE", caps=(), **cfg_kw):
    engine = SimEngine()
    config = SchedulerConfig(
        priority=PriorityWeights(age=1000, fairshare=0, job_size=0), **cfg_kw
    )
    ctrl = Controller(machine, policy, engine, config=config, powercaps=caps)
    return engine, ctrl


def submit(engine, ctrl, jid, submit_t, cores, runtime, walltime=None, user=0):
    spec = JobSpec(jid, submit_t, cores, runtime, walltime or max(runtime, 3600.0), user)
    engine.at(submit_t, lambda: ctrl.submit(spec), kind=EventKind.JOB_SUBMIT)
    return spec


class TestBasicScheduling:
    def test_single_job_runs_to_completion(self, machine):
        engine, ctrl = build(machine)
        submit(engine, ctrl, 1, 0.0, cores=16, runtime=100.0)
        engine.run()
        job = ctrl.jobs[1]
        assert job.state == JobState.COMPLETED
        assert job.start_time == 0.0
        assert job.end_time == 100.0
        assert job.freq_ghz == 2.7
        assert ctrl.n_running == 0 and ctrl.n_pending == 0
        ctrl.accountant.verify()

    def test_fcfs_queueing_when_full(self, machine):
        engine, ctrl = build(machine)
        # Fill the machine with 90 single-node jobs for 100 s.
        for jid in range(90):
            submit(engine, ctrl, jid, 0.0, cores=16, runtime=100.0)
        submit(engine, ctrl, 999, 1.0, cores=16, runtime=50.0)
        engine.run()
        late = ctrl.jobs[999]
        assert late.start_time == pytest.approx(100.0)
        assert late.end_time == pytest.approx(150.0)

    def test_whole_node_allocation(self, machine):
        engine, ctrl = build(machine)
        submit(engine, ctrl, 1, 0.0, cores=17, runtime=10.0)  # 2 nodes
        engine.run()
        assert len(ctrl.jobs[1].nodes) == 2

    def test_too_wide_job_rejected(self, machine):
        engine, ctrl = build(machine)
        submit(engine, ctrl, 1, 0.0, cores=machine.total_cores + 16, runtime=10.0)
        engine.run()
        assert ctrl.rejected == [1]
        assert 1 not in ctrl.jobs

    def test_utilization_and_release(self, machine):
        engine, ctrl = build(machine)
        submit(engine, ctrl, 1, 0.0, cores=45 * 16, runtime=100.0)
        engine.run(until=50.0)
        assert ctrl.utilization() == pytest.approx(0.5)
        engine.run()
        assert ctrl.utilization() == 0.0
        assert ctrl.accountant.count_by_state[NodeState.IDLE] == 90

    def test_determinism(self, machine):
        def run_once():
            engine, ctrl = build(machine)
            rng = np.random.default_rng(5)
            for jid in range(200):
                submit(
                    engine,
                    ctrl,
                    jid,
                    float(rng.uniform(0, 1000)),
                    cores=int(rng.integers(1, 600)),
                    runtime=float(rng.uniform(10, 500)),
                )
            engine.run()
            return [(j.job_id, j.start_time, j.end_time) for j in ctrl.jobs.values()]

        assert run_once() == run_once()


class TestBackfilling:
    def test_short_job_backfills_past_blocker(self, machine):
        engine, ctrl = build(machine)
        # 60 nodes busy until t=1000 (walltime tight).
        submit(engine, ctrl, 1, 0.0, cores=60 * 16, runtime=1000.0, walltime=1000.0)
        # Blocker needs 50 nodes: must wait for job 1.
        submit(engine, ctrl, 2, 1.0, cores=50 * 16, runtime=100.0, walltime=200.0)
        # Short narrow job fits in the 30 spare nodes AND ends before
        # the shadow time.
        submit(engine, ctrl, 3, 2.0, cores=16, runtime=50.0, walltime=60.0)
        engine.run()
        assert ctrl.jobs[3].start_time == pytest.approx(2.0)
        assert ctrl.jobs[2].start_time == pytest.approx(1000.0)

    def test_long_walltime_job_does_not_delay_blocker(self, machine):
        engine, ctrl = build(machine)
        submit(engine, ctrl, 1, 0.0, cores=60 * 16, runtime=1000.0, walltime=1000.0)
        submit(engine, ctrl, 2, 1.0, cores=50 * 16, runtime=100.0, walltime=200.0)
        # 40-node job with a huge walltime: would delay the blocker
        # (only 90-50=40 extra nodes... blocker needs 50 of 90: extra
        # is 90-60(free at shadow... compute: free 30 now; shadow at
        # t=1000 frees 60 -> extra = 30+60-50 = 40).  40 nodes <= 40
        # extra: admitted!  Use 41 nodes to exceed the allowance.
        submit(engine, ctrl, 3, 2.0, cores=41 * 16, runtime=100.0, walltime=86400.0)
        engine.run()
        assert ctrl.jobs[3].start_time >= 1000.0

    def test_backfill_disabled_strict_fcfs(self, machine):
        engine, ctrl = build(machine, backfill=False)
        submit(engine, ctrl, 1, 0.0, cores=60 * 16, runtime=1000.0, walltime=1000.0)
        submit(engine, ctrl, 2, 1.0, cores=50 * 16, runtime=100.0, walltime=200.0)
        submit(engine, ctrl, 3, 2.0, cores=16, runtime=50.0, walltime=60.0)
        engine.run()
        # Without backfilling, job 3 waits behind the blocker.
        assert ctrl.jobs[3].start_time >= 1000.0

    def test_backfill_depth_limits_scan(self, machine):
        engine, ctrl = build(machine, backfill_depth=1)
        submit(engine, ctrl, 1, 0.0, cores=60 * 16, runtime=1000.0, walltime=1000.0)
        submit(engine, ctrl, 2, 1.0, cores=50 * 16, runtime=100.0, walltime=200.0)
        # With depth 1, every pass examines only the blocker (job 2):
        # job 3 is never considered for backfill while 1 runs.
        submit(engine, ctrl, 3, 2.0, cores=16, runtime=50.0, walltime=60.0)
        engine.run()
        assert ctrl.jobs[3].start_time >= 1000.0


class TestActiveCap:
    def test_idle_policy_gates_on_power(self, machine):
        # Budget: idle floor + 10 busy nodes at 2.7.
        engine0, ctrl0 = build(machine)
        floor = ctrl0.accountant.idle_floor()
        cap = PowercapReservation(0.0, math.inf, watts=floor + 10 * (358 - 117) + 1)
        engine, ctrl = build(machine, policy="IDLE", caps=[cap])
        for jid in range(20):
            submit(engine, ctrl, jid, 0.0, cores=16, runtime=100.0)
        engine.run(until=50.0)
        assert ctrl.n_running == 10
        assert ctrl.accountant.total_power() <= cap.watts
        engine.run()
        # They all eventually complete, ten at a time.
        assert all(j.state == JobState.COMPLETED for j in ctrl.jobs.values())

    def test_dvfs_lowers_frequency_and_stretches(self, machine):
        engine0, ctrl0 = build(machine)
        floor = ctrl0.accountant.idle_floor()
        # Room for 10 nodes at 1.4 GHz (96 W) but not 1.6 (117 W).
        cap = PowercapReservation(0.0, math.inf, watts=floor + 10 * 96 + 5)
        engine, ctrl = build(machine, policy="DVFS", caps=[cap])
        submit(engine, ctrl, 1, 0.0, cores=10 * 16, runtime=100.0)
        engine.run()
        job = ctrl.jobs[1]
        assert job.freq_ghz == 1.4
        expected_deg = 1.0 + 0.63 * (2.7 - 1.4) / (2.7 - 1.2)
        assert job.degradation == pytest.approx(expected_deg)
        assert job.end_time == pytest.approx(100.0 * expected_deg)

    def test_mix_shuts_down_and_keeps_high_frequencies(self, machine):
        """An immediate low cap under MIX triggers the offline
        shutdown; alive-node jobs then run inside the MIX range
        (>= 2.0 GHz) and the cap is honoured throughout."""
        engine0, ctrl0 = build(machine)
        floor = ctrl0.accountant.idle_floor()
        cap = PowercapReservation(0.0, math.inf, watts=floor + 10 * (269 - 117) + 1)
        engine, ctrl = build(machine, policy="MIX", caps=[cap])
        for jid in range(30):
            submit(engine, ctrl, jid, 0.0, cores=10 * 16, runtime=100.0)
        engine.run(until=10.0)
        plan = ctrl.shutdown_plans[0]
        assert plan.any_shutdown
        assert int(ctrl.accountant.count_by_state[NodeState.OFF]) > 0
        started = [j for j in ctrl.jobs.values() if j.freq_ghz is not None]
        assert started
        assert all(j.freq_ghz >= 2.0 for j in started)
        assert ctrl.accountant.total_power() <= cap.watts + 1e-6

    def test_none_policy_ignores_caps(self, machine):
        cap = PowercapReservation(0.0, math.inf, watts=1.0)
        engine, ctrl = build(machine, policy="NONE", caps=[cap])
        submit(engine, ctrl, 1, 0.0, cores=90 * 16, runtime=100.0)
        engine.run()
        assert ctrl.jobs[1].state == JobState.COMPLETED
        assert ctrl.jobs[1].freq_ghz == 2.7


class TestShutdownWindows:
    def test_shut_policy_window_lifecycle(self, machine):
        """Nodes reserved by the offline plan go OFF during the window
        and come back after; the cap is honoured by construction."""
        m = machine
        cap = PowercapReservation(HOUR, 2 * HOUR, watts=0.6 * m.max_power())
        engine, ctrl = build(m, policy="SHUT", caps=[cap])
        engine.run(until=HOUR + 1)
        plan = ctrl.shutdown_plans[0]
        assert plan.any_shutdown
        n_off = int(ctrl.accountant.count_by_state[NodeState.OFF])
        assert n_off == plan.n_off_selected
        assert ctrl.accountant.total_power() <= cap.watts
        # Grouped selection harvests enclosure bonuses.
        assert ctrl.accountant.bonus_watts() == pytest.approx(plan.bonus_watts)
        engine.run(until=2 * HOUR + 1)
        assert int(ctrl.accountant.count_by_state[NodeState.OFF]) == 0
        ctrl.accountant.verify()

    def test_running_job_defers_shutdown(self, machine):
        m = machine
        cap = PowercapReservation(HOUR, 2 * HOUR, watts=0.6 * m.max_power())
        engine, ctrl = build(m, policy="SHUT", caps=[cap])
        # A job on ALL nodes (including reserved ones), started before
        # the reservation exists is impossible here (caps registered at
        # t=0), so emulate with a short-walltime job that fits before
        # the window, then one crossing it.
        submit(engine, ctrl, 1, 0.0, cores=90 * 16, runtime=1.5 * HOUR, walltime=1.6 * HOUR)
        engine.run(until=HOUR + 10)
        # The job crosses the window: reserved nodes cannot be off yet.
        assert ctrl.jobs[1].state == JobState.PENDING or (
            ctrl.accountant.count_by_state[NodeState.OFF] == 0
        )
        engine.run()
        ctrl.accountant.verify()

    def test_job_overlapping_window_avoids_reserved_nodes(self, machine):
        m = machine
        cap = PowercapReservation(HOUR, 2 * HOUR, watts=0.6 * m.max_power())
        engine, ctrl = build(m, policy="SHUT", caps=[cap])
        plan = ctrl.shutdown_plans[0]
        reserved = set(plan.reservation.nodes.tolist())
        # Long-walltime job overlapping the window.
        submit(engine, ctrl, 1, 0.0, cores=16, runtime=3 * HOUR, walltime=4 * HOUR)
        # Short job ending before the window may use reserved nodes.
        submit(engine, ctrl, 2, 0.0, cores=16, runtime=100.0, walltime=0.5 * HOUR)
        engine.run(until=10.0)
        assert not (set(ctrl.jobs[1].nodes.tolist()) & reserved)
        assert set(ctrl.jobs[2].nodes.tolist()) <= reserved
        engine.run()
        ctrl.accountant.verify()

    def test_transition_delays(self, machine):
        m = machine
        cap = PowercapReservation(HOUR, 2 * HOUR, watts=0.6 * m.max_power())
        engine, ctrl = build(
            m, policy="SHUT", caps=[cap], shutdown_delay=60.0, boot_delay=300.0
        )
        engine.run(until=HOUR + 30)
        assert int(ctrl.accountant.count_by_state[NodeState.SHUTTING_DOWN]) > 0
        engine.run(until=HOUR + 61)
        assert int(ctrl.accountant.count_by_state[NodeState.OFF]) > 0
        engine.run(until=2 * HOUR + 100)
        assert int(ctrl.accountant.count_by_state[NodeState.BOOTING]) > 0
        engine.run(until=2 * HOUR + 301)
        assert int(ctrl.accountant.count_by_state[NodeState.BOOTING]) == 0
        assert int(ctrl.accountant.count_by_state[NodeState.OFF]) == 0
        ctrl.accountant.verify()


class TestKillOnViolation:
    def test_jobs_killed_until_under_cap(self, machine):
        m = machine
        cap_watts = m.new_accountant().idle_floor() + 20 * (358 - 117)
        cap = PowercapReservation(HOUR, 2 * HOUR, watts=cap_watts)
        engine, ctrl = build(
            m, policy="IDLE", caps=[cap], kill_on_violation=True
        )
        # 60 nodes busy with short walltimes (end before window per
        # walltime? no: walltime crosses the window so they are soft-
        # checkedā€¦ IDLE has only the top step; soft start applies).
        for jid in range(60):
            submit(engine, ctrl, jid, 0.0, cores=16, runtime=3 * HOUR, walltime=4 * HOUR)
        engine.run(until=HOUR - 1)
        assert ctrl.n_running == 60
        engine.run(until=HOUR + 1)
        killed = [j for j in ctrl.jobs.values() if j.state == JobState.KILLED]
        assert killed, "over-cap jobs must be killed at window start"
        assert ctrl.accountant.total_power() <= cap.watts + 1e-6
        ctrl.accountant.verify()

    def test_no_kill_by_default_waits_for_drain(self, machine):
        m = machine
        cap_watts = m.new_accountant().idle_floor() + 20 * (358 - 117)
        cap = PowercapReservation(HOUR, 2 * HOUR, watts=cap_watts)
        engine, ctrl = build(m, policy="IDLE", caps=[cap])
        for jid in range(60):
            submit(engine, ctrl, jid, 0.0, cores=16, runtime=3 * HOUR, walltime=4 * HOUR)
        engine.run(until=HOUR + 1)
        assert all(j.state != JobState.KILLED for j in ctrl.jobs.values())
        # Over cap, tolerated; no new jobs may start.
        assert ctrl.accountant.total_power() > cap.watts
