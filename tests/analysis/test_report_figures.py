"""Tests for the analysis layer (grid runner, figure series, CLI)."""

import math

import numpy as np
import pytest

from repro.analysis.figures import figure_series, middle_window, render_series_ascii
from repro.analysis.report import (
    GridCell,
    middle_cap_window,
    render_grid,
    run_cell,
    run_policy_grid,
)
from repro.cluster.curie import curie_machine
from repro.workload.intervals import generate_interval

HOUR = 3600.0


@pytest.fixture(scope="module")
def machine():
    return curie_machine(scale=1 / 56)


@pytest.fixture(scope="module")
def jobs(machine):
    return generate_interval(machine, "smalljob")


class TestWindows:
    def test_middle_cap_window(self):
        assert middle_cap_window(5 * HOUR) == (2 * HOUR, 3 * HOUR)
        assert middle_cap_window(24 * HOUR) == (11.5 * HOUR, 12.5 * HOUR)

    def test_too_short_interval_rejected(self):
        with pytest.raises(ValueError):
            middle_cap_window(HOUR)
        with pytest.raises(ValueError):
            middle_window(0.5 * HOUR)


class TestRunCell:
    def test_uncapped_cell_has_nan_window_metrics(self, machine, jobs):
        cell = run_cell(machine, jobs, "smalljob", "NONE", 1.0, duration=HOUR)
        assert math.isnan(cell.window_energy_norm)
        assert cell.label == "100%/None"

    def test_capped_cell_window_metrics(self, machine, jobs):
        cell = run_cell(machine, jobs, "smalljob", "SHUT", 0.6, duration=5 * HOUR)
        assert 0.0 <= cell.window_energy_norm <= 1.0
        assert 0.0 <= cell.window_work_norm <= 1.0
        assert cell.window_effective_work_norm <= cell.window_work_norm + 1e-9
        assert cell.label == "60%/SHUT"

    def test_grid_ordering_and_rendering(self, machine, jobs):
        grid = {1.0: ("NONE",), 0.6: ("SHUT",)}
        cells = run_policy_grid(
            machine, {"smalljob": jobs}, duration=5 * HOUR, grid=grid
        )
        assert [c.label for c in cells] == ["100%/None", "60%/SHUT"]
        text = render_grid(cells)
        assert "== smalljob ==" in text
        assert "100%/None" in text and "60%/SHUT" in text
        # Bars are 24 chars of # and .
        for line in text.splitlines():
            if "%/" in line:
                assert line.count("#") + line.count(".") >= 72

    def test_render_empty(self):
        assert render_grid([]) == ""


class TestFigureSeries:
    def test_series_contents(self, machine, jobs):
        series = figure_series(
            machine, jobs, "SHUT", duration=5 * HOUR, cap_fraction=0.6, grid_dt=600.0
        )
        grid = series["grid"]
        assert "time" in grid and "power" in grid and "off_cores" in grid
        for ghz in machine.freq_table.frequencies:
            assert f"cores@{ghz:g}" in grid
        assert series["window"] == (2 * HOUR, 3 * HOUR)
        assert series["cap_watts"] == pytest.approx(0.6 * machine.max_power())

    def test_uncapped_series(self, machine, jobs):
        series = figure_series(
            machine, jobs, "NONE", duration=HOUR, cap_fraction=None, grid_dt=600.0
        )
        assert math.isinf(series["cap_watts"])
        assert series["window"] is None

    def test_ascii_rendering(self, machine, jobs):
        series = figure_series(
            machine, jobs, "SHUT", duration=5 * HOUR, cap_fraction=0.6, grid_dt=600.0
        )
        text = render_series_ascii(series, width=40, height=5)
        lines = text.splitlines()
        # Header + 5 utilisation rows + header + 5 power rows.
        assert len(lines) == 12
        assert all(len(line) <= 40 for line in lines[1:6])
        assert "#" in text  # some power drawn

    def test_ascii_uncapped(self, machine, jobs):
        series = figure_series(
            machine, jobs, "NONE", duration=HOUR, cap_fraction=None, grid_dt=300.0
        )
        text = render_series_ascii(series, width=30, height=4)
        assert "cores" in text and "power" in text


class TestCli:
    def test_tables_command(self, capsys):
        from repro.cli import main

        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "6692" in out and "34360" in out  # Figure 2
        assert "358" in out  # Figure 4
        assert "Switch-off" in out  # Figure 5

    def test_model_command(self, capsys):
        from repro.cli import main

        assert main(["model", "--cap", "0.5", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "model case" in out
        assert "offline plan" in out

    def test_replay_command_small(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "replay",
                "--scale",
                "0.0179",
                "--interval",
                "medianjob",
                "--policy",
                "SHUT",
                "--cap",
                "0.6",
                "--width",
                "40",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "energy_norm" in out

    @pytest.mark.slow
    def test_grid_command_small(self, capsys):
        from repro.cli import main

        # Keep it cheap: one workload at tiny scale.
        import repro.analysis.report as report

        rc = main(["grid", "--scale", "0.0179", "--workloads", "smalljob"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "smalljob" in out
