"""Pinned digests of the ADAPTIVE/TRACK library scenarios.

The policy matrix: one ADAPTIVE and one TRACK scenario per builtin
platform, each replaying to a pinned trace digest (Curie cells at the
one-rack 1/56 digest scale, platform cells at their library scale).
CI runs this module as an explicit step of the quick gate
(`.github/workflows/ci.yml`), diffing the matrix against these values.
"""

import pytest

from repro.exp import SCENARIO_LIBRARY, get_scenario, run_scenario
from repro.policy import PAPER_POLICY_NAMES

#: excluded from the `not slow` sweep — the quick CI gate runs this
#: module as its own explicit policy-matrix step instead (and the full
#: tier-1 suite always includes it)
pytestmark = pytest.mark.slow

#: trace digests recorded when the policy registry introduced
#: ADAPTIVE and TRACK (PR 5).  These are new behaviour — the 16
#: paper-policy pins live in tests/exp/test_determinism.py and are
#: untouched by the policy refactor.
POLICY_LIBRARY_DIGESTS = {
    "medianjob-adaptive-60": "c0a88200888a2499c3e7560f1f2365127699649cb7ed66392a5d70a84e6bdf74",
    "fatnode-medianjob-adaptive-60": "e65cd3772bbc12e73693818d93a8e56d65f834853050f12f24bc690482ffe08f",
    "manythin-smalljob-adaptive-60": "e9e48bc50f51a1aa0809094c7ca071df9a5bce0256f6f924e2e94ed56478c5b6",
    "medianjob-track-60": "dbcf0dad301ba3a8f7267c1c825b50b6528ca73c740297281471350f9698e326",
    "fatnode-medianjob-track-70": "e087783317062c37a9cbaa65e458b30ae949e22ed75135cb49fe645451b8842b",
    "manythin-smalljob-track-60": "6a301817f7d060de3dabcc959af9cea9eab74a629d32073cce7017a111b9f879",
}


def _digest_scale(sc):
    return sc.with_(scale=1 / 56) if sc.platform == "curie" else sc


def test_matrix_covers_both_policies_on_every_platform():
    new = [
        sc for sc in SCENARIO_LIBRARY if sc.policy_name not in PAPER_POLICY_NAMES
    ]
    assert {sc.name for sc in new} == set(POLICY_LIBRARY_DIGESTS)
    cells = {(sc.platform, sc.policy_name) for sc in new}
    for platform in ("curie", "fatnode", "manythin"):
        assert (platform, "ADAPTIVE") in cells
        assert (platform, "TRACK") in cells


@pytest.mark.parametrize("name", sorted(POLICY_LIBRARY_DIGESTS))
def test_policy_scenario_matches_pinned_digest(name):
    result = run_scenario(_digest_scale(get_scenario(name)))
    assert result.trace_digest == POLICY_LIBRARY_DIGESTS[name], name
