"""TRACK: proportional feedback against observed consumption."""

import math
from collections import Counter

import pytest

from repro.cluster.curie import curie_machine
from repro.core.online import FrequencySelector, PowercapView
from repro.core.policies import make_policy
from repro.policy import PolicySpec
from repro.policy.strategies import TrackingFrequencySelector
from repro.rjms.config import SchedulerConfig
from repro.rjms.reservations import PowercapReservation, ReservationRegistry

HOUR = 3600.0


@pytest.fixture
def machine():
    return curie_machine(scale=1 / 56)  # 90 nodes


def selector_for(machine, gain=0.9):
    spec = PolicySpec(
        name="track-test", frequency="track", freq_range="full", track_gain=gain
    )
    policy = make_policy(spec, machine.freq_table)
    from repro.core.offline import OfflinePlanner

    sel = policy.frequency_strategy.build_selector(
        policy, config=SchedulerConfig(), planner=OfflinePlanner(machine, policy)
    )
    assert isinstance(sel, TrackingFrequencySelector)
    assert sel.gain == gain
    return sel


def view_for(machine, acct, cap_watts=None, now=1.0):
    reg = ReservationRegistry(machine.n_nodes)
    if cap_watts is not None:
        reg.add_powercap(PowercapReservation(0.0, math.inf, watts=cap_watts))
    return PowercapView(reg, acct, now, ())


class TestSetpoint:
    def test_slides_linearly_with_observed_power(self, machine):
        sel = selector_for(machine, gain=1.0)
        n_steps = len(sel._indices_desc)
        cap = 10_000.0
        assert sel.setpoint(cap, 0.0) == 0  # idle cluster: top step
        assert sel.setpoint(cap, cap) == n_steps - 1  # at the cap: lowest
        assert sel.setpoint(cap, 2 * cap) == n_steps - 1  # clamped
        mid = sel.setpoint(cap, 0.5 * cap)
        assert 0 < mid < n_steps - 1

    def test_gain_reaches_the_bottom_early(self, machine):
        tight = selector_for(machine, gain=0.5)
        cap = 10_000.0
        assert tight.setpoint(cap, 0.5 * cap) == len(tight._indices_desc) - 1

    def test_invalid_gain_rejected(self, machine):
        policy = make_policy("DVFS", machine.freq_table)
        with pytest.raises(ValueError, match="gain"):
            TrackingFrequencySelector(policy, gain=0.0)

    def test_cluster_rule_ablation_rejected(self, machine):
        """The Section IV-B cluster rule is projection-based; TRACK
        must refuse it loudly rather than silently replaying as if the
        flag were off."""
        policy = make_policy("TRACK", machine.freq_table)
        with pytest.raises(ValueError, match="cluster_frequency_rule"):
            TrackingFrequencySelector(policy, cluster_rule=True)
        from repro.core.offline import OfflinePlanner

        with pytest.raises(ValueError, match="cluster_frequency_rule"):
            policy.frequency_strategy.build_selector(
                policy,
                config=SchedulerConfig(cluster_frequency_rule=True),
                planner=OfflinePlanner(machine, policy),
            )


class TestDecide:
    def test_top_step_without_active_cap(self, machine):
        sel = selector_for(machine)
        acct = machine.new_accountant()
        d = sel.decide(10, HOUR, view_for(machine, acct))
        assert d.ok and d.freq_ghz == machine.freq_table.max.ghz

    def test_future_windows_are_ignored(self, machine):
        """TRACK reacts, it does not project: a planned window that
        would push the default selector to its soft fallback leaves
        TRACK at the top step."""
        acct = machine.new_accountant()
        reg = ReservationRegistry(machine.n_nodes)
        reg.add_powercap(
            PowercapReservation(HOUR, 2 * HOUR, watts=acct.idle_floor() + 10)
        )
        view = PowercapView(reg, acct, 0.0, ())
        track = selector_for(machine)
        d = track.decide(90, 2 * HOUR, view)
        assert d.ok and d.freq_ghz == machine.freq_table.max.ghz and not d.soft
        dvfs = FrequencySelector(make_policy("DVFS", machine.freq_table))
        d2 = dvfs.decide(90, 2 * HOUR, view)
        assert d2.soft and d2.freq_ghz == machine.freq_table.min.ghz

    def test_throttles_near_the_cap_and_blocks_over_it(self, machine):
        sel = selector_for(machine, gain=1.0)
        acct = machine.new_accountant()
        ft = machine.freq_table
        idle = acct.idle_floor()
        # Cap such that the cluster idles at ~85% utilisation of it:
        # the setpoint lands mid-ladder and the job starts throttled.
        cap = idle / 0.85
        d = sel.decide(1, HOUR, view_for(machine, acct, cap))
        assert d.ok
        assert ft.min.ghz <= d.freq_ghz < ft.max.ghz
        # A job too wide for the remaining headroom stays pending.
        wide = int((cap - idle) / (ft.min.watts - ft.idle_watts)) + 2
        d2 = sel.decide(wide, HOUR, view_for(machine, acct, cap))
        assert not d2.ok and d2.reason == "active powercap"

    def test_rescale_target_is_gain_times_active_cap(self, machine):
        sel = selector_for(machine, gain=0.9)
        assert sel.pass_rescale_watts(10_000.0) == pytest.approx(9_000.0)
        assert sel.pass_rescale_watts(math.inf) is None
        # The paper's selectors never rescale mid-pass.
        dvfs = FrequencySelector(make_policy("DVFS", machine.freq_table))
        assert dvfs.pass_rescale_watts(10_000.0) is None


class TestEndToEnd:
    def test_track_keeps_window_power_under_the_cap(self):
        """The library cell: observed power inside the window stays at
        or under the cap (the ladder floor permitting), running jobs
        get stepped down, and the trace differs from IDLE's."""
        from repro.exp import get_scenario, replay_scenario, run_scenario

        sc = get_scenario("medianjob-track-60").with_(scale=1 / 56)
        res = replay_scenario(sc)
        cap_watts = sc.caps[0].fraction * res.machine.max_power()
        grid = res.recorder.to_grid(0.0, res.duration, 60.0)
        window = sc.caps[0]
        settle = 600.0  # one feedback settling interval after the edge
        in_window = (grid["time"] >= window.start + settle) & (
            grid["time"] < window.end
        )
        assert float(grid["power"][in_window].max()) <= cap_watts + 1e-6

        freqs = Counter(
            r.freq_ghz
            for r in res.recorder.jobs.values()
            if r.start_time is not None
        )
        assert min(freqs) < res.machine.freq_table.max.ghz  # genuinely throttled

        idle = run_scenario(sc.with_(name="idle-ref", policy="IDLE"))
        track = run_scenario(sc)
        assert track.trace_digest != idle.trace_digest

    @pytest.mark.parametrize(
        "name", ["medianjob-track-60", "manythin-smalljob-track-60"]
    )
    def test_rescaled_jobs_respect_the_degmin_bound(self, name):
        """Regression: repeated per-pass down-stepping must re-stretch
        only the *remaining* work from the job's scheduled end.  With
        monotone down-stepping, no completed job can take longer than
        its runtime at the worst allowed degradation."""
        from repro.exp import get_scenario, replay_scenario

        sc = get_scenario(name)
        if sc.platform == "curie":
            sc = sc.with_(scale=1 / 56)
        res = replay_scenario(sc)
        for job in res.controller.jobs.values():
            if job.start_time is None or job.end_time is None:
                continue
            if job.state.name == "KILLED":
                continue
            elapsed = job.end_time - job.start_time
            assert elapsed <= job.spec.runtime * res.policy.degmin + 1e-6, (
                job.job_id,
                elapsed,
                job.spec.runtime,
            )
