"""ADAPTIVE agreement with the Section III case analysis, per platform.

The adaptive policy's whole contract is: whatever
:func:`repro.core.powermodel.plan_nodes` says about a cap window is
what the offline planner and the online selector actually do.  These
tests check that agreement mechanically across the platform registry,
and that the cross-platform library cells really land on opposite
mechanisms at the same cap fraction.
"""

import math

import pytest

from repro.core.offline import OfflinePlanner
from repro.core.powermodel import ModelCase
from repro.platform import get_platform, platform_names
from repro.rjms.reservations import PowercapReservation

HOUR = 3600.0

#: cap fractions spanning every regime on each builtin platform
FRACTIONS = (0.95, 0.8, 0.7, 0.6, 0.5, 0.45, 0.4)


def planner_for(platform_name: str, scale: float | None = None):
    pf = get_platform(platform_name)
    if scale is None:
        scale = 1 / 56 if platform_name == "curie" else 1.0
    machine = pf.build_machine(scale=scale)
    policy = pf.make_policy("ADAPTIVE", machine.freq_table)
    return machine, policy, OfflinePlanner(machine, policy)


@pytest.mark.parametrize("platform_name", ["curie", "fatnode", "manythin"])
@pytest.mark.parametrize("fraction", FRACTIONS)
def test_offline_plan_agrees_with_model_case(platform_name, fraction):
    machine, policy, planner = planner_for(platform_name)
    cap_watts = fraction * machine.max_power()
    cap = PowercapReservation(HOUR, 2 * HOUR, watts=cap_watts)
    mp = planner.model_plan(cap_watts)
    plan = planner.plan(cap)
    assert plan.model_plan is not None
    assert plan.model_plan.case is mp.case
    if mp.case is ModelCase.DVFS_ONLY:
        # DVFS regime: no switch-off whatsoever.
        assert plan.reservation is None
        assert plan.n_off_selected == 0
    elif mp.n_off > 0:
        # Switch-off (or combined) regime with a real deficit: nodes
        # go down and the worst case fits under the cap.
        assert plan.any_shutdown
        assert plan.worst_case_alive_watts <= cap.watts + 1e-6


@pytest.mark.parametrize("platform_name", ["curie", "fatnode", "manythin"])
def test_reference_watts_follows_the_case(platform_name):
    machine, policy, planner = planner_for(platform_name)
    ft = machine.freq_table
    for fraction in FRACTIONS:
        mp = planner.model_plan(fraction * machine.max_power())
        ref = planner.reference_watts(mp)
        if mp.case is ModelCase.COMBINED:
            # Plans alive nodes at the full-ladder lowest step (Pmin),
            # like MIX does over its restricted range.
            assert ref == ft.min.watts
        else:
            assert ref == ft.max.watts


@pytest.mark.parametrize("platform_name", ["curie", "fatnode", "manythin"])
@pytest.mark.parametrize("fraction", FRACTIONS)
def test_online_mechanism_agrees_with_model_case(platform_name, fraction):
    from repro.policy.strategies import AdaptiveFrequencySelector
    from repro.rjms.config import SchedulerConfig

    machine, policy, planner = planner_for(platform_name)
    selector = policy.frequency_strategy.build_selector(
        policy, config=SchedulerConfig(), planner=planner
    )
    assert isinstance(selector, AdaptiveFrequencySelector)
    cap_watts = fraction * machine.max_power()
    case = planner.model_plan(cap_watts).case
    wants_dvfs = case in (ModelCase.DVFS_ONLY, ModelCase.COMBINED)
    assert selector.mechanism_allows_dvfs(cap_watts) == wants_dvfs


def test_adaptive_decides_top_only_under_shutdown_regime():
    """Under a switch-off-regime cap the adaptive selector behaves
    like SHUT: it never assigns a lowered frequency, even when only
    the lowered step would fit."""
    from repro.core.online import PowercapView
    from repro.rjms.reservations import ReservationRegistry

    machine, policy, planner = planner_for("manythin")
    cap_watts = 0.6 * machine.max_power()
    assert planner.model_plan(cap_watts).case is ModelCase.SHUTDOWN_ONLY
    from repro.rjms.config import SchedulerConfig

    selector = policy.frequency_strategy.build_selector(
        policy, config=SchedulerConfig(), planner=planner
    )
    acct = machine.new_accountant()
    reg = ReservationRegistry(machine.n_nodes)
    reg.add_powercap(PowercapReservation(0.0, math.inf, watts=cap_watts))
    view = PowercapView(reg, acct, 1.0, ())
    # A job wide enough that only a lowered step fits the headroom: a
    # ladder selector would throttle, SHUT-like selection blocks.
    ft = machine.freq_table
    headroom = cap_watts - acct.idle_floor()
    n = int(headroom / (ft.max.watts - ft.idle_watts)) + 30
    assert n * (ft.min.watts - ft.idle_watts) <= headroom
    assert n <= machine.n_nodes
    d = selector.decide(n, HOUR, view)
    assert not d.ok and d.reason == "active powercap"
    # The same constraint under the plain full-ladder walk would start
    # the job at a lowered frequency — the mechanism choice is real.
    from repro.core.online import FrequencySelector

    ladder = FrequencySelector(policy)
    d2 = ladder.decide(n, HOUR, view)
    assert d2.ok and d2.freq_ghz < ft.max.ghz


def test_opposite_mechanisms_on_fatnode_vs_manythin():
    """The library's cross-platform cells: at the *same* 60 % cap the
    model (and therefore ADAPTIVE) pairs switch-off with DVFS on
    fatnode (combined case 4) but picks pure switch-off on manythin —
    opposite mechanism selections from one policy."""
    from collections import Counter

    from repro.exp import get_scenario, replay_scenario

    fat = replay_scenario(get_scenario("fatnode-medianjob-adaptive-60"))
    thin = replay_scenario(get_scenario("manythin-smalljob-adaptive-60"))

    fat_plan = fat.controller.shutdown_plans[0]
    thin_plan = thin.controller.shutdown_plans[0]
    assert fat_plan.model_plan.case is ModelCase.COMBINED
    assert thin_plan.model_plan.case is ModelCase.SHUTDOWN_ONLY
    # Both switch nodes off...
    assert fat_plan.any_shutdown and thin_plan.any_shutdown

    def started_freqs(result):
        return Counter(
            r.freq_ghz
            for r in result.recorder.jobs.values()
            if r.start_time is not None
        )

    # ...but only fatnode throttles: manythin jobs all run at the top
    # step while fatnode assigns lowered frequencies too.
    fat_freqs = started_freqs(fat)
    thin_freqs = started_freqs(thin)
    assert set(thin_freqs) == {thin.machine.freq_table.max.ghz}
    assert any(g < fat.machine.freq_table.max.ghz for g in fat_freqs)


def test_all_registered_platforms_have_a_decidable_regime():
    """Every platform registry entry yields a clean model decision at
    every paper cap — the adaptive policy is total over the registry."""
    for name in platform_names():
        machine, policy, planner = planner_for(name)
        for fraction in FRACTIONS:
            mp = planner.model_plan(fraction * machine.max_power())
            assert mp.case in ModelCase
