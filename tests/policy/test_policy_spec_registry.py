"""PolicySpec round-trip, hashing, and registry behaviour."""

import pytest

from repro.cluster.curie import CURIE_FREQUENCY_TABLE
from repro.core.policies import make_policy, policy_set
from repro.policy import (
    BUILTIN_POLICIES,
    PAPER_POLICY_NAMES,
    PolicyKind,
    PolicySpec,
    get_policy,
    policy_names,
    policy_specs,
    register_policy,
    resolve_policy,
    unregister_policy,
)
from repro.policy.spec import FREQUENCY_STRATEGY_KEYS, SHUTDOWN_STRATEGY_KEYS
from repro.policy.strategies import (
    FREQUENCY_STRATEGIES,
    SHUTDOWN_STRATEGIES,
    frequency_strategy,
    shutdown_strategy,
)


class TestSpecValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            PolicySpec(name="")

    def test_unknown_shutdown_strategy_rejected(self):
        with pytest.raises(ValueError, match="shutdown strategy"):
            PolicySpec(name="x", shutdown="sometimes")

    def test_unknown_frequency_strategy_rejected(self):
        with pytest.raises(ValueError, match="frequency strategy"):
            PolicySpec(name="x", frequency="psychic")

    def test_unknown_freq_range_rejected(self):
        with pytest.raises(ValueError, match="freq_range"):
            PolicySpec(name="x", frequency="ladder", freq_range="turbo")

    def test_nonpositive_gain_rejected(self):
        with pytest.raises(ValueError, match="track_gain"):
            PolicySpec(name="x", frequency="track", track_gain=0.0)

    def test_strategy_vocabulary_matches_the_objects(self):
        # The spec validates against literal key tuples (the strategy
        # module is imported lazily); both must list the same keys.
        assert set(SHUTDOWN_STRATEGY_KEYS) == set(SHUTDOWN_STRATEGIES)
        assert set(FREQUENCY_STRATEGY_KEYS) == set(FREQUENCY_STRATEGIES)
        for key in SHUTDOWN_STRATEGY_KEYS:
            assert shutdown_strategy(key).key == key
        for key in FREQUENCY_STRATEGY_KEYS:
            assert frequency_strategy(key).key == key
        with pytest.raises(ValueError, match="unknown shutdown strategy"):
            shutdown_strategy("sometimes")
        with pytest.raises(ValueError, match="unknown frequency strategy"):
            frequency_strategy("psychic")


class TestSpecRoundTrip:
    @pytest.mark.parametrize("spec", BUILTIN_POLICIES, ids=lambda s: s.name)
    def test_builtin_round_trip(self, spec):
        back = PolicySpec.from_dict(spec.to_dict())
        assert back == spec
        assert back.content_hash() == spec.content_hash()

    def test_unknown_keys_rejected(self):
        d = get_policy("MIX").to_dict()
        d["turbo"] = True
        with pytest.raises(ValueError, match="unknown PolicySpec keys"):
            PolicySpec.from_dict(d)

    def test_unsupported_schema_rejected(self):
        d = get_policy("MIX").to_dict()
        d["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            PolicySpec.from_dict(d)

    def test_hash_is_stable_hex(self):
        h = get_policy("MIX").content_hash()
        assert h == get_policy("MIX").content_hash()
        assert len(h) == 16
        assert all(c in "0123456789abcdef" for c in h)

    def test_hash_excludes_name_and_description(self):
        mix = get_policy("MIX")
        renamed = PolicySpec.from_dict(
            {**mix.to_dict(), "name": "MYMIX", "description": "other"}
        )
        assert renamed.content_hash() == mix.content_hash()

    def test_hash_covers_strategy_content(self):
        mix = get_policy("MIX")
        hashes = {
            mix.content_hash(),
            PolicySpec.from_dict(
                {**mix.to_dict(), "shutdown": "none"}
            ).content_hash(),
            PolicySpec.from_dict(
                {**mix.to_dict(), "freq_range": "full"}
            ).content_hash(),
            PolicySpec.from_dict(
                {**mix.to_dict(), "track_gain": 0.5}
            ).content_hash(),
        }
        assert len(hashes) == 4


class TestRegistry:
    def test_builtins_registered_in_order(self):
        names = policy_names()
        assert tuple(names[:5]) == PAPER_POLICY_NAMES
        assert "ADAPTIVE" in names and "TRACK" in names
        assert [s.name for s in policy_specs()] == names

    def test_unknown_name_lists_registry(self):
        with pytest.raises(KeyError, match="ADAPTIVE"):
            get_policy("TURBO")

    def test_resolve_accepts_spec_kind_and_name(self):
        mix = get_policy("MIX")
        assert resolve_policy("MIX") is mix
        assert resolve_policy(PolicyKind.MIX) is mix
        assert resolve_policy(mix) is mix
        with pytest.raises(ValueError, match="available"):
            resolve_policy("TURBO")

    def test_reregistering_identical_content_is_noop(self):
        mix = get_policy("MIX")
        assert register_policy(PolicySpec.from_dict(mix.to_dict())) is mix

    def test_conflicting_registration_raises_unless_replace(self):
        spec = PolicySpec(name="tmp-policy", frequency="ladder")
        try:
            register_policy(spec)
            other = PolicySpec(name="tmp-policy", frequency="top")
            with pytest.raises(ValueError, match="already registered"):
                register_policy(other)
            assert register_policy(other, replace=True) is other
            assert get_policy("tmp-policy") is other
        finally:
            unregister_policy("tmp-policy")


class TestShims:
    """core.policies stays the historical import surface."""

    def test_make_policy_resolves_registry_names(self):
        p = make_policy("ADAPTIVE", CURIE_FREQUENCY_TABLE)
        assert p.name == "ADAPTIVE"
        assert p.kind is None  # not one of the five legacy kinds
        assert p.uses_shutdown and p.uses_dvfs and p.enforces_caps

    def test_make_policy_unknown_name_lists_registry(self):
        with pytest.raises(ValueError, match="available"):
            make_policy("TURBO", CURIE_FREQUENCY_TABLE)

    def test_make_policy_accepts_inline_spec(self):
        spec = PolicySpec(name="inline", frequency="ladder", freq_range="mix")
        p = make_policy(spec, CURIE_FREQUENCY_TABLE)
        assert p.spec is spec
        assert p.allowed.min.ghz == 2.0
        assert p.degmin == 1.29

    def test_policy_set_is_the_paper_five(self):
        policies = policy_set(CURIE_FREQUENCY_TABLE)
        assert tuple(policies) == PAPER_POLICY_NAMES
