"""Golden determinism regression.

The paper's whole methodology rests on one property: "as the replay is
deterministic, we can compare the different replays".  This locks it
in at the harness level — the same scenario must produce bit-identical
event traces and metrics whether it runs serially in-process, twice in
a row, or inside a ``GridRunner`` worker process.
"""

import pytest

from repro.exp import CapWindow, GridRunner, Scenario, run_scenario

HOUR = 3600.0

#: mid-size golden scenario: 90-node Curie, two hours of medianjob
#: pressure, a cap window with switch-off and DVFS in play (MIX
#: exercises the offline planner, the online selector and the drain
#: logic at once).  The window is hand-placed (not the centred helper)
#: so drain and rebound both happen strictly inside the replay.
GOLDEN = Scenario(
    name="golden-determinism",
    interval="medianjob",
    policy="MIX",
    scale=1 / 56,
    duration=2 * HOUR,
    caps=(CapWindow(0.5 * HOUR, 1.5 * HOUR, 0.5),),
)


@pytest.fixture(scope="module")
def golden_serial():
    return run_scenario(GOLDEN)


def test_serial_replays_bit_identical(golden_serial):
    again = run_scenario(GOLDEN)
    assert again.trace_digest == golden_serial.trace_digest
    assert dict(again.metrics) == dict(golden_serial.metrics)
    assert again.n_events == golden_serial.n_events
    assert again.n_samples == golden_serial.n_samples


def test_grid_runner_worker_matches_serial(golden_serial):
    """A multiprocessing worker reproduces the serial trace bit-for-bit."""
    variant = GOLDEN.with_(name="golden-variant", seed=777)
    parallel = GridRunner(workers=2).run([GOLDEN, variant])
    assert parallel[0].trace_digest == golden_serial.trace_digest
    assert dict(parallel[0].metrics) == dict(golden_serial.metrics)
    # The second scenario genuinely differs (different workload seed),
    # so the digest equality above is not vacuous.
    assert parallel[1].trace_digest != parallel[0].trace_digest


def test_serial_grid_equals_parallel_grid(golden_serial):
    """GridRunner(1) and GridRunner(2) agree on a mixed scenario list."""
    scenarios = [
        GOLDEN,
        GOLDEN.with_(name="shut", policy="SHUT"),
        GOLDEN.with_(name="dvfs", policy="DVFS"),
    ]
    serial = GridRunner(workers=1).run(scenarios)
    parallel = GridRunner(workers=2).run(scenarios)
    assert [r.trace_digest for r in serial] == [r.trace_digest for r in parallel]
    assert [dict(r.metrics) for r in serial] == [dict(r.metrics) for r in parallel]
    # Results arrive in input order on both paths.
    assert [r.scenario.name for r in parallel] == ["golden-determinism", "shut", "dvfs"]
