"""Golden determinism regression.

The paper's whole methodology rests on one property: "as the replay is
deterministic, we can compare the different replays".  This locks it
in at the harness level — the same scenario must produce bit-identical
event traces and metrics whether it runs serially in-process, twice in
a row, or inside a ``GridRunner`` worker process.
"""

import pytest

from repro.exp import CapWindow, GridRunner, Scenario, run_scenario

HOUR = 3600.0

#: mid-size golden scenario: 90-node Curie, two hours of medianjob
#: pressure, a cap window with switch-off and DVFS in play (MIX
#: exercises the offline planner, the online selector and the drain
#: logic at once).  The window is hand-placed (not the centred helper)
#: so drain and rebound both happen strictly inside the replay.
GOLDEN = Scenario(
    name="golden-determinism",
    interval="medianjob",
    policy="MIX",
    scale=1 / 56,
    duration=2 * HOUR,
    caps=(CapWindow(0.5 * HOUR, 1.5 * HOUR, 0.5),),
)

#: trace digest of GOLDEN produced by the seed (pre-columnar,
#: pre-fast-path) implementation.  The optimised replay must
#: reproduce it bit for bit; a change here is a *semantic* change to
#: the simulator, not a refactor.
GOLDEN_SEED_DIGEST = (
    "b5209bf308602357c99afa59ae85ed9e957ca591c24c204861c28f36ef707880"
)

#: trace digests of the 12 Curie library scenarios at 1/56 scale (one
#: Curie rack), recorded with the seed implementation.  These values
#: are the contract of the platform-registry refactor: re-expressing
#: Curie as a registry entry changed *no byte* of any Curie replay.
LIBRARY_SEED_DIGESTS = {
    "fig6-24h-mix-40": "ebdc5b672b8729ec0087e55b9562c52126fa4d394826850364eadc446713b759",
    "fig7a-bigjob-shut-60": "906d12911b081f7b3cd2feea7dd8528d8ff202991c1cab4ae5c6e60baf5295df",
    "fig7b-smalljob-dvfs-40": "6c5c21ebaf1afc0dd625e255427ab5b18fb2a8c925580c54d65047ce6cfccd8a",
    "baseline-medianjob-uncapped": "4421f9305a6f1f9b3997745cbdb5369d36299a95bd515760453c5fb068b21d9a",
    "demand-response-day": "d6885098a73b331b3be0605a8059e0fe9fd36cf93ba9f1b5ad11b80cdbc1cbad",
    "cap-staircase-24h": "52bf1da1e37839fc2fce70eb53ec2e66228ad43755284f1f1436fe374133d022",
    "night-valley-shut": "e54c5c412c0953ab9494f40df4747119e44f45e7600615d0521c9fa87250ad46",
    "rho-floor-dvfs-55": "b9e10fbd3e22a9666877fcea926e6912abca2fa06c4aa63a308f52ebf24cb8a5",
    "rho-combined-mix-45": "46f9803ffcb40354a32cc8ea88bb579ea1ed8f067b2f397da281c281e01ea8b4",
    "extreme-kill-idle-50": "db6f2da07a39263ce77559b33a4af4cec5414acaa4a6fedaacd2fb491ee5840d",
    "dynamic-rescaling-dvfs-50": "df592d7ad179cd8bb9b24240f07c11f7b5c0209198c60e11bf3c3861437915ec",
    "strict-future-mix-60": "9feb60a3046d9dcdc8a2b43274d89bd39a30663636851ddcb758815a39bb0d62",
}

#: trace digests of the non-Curie platform scenarios at their library
#: scale, recorded when the platform registry was introduced.  Each
#: platform entry is replayable and pinned exactly like Curie.
PLATFORM_LIBRARY_DIGESTS = {
    "fatnode-bigjob-shut-60": "68f9e55169ed12c295bb1f1999ae1b38d8a1ccb1fffdcb5409dafe7f650f5d62",
    "fatnode-medianjob-mix-50": "6c43526e13dd8c52c3e5b684e5b8676a8bceadaf5c69e51f1774f26fdf0d4b54",
    "manythin-smalljob-dvfs-40": "543c82efa115b9afb0aef1c6849f39df73e9665d126c618e52ae9ef943372834",
    "manythin-staircase-mix": "0c3b1a7d6238608a4c814bfa1869d3e377a75f5a437982e3e4b798b3dedaf904",
}


@pytest.fixture(scope="module")
def golden_serial():
    return run_scenario(GOLDEN)


def test_matches_seed_implementation(golden_serial):
    """The optimised pipeline reproduces the seed trace bit for bit."""
    assert golden_serial.trace_digest == GOLDEN_SEED_DIGEST


@pytest.mark.slow
def test_library_matches_seed_implementation():
    """Every paper-policy Curie library scenario (at one-rack scale)
    replays to the exact trace the seed implementation produced — the
    columnar recorder, the scheduling-pass fast paths, the platform
    registry and the policy-strategy decomposition changed *nothing*
    observable on the Curie path.  (ADAPTIVE/TRACK scenarios are new
    behaviour; their pins live in tests/policy/.)"""
    from repro.exp import SCENARIO_LIBRARY, get_scenario
    from repro.policy import PAPER_POLICY_NAMES

    curie_names = {
        sc.name
        for sc in SCENARIO_LIBRARY
        if sc.platform == "curie" and sc.policy_name in PAPER_POLICY_NAMES
    }
    assert curie_names == set(LIBRARY_SEED_DIGESTS)
    for name, digest in sorted(LIBRARY_SEED_DIGESTS.items()):
        result = run_scenario(get_scenario(name).with_(scale=1 / 56))
        assert result.trace_digest == digest, name


def test_platform_library_matches_pinned_digests():
    """Every paper-policy non-Curie platform scenario replays to its
    pinned digest at its library scale — the platform axis is as
    deterministic as the Curie path it generalises."""
    from repro.exp import SCENARIO_LIBRARY
    from repro.policy import PAPER_POLICY_NAMES

    paper = [
        sc
        for sc in SCENARIO_LIBRARY
        if sc.platform != "curie" and sc.policy_name in PAPER_POLICY_NAMES
    ]
    platform_names = {sc.name for sc in paper}
    assert platform_names == set(PLATFORM_LIBRARY_DIGESTS)
    # The acceptance bar of the registry refactor: >= 4 scenarios over
    # >= 2 non-Curie platforms, each with a pinned digest of its own.
    assert len(platform_names) >= 4
    assert len({sc.platform for sc in paper}) >= 2
    for sc in paper:
        result = run_scenario(sc)
        assert result.trace_digest == PLATFORM_LIBRARY_DIGESTS[sc.name], sc.name


def test_serial_replays_bit_identical(golden_serial):
    again = run_scenario(GOLDEN)
    assert again.trace_digest == golden_serial.trace_digest
    assert dict(again.metrics) == dict(golden_serial.metrics)
    assert again.n_events == golden_serial.n_events
    assert again.n_samples == golden_serial.n_samples


def test_grid_runner_worker_matches_serial(golden_serial):
    """A multiprocessing worker reproduces the serial trace bit-for-bit."""
    variant = GOLDEN.with_(name="golden-variant", seed=777)
    parallel = GridRunner(workers=2).run([GOLDEN, variant])
    assert parallel[0].trace_digest == golden_serial.trace_digest
    assert dict(parallel[0].metrics) == dict(golden_serial.metrics)
    # The second scenario genuinely differs (different workload seed),
    # so the digest equality above is not vacuous.
    assert parallel[1].trace_digest != parallel[0].trace_digest


def test_serial_grid_equals_parallel_grid(golden_serial):
    """GridRunner(1) and GridRunner(2) agree on a mixed scenario list."""
    scenarios = [
        GOLDEN,
        GOLDEN.with_(name="shut", policy="SHUT"),
        GOLDEN.with_(name="dvfs", policy="DVFS"),
    ]
    serial = GridRunner(workers=1).run(scenarios)
    parallel = GridRunner(workers=2).run(scenarios)
    assert [r.trace_digest for r in serial] == [r.trace_digest for r in parallel]
    assert [dict(r.metrics) for r in serial] == [dict(r.metrics) for r in parallel]
    # Results arrive in input order on both paths.
    assert [r.scenario.name for r in parallel] == ["golden-determinism", "shut", "dvfs"]
