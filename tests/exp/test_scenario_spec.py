"""Scenario spec: validation, serialisation, content-hash identity."""

import math

import pytest

from repro.exp import CapWindow, Scenario, expand_grid
from repro.exp.library import (
    PAPER_GRID_ROWS,
    SCENARIO_LIBRARY,
    get_scenario,
    paper_grid_scenarios,
    scenario_names,
)

HOUR = 3600.0


class TestCapWindow:
    def test_middle_window(self):
        w = CapWindow.middle(5 * HOUR, 0.6)
        assert (w.start, w.end) == (2 * HOUR, 3 * HOUR)
        assert w.fraction == 0.6

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            CapWindow(0.0, 10.0, 0.0)
        with pytest.raises(ValueError):
            CapWindow(0.0, 10.0, 1.5)

    def test_rejects_empty_window(self):
        with pytest.raises(ValueError):
            CapWindow(10.0, 10.0, 0.5)

    def test_reservation_scales_with_machine(self):
        sc = Scenario.paper_cell("medianjob", "MIX", 0.6, scale=1 / 56)
        machine = sc.build_machine()
        res = sc.build_caps(machine)[0]
        assert res.watts == pytest.approx(0.6 * machine.max_power())


class TestScenarioValidation:
    def test_unknown_interval_rejected(self):
        with pytest.raises(ValueError, match="interval"):
            Scenario(name="x", interval="nope", policy="MIX")

    def test_unknown_platform_rejected_with_listing(self):
        with pytest.raises(ValueError, match="available: curie"):
            Scenario(name="x", interval="medianjob", policy="MIX", platform="xeon")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            Scenario(name="x", interval="medianjob", policy="TURBO")

    def test_unknown_config_key_rejected(self):
        with pytest.raises(ValueError, match="SchedulerConfig"):
            Scenario(name="x", interval="medianjob", policy="MIX", config={"nope": 1})

    def test_cap_beyond_duration_rejected(self):
        with pytest.raises(ValueError, match="beyond"):
            Scenario(
                name="x",
                interval="medianjob",
                policy="MIX",
                caps=(CapWindow(6 * HOUR, 7 * HOUR, 0.5),),
            )

    def test_config_mapping_normalised_sorted(self):
        sc = Scenario(
            name="x",
            interval="medianjob",
            policy="MIX",
            config={"kill_on_violation": True, "backfill": False},
        )
        assert sc.config == (("backfill", False), ("kill_on_violation", True))
        cfg = sc.build_config()
        assert cfg.kill_on_violation and not cfg.backfill


class TestScenarioHash:
    def test_name_excluded_from_hash(self):
        a = Scenario(name="a", interval="medianjob", policy="MIX")
        b = a.with_(name="b")
        assert a.scenario_hash() == b.scenario_hash()

    def test_content_changes_hash(self):
        base = Scenario(name="x", interval="medianjob", policy="MIX")
        assert base.scenario_hash() != base.with_(policy="SHUT").scenario_hash()
        assert base.scenario_hash() != base.with_(seed=7).scenario_hash()
        assert base.scenario_hash() != base.with_(scale=0.25).scenario_hash()
        assert (
            base.scenario_hash()
            != base.with_(caps=(CapWindow(0.0, HOUR, 0.5),)).scenario_hash()
        )
        assert (
            base.scenario_hash()
            != base.with_(config={"backfill": False}).scenario_hash()
        )

    def test_platform_changes_hash(self):
        base = Scenario(name="x", interval="medianjob", policy="MIX")
        assert base.platform == "curie"
        assert (
            base.scenario_hash()
            != base.with_(platform="manythin").scenario_hash()
        )

    def test_dict_roundtrip_preserves_identity(self):
        for sc in SCENARIO_LIBRARY:
            back = Scenario.from_dict(sc.to_dict())
            assert back == sc
            assert back.scenario_hash() == sc.scenario_hash()

    def test_from_dict_rejects_unknown_keys(self):
        """Regression: a typo'd axis must fail loudly, not be dropped —
        silently ignoring it would alias two different intentions onto
        one content hash and poison the result cache."""
        d = Scenario(name="x", interval="medianjob", policy="MIX").to_dict()
        d["polcy"] = "SHUT"
        with pytest.raises(ValueError, match="polcy"):
            Scenario.from_dict(d)

    def test_from_dict_accepts_v1_dicts_as_curie(self):
        """Pre-platform (schema 1) dicts deserialise as Curie runs."""
        d = Scenario(name="x", interval="medianjob", policy="MIX").to_dict()
        d["schema"] = 1
        del d["platform"]
        sc = Scenario.from_dict(d)
        assert sc.platform == "curie"

    def test_hash_is_stable_across_sessions(self):
        """Pinned value: changing it silently invalidates every cache."""
        sc = Scenario(name="pin", interval="medianjob", policy="MIX")
        assert sc.scenario_hash() == sc.scenario_hash()
        assert len(sc.scenario_hash()) == 16
        assert all(c in "0123456789abcdef" for c in sc.scenario_hash())


class TestStructuredPolicy:
    """Schema v3: the policy field is a registry name or an inline
    PolicySpec; v1/v2 string-policy dicts still load unchanged."""

    def test_from_dict_accepts_v2_string_policies(self):
        d = Scenario(name="x", interval="medianjob", policy="MIX").to_dict()
        d["schema"] = 2
        sc = Scenario.from_dict(d)
        assert sc.policy == "MIX" and sc.policy_name == "MIX"

    def test_registry_policies_resolve(self):
        sc = Scenario(name="x", interval="medianjob", policy="ADAPTIVE")
        assert sc.policy_name == "ADAPTIVE"
        assert sc.policy_spec.shutdown == "adaptive"

    def test_inline_spec_round_trips(self):
        from repro.policy import PolicySpec

        spec = PolicySpec(
            name="custom", frequency="track", freq_range="mix", track_gain=0.7
        )
        sc = Scenario(name="x", interval="medianjob", policy=spec)
        assert sc.policy_spec is spec
        d = sc.to_dict()
        assert d["policy"]["name"] == "custom"
        back = Scenario.from_dict(d)
        assert back == sc
        assert back.scenario_hash() == sc.scenario_hash()

    def test_policy_hash_is_content_not_name(self):
        """An inline spec identical to a registered policy's content
        is the same scenario; different content is not."""
        from repro.policy import PolicySpec, get_policy

        base = Scenario(name="x", interval="medianjob", policy="MIX")
        clone = PolicySpec.from_dict(
            {**get_policy("MIX").to_dict(), "name": "MYMIX"}
        )
        assert (
            base.with_(policy=clone).scenario_hash() == base.scenario_hash()
        )
        other = PolicySpec.from_dict(
            {**get_policy("MIX").to_dict(), "name": "MYMIX", "freq_range": "full"}
        )
        assert (
            base.with_(policy=other).scenario_hash() != base.scenario_hash()
        )

    def test_non_policy_values_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            Scenario(name="x", interval="medianjob", policy=3.14)

    def test_paper_cell_respects_enforces_caps_of_custom_policies(self):
        from repro.policy import PolicySpec

        off = PolicySpec(name="off", enforces_caps=False)
        sc = Scenario.paper_cell("medianjob", off, 0.5)
        assert sc.caps == ()
        assert sc.name == "medianjob-off"


class TestCapWindowMiddle:
    def test_too_long_window_names_both_values(self):
        with pytest.raises(ValueError, match="2 h.*3600"):
            CapWindow.middle(3600.0, 0.5, hours=2.0)

    def test_nonpositive_hours_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            CapWindow.middle(3600.0, 0.5, hours=0.0)

    def test_fitting_window_is_centred(self):
        w = CapWindow.middle(5 * HOUR, 0.5)
        assert w.start == 2 * HOUR and w.end == 3 * HOUR


class TestDefaults:
    def test_interval_defaults_flow_through(self):
        sc = Scenario(name="x", interval="24h", policy="MIX")
        assert sc.effective_duration == 24 * HOUR
        assert sc.effective_seed == 104
        sc2 = sc.with_(duration=6 * HOUR, seed=9)
        assert sc2.effective_duration == 6 * HOUR
        assert sc2.effective_seed == 9

    def test_cap_fraction_uncapped_is_one(self):
        sc = Scenario(name="x", interval="medianjob", policy="NONE")
        assert sc.cap_fraction == 1.0


class TestExpandGrid:
    def test_cartesian_product_in_order(self):
        grid = expand_grid(
            {"interval": ["bigjob", "smalljob"], "policy": ["SHUT", "DVFS"], "cap": [0.6, 0.4]}
        )
        assert len(grid) == 8
        assert grid[0].name == "bigjob-shut-60"
        assert grid[-1].name == "smalljob-dvfs-40"
        # Deterministic: a second expansion is identical.
        again = expand_grid(
            {"interval": ["bigjob", "smalljob"], "policy": ["SHUT", "DVFS"], "cap": [0.6, 0.4]}
        )
        assert [s.scenario_hash() for s in grid] == [s.scenario_hash() for s in again]

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="axes"):
            expand_grid({"colour": ["red"]})

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            expand_grid({})

    def test_seed_axis_names_distinct(self):
        grid = expand_grid({"seed": [1, 2, 3]})
        assert len({s.name for s in grid}) == 3
        assert len({s.scenario_hash() for s in grid}) == 3

    def test_platform_axis_expands(self):
        grid = expand_grid(
            {"platform": ["curie", "fatnode", "manythin"], "cap": [0.6]}
        )
        assert [s.platform for s in grid] == ["curie", "fatnode", "manythin"]
        # Curie cells keep their historical names; others are prefixed.
        assert grid[0].name == "medianjob-mix-60"
        assert grid[1].name == "fatnode-medianjob-mix-60"
        assert len({s.scenario_hash() for s in grid}) == 3

    def test_unknown_platform_axis_value_rejected(self):
        with pytest.raises(ValueError, match="platform"):
            expand_grid({"platform": ["atari"]})


class TestLibrary:
    def test_at_least_ten_named_scenarios(self):
        assert len(SCENARIO_LIBRARY) >= 10
        assert len(set(scenario_names())) == len(SCENARIO_LIBRARY)

    def test_hashes_unique(self):
        hashes = [sc.scenario_hash() for sc in SCENARIO_LIBRARY]
        assert len(set(hashes)) == len(hashes)

    def test_get_scenario_unknown_name(self):
        with pytest.raises(KeyError, match="available"):
            get_scenario("no-such-scenario")

    def test_every_scenario_buildable(self):
        """Machines and caps construct; workloads are deferred (slow)."""
        for sc in SCENARIO_LIBRARY:
            machine = sc.with_(scale=1 / 56).build_machine()
            caps = sc.with_(scale=1 / 56).build_caps(machine)
            assert len(caps) == len(sc.caps)
            for cap in caps:
                assert 0 < cap.watts <= machine.max_power()
            sc.build_config()  # overrides are valid

    def test_paper_grid_is_27_cells(self):
        grid = paper_grid_scenarios()
        assert len(grid) == 27
        assert len(PAPER_GRID_ROWS) == 9
        # One uncapped baseline per interval.
        assert sum(1 for s in grid if not s.caps) == 3
