"""Cost model: cold estimates, calibration, LPT placement, persistence.

The model only orders the batch-pool dispatch — these tests pin the
properties that ordering relies on (monotonic cold estimates, observed
beats calibrated beats cold, deterministic LPT placement) and the
store metadata side-channel the calibration persists through.
"""

import pytest

from repro.exp import (
    CapWindow,
    CostModel,
    DirectoryStore,
    GridRunner,
    GroupEstimate,
    MemoryStore,
    Scenario,
    assign_workers,
    lpt_order,
    plan_table,
)
from repro.exp.costmodel import COST_META
from repro.exp.runner import RunResult

HOUR = 3600.0

TINY = Scenario(
    name="tiny-cost",
    interval="medianjob",
    policy="NONE",
    scale=1 / 56,
    duration=HOUR,
)


class TestColdEstimates:
    def test_bigger_work_costs_more(self):
        m = CostModel()
        base, src = m.estimate_cell(TINY)
        assert src == "cold" and base > 0
        assert m.estimate_cell(TINY.with_(duration=2 * HOUR))[0] > base
        assert m.estimate_cell(TINY.with_(scale=2 / 56))[0] > base
        assert m.estimate_cell(TINY.with_(overload=3.2))[0] > base

    def test_caps_do_not_change_the_cell_estimate(self):
        # The observation key is the cap-free group: every cell of one
        # lockstep group estimates identically.
        m = CostModel()
        capped = TINY.with_(caps=(CapWindow(1800.0, 3000.0, 0.5),))
        assert m.estimate_cell(capped) == m.estimate_cell(TINY)

    def test_group_estimate_folds_shared_prefix(self):
        # Later windows mean a longer shared prefix, replayed once —
        # the same two cells must estimate cheaper than with windows
        # opening near t=0.
        m = CostModel()

        def group(start):
            return [
                TINY.with_(name=f"c{f}", caps=(CapWindow(start, 3000.0, f),))
                for f in (0.4, 0.6)
            ]

        late = m.estimate_group(group(1800.0), [0, 1])
        early = m.estimate_group(group(360.0), [0, 1])
        cell, _ = m.estimate_cell(TINY)
        assert cell < late.seconds < early.seconds <= 2 * cell
        assert late.n_cells == 2 and late.source == "cold"

    def test_observed_beats_cold_then_calibrates_siblings(self):
        m = CostModel()
        m.observe(TINY, 2.0)
        m.observe(TINY, 4.0)
        est, src = m.estimate_cell(TINY)
        assert src == "observed" and est == pytest.approx(3.0)
        # A never-seen group on the same platform rescales its cold
        # estimate by the observed rate instead of the default.
        est2, src2 = m.estimate_cell(TINY.with_(seed=99))
        assert src2 == "calibrated" and est2 > 0

    def test_degenerate_observations_are_ignored(self):
        m = CostModel()
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            m.observe(TINY, bad)
        assert m.estimate_cell(TINY)[1] == "cold"


class TestLPTPlacement:
    def _estimates(self, seconds):
        return [
            GroupEstimate(
                group=f"g{i}", label=f"g{i}", indices=(i,),
                seconds=s, source="cold",
            )
            for i, s in enumerate(seconds)
        ]

    def test_lpt_order_heaviest_first(self):
        order = lpt_order(self._estimates([3.0, 5.0, 1.0, 4.0]))
        assert [e.seconds for e in order] == [5.0, 4.0, 3.0, 1.0]

    def test_greedy_placement_balances_load(self):
        placed = assign_workers(self._estimates([3.0, 5.0, 1.0, 4.0]), 2)
        assert [(e.seconds, w) for e, w in placed] == [
            (5.0, 0), (4.0, 1), (3.0, 1), (1.0, 0),
        ]
        # Deterministic: the same inputs place identically.
        assert placed == assign_workers(
            self._estimates([3.0, 5.0, 1.0, 4.0]), 2
        )

    def test_single_worker_is_pure_lpt(self):
        placed = assign_workers(self._estimates([1.0, 2.0]), 1)
        assert [(e.seconds, w) for e, w in placed] == [(2.0, 0), (1.0, 0)]

    def test_plan_table_renders_totals(self):
        text = plan_table(
            assign_workers(self._estimates([3.0, 5.0, 1.0, 4.0]), 2), 2
        )
        assert "worker" in text
        assert "4 group(s), 4 cell(s)" in text
        assert "est total 13.0s" in text
        assert "makespan 7.0s" in text


class TestMetaPersistence:
    def test_directory_store_roundtrip(self, tmp_path):
        m = CostModel()
        m.observe(TINY, 1.5)
        m.flush(DirectoryStore(tmp_path))
        m2 = CostModel.from_store(DirectoryStore(tmp_path))
        est, src = m2.estimate_cell(TINY)
        assert src == "observed" and est == pytest.approx(1.5)

    def test_memory_store_meta(self):
        s = MemoryStore()
        assert s.get_meta("x") is None
        s.put_meta("x", {"a": 1})
        assert s.get_meta("x") == {"a": 1}

    def test_unknown_schema_is_ignored(self, tmp_path):
        store = DirectoryStore(tmp_path)
        store.put_meta(
            COST_META, {"schema": 999, "groups": {"x": {"mean": 1, "n": 1}}}
        )
        assert CostModel.from_store(store).estimate_cell(TINY)[1] == "cold"

    def test_meta_names_are_validated(self, tmp_path):
        store = DirectoryStore(tmp_path)
        for bad in ("../evil", "a/b", "", "no spaces"):
            with pytest.raises(ValueError):
                store.put_meta(bad, {})

    def test_corrupt_meta_reads_as_missing(self, tmp_path):
        store = DirectoryStore(tmp_path)
        store.put_meta("m", {"a": 1})
        (tmp_path / "meta" / "m.json").write_text("{broken")
        assert DirectoryStore(tmp_path).get_meta("m") is None

    def test_meta_does_not_leak_into_result_keys(self, tmp_path):
        store = DirectoryStore(tmp_path)
        store.put_meta("m", {"a": 1})
        assert store.keys() == []

    def test_sweep_observes_flushes_and_reuses(self, tmp_path):
        sweep = [
            TINY.with_(
                name=f"cap{f}",
                policy="MIX",
                duration=2 * HOUR,
                caps=(CapWindow(1800.0, 5400.0, f),),
            )
            for f in (0.4, 0.6)
        ]
        with GridRunner(store=DirectoryStore(tmp_path)) as runner:
            runner.sweep(sweep)
        meta = DirectoryStore(tmp_path).get_meta(COST_META)
        assert meta is not None and meta["groups"]
        model = CostModel.from_store(DirectoryStore(tmp_path))
        est = model.estimate_group(sweep, [0, 1])
        assert est.source == "observed" and est.seconds > 0


class TestElapsedField:
    def test_solo_elapsed_equals_wall(self):
        r = GridRunner().run([TINY])[0]
        assert r.elapsed_seconds == pytest.approx(r.wall_seconds)

    def test_from_dict_tolerates_missing_elapsed(self):
        r = GridRunner().run([TINY])[0]
        d = r.to_dict()
        assert RunResult.from_dict(d).elapsed_seconds == pytest.approx(
            r.elapsed_seconds
        )
        d.pop("elapsed_seconds")  # a pre-field cache entry
        assert RunResult.from_dict(d).elapsed_seconds is None

    def test_results_table_renders_missing_elapsed_as_dash(self):
        from dataclasses import replace

        from repro.exp import results_table

        r = GridRunner().run([TINY])[0]
        table = results_table([replace(r, elapsed_seconds=None)])
        assert "unit" in table.splitlines()[0]
        assert " - " in table.splitlines()[2]
