"""Chaos suite: deterministic fault injection against every backend.

The contract under test is the robustness layer's headline: injected
worker crashes, hangs, transient exceptions and torn store writes may
cost retries, respawns and quarantines — but never change a result
byte.  Every recovered sweep must converge to the same pinned digests
a fault-free run produces, and every injected failure must be
accounted for in the :class:`SweepReport`.
"""

import errno
import os
import time

import pytest

from repro.exp import (
    BatchBackend,
    CapWindow,
    DirectoryStore,
    FailureRecord,
    FaultPlan,
    FaultSpec,
    GridRunner,
    InjectedCrash,
    InjectedHang,
    InjectedTransient,
    ProcessPoolBackend,
    RetryPolicy,
    Scenario,
    SerialBackend,
    SharedDirectoryStore,
    SweepError,
    TaskFailure,
    injected,
    make_backend,
    parse_fault_plan,
    result_key,
    run_scenario,
)
from repro.exp.resilience import run_with_retry

HOUR = 3600.0

#: tiny, fast scenarios (90-node Curie, 1 h) with distinct content
TINY = Scenario(
    name="tiny-chaos",
    interval="medianjob",
    policy="MIX",
    scale=1 / 56,
    duration=HOUR,
)
TINY_B = TINY.with_(name="tiny-chaos-b", policy="SHUT")
TINY_C = TINY.with_(name="tiny-chaos-c", policy="DVFS")
#: same cap-free content as each other: a lockstep batch group
TINY_CAP60 = TINY.with_(
    name="tiny-cap60", caps=(CapWindow(0.25 * HOUR, 0.75 * HOUR, 0.6),)
)
TINY_CAP40 = TINY.with_(
    name="tiny-cap40", caps=(CapWindow(0.25 * HOUR, 0.75 * HOUR, 0.4),)
)
TINY_CAP80 = TINY.with_(
    name="tiny-cap80", caps=(CapWindow(0.25 * HOUR, 0.75 * HOUR, 0.8),)
)

RETRY_FAST = RetryPolicy(max_attempts=3, base_delay=0.001, max_delay=0.01)


@pytest.fixture(autouse=True)
def no_leaked_shm_segments():
    """Every chaos test — crash, hang, timeout-kill — must leave /dev/shm clean."""
    from repro.exp import shm

    before = shm.live_segments()
    yield
    leaked = shm.live_segments() - before
    assert not leaked, f"chaos test leaked shm segments: {sorted(leaked)}"


def crash_plan(*scenarios, kind="crash", times=1, hang_seconds=30.0):
    return FaultPlan(
        specs=tuple(
            FaultSpec(sc.scenario_hash(), kind, times=times) for sc in scenarios
        ),
        hang_seconds=hang_seconds,
    )


@pytest.fixture(scope="module")
def golden():
    """Fault-free digests of the tiny scenarios (the correctness bar)."""
    return {
        sc.name: run_scenario(sc).trace_digest
        for sc in (TINY, TINY_B, TINY_C, TINY_CAP60, TINY_CAP40, TINY_CAP80)
    }


# -- module-level task functions (must pickle to pool workers) ----------------------


def _double(x, attempt=1):
    return x * 2


def _sleepy(seconds, attempt=1):
    time.sleep(seconds)
    return seconds


def _exit_now(x):
    os._exit(73)


def _crash_first_attempt(x, attempt=1):
    if attempt == 1:
        os._exit(73)
    return x


class TestFaultPlanUnit:
    HASHES = [f"{i:016x}" for i in range(10)]

    def test_seeded_plan_is_deterministic(self):
        a = FaultPlan.random(self.HASHES, 7)
        b = FaultPlan.random(self.HASHES, 7)
        assert a == b
        assert a != FaultPlan.random(self.HASHES, 8)
        # Selection order is content order, not input order.
        assert a == FaultPlan.random(list(reversed(self.HASHES)), 7)

    def test_round_trips_through_json(self):
        import json

        plan = FaultPlan.random(self.HASHES, 3, rate=1.0, times=None)
        again = FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert again == plan

    def test_full_rate_covers_every_kind(self):
        plan = FaultPlan.random(self.HASHES, 5, rate=1.0)
        assert len(plan.specs) == len(self.HASHES)
        assert set(plan.kinds_planned()) == {"crash", "hang", "transient", "corrupt"}

    def test_one_fault_per_scenario(self):
        h = self.HASHES[0]
        with pytest.raises(ValueError, match="at most one"):
            FaultPlan(specs=(FaultSpec(h, "crash"), FaultSpec(h, "hang")))

    def test_fires_on_attempts(self):
        once = FaultSpec("a" * 16, "crash", times=1)
        assert once.fires_on(1) and not once.fires_on(2)
        twice = FaultSpec("a" * 16, "crash", times=2)
        assert twice.fires_on(2) and not twice.fires_on(3)
        poison = FaultSpec("a" * 16, "crash", times=None)
        assert all(poison.fires_on(k) for k in (1, 5, 100))

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("a" * 16, "meteor")
        with pytest.raises(ValueError, match="times"):
            FaultSpec("a" * 16, "crash", times=0)
        with pytest.raises(ValueError, match="rate"):
            FaultPlan.random(self.HASHES, 1, rate=1.5)
        with pytest.raises(ValueError, match="hang_seconds"):
            FaultPlan(hang_seconds=0.0)

    def test_parse_specs(self, tmp_path):
        import json

        plan = parse_fault_plan("seed:7", self.HASHES)
        assert plan == FaultPlan.random(self.HASHES, 7)
        assert parse_fault_plan("seed:7:1.0", self.HASHES) == FaultPlan.random(
            self.HASHES, 7, rate=1.0
        )
        poison = parse_fault_plan("seed:7:1.0:*", self.HASHES)
        assert all(s.times is None for s in poison.specs)
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(poison.to_dict()))
        assert parse_fault_plan(f"@{path}", []) == poison
        for bad in ("", "seed", "seed:x", "7", "seed:1:2:3:4", "seed:1:0.5:y"):
            with pytest.raises(ValueError, match="fault-plan spec"):
                parse_fault_plan(bad, self.HASHES)


class TestRetryPolicyUnit:
    def test_backoff_is_deterministic_and_bounded(self):
        p = RetryPolicy(base_delay=0.1, factor=2.0, max_delay=1.0)
        delays = [p.backoff("label", k) for k in (1, 2, 3, 10)]
        assert delays == [p.backoff("label", k) for k in (1, 2, 3, 10)]
        assert all(0 < d <= 1.0 for d in delays)
        # Jitter multiplier stays in [0.5, 1.0) of the raw schedule.
        assert 0.05 <= delays[0] < 0.1
        # Different labels decorrelate, same schedule bounds.
        assert p.backoff("other", 1) != p.backoff("label", 1)
        assert RetryPolicy(base_delay=0.0).backoff("x", 3) == 0.0

    def test_classification(self):
        p = RetryPolicy()
        assert p.is_retryable(InjectedTransient("x"))
        assert p.is_retryable(InjectedCrash("x"))
        assert p.is_retryable(OSError(errno.ESTALE, "stale"))
        assert not p.is_retryable(ValueError("deterministic bug"))

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(factor=0.5)

    def test_retry_recovers_transient(self):
        calls, slept = [], []

        def flaky(attempt):
            calls.append(attempt)
            if attempt < 3:
                raise InjectedTransient("flaky")
            return "ok"

        outcome, retries = run_with_retry(
            flaky, label="t", retry=RetryPolicy(max_attempts=3, base_delay=0.5),
            sleep=slept.append,
        )
        assert outcome == "ok" and retries == 2
        assert calls == [1, 2, 3]
        assert len(slept) == 2 and slept[1] > slept[0]  # exponential

    def test_fatal_error_fails_immediately(self):
        def broken(attempt):
            raise ValueError("always")

        outcome, retries = run_with_retry(
            broken, label="t", retry=RETRY_FAST, sleep=lambda _s: None
        )
        assert isinstance(outcome, TaskFailure)
        assert outcome.kind == "error" and outcome.attempts == 1 and retries == 0
        assert isinstance(outcome.exception, ValueError)

    def test_exhausted_budget_reports_attempts(self):
        def poison(attempt):
            raise InjectedCrash("poison")

        outcome, retries = run_with_retry(
            poison, label="t", retry=RETRY_FAST, sleep=lambda _s: None
        )
        assert isinstance(outcome, TaskFailure)
        assert outcome.kind == "crash" and outcome.attempts == 3 and retries == 2


class TestSerialChaos:
    def test_transient_fault_retries_to_golden(self, golden):
        with injected(crash_plan(TINY, kind="transient")):
            with GridRunner(retry=RETRY_FAST) as r:
                report = r.sweep([TINY, TINY_B])
        assert report.ok and report.n_retries == 1
        assert {x.scenario.name: x.trace_digest for x in report.results} == {
            n: golden[n] for n in ("tiny-chaos", "tiny-chaos-b")
        }

    def test_crash_and_hang_raise_in_process(self, golden):
        # In-process, crash/hang become classified exceptions (a real
        # os._exit would kill the test harness) — and still retry.
        with injected(crash_plan(TINY, kind="crash")):
            with GridRunner(retry=RETRY_FAST) as r:
                assert r.run([TINY])[0].trace_digest == golden["tiny-chaos"]
        with injected(crash_plan(TINY, kind="hang")):
            with GridRunner(retry=RETRY_FAST) as r:
                assert r.run([TINY])[0].trace_digest == golden["tiny-chaos"]

    def test_on_error_raise_reraises_the_original(self):
        with injected(crash_plan(TINY, kind="crash", times=None)):
            with GridRunner(retry=RETRY_FAST) as r:
                with pytest.raises(InjectedCrash):
                    r.run([TINY])

    def test_poison_is_quarantined_siblings_complete(self, golden):
        with injected(crash_plan(TINY, kind="crash", times=None)):
            with GridRunner(retry=RETRY_FAST, on_error="quarantine") as r:
                report = r.sweep([TINY, TINY_B])
        assert [x.scenario.name for x in report.results] == ["tiny-chaos-b"]
        assert report.results[0].trace_digest == golden["tiny-chaos-b"]
        (record,) = report.failures
        assert record.quarantined and record.kind == "crash"
        assert record.scenario_hash == TINY.scenario_hash()
        assert record.attempts == 3
        assert not report.unquarantined_losses and not report.ok

    def test_hang_failure_is_timeout_kind(self):
        with injected(crash_plan(TINY, kind="hang", times=None)):
            with GridRunner(on_error="quarantine") as r:
                report = r.sweep([TINY])
        (record,) = report.failures
        assert record.kind == "timeout" and record.error_type == "InjectedHang"

    def test_on_error_validation(self):
        with pytest.raises(ValueError, match="on_error"):
            GridRunner(on_error="explode")
        with pytest.raises(ValueError, match="timeout"):
            GridRunner(timeout=0.0)

    def test_failure_record_persists_skips_then_heals(self, tmp_path, golden):
        store = DirectoryStore(tmp_path)
        poison = crash_plan(TINY, kind="crash", times=None)

        with injected(poison):
            with GridRunner(store=store, retry=RETRY_FAST, on_error="quarantine") as r:
                report = r.sweep([TINY, TINY_B])
        assert len(report.failures) == 1
        (disk,) = store.failures()
        assert disk.scenario_name == "tiny-chaos" and disk.quarantined
        assert store.get_failure(result_key(TINY)) == disk

        # on_error="skip" does not burn attempts on a known failure.
        with injected(poison):
            with GridRunner(store=store, retry=RETRY_FAST, on_error="skip") as r:
                report = r.sweep([TINY, TINY_B])
        assert [x.scenario_name for x in report.skipped] == ["tiny-chaos"]
        assert not report.failures  # never attempted, so no new failure
        assert report.n_hits == 1  # sibling came from the store

        # Fault removed: the same store heals on a successful re-run.
        with GridRunner(store=store, retry=RETRY_FAST, on_error="quarantine") as r:
            report = r.sweep([TINY, TINY_B])
        assert report.healed == ["tiny-chaos"]
        assert store.failures() == [] and store.get_failure(result_key(TINY)) is None
        assert {x.scenario.name: x.trace_digest for x in report.results} == {
            n: golden[n] for n in ("tiny-chaos", "tiny-chaos-b")
        }


class TestPoolChaos:
    def test_map_tasks_plain(self):
        with ProcessPoolBackend(2) as backend:
            out = dict(
                (i, v) for i, v, _r in backend.map_tasks(_double, [1, 2, 3, 4])
            )
        assert out == {0: 2, 1: 4, 2: 6, 3: 8}

    def test_worker_crash_respawns_and_recovers(self, golden):
        plan = crash_plan(TINY_B, kind="crash")  # real os._exit in the worker
        backend = ProcessPoolBackend(2, persistent=True)
        with injected(plan):
            with GridRunner(backend=backend, retry=RETRY_FAST) as r:
                report = r.sweep([TINY, TINY_B, TINY_C])
        assert report.ok and report.n_retries >= 1
        assert backend.n_respawns >= 1
        assert {x.scenario.name: x.trace_digest for x in report.results} == {
            n: golden[n] for n in ("tiny-chaos", "tiny-chaos-b", "tiny-chaos-c")
        }

    def test_poison_worker_quarantined_siblings_complete(self, golden):
        plan = crash_plan(TINY_B, kind="crash", times=None)
        with injected(plan):
            with GridRunner(
                backend=ProcessPoolBackend(2), retry=RETRY_FAST,
                on_error="quarantine",
            ) as r:
                report = r.sweep([TINY, TINY_B, TINY_C])
        (record,) = report.failures
        assert record.kind == "crash" and record.quarantined
        assert record.scenario_hash == TINY_B.scenario_hash()
        assert {x.scenario.name: x.trace_digest for x in report.results} == {
            n: golden[n] for n in ("tiny-chaos", "tiny-chaos-c")
        }

    def test_timeout_charges_only_the_hung_item(self):
        with ProcessPoolBackend(2) as backend:
            outcomes = {
                i: v
                for i, v, _r in backend.map_tasks(
                    _sleepy, [30.0, 0.01, 0.02], retry=None, timeout=1.0
                )
            }
        assert isinstance(outcomes[0], TaskFailure)
        assert outcomes[0].kind == "timeout"
        assert outcomes[1] == 0.01 and outcomes[2] == 0.02

    @pytest.mark.slow
    def test_injected_hang_is_killed_and_retried(self, golden):
        # The worker really sleeps; the driver kills the pool at the
        # timeout, respawns, and the retry (attempt 2) runs clean.
        plan = crash_plan(TINY, kind="hang", hang_seconds=60.0)
        backend = ProcessPoolBackend(2, persistent=True)
        with injected(plan):
            with GridRunner(backend=backend, retry=RETRY_FAST, timeout=8.0) as r:
                report = r.sweep([TINY, TINY_B])
        assert report.ok and backend.n_respawns >= 1
        assert {x.scenario.name: x.trace_digest for x in report.results} == {
            n: golden[n] for n in ("tiny-chaos", "tiny-chaos-b")
        }

    def test_close_is_idempotent_after_broken_pool(self):
        backend = ProcessPoolBackend(2, persistent=True)
        from concurrent.futures.process import BrokenProcessPool

        with pytest.raises(BrokenProcessPool):
            list(backend.map(_exit_now, [1, 2, 3]))
        # The corpse was discarded on the spot...
        assert backend._pool is None
        # ...so close() is a no-op any number of times...
        backend.close()
        backend.close()
        # ...and the backend is usable again (fresh pool).
        assert list(backend.map(_double, [5, 6])) == [10, 12]
        backend.close()
        assert backend._pool is None

    def test_atexit_reaper_survives_broken_pools(self):
        from repro.exp.backends import _LIVE_POOL_BACKENDS, _atexit_reap
        from concurrent.futures.process import BrokenProcessPool

        backend = ProcessPoolBackend(2, persistent=True)
        with pytest.raises(BrokenProcessPool):
            list(backend.map(_exit_now, [1, 2, 3]))
        assert backend not in _LIVE_POOL_BACKENDS
        _atexit_reap()  # must not raise, whatever state pools are in

    def test_crash_attribution_via_solo_requeue(self):
        # Both in-flight items die with the pool; only the real
        # offender (attempt-keyed) is charged, the innocent completes.
        with ProcessPoolBackend(2) as backend:
            outcomes = {
                i: v
                for i, v, _r in backend.map_tasks(
                    _crash_first_attempt,
                    ["a", "b"],
                    retry=RetryPolicy(max_attempts=2, base_delay=0.0),
                )
            }
        assert outcomes == {0: "a", 1: "b"}


class TestBatchChaos:
    def test_faulting_cell_falls_out_of_the_batch(self, golden):
        # One cell of a three-cell lockstep group carries a transient
        # fault: it must re-run solo (and retry), the siblings batch.
        with injected(crash_plan(TINY_CAP40, kind="transient")):
            with GridRunner(backend=BatchBackend(), retry=RETRY_FAST) as r:
                report = r.sweep([TINY_CAP60, TINY_CAP40, TINY_CAP80])
        assert report.ok and report.n_retries == 1
        assert {x.scenario.name: x.trace_digest for x in report.results} == {
            n: golden[n] for n in ("tiny-cap60", "tiny-cap40", "tiny-cap80")
        }

    def test_batch_replay_failure_degrades_to_solo(self, golden, monkeypatch):
        import repro.sim.batch as batch_mod

        def boom(*args, **kwargs):
            raise RuntimeError("lockstep replay exploded")

        monkeypatch.setattr(batch_mod, "run_replay_batch", boom)
        with GridRunner(backend=BatchBackend()) as r:
            report = r.sweep([TINY_CAP60, TINY_CAP40, TINY_CAP80])
        assert report.ok
        assert {x.scenario.name: x.trace_digest for x in report.results} == {
            n: golden[n] for n in ("tiny-cap60", "tiny-cap40", "tiny-cap80")
        }

    def test_poison_cell_quarantined_siblings_batch(self, golden):
        with injected(crash_plan(TINY_CAP40, kind="crash", times=None)):
            with GridRunner(
                backend=BatchBackend(), retry=RETRY_FAST, on_error="quarantine"
            ) as r:
                report = r.sweep([TINY_CAP60, TINY_CAP40, TINY_CAP80])
        (record,) = report.failures
        assert record.quarantined
        assert record.scenario_hash == TINY_CAP40.scenario_hash()
        assert {x.scenario.name: x.trace_digest for x in report.results} == {
            n: golden[n] for n in ("tiny-cap60", "tiny-cap80")
        }


class TestShardedChaos:
    def test_shards_retry_their_own_slice(self, golden):
        scenarios = [TINY, TINY_B, TINY_C, TINY_CAP60]
        plan = crash_plan(*scenarios, kind="transient")
        merged = {}
        retries = 0
        with injected(plan):
            for k in range(2):
                with GridRunner(
                    backend=make_backend("serial", shard=(k, 2)),
                    retry=RETRY_FAST,
                ) as r:
                    report = r.sweep(scenarios)
                assert report.ok
                retries += report.n_retries
                merged.update(
                    {x.scenario.name: x.trace_digest for x in report.results}
                )
        assert retries == len(scenarios)  # every scenario faulted once
        assert merged == {sc.name: golden[sc.name] for sc in scenarios}


class TestStoreResilience:
    def _result(self):
        return run_scenario(TINY)

    def test_shared_store_retries_transient_oserror(self, tmp_path):
        store = SharedDirectoryStore(tmp_path)
        store._retry_delay = 0.001
        real_replace, fails = store._replace, []

        def flaky_replace(tmp, path):
            if len(fails) < 2:
                fails.append(path)
                raise OSError(errno.ESTALE, "stale NFS handle")
            return real_replace(tmp, path)

        store._replace = flaky_replace
        result = self._result()
        store.put(result_key(TINY), result)
        assert store.health.retried_writes == 2
        assert store.health.failed_writes == 0
        got = store.get(result_key(TINY))
        assert got is not None and got.trace_digest == result.trace_digest

    def test_shared_store_abandons_after_budget(self, tmp_path):
        store = SharedDirectoryStore(tmp_path)
        store._retry_delay = 0.001

        def always_enospc(tmp, path):
            raise OSError(errno.ENOSPC, "disk full")

        store._replace = always_enospc
        with pytest.warns(RuntimeWarning, match="abandoning"):
            store.put(result_key(TINY), self._result())  # must not raise
        assert store.health.failed_writes == 1
        assert store.health.retried_writes == store._write_attempts - 1
        assert store.get(result_key(TINY)) is None

    def test_nontransient_oserror_propagates(self, tmp_path):
        store = SharedDirectoryStore(tmp_path)

        def no_perm(tmp, path):
            raise OSError(errno.EPERM, "read-only")

        store._replace = no_perm
        with pytest.raises(OSError):
            store.put(result_key(TINY), self._result())

    def test_corrupt_write_is_discarded_and_healed(self, tmp_path, golden):
        store = DirectoryStore(tmp_path)
        with injected(crash_plan(TINY, kind="corrupt")):
            with GridRunner(store=store) as r:
                report = r.sweep([TINY])
            # The sweep itself succeeded; the store entry is torn.
            assert report.ok
            assert report.results[0].trace_digest == golden["tiny-chaos"]
            with pytest.warns(RuntimeWarning, match="corrupt"):
                assert store.get(result_key(TINY)) is None
            assert store.health.discarded == 1
            # Resume from the same store: miss -> recompute -> clean
            # write (the fault fired its single time already).
            with GridRunner(store=store) as r:
                report = r.sweep([TINY])
        assert report.n_hits == 0 and report.n_executed == 1
        assert report.results[0].trace_digest == golden["tiny-chaos"]
        assert store.get(result_key(TINY)).trace_digest == golden["tiny-chaos"]
        assert report.store_health["discarded"] == 1

    def test_corrupt_series_write_is_discarded(self, tmp_path):
        store = DirectoryStore(tmp_path)
        with injected(crash_plan(TINY, kind="corrupt")):
            with GridRunner(store=store, series=True) as r:
                r.sweep([TINY])
            key = result_key(TINY)
            # The torn payload hits whichever write consumed the
            # charge first (the .npz comes first in the runner).
            assert store.get_series(key) is None or store.get(key) is None
            assert store.health.discarded >= 0  # discards happen lazily on read


class TestSweepReportAndAccounting:
    def test_summary_strings(self):
        report = GridRunner().sweep([TINY])
        assert "1 result(s)" in report.summary()
        assert report.backend == "serial"
        assert report.wall_seconds > 0
        assert report.store_health == {
            "discarded": 0, "retried_writes": 0, "failed_writes": 0,
        }

    def test_dropped_results_error_names_hashes_and_backend(self):
        class LossyBackend(SerialBackend):
            name = "lossy"

            def map_tasks(self, fn, items, *, retry=None, timeout=None):
                for i, outcome, retries in super().map_tasks(
                    items=items, fn=fn, retry=retry, timeout=timeout
                ):
                    if i != 0:  # silently drop the first item
                        yield i, outcome, retries

        with GridRunner(backend=LossyBackend()) as r:
            with pytest.raises(SweepError) as exc_info:
                r.sweep([TINY, TINY_B])
        message = str(exc_info.value)
        assert "lossy" in message
        assert TINY.scenario_hash() in message

    def test_failure_record_round_trip(self):
        record = FailureRecord(
            scenario_name="x", scenario_hash="a" * 16, key="k",
            backend="pool", kind="crash", error_type="InjectedCrash",
            message="boom", attempts=3, quarantined=True, recorded_at=1.5,
        )
        assert FailureRecord.from_dict(record.to_dict()) == record


@pytest.mark.slow
class TestFullLibraryChaos:
    """The acceptance headline: a fault-injected full-library sweep
    (all four fault kinds, fixed seed) under the process pool still
    reproduces all 16 golden digests byte-for-byte, with every
    injected failure accounted for."""

    def _library(self):
        from repro.exp import SCENARIO_LIBRARY
        from repro.policy import PAPER_POLICY_NAMES

        return [
            sc.with_(scale=1 / 56) if sc.platform == "curie" else sc
            for sc in SCENARIO_LIBRARY
            if sc.policy_name in PAPER_POLICY_NAMES
        ]

    def _pinned(self):
        from test_determinism import (
            LIBRARY_SEED_DIGESTS,
            PLATFORM_LIBRARY_DIGESTS,
        )

        return {**LIBRARY_SEED_DIGESTS, **PLATFORM_LIBRARY_DIGESTS}

    def test_chaos_sweep_reproduces_all_pinned_digests(self, tmp_path):
        scenarios = self._library()
        pinned = self._pinned()
        assert len(scenarios) == len(pinned) == 16
        plan = FaultPlan.random(
            [sc.scenario_hash() for sc in scenarios], 7, rate=0.5,
            hang_seconds=120.0,
        )
        assert set(plan.kinds_planned()) == {
            "crash", "hang", "transient", "corrupt",
        }
        store = DirectoryStore(tmp_path)
        with injected(plan):
            with GridRunner(
                backend=ProcessPoolBackend(2, persistent=True),
                store=store,
                retry=RetryPolicy(max_attempts=3, base_delay=0.01),
                timeout=90.0,
                on_error="quarantine",
            ) as r:
                report = r.sweep(scenarios)
        assert report.ok, [f.message for f in report.failures]
        assert not report.unquarantined_losses
        digests = {x.scenario.name: x.trace_digest for x in report.results}
        assert digests == pinned
        # Every non-corrupt fault cost at least one retry/respawn that
        # the report accounts for; corrupt faults surface as store
        # discards on the next read instead.
        n_exec_faults = sum(
            n for k, n in plan.kinds_planned().items() if k != "corrupt"
        )
        assert report.n_retries >= 1
        assert report.n_retries + len(report.failures) >= n_exec_faults - 1
