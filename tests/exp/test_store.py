"""Result stores: content addressing, atomicity, corruption healing."""

import json
import warnings

import numpy as np
import pytest

from repro.exp import (
    DirectoryStore,
    GridRunner,
    MemoryStore,
    Scenario,
    SharedDirectoryStore,
    make_store,
    merge_results,
    result_key,
    run_scenario,
)
from repro.exp.store import DEFAULT_SERIES_DT

HOUR = 3600.0

TINY = Scenario(
    name="tiny-store",
    interval="medianjob",
    policy="NONE",
    scale=1 / 56,
    duration=HOUR,
)


@pytest.fixture(scope="module")
def tiny_result():
    return run_scenario(TINY)


class TestResultKey:
    def test_covers_scenario_platform_and_policy_content(self):
        key = result_key(TINY)
        shash, phash, pohash = key.split("-")
        assert shash == TINY.scenario_hash()
        assert len(phash) == 8
        assert pohash == TINY.policy_spec.content_hash()[:8]
        # A renamed scenario keys identically; changed content differs.
        assert result_key(TINY.with_(name="other")) == key
        assert result_key(TINY.with_(seed=9)) != key

    def test_policy_edits_miss_and_renames_hit(self):
        from repro.policy import (
            PolicySpec,
            get_policy,
            register_policy,
            unregister_policy,
        )

        key = result_key(TINY)
        none = get_policy("NONE")
        try:
            # Renamed-but-identical policy: same scenario identity,
            # same store key (the name is a label, not content).
            clone = PolicySpec.from_dict({**none.to_dict(), "name": "NOOP"})
            register_policy(clone)
            renamed = TINY.with_(policy="NOOP")
            assert renamed.scenario_hash() == TINY.scenario_hash()
            assert result_key(renamed) == key
            # Edited registration under the same name: both the
            # scenario hash and the key change, so stale entries miss.
            edited = PolicySpec.from_dict(
                {**none.to_dict(), "name": "NOOP", "enforces_caps": True}
            )
            register_policy(edited, replace=True)
            assert renamed.scenario_hash() != TINY.scenario_hash()
            assert result_key(renamed) != key
        finally:
            unregister_policy("NOOP")


class TestMemoryStore:
    def test_roundtrip_and_no_series(self, tiny_result):
        store = MemoryStore()
        key = result_key(TINY)
        assert store.get(key) is None
        store.put(key, tiny_result)
        assert store.get(key) is tiny_result
        assert store.keys() == [key]
        assert not store.stores_series
        assert store.get_series(key) is None
        with pytest.raises(NotImplementedError):
            store.put_series(key, {})

    def test_runner_memoises_within_instance(self):
        runner = GridRunner()
        assert isinstance(runner.store, MemoryStore)
        first = runner.run([TINY])[0]
        assert not first.cached
        second = runner.run([TINY])[0]
        assert second.cached and second.same_outcome(first)
        # A fresh runner starts cold.
        assert not GridRunner().run([TINY])[0].cached

    def test_meta_does_not_alias_caller_dicts(self):
        """Regression: get_meta/put_meta must deep-copy, so a caller
        mutating its payload (or the returned dict — the cost model
        does exactly that with its observation groups) cannot corrupt
        the stored observations."""
        store = MemoryStore()
        payload = {"schema": 1, "groups": {"g": {"mean": 1.0, "n": 1}}}
        store.put_meta("m", payload)
        payload["groups"]["g"]["mean"] = 99.0
        assert store.get_meta("m")["groups"]["g"]["mean"] == 1.0
        returned = store.get_meta("m")
        returned["groups"]["g"]["n"] = 42
        returned["groups"].clear()
        assert store.get_meta("m")["groups"]["g"] == {"mean": 1.0, "n": 1}


class TestDirectoryStore:
    def test_corrupt_json_warns_names_path_and_heals(self, tmp_path, tiny_result):
        store = DirectoryStore(tmp_path)
        key = result_key(TINY)
        store.put(key, tiny_result)
        path = tmp_path / f"{key}.json"
        path.write_text("{truncated", encoding="utf-8")
        with pytest.warns(RuntimeWarning, match=str(path)):
            assert store.get(key) is None
        assert not path.exists()  # discarded, ready to recompute

    def test_stale_schema_is_a_silent_miss(self, tmp_path, tiny_result):
        store = DirectoryStore(tmp_path)
        key = result_key(TINY)
        data = tiny_result.to_dict()
        data["schema"] = 999
        (tmp_path / f"{key}.json").write_text(json.dumps(data), encoding="utf-8")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert store.get(key) is None

    def test_entry_under_wrong_key_is_discarded(self, tmp_path, tiny_result):
        store = DirectoryStore(tmp_path)
        bad_key = "0" * 16 + "-deadbeef"
        store.put(bad_key, tiny_result)
        with pytest.warns(RuntimeWarning, match="does not match key"):
            assert store.get(bad_key) is None

    def test_corrupt_series_warns_and_heals(self, tmp_path):
        store = DirectoryStore(tmp_path)
        key = result_key(TINY)
        path = tmp_path / f"{key}.npz"
        path.write_bytes(b"not a zip")
        with pytest.warns(RuntimeWarning, match=str(path)):
            assert store.get_series(key) is None
        assert not path.exists()

    def test_series_dt_mismatch_is_a_silent_miss(self, tmp_path):
        store = DirectoryStore(tmp_path, series_dt=300.0)
        key = result_key(TINY)
        store.put_series(key, {"time": np.arange(3.0)})
        other = DirectoryStore(tmp_path, series_dt=60.0)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert other.get_series(key) is None
            assert not other.has_series(key)
        assert store.has_series(key)
        assert np.array_equal(store.get_series(key)["time"], np.arange(3.0))

    def test_rejects_bad_series_dt(self, tmp_path):
        with pytest.raises(ValueError):
            DirectoryStore(tmp_path, series_dt=0.0)

    def test_legacy_series_without_dt_is_a_miss_but_not_deleted(self, tmp_path):
        # An externally-written payload has no recorded grid step: the
        # hit test cannot verify it (miss), but it must survive on
        # disk and stay loadable via get_series.
        store = DirectoryStore(tmp_path)
        key = result_key(TINY)
        path = tmp_path / f"{key}.npz"
        np.savez_compressed(path, time=np.arange(4.0))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert not store.has_series(key)
        assert path.exists()
        assert np.array_equal(store.get_series(key)["time"], np.arange(4.0))

    def test_keys_ignore_temp_litter(self, tmp_path, tiny_result):
        store = DirectoryStore(tmp_path)
        key = result_key(TINY)
        store.put(key, tiny_result)
        # A writer killed between write and rename leaves this behind.
        (tmp_path / f"{key}.tmp.12345.json").write_text("{", encoding="utf-8")
        assert store.keys() == [key]

    def test_no_tmp_litter(self, tmp_path, tiny_result):
        store = DirectoryStore(tmp_path)
        key = result_key(TINY)
        store.put(key, tiny_result)
        store.put_series(key, {"time": np.arange(2.0)})
        assert not [p for p in tmp_path.rglob("*") if ".tmp." in p.name]

    def test_keys_ignore_stray_json(self, tmp_path, tiny_result):
        """Only well-formed ``<scenario16>-<plat8>-<pol8>`` stems are
        keys: notes, configs or truncated names dropped into the store
        tree must not surface as phantom entries."""
        store = DirectoryStore(tmp_path)
        key = result_key(TINY)
        store.put(key, tiny_result)
        (tmp_path / "notes.json").write_text("{}", encoding="utf-8")
        (tmp_path / "deadbeef.json").write_text("{}", encoding="utf-8")
        (tmp_path / f"{key}x.json").write_text("{}", encoding="utf-8")
        (tmp_path / key[:20]).with_suffix(".json").write_text(
            "{}", encoding="utf-8"
        )
        assert store.keys() == [key]
        # Phantoms are invisible to prune too: it keeps the real entry.
        assert store.prune(max_entries=1) == []
        assert store.get(key) is not None


class TestSharedDirectoryStore:
    def test_fan_out_layout_and_roundtrip(self, tmp_path, tiny_result):
        store = SharedDirectoryStore(tmp_path)
        key = result_key(TINY)
        store.put(key, tiny_result)
        assert (tmp_path / key[:2] / f"{key}.json").is_file()
        back = store.get(key)
        assert back is not None and back.same_outcome(tiny_result)
        assert store.keys() == [key]

    def test_first_writer_wins(self, tmp_path, tiny_result):
        store = SharedDirectoryStore(tmp_path)
        key = result_key(TINY)
        store.put(key, tiny_result)
        path = tmp_path / key[:2] / f"{key}.json"
        stat = path.stat()
        store.put(key, tiny_result)  # deterministic duplicate: skipped
        again = path.stat()
        assert (again.st_ino, again.st_mtime_ns) == (stat.st_ino, stat.st_mtime_ns)

    def test_flat_directory_store_reads_are_compatible(self, tmp_path, tiny_result):
        # One key written by each layout: merge_results over both
        # stores' contents sees the same sweep.
        flat = DirectoryStore(tmp_path / "flat")
        shared = SharedDirectoryStore(tmp_path / "shared")
        key = result_key(TINY)
        flat.put(key, tiny_result)
        shared.put(key, tiny_result)
        merged = merge_results([[flat.get(key)], [shared.get(key)]])
        assert len(merged) == 1 and merged[0].same_outcome(tiny_result)

    def test_prune_removes_empty_fanout_dirs(self, tmp_path, tiny_result):
        """Evicting a key must not leave its ``<key[:2]>/`` fan-out
        directory behind as empty clutter — but a directory still
        holding other entries stays."""
        store = SharedDirectoryStore(tmp_path)
        key = result_key(TINY)
        other = result_key(TINY.with_(seed=9))
        store.put(key, tiny_result)
        store.put(other, tiny_result)
        # Age the first key so prune evicts it deterministically.
        import os

        path = store._result_path(key)
        os.utime(path, (1.0, 1.0))
        assert store.prune(max_entries=1) == [key]
        assert not (tmp_path / key[:2]).exists() or key[:2] == other[:2]
        assert (tmp_path / other[:2]).is_dir()
        assert store.keys() == [other]
        # Evicting the last entry drops its directory too.
        assert store.prune(max_entries=0) == [other]
        assert not (tmp_path / other[:2]).exists()

    def test_prune_tolerates_racing_pruner(self, tmp_path, tiny_result):
        """A concurrent pruner may delete files or the fan-out dir
        between our listing and our unlink — prune must shrug, not
        raise."""
        store = SharedDirectoryStore(tmp_path)
        key = result_key(TINY)
        store.put(key, tiny_result)
        # Simulate the race: the other pruner already removed the
        # entry and its directory.
        store._result_path(key).unlink()
        (tmp_path / key[:2]).rmdir()
        assert store.prune(max_entries=0) == []
        # And the half-race: files gone, directory still present.
        store.put(key, tiny_result)
        store._result_path(key).unlink()
        removed = store.prune(max_entries=0)
        assert removed == []
        assert not [p for p in tmp_path.rglob("*") if ".tmp." in p.name]

    def test_concurrent_runners_share_one_store(self, tmp_path):
        """Two GridRunner instances, one shared store, overlapping
        scenario lists, racing threads: both finish with bit-identical
        results, the store holds each scenario exactly once, and no
        temp files are left behind."""
        import threading

        scenarios = [TINY.with_(name=f"c{i}", seed=i) for i in range(4)]
        outcomes: dict[str, list] = {}
        errors: list[BaseException] = []

        def sweep(label: str, order: list) -> None:
            try:
                with GridRunner(store=SharedDirectoryStore(tmp_path)) as runner:
                    outcomes[label] = runner.run(order)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=sweep, args=("fwd", scenarios)),
            threading.Thread(target=sweep, args=("rev", scenarios[::-1])),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        fwd = {r.scenario.name: r.trace_digest for r in outcomes["fwd"]}
        rev = {r.scenario.name: r.trace_digest for r in outcomes["rev"]}
        assert fwd == rev and len(fwd) == 4
        store = SharedDirectoryStore(tmp_path)
        assert len(store.keys()) == 4
        for key in store.keys():
            assert store.get(key) is not None
        assert not [p for p in tmp_path.rglob("*") if ".tmp." in p.name]

    def test_concurrent_put_meta_last_writer_wins(self, tmp_path):
        """Two runners flushing cost-model observations into one
        shared store: every racing write commits atomically, the
        survivor is one of the written payloads intact (last writer
        wins, no torn JSON), and corrupt meta heals to missing."""
        import threading

        store = SharedDirectoryStore(tmp_path)
        payloads = [
            {"schema": 1, "groups": {f"g{w}": {"mean": float(w), "n": w + 1}}}
            for w in range(2)
        ]
        errors: list[BaseException] = []
        gate = threading.Barrier(2)

        def flush(writer: int) -> None:
            try:
                gate.wait()
                for _ in range(25):
                    SharedDirectoryStore(tmp_path).put_meta(
                        "cost-model", payloads[writer]
                    )
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=flush, args=(w,)) for w in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        survivor = store.get_meta("cost-model")
        assert survivor in payloads  # intact, not interleaved
        assert not [p for p in tmp_path.rglob("*") if ".tmp." in p.name]
        # Corruption heals to a silent miss, not an exception.
        meta_path = next((tmp_path / "meta").glob("cost-model.json"))
        meta_path.write_text("{torn")
        assert SharedDirectoryStore(tmp_path).get_meta("cost-model") is None


class TestMakeStore:
    def test_specs(self, tmp_path):
        assert isinstance(make_store("memory"), MemoryStore)
        d = make_store(f"dir:{tmp_path}")
        assert isinstance(d, DirectoryStore) and not isinstance(
            d, SharedDirectoryStore
        )
        assert isinstance(make_store(f"shared:{tmp_path}"), SharedDirectoryStore)
        # A bare path is shorthand for dir:PATH.
        bare = make_store(str(tmp_path))
        assert isinstance(bare, DirectoryStore) and bare.root == tmp_path
        assert bare.series_dt == DEFAULT_SERIES_DT

    @pytest.mark.parametrize(
        # "shared"/"dir" without :PATH must error, not silently become
        # a local directory literally named "shared".
        "spec",
        ["memory:x", "dir:", "shared:", "s3:bucket", "dir", "shared"],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            make_store(spec)

    def test_runner_rejects_store_plus_cache_dir(self, tmp_path):
        with pytest.raises(ValueError):
            GridRunner(store=MemoryStore(), cache_dir=tmp_path)
