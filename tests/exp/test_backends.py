"""Execution backends: ownership, pooling, sharding, equivalence.

The contract under test is the paper's own methodology: *which*
backend executed a scenario can never change the result.  The
cross-backend equivalence suite drives the full 16-scenario library
(12 Curie + 4 platform scenarios) through serial, process-pool,
batched-lockstep, batch×pool and sharded backends and holds every one
to the pinned golden digests.
"""

import pytest

from repro.analysis.report import merge_cells
from repro.exp import (
    BatchBackend,
    BatchPoolBackend,
    CapWindow,
    DirectoryStore,
    FaultPlan,
    FaultSpec,
    GridRunner,
    MemoryStore,
    ProcessPoolBackend,
    RetryPolicy,
    Scenario,
    SerialBackend,
    ShardedBackend,
    injected,
    make_backend,
    merge_results,
    parse_shard,
    results_to_cells,
    shard_index,
    shard_scenarios,
)

HOUR = 3600.0

TINY = Scenario(
    name="tiny-backend",
    interval="medianjob",
    policy="NONE",
    scale=1 / 56,
    duration=HOUR,
)


class TestShardSelection:
    def test_parse_shard(self):
        assert parse_shard("1/3") == (0, 3)
        assert parse_shard("3/3") == (2, 3)
        for bad in ("0/3", "4/3", "1", "a/b", "1/0", "/2"):
            with pytest.raises(ValueError):
                parse_shard(bad)

    def test_partition_is_exact_and_order_preserving(self):
        from repro.exp import SCENARIO_LIBRARY

        scenarios = list(SCENARIO_LIBRARY)
        for count in (1, 2, 3, 5):
            shards = [shard_scenarios(scenarios, k, count) for k in range(count)]
            # Disjoint, exhaustive, order-preserving.
            names = [sc.name for shard in shards for sc in shard]
            assert sorted(names) == sorted(sc.name for sc in scenarios)
            assert len(set(names)) == len(names)
            for shard in shards:
                in_order = [sc for sc in scenarios if sc in shard]
                assert in_order == shard

    def test_assignment_is_content_based(self):
        # Renaming cannot move a scenario between shards; content can.
        k = shard_index(TINY.scenario_hash(), 3)
        assert shard_index(TINY.with_(name="renamed").scenario_hash(), 3) == k
        assert shard_index(TINY.scenario_hash(), 1) == 0

    def test_expand_grid_shard_kwarg(self):
        from repro.exp import expand_grid

        axes = {"policy": ["SHUT", "DVFS", "MIX"], "cap": [0.6, 0.4]}
        full = expand_grid(axes)
        parts = [expand_grid(axes, shard=(k, 2)) for k in range(2)]
        assert sorted(sc.name for p in parts for sc in p) == sorted(
            sc.name for sc in full
        )


class TestBackendConstruction:
    def test_make_backend_auto(self):
        assert isinstance(make_backend(workers=1), SerialBackend)
        auto = make_backend(workers=3)
        assert isinstance(auto, ProcessPoolBackend) and auto.workers == 3
        assert isinstance(make_backend("serial", workers=8), SerialBackend)
        with pytest.raises(ValueError):
            make_backend("slurm")

    def test_make_backend_shard_wrapping(self):
        sharded = make_backend("pool", workers=2, shard="2/3")
        assert isinstance(sharded, ShardedBackend)
        assert (sharded.index, sharded.count) == (1, 3)
        assert isinstance(sharded.inner, ProcessPoolBackend)
        # 1/1 is the whole grid: no wrapper.
        assert isinstance(make_backend("serial", shard="1/1"), SerialBackend)

    def test_sharded_validation(self):
        with pytest.raises(ValueError):
            ShardedBackend(3, 3)
        with pytest.raises(ValueError):
            ShardedBackend(0, 0)

    def test_ownership(self):
        key = TINY.scenario_hash()
        assert SerialBackend().owns(key)
        assert ProcessPoolBackend(2).owns(key)
        owners = [
            k for k in range(4) if ShardedBackend(k, 4).owns(key)
        ]
        assert owners == [shard_index(key, 4)]

    def test_runner_rejects_backend_plus_workers(self):
        with pytest.raises(ValueError):
            GridRunner(workers=2, backend=SerialBackend())


class TestPoolLifecycle:
    def test_close_is_idempotent(self):
        backend = ProcessPoolBackend(2, persistent=True)
        results = list(backend.map(abs, [-1, -2]))
        assert results == [1, 2]
        assert backend._pool is not None
        backend.close()
        assert backend._pool is None
        backend.close()  # second close: no-op, no error
        backend.close()

    def test_atexit_reaper_tracks_live_pools(self):
        from repro.exp import backends as mod

        backend = ProcessPoolBackend(2, persistent=True)
        list(backend.map(abs, [-1, -2]))
        assert backend in mod._LIVE_POOL_BACKENDS
        assert mod._REAPER_REGISTERED
        backend.close()
        assert backend not in mod._LIVE_POOL_BACKENDS
        # The reaper is safe to run with nothing registered.
        mod._atexit_reap()

    def test_single_item_skips_the_pool(self):
        backend = ProcessPoolBackend(4, persistent=True)
        assert list(backend.map(abs, [-7])) == [7]
        assert backend._pool is None  # nothing to parallelise: no fork
        backend.close()


class TestShardedRuns:
    def test_shards_reassemble_the_sweep(self, tmp_path):
        scenarios = [TINY.with_(name=f"s{i}", seed=i) for i in range(5)]
        parts = []
        for k in range(3):
            with GridRunner(
                backend=ShardedBackend(k, 3),
                store=DirectoryStore(tmp_path),
            ) as runner:
                part = runner.run(scenarios)
            assert all(
                shard_index(r.scenario.scenario_hash(), 3) == k for r in part
            )
            parts.append(part)
        merged = merge_results(parts)
        serial = GridRunner().run(scenarios)
        assert {r.scenario.name: r.trace_digest for r in merged} == {
            r.scenario.name: r.trace_digest for r in serial
        }
        # The shard partition matches shard_scenarios exactly.
        for k, part in enumerate(parts):
            assert [r.scenario.name for r in part] == [
                sc.name for sc in shard_scenarios(scenarios, k, 3)
            ]

    def test_foreign_scenarios_skip_store_lookups(self, tmp_path):
        # A pre-populated store must not leak foreign-shard results
        # into a shard's output: shards stay independent.
        scenarios = [TINY.with_(name=f"s{i}", seed=i) for i in range(4)]
        store = DirectoryStore(tmp_path)
        GridRunner(store=store).run(scenarios)  # fill the store
        for k in range(2):
            with GridRunner(
                backend=ShardedBackend(k, 2), store=DirectoryStore(tmp_path)
            ) as runner:
                part = runner.run(scenarios)
            assert [r.scenario.name for r in part] == [
                sc.name for sc in shard_scenarios(scenarios, k, 2)
            ]
            assert all(r.cached for r in part)  # own slice: served

    def test_duplicates_collapse_within_a_shard(self):
        twin = TINY.with_(name="twin")
        backend = ShardedBackend(shard_index(TINY.scenario_hash(), 2), 2)
        with GridRunner(backend=backend) as runner:
            results = runner.run([TINY, twin])
        assert [r.scenario.name for r in results] == ["tiny-backend", "twin"]
        assert results[0].same_outcome(results[1])
        # The other shard owns nothing of this list.
        other = ShardedBackend(1 - backend.index, 2)
        with GridRunner(backend=other) as runner:
            assert runner.run([TINY, twin]) == []


class TestBatchBackend:
    def _cap_sweep(self, policy="MIX", fracs=(0.4, 0.5, 0.6)):
        base = TINY.with_(policy=policy, duration=2 * HOUR)
        return [
            base.with_(name=f"cap{f}", caps=(CapWindow(1800.0, 5400.0, f),))
            for f in fracs
        ]

    def test_make_backend_and_shard_wrapping(self):
        assert isinstance(make_backend("batch"), BatchBackend)
        assert BatchBackend().wants_scenarios
        sharded = make_backend("batch", shard="1/2")
        assert isinstance(sharded, ShardedBackend)
        assert sharded.wants_scenarios  # forwarded from the inner batch
        assert not make_backend("serial", shard="1/2").wants_scenarios

    def test_group_key_ignores_caps_and_labels(self):
        sweep = self._cap_sweep()
        keys = {BatchBackend.group_key(sc) for sc in sweep}
        assert len(keys) == 1  # one lockstep group
        assert BatchBackend.group_key(TINY.with_(name="x")) == (
            BatchBackend.group_key(TINY)
        )
        assert BatchBackend.group_key(TINY.with_(seed=9)) != (
            BatchBackend.group_key(TINY)
        )

    def test_cap_sweep_matches_serial(self):
        sweep = self._cap_sweep()
        with GridRunner(backend=make_backend("batch")) as runner:
            batched = runner.run(sweep)
        serial = GridRunner().run(sweep)
        assert [r.trace_digest for r in batched] == [
            r.trace_digest for r in serial
        ]
        assert [r.scenario.name for r in batched] == [sc.name for sc in sweep]

    def test_mixed_groups_and_singletons(self):
        # Two cap cells of one scenario plus an unrelated singleton:
        # the backend must group the former and solo-run the latter,
        # returning everything in input order.
        sweep = self._cap_sweep(fracs=(0.4, 0.6))
        lone = TINY.with_(name="lone", seed=7)
        mixed = [sweep[0], lone, sweep[1]]
        with GridRunner(backend=make_backend("batch")) as runner:
            batched = runner.run(mixed)
        serial = GridRunner().run(mixed)
        assert [r.trace_digest for r in batched] == [
            r.trace_digest for r in serial
        ]

    def test_series_payloads_match_serial(self, tmp_path):
        import numpy as np

        sweep = self._cap_sweep(fracs=(0.4, 0.6))
        with GridRunner(
            backend=make_backend("batch"),
            store=DirectoryStore(tmp_path / "batch"),
            series=True,
        ) as runner:
            runner.run(sweep)
        with GridRunner(
            store=DirectoryStore(tmp_path / "serial"), series=True
        ) as runner:
            runner.run(sweep)
        b = GridRunner(store=DirectoryStore(tmp_path / "batch"))
        s = GridRunner(store=DirectoryStore(tmp_path / "serial"))
        for sc in sweep:
            bs, ss = b.load_series(sc), s.load_series(sc)
            assert bs is not None and ss is not None
            assert sorted(bs) == sorted(ss)
            for k in bs:
                assert np.array_equal(bs[k], ss[k]), k


class TestBatchPoolBackend:
    """The batch×pool composition: grouping like batch, execution on
    pool workers, LPT dispatch, and the group-level degradation state
    machine.  Digest equivalence with serial is the invariant every
    case holds."""

    def _cap_sweep(self, seeds=(5, 6), fracs=(0.4, 0.5, 0.6)):
        base = TINY.with_(policy="MIX", duration=2 * HOUR)
        return [
            base.with_(
                name=f"s{seed}-cap{f}",
                seed=seed,
                caps=(CapWindow(1800.0, 5400.0, f),),
            )
            for seed in seeds
            for f in fracs
        ]

    def test_make_backend(self):
        b = make_backend("batch-pool", workers=2)
        assert isinstance(b, BatchPoolBackend)
        assert isinstance(b, ProcessPoolBackend)  # inherits resilience
        assert b.wants_scenarios and b.workers == 2
        sharded = make_backend("batch-pool", workers=2, shard="1/2")
        assert isinstance(sharded, ShardedBackend)
        assert sharded.wants_scenarios

    def test_cap_sweep_matches_serial_with_group_stats(self):
        sweep = self._cap_sweep()  # 2 seeds x 3 caps = 2 groups
        with GridRunner(backend=make_backend("batch-pool", workers=2)) as r:
            report = r.sweep(sweep)
        serial = GridRunner().run(sweep)
        assert [r.trace_digest for r in report.results] == [
            r.trace_digest for r in serial
        ]
        g = report.groups
        assert g["n_groups"] == 2 and g["n_batched_cells"] == 6
        assert g["n_singletons"] == 0 and g["n_degraded_groups"] == 0
        assert len(g["plan"]) == 2 and len(g["groups"]) == 2
        # LPT spreads two similar groups over both workers.
        assert {p["worker"] for p in g["plan"]} == {0, 1}
        assert "lockstep group(s)" in report.summary()
        for res in report.results:
            # Batched cells carry the group's elapsed; wall reports
            # the per-cell share of it.
            assert res.elapsed_seconds is not None
            assert res.elapsed_seconds >= res.wall_seconds > 0

    def test_one_worker_delegates_to_in_process_batch(self):
        sweep = self._cap_sweep(seeds=(5,))
        with GridRunner(backend=make_backend("batch-pool", workers=1)) as r:
            report = r.sweep(sweep)
        serial = GridRunner().run(sweep)
        assert [r.trace_digest for r in report.results] == [
            r.trace_digest for r in serial
        ]
        assert report.groups["n_groups"] == 1

    def test_mixed_groups_and_singletons(self):
        sweep = self._cap_sweep(seeds=(5,), fracs=(0.4, 0.6))
        lone = TINY.with_(name="lone", seed=7)
        mixed = [sweep[0], lone, sweep[1]]
        with GridRunner(backend=make_backend("batch-pool", workers=2)) as r:
            report = r.sweep(mixed)
        serial = GridRunner().run(mixed)
        assert [r.trace_digest for r in report.results] == [
            r.trace_digest for r in serial
        ]
        assert report.groups["n_singletons"] == 1

    def test_batch_timeout_warns_once_and_points_here(self):
        sweep = self._cap_sweep(seeds=(5,), fracs=(0.4, 0.6))
        with pytest.warns(RuntimeWarning, match="batch-pool"):
            with GridRunner(backend=make_backend("batch"), timeout=30.0) as r:
                results = r.run(sweep)
        assert len(results) == 2

    def test_crash_fault_degrades_only_its_group(self):
        # One 3-cell group (with the victim) plus one singleton: the
        # injected crash kills a *pool worker*, the group degrades to
        # retried solo re-runs, the singleton is untouched, and the
        # sweep loses nothing.
        sweep = self._cap_sweep(seeds=(5,))
        lone = TINY.with_(name="lone", seed=7)
        mixed = sweep + [lone]
        serial = GridRunner().run(mixed)
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    scenario_hash=sweep[1].scenario_hash(),
                    kind="crash",
                    times=1,
                ),
            )
        )
        with injected(plan):
            with GridRunner(
                backend=make_backend("batch-pool", workers=2),
                retry=RetryPolicy(max_attempts=3),
                on_error="quarantine",
            ) as r:
                report = r.sweep(mixed)
        assert report.unquarantined_losses == []
        assert not report.failures
        assert report.groups["n_degraded_groups"] == 1
        assert [r.trace_digest for r in report.results] == [
            r.trace_digest for r in serial
        ]

    def test_warm_starts_publish_and_hit_across_runs(self, tmp_path):
        from repro.exp import make_checkpoint_store

        # IDLE with a late window has a real divergence horizon, so
        # the group's worker publishes the shared prefix on pass 1 and
        # restores it on pass 2 — digests identical throughout.
        base = TINY.with_(policy="IDLE", duration=2 * HOUR)
        sweep = [
            base.with_(name=f"c{f}", caps=(CapWindow(5760.0, 6720.0, f),))
            for f in (0.3, 0.4, 0.5)
        ]
        serial = GridRunner().run(sweep)
        spec = f"dir:{tmp_path / 'ckpt'}"
        reports = []
        for _ in range(2):
            with GridRunner(
                backend=make_backend("batch-pool", workers=2),
                checkpoints=make_checkpoint_store(spec),
            ) as r:
                reports.append(r.sweep(sweep))
        assert reports[0].checkpoints["publishes"] >= 1
        assert reports[1].checkpoints["hits"] >= 1
        assert reports[1].checkpoints["misses"] == 0
        for report in reports:
            assert [r.trace_digest for r in report.results] == [
                r.trace_digest for r in serial
            ]


class TestMergeHelpers:
    def test_merge_results_conflict_raises(self):
        from dataclasses import replace

        a = GridRunner().run([TINY])[0]
        forged = replace(a, trace_digest="0" * 64)
        with pytest.raises(ValueError, match="deterministic"):
            merge_results([[a], [forged]])

    def test_merge_cells_deduplicates_and_orders(self):
        from dataclasses import replace

        results = GridRunner().run(
            [
                TINY.with_(name="mix", policy="MIX"),
                TINY.with_(name="shut", policy="SHUT"),
            ]
        )
        cells = results_to_cells(results)
        merged = merge_cells([[cells[1]], [cells[0], cells[1]]])
        assert [c.policy for c in merged] == ["MIX", "SHUT"]  # paper order
        conflicting = replace(cells[0], energy_norm=0.123)
        with pytest.raises(ValueError, match="deterministic"):
            merge_cells([[cells[0]], [conflicting]])

    def test_merge_cells_is_nan_aware(self):
        # Uncapped cells carry NaN window metrics; two bit-identical
        # cells built by *independent* runs (distinct objects, so no
        # tuple identity shortcut) must merge, not conflict.
        a = results_to_cells(GridRunner().run([TINY]))
        b = results_to_cells(GridRunner().run([TINY]))
        assert len(merge_cells([a, b])) == 1


@pytest.mark.slow
class TestCrossBackendEquivalence:
    """The acceptance bar of the refactor: all 16 pinned digests are
    byte-identical under every backend and shard split, and the store
    contents written by every configuration are identical."""

    def _library(self):
        from repro.exp import SCENARIO_LIBRARY
        from repro.policy import PAPER_POLICY_NAMES

        # The 16 paper-policy scenarios: Curie at one-rack scale (the
        # pinned digest scale), platform scenarios at their library
        # scale.  ADAPTIVE/TRACK digests are pinned in tests/policy/.
        return [
            sc.with_(scale=1 / 56) if sc.platform == "curie" else sc
            for sc in SCENARIO_LIBRARY
            if sc.policy_name in PAPER_POLICY_NAMES
        ]

    def _pinned(self):
        from test_determinism import (
            LIBRARY_SEED_DIGESTS,
            PLATFORM_LIBRARY_DIGESTS,
        )

        return {**LIBRARY_SEED_DIGESTS, **PLATFORM_LIBRARY_DIGESTS}

    def _sweep(self, root, backends, scenarios):
        parts = []
        for backend in backends:
            with GridRunner(backend=backend, store=DirectoryStore(root)) as r:
                parts.append(r.run(scenarios))
        return parts

    def test_all_backends_reproduce_the_pinned_digests(self, tmp_path):
        scenarios = self._library()
        pinned = self._pinned()
        assert len(scenarios) == len(pinned) == 16
        configs = {
            "serial": [make_backend("serial")],
            "pool": [make_backend("pool", workers=2)],
            "batch": [make_backend("batch")],
            "shard2": [make_backend("pool", workers=2, shard=(k, 2)) for k in range(2)],
            "shard3": [make_backend("serial", shard=(k, 3)) for k in range(3)],
            "batchpool2": [make_backend("batch-pool", workers=2)],
            "batchpool4": [make_backend("batch-pool", workers=4)],
            # The shm-off column: the same pool sweeps with the data
            # plane's pickle fallback forced everywhere (REPRO_SHM=0
            # semantics) must stay byte-identical to every other cell.
            "batchpool2-shm-off": [make_backend("batch-pool", workers=2)],
            "pool-shm-off": [make_backend("pool", workers=2)],
        }
        contents = {}
        for label, backends in configs.items():
            from repro.exp import shm

            root = tmp_path / label
            shm.set_shm_enabled(False if label.endswith("shm-off") else None)
            try:
                parts = self._sweep(root, backends, scenarios)
            finally:
                shm.set_shm_enabled(None)
            assert all(not r.cached for part in parts for r in part), label
            merged = merge_results(parts)
            assert {
                r.scenario.name: r.trace_digest for r in merged
            } == pinned, label
            store = DirectoryStore(root)
            contents[label] = {
                key: store.get(key).trace_digest for key in store.keys()
            }
        # Identical store contents (same keys, same digests) whatever
        # executed the sweep.
        assert len({frozenset(c.items()) for c in contents.values()}) == 1


@pytest.mark.slow
def test_sharded_store_merge_equals_single_run_table(tmp_path):
    """Two shard jobs filling one shared store produce, after a merge
    pass over that store, the exact Figure-8 table of a single-process
    run — the CI shard matrix asserts this same property end to end."""
    from repro.exp import SharedDirectoryStore, render_results_grid

    scenarios = [
        Scenario.paper_cell("medianjob", policy, cap, scale=1 / 56, duration=2 * HOUR)
        for policy in ("SHUT", "DVFS", "MIX")
        for cap in (0.6, 0.4)
    ]
    for k in range(2):
        with GridRunner(
            backend=make_backend("serial", shard=(k, 2)),
            store=SharedDirectoryStore(tmp_path),
        ) as runner:
            runner.run(scenarios)
    with GridRunner(store=SharedDirectoryStore(tmp_path)) as runner:
        merged = runner.run(scenarios)
    assert all(r.cached for r in merged)
    single = GridRunner().run(scenarios)
    assert [r.trace_digest for r in merged] == [r.trace_digest for r in single]
    assert render_results_grid(merged) == render_results_grid(single)
