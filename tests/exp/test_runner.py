"""GridRunner mechanics: caching, deduplication, aggregation, CLI."""

import json
import math

import pytest

from repro.exp import (
    CapWindow,
    GridRunner,
    RunResult,
    Scenario,
    cell_from_result,
    compare_results,
    results_table,
    results_to_cells,
    run_scenario,
)

HOUR = 3600.0

#: tiny, fast scenario shared by the tests below (90-node Curie, 1 h)
TINY = Scenario(
    name="tiny",
    interval="medianjob",
    policy="MIX",
    scale=1 / 56,
    duration=HOUR,
    caps=(),
)
TINY_CAPPED = TINY.with_(
    name="tiny-capped",
    caps=(CapWindow(0.25 * HOUR, 0.75 * HOUR, 0.6),),
)


@pytest.fixture(scope="module")
def tiny_result():
    return run_scenario(TINY)


class TestRunResult:
    def test_dict_roundtrip(self, tiny_result):
        back = RunResult.from_dict(tiny_result.to_dict())
        assert back.same_outcome(tiny_result)
        assert back.scenario == tiny_result.scenario
        assert back.n_jobs == tiny_result.n_jobs
        assert back.n_events == tiny_result.n_events

    def test_metrics_complete(self, tiny_result):
        for key in (
            "energy_norm",
            "work_norm",
            "jobs_norm",
            "effective_work_norm",
            "job_energy_norm",
            "launched_jobs",
            "completed_jobs",
            "window_energy_norm",
        ):
            assert key in tiny_result.metrics, key
        # Uncapped: window metrics are NaN.
        assert math.isnan(tiny_result.metrics["window_energy_norm"])

    def test_window_metrics_when_capped(self):
        r = run_scenario(TINY_CAPPED)
        assert 0.0 < r.metrics["window_energy_norm"] <= 1.0 + 1e-9
        assert 0.0 <= r.metrics["window_work_norm"] <= 1.0 + 1e-9

    def test_digest_shape(self, tiny_result):
        assert len(tiny_result.trace_digest) == 64
        assert tiny_result.n_samples > 0 and tiny_result.n_events > 0


class TestCache:
    def test_cache_roundtrip_and_skip(self, tmp_path):
        runner = GridRunner(cache_dir=tmp_path)
        first = runner.run([TINY])[0]
        assert not first.cached
        assert (tmp_path / f"{GridRunner._cache_key(TINY)}.json").is_file()
        second = runner.run([TINY])[0]
        assert second.cached
        assert second.same_outcome(first)

    def test_renamed_scenario_hits_cache(self, tmp_path):
        runner = GridRunner(cache_dir=tmp_path)
        first = runner.run([TINY])[0]
        renamed = TINY.with_(name="same-content-other-label")
        second = runner.run([renamed])[0]
        assert second.cached and second.same_outcome(first)
        assert second.scenario.name == "same-content-other-label"

    def test_corrupt_cache_entry_reruns(self, tmp_path):
        runner = GridRunner(cache_dir=tmp_path)
        first = runner.run([TINY])[0]
        path = tmp_path / f"{GridRunner._cache_key(TINY)}.json"
        path.write_text("{not json", encoding="utf-8")
        second = runner.run([TINY])[0]
        assert not second.cached
        assert second.same_outcome(first)
        # And the cache healed itself.
        assert json.loads(path.read_text())["trace_digest"] == first.trace_digest

    def test_changed_content_misses_cache(self, tmp_path):
        runner = GridRunner(cache_dir=tmp_path)
        runner.run([TINY])
        other = TINY.with_(seed=123)
        result = runner.run([other])[0]
        assert not result.cached


class TestDeduplication:
    def test_duplicate_content_runs_once(self, tmp_path):
        calls = []
        runner = GridRunner(cache_dir=tmp_path)
        results = runner.run(
            [TINY, TINY.with_(name="twin")], progress=calls.append
        )
        # One execution (one cache file appears), two result slots in
        # input order, each keeping its own label, progress per slot.
        assert len(results) == 2
        assert len(list(tmp_path.glob("*.json"))) == 1
        assert len(calls) == 2
        assert [r.scenario.name for r in results] == ["tiny", "twin"]
        assert results[0].same_outcome(results[1])


class TestSeriesPayload:
    def test_npz_written_and_loadable(self, tmp_path):
        import numpy as np

        with GridRunner(cache_dir=tmp_path, series=True) as runner:
            result = runner.run([TINY])[0]
            npz = tmp_path / f"{GridRunner._cache_key(TINY)}.npz"
            assert npz.is_file()
            series = runner.load_series(TINY)
        assert series is not None
        assert {"time", "power", "off_cores", "idle_power", "bonus"} <= set(series)
        # The payload is the scenario's own Figure 6/7 grid.
        from repro.exp import replay_scenario

        replay = replay_scenario(TINY)
        grid = replay.recorder.to_grid(0.0, replay.duration, 300.0)
        for key, arr in grid.items():
            assert np.array_equal(series[key], arr), key
        assert result.n_samples == replay.recorder.n_samples

    def test_missing_npz_is_a_cache_miss(self, tmp_path):
        with GridRunner(cache_dir=tmp_path, series=False) as runner:
            runner.run([TINY])  # JSON cached, no npz
        with GridRunner(cache_dir=tmp_path, series=True) as runner:
            result = runner.run([TINY])[0]
            assert not result.cached  # re-ran to produce the series
            assert runner.load_series(TINY) is not None
            # Second pass: both payloads present, served from cache.
            assert runner.run([TINY])[0].cached

    def test_changed_series_dt_is_a_cache_miss(self, tmp_path):
        with GridRunner(cache_dir=tmp_path, series=True, series_dt=300.0) as r:
            r.run([TINY])
        with GridRunner(cache_dir=tmp_path, series=True, series_dt=60.0) as r:
            result = r.run([TINY])[0]
            assert not result.cached  # stale-resolution payload replaced
            series = r.load_series(TINY)
        import numpy as np

        assert np.all(np.diff(series["time"]) == 60.0)
        assert "_series_dt" not in series

    def test_no_series_without_cache_dir(self):
        runner = GridRunner(series=True)
        assert runner.run([TINY])[0].trace_digest
        assert runner.load_series(TINY) is None

    def test_corrupt_npz_is_a_cache_miss(self, tmp_path):
        with GridRunner(cache_dir=tmp_path, series=True) as r:
            first = r.run([TINY])[0]
        npz = tmp_path / f"{GridRunner._cache_key(TINY)}.npz"
        npz.write_bytes(b"not a zip file")
        with GridRunner(cache_dir=tmp_path, series=True) as r:
            assert r.load_series(TINY) is None
            second = r.run([TINY])[0]
            assert not second.cached  # re-ran and healed the payload
            assert second.trace_digest == first.trace_digest
            assert r.load_series(TINY) is not None


class TestPersistentPool:
    def test_pool_reused_across_runs(self, tmp_path):
        scenarios = [TINY.with_(name=f"s{i}", seed=i) for i in range(3)]
        with GridRunner(workers=2, cache_dir=tmp_path, persistent=True) as runner:
            first = runner.run(scenarios[:2])
            pool = runner._pool
            assert pool is not None
            second = runner.run(scenarios[2:])
            assert runner._pool is pool  # forked once, streamed twice
        assert runner._pool is None  # context exit closed it
        # And the results match fresh serial runs.
        serial = [run_scenario(sc) for sc in scenarios]
        for got, want in zip(first + second, serial):
            assert got.trace_digest == want.trace_digest

    def test_non_persistent_matches(self, tmp_path):
        scenarios = [TINY, TINY.with_(name="other-seed", seed=42)]
        a = GridRunner(workers=2, persistent=False).run(scenarios)
        with GridRunner(workers=2, persistent=True) as runner:
            b = runner.run(scenarios)
        assert [r.trace_digest for r in a] == [r.trace_digest for r in b]


class TestAggregation:
    def test_cell_from_result(self):
        r = run_scenario(TINY_CAPPED)
        cell = cell_from_result(r)
        assert cell.workload == "medianjob"
        assert cell.policy == "MIX"
        assert cell.cap_fraction == 0.6
        assert cell.energy_norm == pytest.approx(r.metrics["energy_norm"])
        assert cell.window_energy_norm == pytest.approx(
            r.metrics["window_energy_norm"]
        )

    def test_results_table_renders(self, tiny_result):
        text = results_table([tiny_result])
        assert "tiny" in text and tiny_result.scenario_hash in text

    def test_compare_results_reports_identity(self, tiny_result):
        text = compare_results(tiny_result, run_scenario(TINY))
        assert "traces identical" in text

    def test_results_to_cells_renderable(self):
        from repro.analysis.report import render_grid

        cells = results_to_cells([run_scenario(TINY_CAPPED)])
        assert "medianjob" in render_grid(cells)


class TestCustomPlatforms:
    """Scenarios referencing platforms registered downstream."""

    def _spec(self, idle_watts=40.0):
        import dataclasses

        from repro.platform import FATNODE_PLATFORM

        return dataclasses.replace(
            FATNODE_PLATFORM, name="custom-box", idle_watts=idle_watts
        )

    def test_replace_invalidates_runner_memos(self):
        """register_platform(..., replace=True) must not leave the
        per-process machine/workload memos serving the old spec."""
        from repro.platform import register_platform, unregister_platform

        try:
            register_platform(self._spec(idle_watts=40.0))
            sc = Scenario(
                name="custom",
                interval="medianjob",
                policy="SHUT",
                platform="custom-box",
                scale=1.0,
                duration=HOUR,
                caps=(CapWindow(0.25 * HOUR, 0.75 * HOUR, 0.7),),
            )
            before = run_scenario(sc)
            register_platform(self._spec(idle_watts=41.0), replace=True)
            after = run_scenario(sc)
            # Different idle watts change every power sample.
            assert after.trace_digest != before.trace_digest
        finally:
            unregister_platform("custom-box")

    def test_replace_invalidates_disk_cache(self, tmp_path):
        """The JSON/.npz cache key covers the platform *content*, so a
        replaced registry entry is a cache miss, not a stale hit."""
        from repro.platform import register_platform, unregister_platform

        try:
            register_platform(self._spec(idle_watts=40.0))
            sc = Scenario(
                name="custom",
                interval="medianjob",
                policy="SHUT",
                platform="custom-box",
                scale=1.0,
                duration=HOUR,
                # The cap window makes the replay sensitive to the
                # idle watts (drained nodes sit idle under the cap).
                caps=(CapWindow(0.25 * HOUR, 0.75 * HOUR, 0.7),),
            )
            runner = GridRunner(cache_dir=tmp_path)
            (before,) = runner.run([sc])
            register_platform(self._spec(idle_watts=41.0), replace=True)
            (after,) = runner.run([sc])
            assert not after.cached
            assert after.trace_digest != before.trace_digest
            # Same content again: now it is a hit.
            (again,) = GridRunner(cache_dir=tmp_path).run([sc])
            assert again.cached and again.trace_digest == after.trace_digest
        finally:
            unregister_platform("custom-box")

    def test_job_widths_snap_to_platform_node_size(self):
        """Multi-node jobs request whole nodes of the *target* machine
        (64-core on fatnode), not Curie's 16-core nodes."""
        from repro.platform import get_platform
        from repro.workload.intervals import generate_interval

        pf = get_platform("fatnode")
        machine = pf.build_machine()
        jobs = generate_interval(
            machine,
            "bigjob",
            reference_cores=pf.workload_reference_cores,
        )
        node = machine.cores_per_node
        assert any(j.cores > node for j in jobs)
        for j in jobs:
            if j.cores > node:
                assert j.cores % node == 0, j.cores

    @pytest.mark.slow
    def test_spawn_workers_learn_downstream_platforms(self):
        """A spawn-started worker only knows the builtins; GridRunner
        must ship downstream-registered specs along with the work."""
        from repro.platform import register_platform, unregister_platform

        try:
            register_platform(self._spec())
            sc = Scenario(
                name="custom",
                interval="medianjob",
                policy="SHUT",
                platform="custom-box",
                scale=1.0,
                duration=HOUR,
            )
            serial = run_scenario(sc)
            variant = sc.with_(name="custom-seeded", seed=99)
            results = GridRunner(workers=2, mp_context="spawn").run([sc, variant])
            assert results[0].trace_digest == serial.trace_digest
            assert results[1].trace_digest != serial.trace_digest
        finally:
            unregister_platform("custom-box")


class TestCli:
    def test_exp_list(self, capsys):
        from repro.cli import main

        assert main(["exp", "list"]) == 0
        out = capsys.readouterr().out
        assert "fig6-24h-mix-40" in out and "demand-response-day" in out

    def test_exp_run_grid_serial_with_cache(self, capsys, tmp_path):
        from repro.cli import main

        argv = [
            "exp", "run",
            "--grid", "policy=SHUT,DVFS", "cap=0.6",
            "--scale", str(1 / 56),
            "--duration", "1.5",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "medianjob-shut-60" in out and "medianjob-dvfs-60" in out
        # Re-run: everything served from cache.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert out.count("(cache)") == 2

    def test_exp_run_requires_work(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["exp", "run"])

    def test_bad_grid_axis_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["exp", "run", "--grid", "colour=red"])

    def test_exp_list_platform_column_and_filter(self, capsys):
        from repro.cli import main

        assert main(["exp", "list"]) == 0
        out = capsys.readouterr().out
        assert "platform" in out and "manythin-smalljob-dvfs-40" in out
        assert main(["exp", "list", "--platform", "fatnode"]) == 0
        out = capsys.readouterr().out
        assert "fatnode-bigjob-shut-60" in out
        assert "fig6-24h-mix-40" not in out

    def test_exp_platforms_lists_registry(self, capsys):
        from repro.cli import main

        assert main(["exp", "platforms"]) == 0
        out = capsys.readouterr().out
        for name in ("curie", "fatnode", "manythin"):
            assert name in out

    def test_exp_run_unknown_platform_lists_registry(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["exp", "run", "--scenario", "tiny", "--platform", "atari"])
        message = str(exc.value)
        assert "atari" in message
        assert "curie" in message and "manythin" in message

    def test_exp_list_unknown_platform_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="available"):
            main(["exp", "list", "--platform", "atari"])

    def test_exp_run_platform_grid_axis(self, capsys, tmp_path):
        from repro.cli import main

        argv = [
            "exp", "run",
            "--grid", "platform=fatnode,manythin", "policy=SHUT", "cap=0.7",
            "--duration", "2.0",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "fatnode-medianjob-shut-70" in out
        assert "manythin-medianjob-shut-70" in out
