"""GridRunner mechanics: caching, deduplication, aggregation, CLI."""

import json
import math

import pytest

from repro.exp import (
    CapWindow,
    GridRunner,
    RunResult,
    Scenario,
    cell_from_result,
    compare_results,
    results_table,
    results_to_cells,
    run_scenario,
)

HOUR = 3600.0

#: tiny, fast scenario shared by the tests below (90-node Curie, 1 h)
TINY = Scenario(
    name="tiny",
    interval="medianjob",
    policy="MIX",
    scale=1 / 56,
    duration=HOUR,
    caps=(),
)
TINY_CAPPED = TINY.with_(
    name="tiny-capped",
    caps=(CapWindow(0.25 * HOUR, 0.75 * HOUR, 0.6),),
)


@pytest.fixture(scope="module")
def tiny_result():
    return run_scenario(TINY)


class TestRunResult:
    def test_dict_roundtrip(self, tiny_result):
        back = RunResult.from_dict(tiny_result.to_dict())
        assert back.same_outcome(tiny_result)
        assert back.scenario == tiny_result.scenario
        assert back.n_jobs == tiny_result.n_jobs
        assert back.n_events == tiny_result.n_events

    def test_metrics_complete(self, tiny_result):
        for key in (
            "energy_norm",
            "work_norm",
            "jobs_norm",
            "effective_work_norm",
            "job_energy_norm",
            "launched_jobs",
            "completed_jobs",
            "window_energy_norm",
        ):
            assert key in tiny_result.metrics, key
        # Uncapped: window metrics are NaN.
        assert math.isnan(tiny_result.metrics["window_energy_norm"])

    def test_window_metrics_when_capped(self):
        r = run_scenario(TINY_CAPPED)
        assert 0.0 < r.metrics["window_energy_norm"] <= 1.0 + 1e-9
        assert 0.0 <= r.metrics["window_work_norm"] <= 1.0 + 1e-9

    def test_digest_shape(self, tiny_result):
        assert len(tiny_result.trace_digest) == 64
        assert tiny_result.n_samples > 0 and tiny_result.n_events > 0


class TestCache:
    def test_cache_roundtrip_and_skip(self, tmp_path):
        runner = GridRunner(cache_dir=tmp_path)
        first = runner.run([TINY])[0]
        assert not first.cached
        assert (tmp_path / f"{TINY.scenario_hash()}.json").is_file()
        second = runner.run([TINY])[0]
        assert second.cached
        assert second.same_outcome(first)

    def test_renamed_scenario_hits_cache(self, tmp_path):
        runner = GridRunner(cache_dir=tmp_path)
        first = runner.run([TINY])[0]
        renamed = TINY.with_(name="same-content-other-label")
        second = runner.run([renamed])[0]
        assert second.cached and second.same_outcome(first)
        assert second.scenario.name == "same-content-other-label"

    def test_corrupt_cache_entry_reruns(self, tmp_path):
        runner = GridRunner(cache_dir=tmp_path)
        first = runner.run([TINY])[0]
        path = tmp_path / f"{TINY.scenario_hash()}.json"
        path.write_text("{not json", encoding="utf-8")
        second = runner.run([TINY])[0]
        assert not second.cached
        assert second.same_outcome(first)
        # And the cache healed itself.
        assert json.loads(path.read_text())["trace_digest"] == first.trace_digest

    def test_changed_content_misses_cache(self, tmp_path):
        runner = GridRunner(cache_dir=tmp_path)
        runner.run([TINY])
        other = TINY.with_(seed=123)
        result = runner.run([other])[0]
        assert not result.cached


class TestDeduplication:
    def test_duplicate_content_runs_once(self, tmp_path):
        calls = []
        runner = GridRunner(cache_dir=tmp_path)
        results = runner.run(
            [TINY, TINY.with_(name="twin")], progress=calls.append
        )
        # One execution (one cache file appears), two result slots in
        # input order, each keeping its own label, progress per slot.
        assert len(results) == 2
        assert len(list(tmp_path.glob("*.json"))) == 1
        assert len(calls) == 2
        assert [r.scenario.name for r in results] == ["tiny", "twin"]
        assert results[0].same_outcome(results[1])


class TestAggregation:
    def test_cell_from_result(self):
        r = run_scenario(TINY_CAPPED)
        cell = cell_from_result(r)
        assert cell.workload == "medianjob"
        assert cell.policy == "MIX"
        assert cell.cap_fraction == 0.6
        assert cell.energy_norm == pytest.approx(r.metrics["energy_norm"])
        assert cell.window_energy_norm == pytest.approx(
            r.metrics["window_energy_norm"]
        )

    def test_results_table_renders(self, tiny_result):
        text = results_table([tiny_result])
        assert "tiny" in text and tiny_result.scenario_hash in text

    def test_compare_results_reports_identity(self, tiny_result):
        text = compare_results(tiny_result, run_scenario(TINY))
        assert "traces identical" in text

    def test_results_to_cells_renderable(self):
        from repro.analysis.report import render_grid

        cells = results_to_cells([run_scenario(TINY_CAPPED)])
        assert "medianjob" in render_grid(cells)


class TestCli:
    def test_exp_list(self, capsys):
        from repro.cli import main

        assert main(["exp", "list"]) == 0
        out = capsys.readouterr().out
        assert "fig6-24h-mix-40" in out and "demand-response-day" in out

    def test_exp_run_grid_serial_with_cache(self, capsys, tmp_path):
        from repro.cli import main

        argv = [
            "exp", "run",
            "--grid", "policy=SHUT,DVFS", "cap=0.6",
            "--scale", str(1 / 56),
            "--duration", "1.5",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "medianjob-shut-60" in out and "medianjob-dvfs-60" in out
        # Re-run: everything served from cache.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert out.count("(cache)") == 2

    def test_exp_run_requires_work(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["exp", "run"])

    def test_bad_grid_axis_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["exp", "run", "--grid", "colour=red"])
