"""Persistent warm-start checkpoints: keys, bit-identity, healing, eviction."""

import json
import os
import warnings

import numpy as np
import pytest

from repro.exp import (
    CapWindow,
    DirectoryCheckpointStore,
    DirectoryStore,
    GridRunner,
    MemoryCheckpointStore,
    MemoryStore,
    Scenario,
    SharedCheckpointStore,
    WarmStart,
    checkpoint_group,
    checkpoint_key,
    make_backend,
    make_checkpoint_store,
)
from repro.exp.checkpoints import CHECKPOINT_SCHEMA, horizon_tag
from repro.sim.batch import FORK_STATE_VERSION

HOUR = 3600.0

TINY = Scenario(
    name="tiny-ckpt",
    interval="medianjob",
    policy="NONE",
    scale=1 / 56,
    duration=HOUR,
)


def cap_sweep(policy="IDLE", fracs=(0.4, 0.5, 0.6)):
    """A late-window cap sweep: one checkpoint group, a long shared
    prefix, and per-cell divergence only inside the window."""
    base = TINY.with_(policy=policy, duration=2 * HOUR)
    return [
        base.with_(name=f"cap{f}", caps=(CapWindow(5400.0, 6600.0, f),))
        for f in fracs
    ]


def fake_state(horizon, payload=1):
    """A minimal fork-state-shaped artifact for store plumbing tests."""
    return {
        "meta": {
            "version": FORK_STATE_VERSION,
            "horizon": float(horizon).hex(),
            "payload": payload,
        },
        "arrays": {"a": np.arange(3, dtype=np.int64) * payload},
    }


class TestCheckpointKey:
    def test_group_is_cap_free_content(self):
        groups = {checkpoint_group(sc) for sc in cap_sweep()}
        assert len(groups) == 1  # the whole sweep shares one prefix
        # Names never count; content (seed, policy) does.
        assert checkpoint_group(TINY.with_(name="x")) == checkpoint_group(TINY)
        assert checkpoint_group(TINY.with_(seed=9)) != checkpoint_group(TINY)
        assert checkpoint_group(
            TINY.with_(policy="SHUT")
        ) != checkpoint_group(TINY)

    def test_key_embeds_exact_horizon_bits(self):
        group = checkpoint_group(TINY)
        k1 = checkpoint_key(group, 5400.0)
        assert k1 == f"{group}-{horizon_tag(5400.0)}"
        assert checkpoint_key(group, 5400.0) == k1
        assert checkpoint_key(group, np.nextafter(5400.0, 0.0)) != k1

    def test_make_checkpoint_store_specs(self, tmp_path):
        assert isinstance(make_checkpoint_store("memory"), MemoryCheckpointStore)
        d = make_checkpoint_store(f"dir:{tmp_path}")
        assert isinstance(d, DirectoryCheckpointStore)
        s = make_checkpoint_store(f"shared:{tmp_path}")
        assert isinstance(s, SharedCheckpointStore)
        # A bare path is shorthand for dir:PATH.
        bare = make_checkpoint_store(str(tmp_path / "ck"))
        assert isinstance(bare, DirectoryCheckpointStore)
        for bad in ("dir:", "shared:", "memory:x"):
            with pytest.raises(ValueError):
                make_checkpoint_store(bad)


def _stores(tmp_path):
    return [
        MemoryCheckpointStore(),
        DirectoryCheckpointStore(tmp_path / "dir"),
        SharedCheckpointStore(tmp_path / "shared"),
    ]


class TestStorePlumbing:
    def test_roundtrip_and_best(self, tmp_path):
        group = checkpoint_group(TINY)
        for store in _stores(tmp_path):
            k1 = store.put(group, 1800.0, fake_state(1800.0, payload=1))
            k2 = store.put(group, 5400.0, fake_state(5400.0, payload=2))
            assert store.has(k1) and store.has(k2)
            assert sorted(store.keys()) == sorted([k1, k2])
            back = store.get(k2)
            assert back["meta"]["payload"] == 2
            np.testing.assert_array_equal(back["arrays"]["a"], [0, 2, 4])
            # best() serves the deepest stored horizon <= the request.
            assert store.best(group, 9000.0)["meta"]["payload"] == 2
            assert store.best(group, 5400.0)["meta"]["payload"] == 2
            assert store.best(group, 5399.0)["meta"]["payload"] == 1
            assert store.best(group, 100.0) is None
            assert store.best("0" * 16 + "-" + "1" * 8 + "-" + "2" * 8, 9e9) is None

    def test_shared_store_first_writer_wins(self, tmp_path):
        store = SharedCheckpointStore(tmp_path)
        group = checkpoint_group(TINY)
        key = store.put(group, 1800.0, fake_state(1800.0))
        path = store._json_path(key)
        stat = path.stat()
        store.put(group, 1800.0, fake_state(1800.0))
        again = path.stat()
        assert (again.st_ino, again.st_mtime_ns) == (stat.st_ino, stat.st_mtime_ns)

    def test_keys_ignore_phantom_files(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path)
        key = store.put(checkpoint_group(TINY), 1800.0, fake_state(1800.0))
        (tmp_path / "notes.json").write_text("{}", encoding="utf-8")
        (tmp_path / f"{key}x.json").write_text("{}", encoding="utf-8")
        assert store.keys() == [key]

    def test_warm_start_publish_skips_existing_key(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path)
        warm = WarmStart(store, checkpoint_group(TINY))
        warm.publish(1800.0, fake_state(1800.0))
        warm.publish(1800.0, fake_state(1800.0))
        assert warm.tally.publishes == 1
        assert warm.load(2000.0) is not None
        assert warm.load(100.0) is None
        assert (warm.tally.hits, warm.tally.misses) == (1, 1)


class TestSchemaAndCorruption:
    def _seeded(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path)
        key = store.put(checkpoint_group(TINY), 1800.0, fake_state(1800.0))
        return store, key

    def test_wrapper_schema_mismatch_is_silent_miss(self, tmp_path):
        store, key = self._seeded(tmp_path)
        wrapper = json.loads(store._json_path(key).read_text(encoding="utf-8"))
        wrapper["schema"] = CHECKPOINT_SCHEMA + 1
        store._json_path(key).write_text(json.dumps(wrapper), encoding="utf-8")
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # silent: no discard warning
            assert store.get(key) is None
            assert store.best(checkpoint_group(TINY), 9000.0) is None
        # The entry is left for the build that wrote it.
        assert store._json_path(key).is_file()
        assert store.health.discarded == 0

    def test_fork_state_version_mismatch_is_silent_miss(self, tmp_path):
        store, key = self._seeded(tmp_path)
        wrapper = json.loads(store._json_path(key).read_text(encoding="utf-8"))
        wrapper["meta"]["version"] = FORK_STATE_VERSION + 1
        store._json_path(key).write_text(json.dumps(wrapper), encoding="utf-8")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert store.get(key) is None
        assert store._json_path(key).is_file()

    def test_truncated_json_discards_both_files(self, tmp_path):
        store, key = self._seeded(tmp_path)
        store._json_path(key).write_text("{tru", encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="discarding"):
            assert store.get(key) is None
        assert not store._json_path(key).is_file()
        assert not store._npz_path(key).is_file()
        assert store.health.discarded == 1

    def test_truncated_npz_discards_both_files(self, tmp_path):
        store, key = self._seeded(tmp_path)
        npz = store._npz_path(key)
        npz.write_bytes(npz.read_bytes()[:20])
        with pytest.warns(RuntimeWarning, match="discarding"):
            assert store.get(key) is None
        assert not store._json_path(key).is_file()
        assert not npz.is_file()

    def test_key_content_mismatch_discards(self, tmp_path):
        # An entry renamed to a foreign key must not serve under it.
        store, key = self._seeded(tmp_path)
        other = checkpoint_key(checkpoint_group(TINY), 9999.0)
        os.rename(store._json_path(key), store._json_path(other))
        os.rename(store._npz_path(key), store._npz_path(other))
        with pytest.warns(RuntimeWarning, match="discarding"):
            assert store.get(other) is None

    def test_orphan_npz_is_invisible(self, tmp_path):
        # A torn write (npz landed, json did not) never serves.
        store, key = self._seeded(tmp_path)
        store._json_path(key).unlink()
        assert store.get(key) is None
        assert store.best(checkpoint_group(TINY), 9000.0) is None


class TestPruning:
    def _aged(self, store, ages):
        """Three entries whose first file is ``age`` seconds old."""
        import time

        group = checkpoint_group(TINY)
        now = time.time()
        keys = []
        for i, age in enumerate(ages):
            key = store.put(group, 1000.0 * (i + 1), fake_state(1000.0 * (i + 1)))
            for path in (store._json_path(key), store._npz_path(key)):
                os.utime(path, (now - age, now - age))
            keys.append(key)
        return keys

    def test_requires_a_budget(self, tmp_path):
        for store in _stores(tmp_path):
            with pytest.raises(ValueError):
                store.prune()

    def test_memory_store_rejects_age(self):
        with pytest.raises(ValueError):
            MemoryCheckpointStore().prune(max_age=10.0)
        with pytest.raises(ValueError):
            MemoryStore().prune(max_age=10.0)
        with pytest.raises(ValueError):
            MemoryStore().prune(2, lru=True)

    def test_max_entries_evicts_oldest_first(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path)
        keys = self._aged(store, ages=(300, 200, 100))
        assert store.prune(2) == [keys[0]]
        assert sorted(store.keys()) == sorted(keys[1:])

    def test_max_age_and_count_evict_their_union(self, tmp_path):
        store = SharedCheckpointStore(tmp_path)
        keys = self._aged(store, ages=(300, 200, 100))
        # Count admits 2, age admits only the youngest: union evicts 2.
        removed = store.prune(2, max_age=150.0)
        assert sorted(removed) == sorted(keys[:2])
        assert store.keys() == [keys[2]]
        # Fan-out dirs of evicted keys are gone (unless shared).
        survivors = {keys[2][:2]}
        for key in keys[:2]:
            assert key[:2] in survivors or not (tmp_path / key[:2]).exists()

    def test_lru_orders_by_access_and_reads_bump_atime(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path)
        keys = self._aged(store, ages=(300, 200, 100))
        # Reading the oldest-written entry makes it most recently used.
        assert store.get(keys[0]) is not None
        assert store.prune(1, lru=True) == [keys[1], keys[2]]
        assert store.keys() == [keys[0]]
        # Without lru the same read would not have saved it.
        store2 = DirectoryCheckpointStore(tmp_path / "mt")
        keys2 = self._aged(store2, ages=(300, 200, 100))
        assert store2.get(keys2[0]) is not None
        assert store2.prune(1) == [keys2[0], keys2[1]]

    def test_result_store_age_and_lru_pruning(self, tmp_path):
        """Satellite coverage: DirectoryStore gained the same budget."""
        import time

        from repro.exp import result_key, run_scenario

        store = DirectoryStore(tmp_path)
        result = run_scenario(TINY)
        old = result_key(TINY)
        new = result_key(TINY.with_(seed=9))
        store.put(old, result)
        store.put(new, result)
        now = time.time()
        for key, age in ((old, 300), (new, 100)):
            path = store._result_path(key)
            os.utime(path, (now - age, now - age))
        with pytest.raises(ValueError):
            store.prune()
        # Age budget alone evicts just the stale entry.
        assert store.prune(max_age=200.0) == [old]
        assert store.keys() == [new]
        # LRU: a hit bumps the atime and saves the entry.
        store.put(old, result)
        path = store._result_path(old)
        os.utime(path, (now - 300, now - 300))
        assert store.get(old) is not None  # bumps atime, mtime untouched
        assert path.stat().st_mtime == pytest.approx(now - 300)
        assert store.prune(1, lru=True) == [new]
        assert store.keys() == [old]


class TestWarmStartBitIdentity:
    """The tentpole's acceptance bar: a store-restored warm start is
    byte-identical to a cold replay, whatever executed it."""

    def _baseline(self, scenarios):
        return [
            r.trace_digest
            for r in GridRunner(store=MemoryStore()).run(scenarios)
        ]

    @pytest.mark.parametrize("store_kind", ["memory", "dir"])
    def test_serial_roundtrip_matches_cold_replay(self, tmp_path, store_kind):
        scenarios = cap_sweep()
        baseline = self._baseline(scenarios)

        def ck():
            if store_kind == "memory":
                return self._memory
            return DirectoryCheckpointStore(tmp_path / "ck")

        self._memory = MemoryCheckpointStore()
        # Cold pass: the first eligible cell publishes, siblings hit.
        rep1 = GridRunner(store=MemoryStore(), checkpoints=ck()).sweep(scenarios)
        assert [r.trace_digest for r in rep1.results] == baseline
        assert rep1.checkpoints == {"hits": 2, "misses": 1, "publishes": 1}
        # Warm pass: a fresh run restores every prefix from the store.
        rep2 = GridRunner(store=MemoryStore(), checkpoints=ck()).sweep(scenarios)
        assert [r.trace_digest for r in rep2.results] == baseline
        assert rep2.checkpoints == {"hits": 3, "misses": 0, "publishes": 0}
        assert "warm starts: 3 hit(s)" in rep2.summary()

    def test_batch_backend_probes_store_including_singletons(self, tmp_path):
        scenarios = cap_sweep()
        baseline = self._baseline(scenarios)
        ck = DirectoryCheckpointStore(tmp_path / "ck")
        # Seed the store through the serial path.
        GridRunner(store=MemoryStore(), checkpoints=ck).sweep(scenarios)
        # A multi-cell lockstep group warm-starts from the store...
        rep = GridRunner(
            backend=make_backend("batch"),
            store=MemoryStore(),
            checkpoints=DirectoryCheckpointStore(tmp_path / "ck"),
        ).sweep(scenarios)
        assert [r.trace_digest for r in rep.results] == baseline
        assert rep.checkpoints["hits"] == 1 and rep.checkpoints["misses"] == 0
        # ...and so does a singleton group (no lockstep siblings).
        rep1 = GridRunner(
            backend=make_backend("batch"),
            store=MemoryStore(),
            checkpoints=DirectoryCheckpointStore(tmp_path / "ck"),
        ).sweep(scenarios[:1])
        assert rep1.results[0].trace_digest == baseline[0]
        assert rep1.checkpoints == {"hits": 1, "misses": 0, "publishes": 0}

    def test_pool_backend_elects_one_publisher_per_group(self, tmp_path):
        scenarios = cap_sweep()
        baseline = self._baseline(scenarios)
        with GridRunner(
            workers=2,
            store=MemoryStore(),
            checkpoints=DirectoryCheckpointStore(tmp_path / "ck"),
        ) as runner:
            rep = runner.sweep(scenarios)
        assert [r.trace_digest for r in rep.results] == baseline
        # Wave 1: the elected publisher (1 miss, 1 publish); wave 2:
        # every sibling fans out as a warm start.
        assert rep.checkpoints == {"hits": 2, "misses": 1, "publishes": 1}

    def test_memory_checkpoints_stay_out_of_pool_workers(self, tmp_path):
        # A non-shareable store would be probed as a pickled empty
        # copy in each worker: the runner must not ship it.
        scenarios = cap_sweep()
        ck = MemoryCheckpointStore()
        with GridRunner(workers=2, store=MemoryStore(), checkpoints=ck) as runner:
            rep = runner.sweep(scenarios)
        assert rep.checkpoints == {}
        assert ck.keys() == []

    def test_corrupt_checkpoint_heals_and_run_stays_identical(self, tmp_path):
        scenarios = cap_sweep()
        baseline = self._baseline(scenarios)
        ck = DirectoryCheckpointStore(tmp_path / "ck")
        GridRunner(store=MemoryStore(), checkpoints=ck).sweep(scenarios)
        [key] = ck.keys()
        npz = ck._npz_path(key)
        npz.write_bytes(npz.read_bytes()[:40])
        store2 = DirectoryCheckpointStore(tmp_path / "ck")
        with pytest.warns(RuntimeWarning, match="discarding"):
            rep = GridRunner(store=MemoryStore(), checkpoints=store2).sweep(
                scenarios
            )
        # The corrupt entry was discarded, the sweep cold-started and
        # re-published an identical artifact, results unharmed.
        assert [r.trace_digest for r in rep.results] == baseline
        assert rep.checkpoints["publishes"] == 1
        assert store2.health.discarded == 1
        assert DirectoryCheckpointStore(tmp_path / "ck").keys() == [key]

    def test_stale_schema_checkpoint_forces_cold_run(self, tmp_path):
        scenarios = cap_sweep()
        baseline = self._baseline(scenarios)
        ck = DirectoryCheckpointStore(tmp_path / "ck")
        GridRunner(store=MemoryStore(), checkpoints=ck).sweep(scenarios)
        [key] = ck.keys()
        wrapper = json.loads(ck._json_path(key).read_text(encoding="utf-8"))
        wrapper["schema"] = CHECKPOINT_SCHEMA + 1
        ck._json_path(key).write_text(json.dumps(wrapper), encoding="utf-8")
        rep = GridRunner(
            store=MemoryStore(),
            checkpoints=DirectoryCheckpointStore(tmp_path / "ck"),
        ).sweep(scenarios)
        # Silent miss: the run is cold but correct, and the foreign
        # entry is neither served nor clobbered (its key still exists).
        assert [r.trace_digest for r in rep.results] == baseline
        assert rep.checkpoints["hits"] == 0
        assert ck._json_path(key).is_file()


@pytest.mark.slow
class TestCrossBackendWarmStartEquivalence:
    """All 16 pinned golden digests, restored from one shared
    checkpoint store, on every backend."""

    def _library(self):
        from repro.exp import SCENARIO_LIBRARY
        from repro.policy import PAPER_POLICY_NAMES

        return [
            sc.with_(scale=1 / 56) if sc.platform == "curie" else sc
            for sc in SCENARIO_LIBRARY
            if sc.policy_name in PAPER_POLICY_NAMES
        ]

    def _pinned(self):
        from test_determinism import (
            LIBRARY_SEED_DIGESTS,
            PLATFORM_LIBRARY_DIGESTS,
        )

        return {**LIBRARY_SEED_DIGESTS, **PLATFORM_LIBRARY_DIGESTS}

    def test_all_backends_restore_the_pinned_digests(self, tmp_path):
        scenarios = self._library()
        pinned = self._pinned()
        assert len(scenarios) == len(pinned) == 16
        ck_root = tmp_path / "ckpts"
        # Publish pass: one cold serial sweep seeds the shared store.
        seed = GridRunner(
            store=MemoryStore(), checkpoints=SharedCheckpointStore(ck_root)
        ).sweep(scenarios)
        assert {
            r.scenario.name: r.trace_digest for r in seed.results
        } == pinned
        published = seed.checkpoints.get("publishes", 0)
        assert published >= 1
        assert len(SharedCheckpointStore(ck_root).keys()) == published
        # Warm passes: fresh result stores, every backend restores.
        backends = {
            "serial": make_backend("serial"),
            "pool": make_backend("pool", workers=2),
            "batch": make_backend("batch"),
        }
        for label, backend in backends.items():
            with GridRunner(
                backend=backend,
                store=MemoryStore(),
                checkpoints=SharedCheckpointStore(ck_root),
            ) as runner:
                rep = runner.sweep(scenarios)
            assert {
                r.scenario.name: r.trace_digest for r in rep.results
            } == pinned, label
            assert rep.checkpoints.get("hits", 0) >= 1, label
            assert rep.checkpoints.get("misses", 1) == 0, label
