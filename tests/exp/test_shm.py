"""Zero-copy data plane: shm transport, spec cache, leak hygiene.

Every test in this module runs under the leak-check fixture: the set
of live ``/dev/shm`` segments (``rs*`` — this suite's namespace) must
be identical before and after each test, so any code path that places
a segment without an adopting ``close()``/reaper fails here, in the
quick gate, not in production.
"""

import os

import numpy as np
import pytest

from repro.exp import CapWindow, GridRunner, Scenario, make_backend
from repro.exp import shm
from repro.exp.shm import (
    GroupEnvelope,
    SharedArena,
    ShmAdoptError,
    ShmPayload,
    SpecCache,
    SpecShipper,
    TransferTally,
    arena,
)

HOUR = 3600.0

TINY = Scenario(
    name="tiny-shm",
    interval="medianjob",
    policy="NONE",
    scale=1 / 56,
    duration=HOUR,
)

needs_shm = pytest.mark.skipif(
    not shm.shm_available(), reason="shared_memory unavailable"
)


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """The module-wide leak check: /dev/shm must end as it began."""
    before = shm.live_segments()
    yield
    shm.set_shm_enabled(None)  # never let an override escape a test
    after = shm.live_segments()
    leaked = after - before
    assert not leaked, f"leaked shm segments: {sorted(leaked)}"


def _payload(seed: int = 0, scale: int = 1) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    return {
        "power": rng.random(9000 * scale),
        "util": rng.random((3, 3000 * scale)).astype(np.float32),
        "count": rng.integers(0, 50, 4000 * scale),
        "flags": rng.integers(0, 2, 777).astype(bool),
        "empty": np.empty(0, dtype=np.float64),
    }


@needs_shm
class TestSharedArena:
    def test_place_adopt_roundtrip_is_bit_identical(self):
        arrays = _payload()
        payload = arena.place(arrays, prefix=shm.new_prefix())
        assert isinstance(payload, ShmPayload)
        assert payload.nbytes >= sum(a.nbytes for a in arrays.values())
        with arena.adopt(payload) as view:
            assert set(view.arrays) == set(arrays)
            # No view outlives the ``with``: a retained array would
            # pin the mapping and turn close() into a warned leak.
            for key, a in arrays.items():
                assert view.arrays[key].dtype == a.dtype
                assert view.arrays[key].shape == a.shape
                assert np.array_equal(view.arrays[key], a)
                assert not view.arrays[key].flags.writeable
        assert payload.segment not in shm.live_segments()

    def test_blocks_are_cache_line_aligned(self):
        payload = arena.place(_payload(), prefix=shm.new_prefix())
        try:
            assert all(b.offset % 64 == 0 for b in payload.blocks)
        finally:
            arena.adopt(payload).close()

    def test_size_guard_falls_back_to_pickle(self):
        small = {"a": np.arange(8, dtype=np.float64)}
        assert arena.place(small) is None  # under MIN_SHM_BYTES
        forced = arena.place(small, min_bytes=0)
        assert forced is not None
        arena.adopt(forced).close()

    def test_disabled_means_none(self):
        shm.set_shm_enabled(False)
        assert not shm.shm_available()
        assert arena.place(_payload()) is None
        shm.set_shm_enabled(None)

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "0")
        assert not shm.shm_available()
        monkeypatch.setenv("REPRO_SHM", "1")
        assert shm.shm_available()

    def test_adopt_missing_segment_raises_adopt_error(self):
        payload = arena.place(_payload(), prefix=shm.new_prefix())
        # Simulate the worker-died-and-was-reaped race: the segment
        # vanishes before the driver adopts the descriptor.
        os.unlink(os.path.join("/dev/shm", payload.segment))
        with pytest.raises(ShmAdoptError):
            arena.adopt(payload)

    def test_close_is_idempotent_and_reaper_sweeps(self):
        payload = arena.place(_payload(), prefix=shm.new_prefix())
        view = arena.adopt(payload)
        assert payload.segment in arena.live_segments
        view.close()
        view.close()  # second close is a no-op
        assert payload.segment not in arena.live_segments
        # The atexit reaper path: adopt again without closing.
        p2 = arena.place(_payload(1), prefix=shm.new_prefix())
        arena.adopt(p2)
        assert arena.reap() == 1
        assert p2.segment not in shm.live_segments()

    def test_reap_prefix_reclaims_orphans_only(self):
        prefix = shm.new_prefix()
        orphan = arena.place(_payload(2), prefix=prefix)
        adopted = arena.place(_payload(3), prefix=prefix)
        view = arena.adopt(adopted)  # driver holds this one
        try:
            # Only the orphan (placed, never adopted) is reclaimed.
            assert shm.reap_prefix(prefix) == 1
            assert orphan.segment not in shm.live_segments()
            assert adopted.segment in shm.live_segments()
        finally:
            view.close()
        assert shm.reap_prefix("") == 0  # empty prefix never sweeps


class TestSpecCache:
    def test_lru_eviction_and_stats(self):
        cache = SpecCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a
        cache.put("c", 3)  # evicts b, the least recent
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.hits == 3 and cache.misses == 1
        cache.clear()
        assert len(cache) == 0 and cache.hits == cache.misses == 0

    def test_seed_platform_cache(self):
        from repro.platform import get_platform

        shm.PLATFORM_CACHE.clear()
        shm.seed_platform_cache(["curie", "curie"])
        spec = get_platform("curie")
        assert shm.PLATFORM_CACHE.get(spec.content_hash()) is spec


class TestGroupEnvelope:
    def _cells(self):
        base = TINY.with_(policy="MIX", duration=2 * HOUR)
        return tuple(
            base.with_(
                name=f"c{f}", caps=(CapWindow(1800.0, 5400.0, f),)
            )
            for f in (0.4, 0.5, 0.6)
        )

    def _envelope(self, cells, base):
        return GroupEnvelope(
            group=base.scenario_hash(),
            base=base,
            cells=tuple((sc.name, sc.caps) for sc in cells),
            hashes=tuple(sc.scenario_hash() for sc in cells),
        )

    def test_resolve_reconstructs_cells_exactly(self):
        cells = self._cells()
        env = self._envelope(cells, cells[0].with_(caps=()))
        assert env.resolve() == cells

    def test_hash_only_envelope_resolves_from_cache_or_misses(self):
        cells = self._cells()
        base = cells[0].with_(caps=())
        shm.SCENARIO_CACHE.clear()
        bare = self._envelope(cells, base)
        bare = GroupEnvelope(bare.group, None, bare.cells, bare.hashes)
        miss = bare.resolve()
        assert shm.is_spec_miss(miss) and miss[1] == (base.scenario_hash(),)
        # A full envelope seeds the cache; the bare one then resolves.
        assert self._envelope(cells, base).resolve() == cells
        assert bare.resolve() == cells

    def test_integrity_failure_is_loud(self):
        cells = self._cells()
        env = self._envelope(cells, cells[0].with_(caps=()))
        tampered = GroupEnvelope(
            env.group, env.base, env.cells, ("0" * 16,) + env.hashes[1:]
        )
        with pytest.raises(ValueError, match="integrity"):
            tampered.resolve()

    def test_envelope_is_smaller_than_full_cells(self):
        # A paper-sized 12-cell cap sweep group: the hash-only
        # envelope must beat the full scenario tuple, and the full
        # task payload (platform dicts included) by a wider margin —
        # the platform spec alone outweighs the whole compact form.
        base = TINY.with_(policy="MIX", duration=2 * HOUR)
        cells = tuple(
            base.with_(
                name=f"c{i}",
                caps=(CapWindow(1800.0, 5400.0, 0.30 + i / 100),),
            )
            for i in range(12)
        )
        env = GroupEnvelope(
            group=base.with_(caps=()).scenario_hash(),
            base=None,
            cells=tuple((sc.name, sc.caps) for sc in cells),
            hashes=tuple(sc.scenario_hash() for sc in cells),
        )
        assert shm.pickled_size(env) < shm.pickled_size(cells)
        from repro.platform import get_platform

        spec = get_platform(base.platform)
        full_task = (cells, ((spec.content_hash(), spec.to_dict()),))
        compact_task = (env, ((spec.content_hash(), None),))
        assert shm.pickled_size(compact_task) < shm.pickled_size(full_task) / 2


class TestSpecShipper:
    def test_full_once_then_hashes(self):
        shipper = SpecShipper(compact=True)
        first = shipper.platform_payload([TINY])
        assert all(d is not None for _, d in first)
        second = shipper.platform_payload([TINY])
        assert all(d is None for _, d in second)
        # full=True re-ships regardless; a miss invalidates.
        assert all(d is not None for _, d in shipper.platform_payload([TINY], full=True))
        shipper.invalidate([h for h, _ in first])
        assert all(d is not None for _, d in shipper.platform_payload([TINY]))

    def test_non_compact_always_ships_full(self):
        shipper = SpecShipper(compact=False)
        for _ in range(2):
            assert all(
                d is not None for _, d in shipper.platform_payload([TINY])
            )

    def test_group_base_ships_once_and_seeds_cache(self):
        shipper = SpecShipper(compact=True)
        base = TINY.with_(caps=())
        group = base.scenario_hash()
        shm.SCENARIO_CACHE.clear()
        assert shipper.group_base(base, group) is base
        assert shipper.group_base(base, group) is None
        assert shm.SCENARIO_CACHE.get(group) is base


class TestTransferTally:
    def test_add_bool_and_dict(self):
        t = TransferTally()
        assert not t
        t.add({"bytes_shipped": 10, "spec_hits": 2, "unknown": 5})
        u = TransferTally(bytes_shared=7, segments=1)
        u.add(t)
        assert u.to_dict() == {
            "bytes_shipped": 10,
            "bytes_shared": 7,
            "segments": 1,
            "spec_hits": 2,
            "spec_misses": 0,
            "fallbacks": 0,
        }
        assert u

    def test_note_envelope_counts_pickled_size(self):
        t = TransferTally()
        t.note_envelope({"k": 1}, count=3)
        assert t.bytes_shipped == 3 * len(__import__("pickle").dumps({"k": 1}))

    def test_format_bytes(self):
        assert shm.format_bytes(512) == "512 B"
        assert shm.format_bytes(2_400_000) == "2.4 MB"
        assert shm.format_bytes(1_500) == "1.5 KB"

    def test_transfer_summary_mentions_each_active_part(self):
        text = shm.transfer_summary(
            {
                "bytes_shipped": 1000,
                "bytes_shared": 5_000_000,
                "segments": 3,
                "spec_hits": 9,
                "spec_misses": 1,
                "fallbacks": 2,
            }
        )
        assert "1.0 KB shipped" in text
        assert "5.0 MB shm (3 seg)" in text
        assert "spec-cache 9/10 hit(s)" in text
        assert "2 pickle fallback(s)" in text


class TestEnvelopeReport:
    def test_plan_lines(self):
        cells = [
            TINY.with_(
                name=f"c{f}",
                policy="MIX",
                caps=(CapWindow(900.0, 1800.0, f),),
            )
            for f in (0.4, 0.6)
        ]
        lines = shm.envelope_report(cells, [[0, 1]])
        assert lines[0].startswith("data plane: shm array transport ")
        assert "1 group(s)" in lines[1] and "compact" in lines[1]
        # No groups: only the status line.
        assert len(shm.envelope_report(cells, [])) == 1


@needs_shm
class TestDataPlaneEndToEnd:
    """A real (tiny) pool sweep through the full data plane, on and
    off, must agree bit-for-bit and leave /dev/shm clean."""

    def _cells(self):
        base = TINY.with_(policy="MIX", duration=HOUR)
        return [
            base.with_(
                name=f"cap{f}", caps=(CapWindow(900.0, 1800.0, f),)
            )
            for f in (0.4, 0.6)
        ]

    def test_series_identical_shm_on_and_off(self, tmp_path):
        from repro.exp import DirectoryStore, result_key

        cells = self._cells()
        stores = {}
        for label, flag in (("on", None), ("off", False)):
            shm.set_shm_enabled(flag)
            try:
                store = DirectoryStore(tmp_path / label, series_dt=2.0)
                with GridRunner(
                    backend=make_backend("batch-pool", workers=2),
                    store=store,
                    series=True,
                ) as runner:
                    report = runner.sweep(cells)
            finally:
                shm.set_shm_enabled(None)
            assert not report.failures
            assert report.transfer, label
            if label == "on":
                assert report.transfer["bytes_shared"] > 0
                assert report.transfer["segments"] == len(cells)
                assert "shm" in report.summary()
            else:
                assert report.transfer["bytes_shared"] == 0
                assert report.transfer["fallbacks"] == len(cells)
            stores[label] = store
        for sc in cells:
            key = result_key(sc)
            on = stores["on"].get_series(key)
            off = stores["off"].get_series(key)
            assert on is not None and off is not None
            assert set(on) == set(off)
            for name in on:
                assert np.array_equal(on[name], off[name]), name
            assert (
                stores["on"].get(key).trace_digest
                == stores["off"].get(key).trace_digest
            )

    def test_compact_envelopes_report_spec_hits(self):
        from repro.exp import MemoryStore

        base = TINY.with_(policy="MIX", duration=HOUR)
        cells = [
            base.with_(
                name=f"{seed}-{f}",
                seed=seed,
                caps=(CapWindow(900.0, 1800.0, f),),
            )
            for seed in (1, 2)
            for f in (0.4, 0.6)
        ]
        backend = make_backend("batch-pool", workers=2)
        assert backend.supports_spec_cache
        assert backend.transport_prefix
        with GridRunner(backend=backend, store=MemoryStore()) as runner:
            report = runner.sweep(cells)
        assert not report.failures
        # Two groups: the second rides a hash-only platform entry that
        # the forked worker resolves from its inherited cache.
        assert report.transfer["spec_hits"] >= 1
        assert report.transfer["spec_misses"] == 0
        assert report.transfer["bytes_shipped"] > 0

    def test_fork_state_nbytes(self):
        from repro.sim.batch import fork_state_nbytes

        state = {"meta": {}, "arrays": _payload()}
        assert fork_state_nbytes(state) == sum(
            a.nbytes for a in state["arrays"].values()
        )
        assert fork_state_nbytes({"meta": {}}) == 0


@needs_shm
class TestCrashCleanup:
    def test_shutdown_reaps_backend_prefix(self):
        """A segment placed under a pool's prefix with no adopted view
        (the worker died before its descriptor reached the driver) is
        reclaimed by backend shutdown."""
        backend = make_backend("batch-pool", workers=2)
        prefix = backend._shm_prefix
        orphan = arena.place(_payload(5), prefix=prefix)
        assert orphan.segment in shm.live_segments()
        backend._get_pool(1)
        backend.close()
        assert orphan.segment not in shm.live_segments()

    def test_respawn_reaps_before_refork(self):
        backend = make_backend("batch-pool", workers=2)
        orphan = arena.place(_payload(6), prefix=backend._shm_prefix)
        try:
            backend._respawn(1)
            assert orphan.segment not in shm.live_segments()
        finally:
            backend.close()

    def test_timeout_kill_leaves_no_segments(self):
        """The PR 7 timeout path end-to-end: a hung worker is killed
        mid-group; whatever it placed must not outlive the respawn."""
        from repro.exp import (
            FaultPlan,
            FaultSpec,
            MemoryStore,
            RetryPolicy,
            injected,
        )

        base = TINY.with_(policy="MIX", duration=HOUR)
        cells = [
            base.with_(
                name=f"cap{f}", caps=(CapWindow(900.0, 1800.0, f),)
            )
            for f in (0.4, 0.6)
        ]
        plan = FaultPlan(
            specs=(FaultSpec(cells[0].scenario_hash(), "hang"),),
            hang_seconds=60.0,
        )
        backend = make_backend("batch-pool", workers=2)
        with injected(plan):
            with GridRunner(backend=backend, store=MemoryStore()) as runner:
                report = runner.sweep(
                    cells,
                    retry=RetryPolicy(max_attempts=1),
                    timeout=2.0,
                    on_error="quarantine",
                )
        assert backend.n_respawns >= 1
        assert len(report.results) == 1 and len(report.failures) == 1
        assert not shm.live_segments(backend._shm_prefix)
