"""Scale invariance: normalised results hold across machine scales.

DESIGN.md commits to this property: benchmarks run on a scaled-down
Curie, and every reported quantity is normalised, so the *shape* of
each figure must not depend on the scale.  Exact equality is not
expected (packing granularity differs); the policy orderings and the
coarse magnitudes must agree.
"""

import pytest

from repro.analysis.report import run_cell
from repro.cluster.curie import curie_machine
from repro.workload.intervals import generate_interval

pytestmark = pytest.mark.slow

HOUR = 3600.0
SCALES = (1 / 56, 1 / 14)


@pytest.fixture(scope="module")
def cells_by_scale():
    out = {}
    for scale in SCALES:
        machine = curie_machine(scale=scale)
        jobs = generate_interval(machine, "medianjob")
        out[scale] = {
            policy: run_cell(machine, jobs, "medianjob", policy, 0.6)
            for policy in ("NONE", "SHUT", "DVFS")
        }
    return out


def test_baseline_saturates_at_every_scale(cells_by_scale):
    for scale, cells in cells_by_scale.items():
        assert cells["NONE"].work_norm > 0.85, scale


def test_work_ordering_stable(cells_by_scale):
    """DVFS raw work >= SHUT raw work at both scales."""
    for scale, cells in cells_by_scale.items():
        assert (
            cells["DVFS"].work_norm >= cells["SHUT"].work_norm - 0.02
        ), scale


def test_energy_reduction_stable(cells_by_scale):
    for scale, cells in cells_by_scale.items():
        assert cells["SHUT"].energy_norm < cells["NONE"].energy_norm, scale
        assert cells["DVFS"].energy_norm < cells["NONE"].energy_norm, scale


def test_normalised_values_close_across_scales(cells_by_scale):
    small, large = (cells_by_scale[s] for s in SCALES)
    for policy in ("NONE", "SHUT", "DVFS"):
        assert small[policy].energy_norm == pytest.approx(
            large[policy].energy_norm, abs=0.12
        ), policy
        assert small[policy].work_norm == pytest.approx(
            large[policy].work_norm, abs=0.15
        ), policy
