"""Unit tests for the metrics recorder (exact integrals, series export)."""

import numpy as np
import pytest

from repro.sim.metrics import MetricsRecorder

FREQS = (1.2, 2.7)


def sample(rec, t, cores=(0.0, 0.0), power=0.0, busy=0.0, **kw):
    defaults = dict(
        off_cores=0.0, idle_watts=0.0, down_watts=0.0, infra_watts=0.0, bonus_watts=0.0
    )
    defaults.update(kw)
    rec.sample(t, cores_by_freq=cores, power_watts=power, busy_watts=busy, **defaults)


class TestSampling:
    def test_monotone_time_enforced(self):
        rec = MetricsRecorder(FREQS)
        sample(rec, 10.0)
        with pytest.raises(ValueError):
            sample(rec, 5.0)

    def test_same_instant_collapses(self):
        rec = MetricsRecorder(FREQS)
        sample(rec, 1.0, power=10.0)
        sample(rec, 1.0, power=20.0)
        assert rec.n_samples == 1
        assert rec.energy_joules(1.0, 2.0) == pytest.approx(20.0)

    def test_shape_mismatch_rejected(self):
        rec = MetricsRecorder(FREQS)
        with pytest.raises(ValueError):
            rec.sample(
                0.0,
                cores_by_freq=(1.0,),
                off_cores=0,
                power_watts=0,
                idle_watts=0,
                down_watts=0,
                infra_watts=0,
                bonus_watts=0,
            )


class TestIntegrals:
    def test_energy_step_function(self):
        rec = MetricsRecorder(FREQS)
        sample(rec, 0.0, power=100.0)
        sample(rec, 10.0, power=50.0)
        sample(rec, 20.0, power=0.0)
        assert rec.energy_joules(0.0, 20.0) == pytest.approx(1500.0)
        assert rec.energy_joules(5.0, 15.0) == pytest.approx(750.0)
        assert rec.energy_joules(0.0, 30.0) == pytest.approx(1500.0)

    def test_energy_before_first_sample_holds_first_value(self):
        rec = MetricsRecorder(FREQS)
        sample(rec, 10.0, power=100.0)
        assert rec.energy_joules(0.0, 20.0) == pytest.approx(2000.0)

    def test_work_integral(self):
        rec = MetricsRecorder(FREQS)
        sample(rec, 0.0, cores=(10.0, 20.0))
        sample(rec, 100.0, cores=(0.0, 0.0))
        assert rec.work_core_seconds(0.0, 100.0) == pytest.approx(3000.0)

    def test_job_energy_uses_busy_watts(self):
        rec = MetricsRecorder(FREQS)
        sample(rec, 0.0, power=100.0, busy=40.0)
        sample(rec, 10.0, power=0.0, busy=0.0)
        assert rec.job_energy_joules(0.0, 10.0) == pytest.approx(400.0)

    def test_empty_recorder(self):
        rec = MetricsRecorder(FREQS)
        assert rec.energy_joules(0.0, 100.0) == 0.0
        assert rec.work_core_seconds(0.0, 100.0) == 0.0

    def test_degenerate_interval(self):
        rec = MetricsRecorder(FREQS)
        sample(rec, 0.0, power=10.0)
        assert rec.energy_joules(5.0, 5.0) == 0.0

    def test_finalize_extends_last_value(self):
        rec = MetricsRecorder(FREQS)
        sample(rec, 0.0, power=10.0)
        rec.finalize(100.0)
        assert rec.energy_joules(0.0, 100.0) == pytest.approx(1000.0)


class TestJobRecords:
    def test_lifecycle(self):
        rec = MetricsRecorder(FREQS)
        rec.job_submitted(1, cores=32, n_nodes=2, time=0.0)
        rec.job_started(1, 10.0, 2.7, 1.0)
        rec.job_finished(1, 50.0)
        r = rec.jobs[1]
        assert r.wait_time == 10.0
        assert r.state == "completed"
        assert rec.launched_jobs(0.0, 100.0) == 1
        assert rec.completed_jobs(0.0, 100.0) == 1

    def test_duplicate_submission_rejected(self):
        rec = MetricsRecorder(FREQS)
        rec.job_submitted(1, 1, 1, 0.0)
        with pytest.raises(ValueError):
            rec.job_submitted(1, 1, 1, 0.0)

    def test_launched_window(self):
        rec = MetricsRecorder(FREQS)
        rec.job_submitted(1, 1, 1, 0.0)
        rec.job_started(1, 200.0, 2.7, 1.0)
        assert rec.launched_jobs(0.0, 100.0) == 0
        assert rec.launched_jobs(0.0, 300.0) == 1

    def test_mean_wait(self):
        rec = MetricsRecorder(FREQS)
        rec.job_submitted(1, 1, 1, 0.0)
        rec.job_submitted(2, 1, 1, 0.0)
        rec.job_started(1, 10.0, 2.7, 1.0)
        assert rec.mean_wait_time() == pytest.approx(10.0)

    def test_effective_work_divides_by_degradation(self):
        rec = MetricsRecorder(FREQS)
        rec.job_submitted(1, 16, 1, 0.0)
        rec.job_started(1, 0.0, 1.2, 2.0)
        rec.job_finished(1, 100.0)
        # 1 node x 16 cores x 100 s / 2.0
        assert rec.effective_work_core_seconds(0.0, 100.0, 16) == pytest.approx(800.0)

    def test_effective_work_clips_to_window(self):
        rec = MetricsRecorder(FREQS)
        rec.job_submitted(1, 16, 1, 0.0)
        rec.job_started(1, 50.0, 2.7, 1.0)
        # Still running: counts up to t1.
        assert rec.effective_work_core_seconds(0.0, 100.0, 16) == pytest.approx(
            16 * 50.0
        )


class TestGridExport:
    def test_grid_series(self):
        rec = MetricsRecorder(FREQS)
        sample(rec, 0.0, cores=(0.0, 100.0), power=500.0)
        sample(rec, 10.0, cores=(50.0, 100.0), power=800.0, bonus_watts=30.0)
        grid = rec.to_grid(0.0, 20.0, 5.0)
        assert list(grid["time"]) == [0.0, 5.0, 10.0, 15.0, 20.0]
        assert list(grid["cores@1.2"]) == [0.0, 0.0, 50.0, 50.0, 50.0]
        assert list(grid["cores@2.7"]) == [100.0] * 5
        assert list(grid["power"]) == [500.0, 500.0, 800.0, 800.0, 800.0]
        assert grid["bonus"][-1] == 30.0

    def test_empty_grid(self):
        rec = MetricsRecorder(FREQS)
        grid = rec.to_grid(0.0, 10.0, 5.0)
        assert np.all(grid["power"] == 0.0)

    def test_grid_validation(self):
        rec = MetricsRecorder(FREQS)
        with pytest.raises(ValueError):
            rec.to_grid(0.0, 10.0, 0.0)
        with pytest.raises(ValueError):
            rec.to_grid(10.0, 0.0, 1.0)
