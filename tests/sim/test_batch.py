"""Batched lockstep replays: bit-identity against solo replays.

The batch engine promises *equivalence, not approximation*: replaying N
cap schedules of one workload in lockstep — with or without a
checkpointed warm start — must reproduce each solo replay's trace
digest byte for byte.  These tests pin that contract on both fork
paths (warm-start and fallback) and on the golden scenario.
"""

import numpy as np
import pytest

from repro.exp import CapWindow, Scenario, trace_digest
from repro.platform import get_platform
from repro.rjms.controller import Controller
from repro.sim.batch import BatchNodeArrays, run_replay_batch
from repro.sim.engine import SimEngine
from repro.sim.metrics import MetricsRecorder
from repro.sim.replay import run_replay

HOUR = 3600.0

BASE = Scenario(
    name="batch-base",
    interval="medianjob",
    policy="MIX",
    scale=1 / 56,
    duration=2 * HOUR,
)

#: the same pin as tests/exp/test_determinism.py — the golden scenario
#: (medianjob / MIX / CapWindow(1800, 5400, 0.5)) replayed *in a batch*
#: must still produce the seed implementation's digest.
GOLDEN_SEED_DIGEST = (
    "b5209bf308602357c99afa59ae85ed9e957ca591c24c204861c28f36ef707880"
)


def _run_batch(policy, fracs, *, window=(1800.0, 5400.0)):
    base = BASE.with_(policy=policy)
    cells = [
        base.with_(caps=(CapWindow(window[0], window[1], f),)) for f in fracs
    ]
    machine = base.build_machine()
    jobs = base.build_jobs(machine)
    return cells, run_replay_batch(
        machine,
        jobs,
        base.build_policy(machine),
        duration=base.effective_duration,
        caps_per_cell=[sc.build_caps(machine) for sc in cells],
        config=base.build_config(),
        platform=get_platform(base.platform),
    )


def _run_solo(sc):
    machine = sc.build_machine()
    return run_replay(
        machine,
        sc.build_jobs(machine),
        sc.build_policy(machine),
        duration=sc.effective_duration,
        powercaps=sc.build_caps(machine),
        config=sc.build_config(),
        platform=get_platform(sc.platform),
    )


class TestBitIdentity:
    @pytest.mark.parametrize(
        "policy,fracs",
        [
            # IDLE: single-frequency selector, no shutdowns — takes the
            # checkpointed warm-start path.
            ("IDLE", [0.4, 0.6, 0.8]),
            # DVFS: the frequency ladder's soft decisions pull the
            # divergence onset below zero — exercises the fallback.
            ("DVFS", [0.4, 0.6]),
            # MIX: shutdown reservations active from t=0 — fallback.
            ("MIX", [0.5, 0.6]),
            # NONE ignores caps entirely: every cell is one replay, so
            # the warm start covers the whole duration.
            ("NONE", [0.4, 0.6]),
        ],
    )
    def test_batch_matches_solo_digests(self, policy, fracs):
        cells, batch = _run_batch(policy, fracs)
        assert len(batch) == len(cells)
        for sc, res in zip(cells, batch):
            solo = _run_solo(sc)
            assert trace_digest(res.recorder) == trace_digest(solo.recorder)
            assert res.n_submitted == solo.n_submitted

    def test_golden_digest_under_batch(self):
        _, batch = _run_batch("MIX", [0.5, 0.6])
        assert trace_digest(batch[0].recorder) == GOLDEN_SEED_DIGEST

    def test_single_cell_batch(self):
        cells, batch = _run_batch("IDLE", [0.5])
        solo = _run_solo(cells[0])
        assert trace_digest(batch[0].recorder) == trace_digest(solo.recorder)

    def test_rejects_empty_and_nonpositive(self):
        machine = BASE.build_machine()
        jobs = BASE.build_jobs(machine)
        pol = BASE.build_policy(machine)
        with pytest.raises(ValueError):
            run_replay_batch(
                machine, jobs, pol, duration=HOUR, caps_per_cell=[]
            )
        with pytest.raises(ValueError):
            run_replay_batch(
                machine, jobs, pol, duration=0.0, caps_per_cell=[[]]
            )


class TestBatchNodeArrays:
    def _accountants(self, n, scale=1 / 56):
        base = BASE.with_(scale=scale)
        machine = base.build_machine()
        pol = base.build_policy(machine)
        return [
            Controller(
                machine,
                pol,
                SimEngine(),
                recorder=MetricsRecorder(machine.freq_table.frequencies),
            ).accountant
            for _ in range(n)
        ]

    def test_adoption_rehomes_rows(self):
        accts = self._accountants(3)
        batch = BatchNodeArrays(accts)
        assert batch.state.shape == (3, accts[0].topology.n_nodes)
        for row, acct in enumerate(accts):
            assert acct.state.base is batch.state
            assert acct.freq_index.base is batch.freq_index
            assert np.shares_memory(acct._node_watts, batch.node_watts[row])
        batch.verify()

    def test_readouts_match_accountants(self):
        accts = self._accountants(2)
        batch = BatchNodeArrays(accts)
        expect = np.array([a._node_watts.sum() for a in accts])
        assert np.array_equal(batch.total_node_watts(), expect)
        assert np.array_equal(
            batch.total_power(), [a.total_power() for a in accts]
        )
        assert np.array_equal(
            batch.busy_nodes(), [a.busy_count_by_freq.sum() for a in accts]
        )

    def test_rejects_empty_and_mismatched_shapes(self):
        with pytest.raises(ValueError):
            BatchNodeArrays([])
        small = self._accountants(1)
        big = self._accountants(1, scale=2 / 56)
        with pytest.raises(ValueError):
            BatchNodeArrays(small + big)
